package nexuspp_test

// One benchmark per table/figure of the paper's evaluation, plus
// micro-benchmarks of the load-bearing structures. The figure benchmarks
// run one representative simulation per iteration and report the achieved
// speedup as a custom metric; `go run ./cmd/nexusbench` regenerates the
// complete tables with every operating point.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nexuspp"
	"nexuspp/internal/core"
	"nexuspp/internal/faults"
	"nexuspp/internal/sim"
	"nexuspp/internal/softrts"
	"nexuspp/internal/starss"
	"nexuspp/internal/workload"
)

// baselines caches 1-worker makespans shared across benchmarks.
var baselines struct {
	once      sync.Once
	contended sim.Time // independent tasks, memory contention
	free      sim.Time // independent tasks, contention-free
	wavefront sim.Time
}

func baseline(b *testing.B) {
	b.Helper()
	baselines.once.Do(func() {
		run := func(cfg core.Config, src workload.Source) sim.Time {
			res, err := core.Run(cfg, src)
			if err != nil {
				panic(err)
			}
			return res.Makespan
		}
		baselines.contended = run(core.DefaultConfig(1), workload.Independent(42))
		cf := core.DefaultConfig(1)
		cf.Mem.ContentionFree = true
		baselines.free = run(cf, workload.Independent(42))
		baselines.wavefront = run(core.DefaultConfig(1), workload.Wavefront(42))
	})
}

func simOnce(b *testing.B, cfg core.Config, mk func() workload.Source, base sim.Time) {
	b.Helper()
	var last *core.Result
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg, mk())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if base > 0 && last != nil {
		b.ReportMetric(float64(base)/float64(last.Makespan), "speedup")
	}
	if last != nil {
		b.ReportMetric(float64(last.TasksExecuted)/b.Elapsed().Seconds()*float64(b.N), "simtasks/s")
	}
}

// BenchmarkTable2 measures generating the Gaussian task graph whose counts
// and weights reproduce Table II (n=1000: 500499 tasks).
func BenchmarkTable2_GaussianGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		src := workload.Gaussian(workload.GaussianConfig{N: 1000})
		n := 0
		for {
			if _, ok := src.Next(); !ok {
				break
			}
			n++
		}
		if n != workload.GaussianTaskCount(1000) {
			b.Fatalf("generated %d tasks", n)
		}
	}
}

// BenchmarkFig6 runs the design-space-exploration operating points of
// Figure 6 (independent tasks, 256 cores, contention-free).
func BenchmarkFig6(b *testing.B) {
	baseline(b)
	b.Run("DT=2K_TP=8K", func(b *testing.B) {
		cfg := core.DefaultConfig(256)
		cfg.Mem.ContentionFree = true
		cfg.TaskPoolEntries = 8192
		cfg.DepTableEntries = 2048
		simOnce(b, cfg, func() workload.Source { return workload.Independent(42) }, baselines.free)
	})
	b.Run("DT=8K_TP=512", func(b *testing.B) {
		cfg := core.DefaultConfig(256)
		cfg.Mem.ContentionFree = true
		cfg.TaskPoolEntries = 512
		cfg.DepTableEntries = 8192
		simOnce(b, cfg, func() workload.Source { return workload.Independent(42) }, baselines.free)
	})
}

// BenchmarkFig7 runs each Figure 4 dependency pattern on 64 cores.
func BenchmarkFig7(b *testing.B) {
	baseline(b)
	patterns := []struct {
		name string
		p    workload.Pattern
		base sim.Time
	}{
		{"independent", workload.PatternIndependent, 0},
		{"wavefront", workload.PatternWavefront, 0},
		{"horizontal", workload.PatternHorizontal, 0},
		{"vertical", workload.PatternVertical, 0},
	}
	for _, pat := range patterns {
		pat := pat
		b.Run(pat.name, func(b *testing.B) {
			base := baselines.contended
			if pat.p == workload.PatternWavefront {
				base = baselines.wavefront
			} else if pat.p != workload.PatternIndependent {
				base = 0 // per-pattern baselines are in nexusbench fig7
			}
			simOnce(b, core.DefaultConfig(64), func() workload.Source {
				return workload.Grid(workload.GridConfig{Pattern: pat.p, Seed: 42})
			}, base)
		})
	}
}

// BenchmarkFig8 runs Gaussian elimination operating points of Figure 8.
func BenchmarkFig8(b *testing.B) {
	sizes := []struct {
		n, cores int
	}{
		{250, 4},
		{250, 64},
		{500, 16},
	}
	for _, s := range sizes {
		s := s
		b.Run("n"+itoa(s.n)+"_c"+itoa(s.cores), func(b *testing.B) {
			base, err := core.Run(core.DefaultConfig(1), workload.Gaussian(workload.GaussianConfig{N: s.n}))
			if err != nil {
				b.Fatal(err)
			}
			simOnce(b, core.DefaultConfig(s.cores), func() workload.Source {
				return workload.Gaussian(workload.GaussianConfig{N: s.n})
			}, base.Makespan)
		})
	}
}

// BenchmarkHeadline runs the paper's three headline operating points
// (SSV: 54x / 143x / 221x).
func BenchmarkHeadline(b *testing.B) {
	baseline(b)
	b.Run("64cores_contention", func(b *testing.B) {
		simOnce(b, core.DefaultConfig(64),
			func() workload.Source { return workload.Independent(42) }, baselines.contended)
	})
	b.Run("256cores_contention_free", func(b *testing.B) {
		cfg := core.DefaultConfig(256)
		cfg.Mem.ContentionFree = true
		simOnce(b, cfg, func() workload.Source { return workload.Independent(42) }, baselines.free)
	})
	b.Run("256cores_no_prep", func(b *testing.B) {
		cfg := core.DefaultConfig(256)
		cfg.Mem.ContentionFree = true
		cfg.DisableTaskPrep = true
		simOnce(b, cfg, func() workload.Source { return workload.Independent(42) }, baselines.free)
	})
}

// BenchmarkAblationBuffering sweeps the Task Controller buffering depth.
func BenchmarkAblationBuffering(b *testing.B) {
	baseline(b)
	for _, depth := range []int{1, 2, 4} {
		depth := depth
		b.Run("depth"+itoa(depth), func(b *testing.B) {
			cfg := core.DefaultConfig(64)
			cfg.BufferingDepth = depth
			simOnce(b, cfg, func() workload.Source { return workload.Independent(42) }, baselines.contended)
		})
	}
}

// BenchmarkRTS contrasts the software runtime model with Nexus++.
func BenchmarkRTS(b *testing.B) {
	b.Run("software_16cores", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := softrts.Run(softrts.DefaultConfig(16), workload.Independent(42)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nexuspp_16cores", func(b *testing.B) {
		baseline(b)
		simOnce(b, core.DefaultConfig(16),
			func() workload.Source { return workload.Independent(42) }, baselines.contended)
	})
}

// --- Micro-benchmarks of the load-bearing structures ---------------------

func BenchmarkSimEngine(b *testing.B) {
	eng := sim.NewEngine()
	var next func()
	n := 0
	next = func() {
		n++
		if n < b.N {
			eng.After(2*sim.Nanosecond, next)
		}
	}
	b.ResetTimer()
	eng.After(0, next)
	eng.Run()
}

func BenchmarkDepTableProcessNew(b *testing.B) {
	dt := core.NewDepTable(4096, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%2048+1) * 1024
		granted, _, _ := dt.ProcessNew(int32(i), addr, 1024, true)
		if granted {
			dt.ProcessFinished(int32(i), addr, true)
		}
	}
}

func BenchmarkRuntimeThroughput(b *testing.B) {
	rt := starss.New(starss.Config{Workers: 4, Window: 256})
	defer rt.Close()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Submit(ctx, starss.Task{
			Deps: []starss.Dep{starss.InOut(i % 64)},
			Do:   func(context.Context) error { return nil },
		}); err != nil {
			b.Fatal(err)
		}
	}
	if err := rt.Wait(ctx); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkShardScalability is the contended-vs-independent-keys
// scalability benchmark for the sharded dependency banks, against the
// retained single-maestro baseline (every Submit and finish funnels
// through one resolver goroutine — the serialization the paper motivates
// against) and against the sharded table clamped to one bank. On
// independent keys (each submitter goroutine owns a disjoint key range)
// sharding must win; on one globally contended key the dependency chain
// itself is serial and no resolver design can help. Both are measured as
// full Submit→completion throughput (tasks/s, submission from GOMAXPROCS
// goroutines, Barrier included). `go run ./cmd/nexusbench shards` prints
// the same comparison as a table.
func BenchmarkShardScalability(b *testing.B) {
	resolvers := []struct {
		name string
		mk   func(workers int) starss.TaskRuntime
	}{
		{"maestro", func(w int) starss.TaskRuntime {
			return starss.NewMaestro(starss.Config{Workers: w, Window: 4096})
		}},
		{"single_bank", func(w int) starss.TaskRuntime {
			return starss.New(starss.Config{Workers: w, Shards: 1, Window: 4096})
		}},
		{"sharded", func(w int) starss.TaskRuntime {
			return starss.New(starss.Config{Workers: w, Window: 4096})
		}},
	}
	for _, workers := range []int{4, 8} {
		for _, tc := range resolvers {
			tc := tc
			b.Run("independent_w"+itoa(workers)+"_"+tc.name, func(b *testing.B) {
				rt := tc.mk(workers)
				ctx := context.Background()
				var gid atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					g := gid.Add(1)
					i := int64(0)
					for pb.Next() {
						i++
						if _, err := rt.Submit(ctx, starss.Task{
							Deps: []starss.Dep{starss.InOut([2]int64{g, i % 512})},
							Do:   func(context.Context) error { return nil },
						}); err != nil {
							b.Fatal(err)
						}
					}
				})
				if err := rt.Wait(ctx); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
				if err := rt.Close(); err != nil {
					b.Fatal(err)
				}
			})
			b.Run("contended_w"+itoa(workers)+"_"+tc.name, func(b *testing.B) {
				rt := tc.mk(workers)
				ctx := context.Background()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := rt.Submit(ctx, starss.Task{
							Deps: []starss.Dep{starss.InOut("hot")},
							Do:   func(context.Context) error { return nil },
						}); err != nil {
							b.Fatal(err)
						}
					}
				})
				if err := rt.Wait(ctx); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
				if err := rt.Close(); err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkObsOverhead is the observability overhead guard: the same
// Submit→completion loop with the event layer off (the default — must stay
// within noise of the uninstrumented runtime, since "off" costs one nil
// check per emission point), with bank counters, and with full event
// recording. CI runs it at -benchtime=1x as a smoke; compare off vs the
// BENCH_<pr>.json trajectory for the regression check.
func BenchmarkObsOverhead(b *testing.B) {
	configs := []struct {
		name string
		cfg  starss.Config
	}{
		{"off", starss.Config{Workers: 4, Window: 256}},
		{"counters", starss.Config{Workers: 4, Window: 256, BankCounters: true}},
		{"events", starss.Config{Workers: 4, Window: 256, EventBuffer: 4096}},
	}
	for _, tc := range configs {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			rt := starss.New(tc.cfg)
			defer rt.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rt.Submit(ctx, starss.Task{
					Deps: []starss.Dep{starss.InOut(i % 64)},
					Do:   func(context.Context) error { return nil },
				}); err != nil {
					b.Fatal(err)
				}
			}
			if err := rt.Wait(ctx); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}

// BenchmarkFaultOverhead is the fault-injection overhead guard, the
// BenchmarkObsOverhead discipline applied to internal/faults: the same
// Submit→completion loop with injection off (nil injector — one nil check
// per task, must stay within noise), with an armed injector whose rule
// never fires (the hash is paid, the fault is not), and with live injection
// plus retries recovering every injected failure. BENCH_10.json records the
// off-configuration baseline.
func BenchmarkFaultOverhead(b *testing.B) {
	configs := []struct {
		name string
		in   *faults.Plan
		task starss.Task
	}{
		{"off", nil, starss.Task{}},
		{"armed_cold", &faults.Plan{Seed: 1, Rules: []faults.Rule{{Site: faults.SiteTaskError, Prob: 0}}}, starss.Task{}},
		// Injected errors at 0.5% with a deep retry budget: every failure
		// recovers, so the loop measures injection + re-arm cost, not a
		// different workload.
		{"active", &faults.Plan{Seed: 1, Rules: []faults.Rule{{Site: faults.SiteTaskError, Prob: 0.005}}},
			starss.Task{MaxRetries: 8, RetryBackoff: time.Microsecond, RetryMaxBackoff: 2 * time.Microsecond}},
	}
	for _, tc := range configs {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			rt := starss.New(starss.Config{Workers: 4, Window: 256, Faults: faults.New(tc.in)})
			defer rt.Close()
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t := tc.task
				t.Deps = []starss.Dep{starss.InOut(i % 64)}
				t.Do = func(context.Context) error { return nil }
				if _, err := rt.Submit(ctx, t); err != nil {
					b.Fatal(err)
				}
			}
			if err := rt.Wait(ctx); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
		})
	}
}

// BenchmarkSubmitAll measures the batch-admission amortisation against
// task-at-a-time Submit on the same independent-keys workload.
func BenchmarkSubmitAll(b *testing.B) {
	const batch = 256
	mkTasks := func(round int) []starss.Task {
		tasks := make([]starss.Task, batch)
		for i := range tasks {
			tasks[i] = starss.Task{
				Deps: []starss.Dep{starss.InOut([2]int{round, i})},
				Do:   func(context.Context) error { return nil },
			}
		}
		return tasks
	}
	b.Run("loop_submit", func(b *testing.B) {
		rt := starss.New(starss.Config{Workers: 4, Window: 1024})
		defer rt.Close()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, t := range mkTasks(i) {
				if _, err := rt.Submit(ctx, t); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := rt.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "tasks/s")
	})
	b.Run("submit_all", func(b *testing.B) {
		rt := starss.New(starss.Config{Workers: 4, Window: 1024})
		defer rt.Close()
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rt.SubmitAll(ctx, mkTasks(i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := rt.Wait(ctx); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "tasks/s")
	})
}

func BenchmarkRuntimeGaussian64(b *testing.B) {
	// End-to-end: the real runtime solving the Gaussian task graph shape.
	for i := 0; i < b.N; i++ {
		rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{Workers: 4})
		n := 64
		for col := 1; col < n; col++ {
			col := col
			rt.MustSubmit(nexuspp.Task{
				Deps: []nexuspp.Dep{nexuspp.InOut(col)},
				Do:   func(context.Context) error { return nil },
			})
			for row := col + 1; row <= n; row++ {
				row := row
				rt.MustSubmit(nexuspp.Task{
					Deps: []nexuspp.Dep{nexuspp.In(col), nexuspp.InOut(row)},
					Do:   func(context.Context) error { return nil },
				})
			}
		}
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
