// Command nexusvet statically enforces the runtime's concurrency
// invariants: sorted bank-lock acquisition (lockorder), handle-error
// consumption (handleleak), context threading (ctxflow), scoped service
// keys (scopedkey) and the retirement of the legacy Task.Run body (norun).
// See DESIGN.md "Statically enforced invariants" for the mapping from each
// analyzer to the hardware guarantee it replaces.
//
// Two modes share one suite:
//
//	nexusvet ./...                            standalone, loads via go list
//	go vet -vettool=$(pwd)/bin/nexusvet ./...  the CI gate (unit-checker protocol)
//
// Findings exit nonzero. Suppress a finding only with a reasoned
// directive: //nexusvet:ignore <analyzer> <reason>.
package main

import (
	"os"

	"nexuspp/internal/analysis/driver"
	"nexuspp/internal/analysis/nexusvet"
)

func main() {
	os.Exit(driver.Main(os.Args[1:], os.Stdout, os.Stderr, nexusvet.Analyzers()))
}
