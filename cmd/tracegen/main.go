// Command tracegen generates, inspects and converts Nexus++ task traces.
//
// Generate a trace file:
//
//	tracegen -workload wavefront -o h264.trace
//	tracegen -workload gaussian -n 250 -o gauss250.trace
//
// Inspect an existing trace:
//
//	tracegen -dump h264.trace -limit 20
package main

import (
	"flag"
	"fmt"
	"os"

	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

func main() {
	var (
		wl    = flag.String("workload", "wavefront", "workload: independent, wavefront, horizontal, vertical, gaussian")
		n     = flag.Int("n", 250, "matrix dimension for gaussian")
		rows  = flag.Int("rows", workload.DefaultRows, "grid rows")
		cols  = flag.Int("cols", workload.DefaultCols, "grid cols")
		seed  = flag.Uint64("seed", 42, "generator seed")
		out   = flag.String("o", "", "output trace file (required unless -dump)")
		dump  = flag.String("dump", "", "trace file to inspect instead of generating")
		limit = flag.Int("limit", 10, "tasks to print when dumping")
	)
	flag.Parse()

	if *dump != "" {
		f, err := os.Open(*dump)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		if err := trace.Dump(os.Stdout, tr, *limit); err != nil {
			fatal(err)
		}
		return
	}

	if *out == "" {
		fatal(fmt.Errorf("either -o or -dump is required"))
	}
	var src workload.Source
	switch *wl {
	case "independent", "wavefront", "horizontal", "vertical":
		p := map[string]workload.Pattern{
			"independent": workload.PatternIndependent,
			"wavefront":   workload.PatternWavefront,
			"horizontal":  workload.PatternHorizontal,
			"vertical":    workload.PatternVertical,
		}[*wl]
		src = workload.Grid(workload.GridConfig{Pattern: p, Rows: *rows, Cols: *cols, Seed: *seed})
	case "gaussian":
		if workload.GaussianTaskCount(*n) > 20_000_000 {
			fatal(fmt.Errorf("gaussian n=%d would materialise %d tasks; choose a smaller n for trace files", *n, workload.GaussianTaskCount(*n)))
		}
		src = workload.Gaussian(workload.GaussianConfig{N: *n})
	default:
		fatal(fmt.Errorf("unknown workload %q", *wl))
	}

	tr := workload.Collect(src)
	if err := tr.Validate(); err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("wrote %s: %d tasks, mean exec %v, mean mem %v\n", *out, st.Tasks, st.MeanExec, st.MeanMem)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
