// Command nexusd is the long-lived, multi-tenant task service daemon: a
// single shared sharded starss runtime serving task-graph submissions from
// many concurrent clients over HTTP — the software analogue of the paper's
// hardware task manager serving many master cores.
//
// Usage:
//
//	nexusd [-addr host:port] [-workers N] [-shards N] [-window N]
//	       [-session-window N] [-session-ttl D] [-max-sessions N]
//	       [-shed-ratio R] [-faults spec] [-fault-seed N]
//
// -shed-ratio sets the global window occupancy fraction past which submits
// are shed with 503 + Retry-After (default 0.9; negative disables).
// -faults arms deterministic, seeded server-side fault injection for chaos
// drills (e.g. -faults server_delay:0.01:5ms,server_drop:every=100); off by
// default and zero-cost when disabled.
//
// API (JSON everywhere; see internal/service for the wire types):
//
//	POST   /v1/sessions               create a session (isolated keyspace,
//	                                  own window, own stats)
//	POST   /v1/sessions/{id}/submit   submit a batch of task specs; 429 +
//	                                  Retry-After when the window is full
//	POST   /v1/sessions/{id}/await    wait for task completion
//	GET    /v1/sessions/{id}/stats    per-session counters
//	DELETE /v1/sessions/{id}          graceful drain
//	GET    /debug                     server-wide counters (JSON)
//	GET    /metrics                   the same counters plus bank-contention
//	                                  instrumentation in Prometheus text
//	                                  exposition format
//	GET    /healthz                   liveness
//
// On SIGINT/SIGTERM the daemon stops accepting requests, drains every
// session (cancelling unstarted tasks; poisoning unwinds their graphs),
// closes the shared runtime, and verifies no goroutines leaked before
// exiting 0 — a leak exits 1 with a stack dump, which CI treats as a
// failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"nexuspp/internal/faults"
	"nexuspp/internal/service"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr          = flag.String("addr", "127.0.0.1:8037", "listen address")
		workers       = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		shards        = flag.Int("shards", 0, "dependency-table banks (0 = scaled to workers)")
		window        = flag.Int("window", 0, "shared runtime in-flight window (0 = derived)")
		sessionWindow = flag.Int("session-window", 256, "per-session in-flight window (backpressure threshold)")
		sessionTTL    = flag.Duration("session-ttl", 2*time.Minute, "idle time before a session is drained")
		maxSessions   = flag.Int("max-sessions", 256, "maximum live sessions")
		shedRatio     = flag.Float64("shed-ratio", 0, "window occupancy fraction past which submits shed with 503 (0 = default 0.9, negative disables)")
		faultSpec     = flag.String("faults", "", "server-side fault injection spec, e.g. server_delay:0.01:5ms (empty = disabled)")
		faultSeed     = flag.Uint64("fault-seed", 1, "seed for the -faults schedule")
	)
	flag.Parse()
	log.SetPrefix("nexusd: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	injector, err := faults.ParseSpec(*faultSeed, *faultSpec)
	if err != nil {
		log.Printf("%v", err)
		return 2
	}
	if injector != nil {
		log.Printf("fault injection armed: %v", injector)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	// Everything started from here on must be gone again at shutdown; the
	// signal-handling machinery above is part of the baseline.
	baseline := runtime.NumGoroutine()

	srv := service.New(service.Config{
		Workers:       *workers,
		Shards:        *shards,
		Window:        *window,
		SessionWindow: *sessionWindow,
		SessionTTL:    *sessionTTL,
		MaxSessions:   *maxSessions,
		ShedRatio:     *shedRatio,
		Faults:        injector,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("listen: %v", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	log.Printf("listening on http://%s (session window %d, ttl %v, max sessions %d)",
		ln.Addr(), *sessionWindow, *sessionTTL, *maxSessions)

	select {
	case sig := <-sigCh:
		log.Printf("received %v, draining", sig)
	case err := <-serveErr:
		log.Printf("serve: %v", err)
		_ = srv.Close()
		return 1
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	<-serveErr // Serve has returned ErrServerClosed
	if err := srv.Close(); err != nil {
		log.Printf("service close: %v", err)
		return 1
	}
	if leaked := waitGoroutines(baseline, 5*time.Second); leaked > 0 {
		log.Printf("goroutine leak: %d above the pre-start baseline of %d", leaked, baseline)
		buf := make([]byte, 1<<20)
		fmt.Fprintf(os.Stderr, "%s\n", buf[:runtime.Stack(buf, true)])
		return 1
	}
	log.Printf("clean shutdown")
	return 0
}

// waitGoroutines polls until the goroutine count returns to the baseline
// (plus slack for the runtime's own helpers) or the deadline passes,
// returning the excess.
func waitGoroutines(baseline int, wait time.Duration) int {
	const slack = 2
	deadline := time.Now().Add(wait)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+slack {
			return 0
		}
		if time.Now().After(deadline) {
			return n - (baseline + slack)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
