// Command nexussim runs one Nexus++ simulation and prints its metrics.
//
// Examples:
//
//	nexussim -workload independent -workers 64
//	nexussim -workload wavefront -workers 16 -depth 1
//	nexussim -workload gaussian -n 250 -workers 4
//	nexussim -workload independent -workers 256 -contention-free -baseline 1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"nexuspp/internal/core"
	"nexuspp/internal/nexus1"
	"nexuspp/internal/softrts"
	"nexuspp/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "independent", "workload: independent, wavefront, horizontal, vertical, gaussian")
		system   = flag.String("system", "nexuspp", "system to simulate: nexuspp, nexus (original), softrts")
		workers  = flag.Int("workers", 16, "number of worker cores")
		depth    = flag.Int("depth", 2, "task-controller buffering depth (2 = double buffering)")
		n        = flag.Int("n", 250, "matrix dimension for the gaussian workload")
		rows     = flag.Int("rows", workload.DefaultRows, "grid rows for the Figure 4 workloads")
		cols     = flag.Int("cols", workload.DefaultCols, "grid cols for the Figure 4 workloads")
		seed     = flag.Uint64("seed", 42, "trace generator seed")
		tpSize   = flag.Int("tp", 1024, "Task Pool entries")
		dtSize   = flag.Int("dt", 4096, "Dependence Table entries")
		koSlots  = flag.Int("ko", 8, "kick-off list slots per entry")
		ports    = flag.Int("table-ports", 0, "Task Pool / Dependence Table ports (0 = fully pipelined)")
		rename   = flag.Bool("rename", false, "eliminate WAR/WAW hazards for pure writers (renaming extension)")
		contFree = flag.Bool("contention-free", false, "disable memory-port contention")
		noPrep   = flag.Bool("no-prep", false, "disable the master's 30ns task preparation")
		baseline = flag.Int("baseline", 0, "also run with this many workers and report speedup (0 = off)")
		verbose  = flag.Bool("v", false, "print block utilisation and structure statistics")
	)
	flag.Parse()

	mk := func() workload.Source { return makeWorkload(*wl, *rows, *cols, *n, *seed) }

	if *system == "softrts" {
		runSoftRTS(mk, *workers, *baseline)
		return
	}
	var cfg core.Config
	switch *system {
	case "nexuspp":
		cfg = core.DefaultConfig(*workers)
		cfg.BufferingDepth = *depth
	case "nexus":
		cfg = nexus1.Config(*workers)
	default:
		fmt.Fprintf(os.Stderr, "nexussim: unknown system %q\n", *system)
		os.Exit(2)
	}
	cfg.TaskPoolEntries = *tpSize
	cfg.DepTableEntries = *dtSize
	cfg.KickOffSlots = *koSlots
	cfg.TablePorts = *ports
	cfg.RenameFalseDeps = *rename
	cfg.Mem.ContentionFree = *contFree
	cfg.DisableTaskPrep = *noPrep

	res, err := core.Run(cfg, mk())
	if err != nil {
		fmt.Fprintln(os.Stderr, "nexussim:", err)
		os.Exit(1)
	}
	fmt.Printf("workload  %s\n", res.Workload)
	fmt.Printf("workers   %d (buffering depth %d)\n", res.Workers, *depth)
	fmt.Printf("tasks     %d\n", res.TasksExecuted)
	fmt.Printf("makespan  %v\n", res.Makespan)
	fmt.Printf("core util %.1f%%\n", res.CoreUtilization*100)
	if *baseline > 0 {
		bcfg := cfg
		bcfg.Workers = *baseline
		base, err := core.Run(bcfg, mk())
		if err != nil {
			fmt.Fprintln(os.Stderr, "nexussim: baseline:", err)
			os.Exit(1)
		}
		fmt.Printf("speedup   %.2fx over %d worker(s) (%v)\n",
			float64(base.Makespan)/float64(res.Makespan), *baseline, base.Makespan)
	}
	if *verbose {
		fmt.Printf("master stall     %v\n", res.MasterStall)
		fmt.Printf("dummy TDs        %d\n", res.DummyTDs)
		fmt.Printf("dummy DT segs    %d\n", res.DummyDTSegments)
		fmt.Printf("max TP occupancy %d\n", res.MaxTPOccupancy)
		fmt.Printf("max DT occupancy %d\n", res.MaxDTOccupancy)
		fmt.Printf("max DT chain     %d\n", res.MaxDTChain)
		fmt.Printf("max KO segments  %d\n", res.MaxKOSegments)
		fmt.Printf("DT full stalls   %d\n", res.DTFullStalls)
		fmt.Printf("mem high water   %d (waits %d)\n", res.MemHighWater, res.MemWaits)
		fmt.Printf("events           %d\n", res.Events)
		blocks := make([]string, 0, len(res.BlockUtil))
		for b := range res.BlockUtil {
			blocks = append(blocks, b)
		}
		sort.Strings(blocks)
		for _, b := range blocks {
			fmt.Printf("block %-16s %5.1f%%\n", b, res.BlockUtil[b]*100)
		}
	}
}

// runSoftRTS handles the software-runtime system variant.
func runSoftRTS(mk func() workload.Source, workers, baseline int) {
	res, err := softrts.Run(softrts.DefaultConfig(workers), mk())
	if err != nil {
		fmt.Fprintln(os.Stderr, "nexussim:", err)
		os.Exit(1)
	}
	fmt.Printf("workload  %s (software RTS)\n", res.Workload)
	fmt.Printf("workers   %d\n", res.Workers)
	fmt.Printf("tasks     %d\n", res.TasksExecuted)
	fmt.Printf("makespan  %v\n", res.Makespan)
	fmt.Printf("master    %.1f%% busy in runtime code\n", res.MasterUtilization*100)
	if baseline > 0 {
		base, err := softrts.Run(softrts.DefaultConfig(baseline), mk())
		if err != nil {
			fmt.Fprintln(os.Stderr, "nexussim: baseline:", err)
			os.Exit(1)
		}
		fmt.Printf("speedup   %.2fx over %d worker(s) (%v)\n",
			float64(base.Makespan)/float64(res.Makespan), baseline, base.Makespan)
	}
}

func makeWorkload(name string, rows, cols, n int, seed uint64) workload.Source {
	switch name {
	case "independent":
		return workload.Grid(workload.GridConfig{Pattern: workload.PatternIndependent, Rows: rows, Cols: cols, Seed: seed})
	case "wavefront":
		return workload.Grid(workload.GridConfig{Pattern: workload.PatternWavefront, Rows: rows, Cols: cols, Seed: seed})
	case "horizontal":
		return workload.Grid(workload.GridConfig{Pattern: workload.PatternHorizontal, Rows: rows, Cols: cols, Seed: seed})
	case "vertical":
		return workload.Grid(workload.GridConfig{Pattern: workload.PatternVertical, Rows: rows, Cols: cols, Seed: seed})
	case "gaussian":
		return workload.Gaussian(workload.GaussianConfig{N: n})
	default:
		fmt.Fprintf(os.Stderr, "nexussim: unknown workload %q\n", name)
		os.Exit(2)
		return nil
	}
}
