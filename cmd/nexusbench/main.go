// Command nexusbench regenerates every table and figure of the Nexus++
// paper's evaluation, plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	nexusbench [flags] [experiment...]
//
// Experiments: table2, fig6, fig7, fig8, headline, ablation-buffering,
// ablation-dummies, rts, nexus, cholesky, shards, all (default).
//
// The shards experiment exercises the executing runtime (internal/starss)
// rather than the simulator: it contrasts single-bank and sharded
// dependency resolution on independent-keys and contended workloads,
// driving the sharded runtime and the retained single-maestro baseline
// through the identical typed-handle API; its report includes the
// runtime's Failed/Skipped poisoning counters as a health check.
//
// Flags:
//
//	-full      run paper-scale operating points (Gaussian n=3000/5000)
//	-csv       emit CSV instead of aligned text
//	-seed N    trace-generator seed (default 42)
//	-progress  log each simulation run to stderr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nexuspp/internal/experiments"
	"nexuspp/internal/report"
)

type driver struct {
	name string
	fn   func(experiments.Options) (*report.Table, error)
}

func main() {
	var (
		full     = flag.Bool("full", false, "run paper-scale operating points (minutes)")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned text")
		chart    = flag.Bool("chart", false, "also render figure experiments as text charts")
		seed     = flag.Uint64("seed", 42, "trace generator seed")
		progress = flag.Bool("progress", false, "log each simulation run to stderr")
	)
	flag.Parse()

	opts := experiments.Options{Full: *full, Seed: *seed}
	if *progress {
		opts.Progress = os.Stderr
	}

	drivers := []driver{
		{"table2", func(o experiments.Options) (*report.Table, error) { return experiments.Table2(o), nil }},
		{"fig6", experiments.Fig6},
		{"fig7", experiments.Fig7},
		{"fig8", experiments.Fig8},
		{"headline", experiments.Headline},
		{"ablation-buffering", experiments.AblationBuffering},
		{"ablation-dummies", experiments.AblationDummies},
		{"ablation-ports", experiments.AblationPorts},
		{"ablation-renaming", experiments.AblationRenaming},
		{"rts", experiments.RTSComparison},
		{"nexus", experiments.NexusComparison},
		{"cholesky", experiments.Cholesky},
		{"shards", experiments.ShardScaling},
	}

	want := flag.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = nil
		for _, d := range drivers {
			want = append(want, d.name)
		}
	}
	byName := make(map[string]driver, len(drivers))
	for _, d := range drivers {
		byName[d.name] = d
	}

	exit := 0
	for i, name := range want {
		d, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "nexusbench: unknown experiment %q\n", name)
			exit = 2
			continue
		}
		tbl, err := d.fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench: %s: %v\n", name, err)
			exit = 1
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		if err := renderTable(os.Stdout, tbl, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench: %s: %v\n", name, err)
			exit = 1
		}
		if *chart && len(tbl.Series) > 0 {
			fmt.Println()
			fmt.Print(report.Chart(tbl.Title+" (chart)", 64, 16, tbl.Series...))
		}
	}
	os.Exit(exit)
}

func renderTable(w io.Writer, t *report.Table, csv bool) error {
	if csv {
		return t.RenderCSV(w)
	}
	return t.Render(w)
}
