// Command nexusbench drives every execution engine in this repository
// through the unified backend interface and regenerates the tables and
// figures of the Nexus++ paper's evaluation.
//
// Usage:
//
//	nexusbench run    [-backend=<name|all>] [-workload=<name>] [-workers=N] [flags]
//	nexusbench list
//	nexusbench golden [-check|-regen] [-dir=<path>] [-case=<name>]
//	nexusbench exp    [flags] [experiment...]
//	nexusbench serve  [-addr=<url>] [-clients=N] [-tasks=N] [flags]
//	nexusbench bench  [-out=<path>] [-seed=N] [-repeat=N]
//	nexusbench chaos  [-seed=N] [-scenarios=all] [-repeat=N] [-json=<path>]
//	nexusbench trace  [-workload=<name>] [-o=trace.json] [flags]
//
// `run` executes one workload on one backend — or on every registered
// backend with -backend=all — and prints one unified report row per engine:
// tasks executed, simulated makespan or measured wall time, and tasks/s.
// The executing runtimes replay the traced workload with synthesized task
// bodies (see -zerocost and -timescale).
//
// `list` enumerates the registered backends and workloads with their
// descriptions.
//
// `golden` maintains the conformance corpus: -check (the default) diffs
// every engine against the committed golden records, -regen rewrites them.
//
// `exp` regenerates the paper's tables and figures: table2, fig6, fig7,
// fig8, headline, ablation-buffering, ablation-dummies, ablation-ports,
// ablation-renaming, rts, nexus, cholesky, shards, all (default). For
// backward compatibility, invoking nexusbench with experiment names (or
// experiment flags) and no subcommand is treated as `exp`.
//
// `serve` is the service smoke: concurrent clients drive a nexusd daemon
// (a running one via -addr, or an in-process loopback server) with
// overlapping-address task graphs and verify per-session accounting.
//
// `bench` records the fixed performance sweep committed as BENCH_<pr>.json:
// maestro vs the sharded runtime on zero-cost replays.
//
// `chaos` runs the seeded fault-injection scenarios of internal/chaos —
// task panics, hangs under deadlines, retry recovery, duplicated and
// dropped wire exchanges, session expiry mid-graph, overload shedding —
// verifying invariants after every run and determinism across repeats.
//
// `trace` replays one workload on the instrumented sharded runtime and
// writes its lifecycle event log as Chrome trace-viewer JSON for
// chrome://tracing / Perfetto timeline inspection.
//
// Unknown backend, workload, or experiment names fail with an error listing
// the valid names.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"nexuspp/internal/backend"
	"nexuspp/internal/core"
	"nexuspp/internal/experiments"
	"nexuspp/internal/report"
	"nexuspp/internal/softrts"
	"nexuspp/internal/starss"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "run":
			os.Exit(runCmd(args[1:]))
		case "list":
			os.Exit(listCmd(os.Stdout))
		case "golden":
			os.Exit(goldenCmd(args[1:]))
		case "exp":
			os.Exit(expCmd(args[1:]))
		case "serve":
			os.Exit(serveCmd(args[1:]))
		case "bench":
			os.Exit(benchCmd(args[1:]))
		case "chaos":
			os.Exit(chaosCmd(args[1:]))
		case "trace":
			os.Exit(traceCmd(args[1:]))
		case "help", "-h", "-help", "--help":
			usage(os.Stdout)
			os.Exit(0)
		}
	}
	// Back-compat: no subcommand means the old experiment-driver CLI.
	os.Exit(expCmd(args))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: nexusbench run [-backend=<name|all>] [-workload=<name>] [-workers=N] [flags]")
	fmt.Fprintln(w, "       nexusbench list")
	fmt.Fprintln(w, "       nexusbench golden [-check|-regen] [-dir=<path>] [-case=<name>]")
	fmt.Fprintln(w, "       nexusbench exp [flags] [experiment...]")
	fmt.Fprintln(w, "       nexusbench serve [-addr=<url>] [-clients=N] [-tasks=N] [flags]")
	fmt.Fprintln(w, "       nexusbench bench [-out=<path>] [-seed=N] [-repeat=N]")
	fmt.Fprintln(w, "       nexusbench chaos [-seed=N] [-scenarios=all] [-repeat=N] [-json=<path>]")
	fmt.Fprintln(w, "       nexusbench trace [-backend=runtime] [-workload=<name>] [-o=trace.json] [flags]")
	fmt.Fprintln(w, "run 'nexusbench list' for backends and workloads,")
	fmt.Fprintln(w, "    'nexusbench exp unknown' for the experiment names.")
}

// runCmd executes one workload on one or all backends through the unified
// interface and renders one report row per engine.
func runCmd(args []string) int {
	fs := flag.NewFlagSet("nexusbench run", flag.ExitOnError)
	var (
		backendName = fs.String("backend", "all", "backend name, or 'all' for every registered engine")
		workName    = fs.String("workload", "wavefront", "workload name (see 'nexusbench list')")
		workers     = fs.Int("workers", 8, "worker cores / goroutines")
		seed        = fs.Uint64("seed", 42, "trace generator seed")
		zerocost    = fs.Bool("zerocost", false, "executing runtimes: empty task bodies (pure resolver throughput)")
		timescale   = fs.Int("timescale", 1, "executing runtimes: divide synthesized body durations")
		shards      = fs.Int("shards", 0, "runtime backend: dependency-table banks (0 default, 1 single bank)")
		csv         = fs.Bool("csv", false, "emit CSV instead of aligned text")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "nexusbench run: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	wl, err := backend.LookupWorkload(*workName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nexusbench run: %v\n", err)
		return 2
	}
	var engines []backend.Backend
	if *backendName == "all" {
		engines = backend.All()
	} else {
		b, err := backend.Lookup(*backendName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench run: %v\n", err)
			return 2
		}
		engines = []backend.Backend{b}
	}

	cfg := backend.Config{
		Workers:   *workers,
		ZeroCost:  *zerocost,
		TimeScale: *timescale,
		Shards:    *shards,
	}
	t := report.NewTable(
		fmt.Sprintf("Unified run: workload %s, %d workers", wl.Name, *workers),
		"backend", "kind", "tasks", "makespan/wall", "tasks/s", "detail")
	exit := 0
	for _, b := range engines {
		rep, err := b.Run(context.Background(), cfg, wl.New(*seed))
		if err != nil {
			t.AddRow(b.Name(), "-", "-", "FAILS: "+trim(err.Error(), 48), "-", "-")
			// An engine rejecting a workload it cannot express (the original
			// Nexus's hard structure limits surface as a FatalModelError) is
			// a reportable outcome; anything else is a real failure.
			var fatal core.FatalModelError
			if !errors.As(err, &fatal) {
				exit = 1
			}
			continue
		}
		kind := "executing"
		if rep.Simulated {
			kind = "simulated"
		}
		t.AddRow(rep.Backend, kind, rep.TasksExecuted, rep.Span(),
			rep.Throughput(), detailOf(rep))
	}
	t.AddNote("simulated engines report simulated makespans; executing engines replay the trace with synthesized Go bodies and report wall time")
	if *zerocost {
		t.AddNote("zero-cost bodies: executing rows measure pure dependency-resolution and scheduling throughput")
	}
	if err := renderTable(os.Stdout, t, *csv); err != nil {
		fmt.Fprintf(os.Stderr, "nexusbench run: %v\n", err)
		return 1
	}
	return exit
}

// detailOf compresses the engine-specific typed detail into one report cell.
func detailOf(rep *backend.Report) string {
	switch d := rep.Detail.(type) {
	case *starss.ReplayResult:
		return fmt.Sprintf("hazards=%d max-in-flight=%d", d.Stats.Hazards, d.Stats.MaxInFlight)
	case *core.Result:
		return fmt.Sprintf("core-util=%.0f%% dummy-tds=%d", d.CoreUtilization*100, d.DummyTDs)
	case *softrts.Result:
		return fmt.Sprintf("core-util=%.0f%% master-util=%.0f%%", d.CoreUtilization*100, d.MasterUtilization*100)
	default:
		return ""
	}
}

// listCmd enumerates registered backends and workloads with descriptions.
func listCmd(w io.Writer) int {
	fmt.Fprintln(w, "Backends:")
	for _, b := range backend.All() {
		fmt.Fprintf(w, "  %-9s %s\n", b.Name(), b.Describe())
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Workloads:")
	for _, wl := range backend.Workloads() {
		fmt.Fprintf(w, "  %-12s %s\n", wl.Name, wl.Description)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Experiments (nexusbench exp):")
	fmt.Fprintf(w, "  %s\n", strings.Join(experimentNames(), ", "))
	return 0
}

type driver struct {
	name string
	fn   func(experiments.Options) (*report.Table, error)
}

func drivers() []driver {
	return []driver{
		{"table2", func(o experiments.Options) (*report.Table, error) { return experiments.Table2(o), nil }},
		{"fig6", experiments.Fig6},
		{"fig7", experiments.Fig7},
		{"fig8", experiments.Fig8},
		{"headline", experiments.Headline},
		{"ablation-buffering", experiments.AblationBuffering},
		{"ablation-dummies", experiments.AblationDummies},
		{"ablation-ports", experiments.AblationPorts},
		{"ablation-renaming", experiments.AblationRenaming},
		{"rts", experiments.RTSComparison},
		{"nexus", experiments.NexusComparison},
		{"cholesky", experiments.Cholesky},
		{"shards", experiments.ShardScaling},
	}
}

func experimentNames() []string {
	var names []string
	for _, d := range drivers() {
		names = append(names, d.name)
	}
	sort.Strings(names)
	return names
}

// expCmd is the paper-evaluation experiment driver (the original CLI).
func expCmd(args []string) int {
	fs := flag.NewFlagSet("nexusbench exp", flag.ExitOnError)
	var (
		full     = fs.Bool("full", false, "run paper-scale operating points (minutes)")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")
		chart    = fs.Bool("chart", false, "also render figure experiments as text charts")
		seed     = fs.Uint64("seed", 42, "trace generator seed")
		progress = fs.Bool("progress", false, "log each simulation run to stderr")
	)
	fs.Parse(args)

	opts := experiments.Options{Full: *full, Seed: *seed}
	if *progress {
		opts.Progress = os.Stderr
	}

	all := drivers()
	want := fs.Args()
	if len(want) == 0 || (len(want) == 1 && want[0] == "all") {
		want = nil
		for _, d := range all {
			want = append(want, d.name)
		}
	}
	byName := make(map[string]driver, len(all))
	for _, d := range all {
		byName[d.name] = d
	}

	exit := 0
	printed := false
	for _, name := range want {
		d, ok := byName[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "nexusbench: unknown experiment %q (valid: %s)\n",
				name, strings.Join(experimentNames(), ", "))
			exit = 2
			continue
		}
		tbl, err := d.fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench: %s: %v\n", name, err)
			exit = 1
			continue
		}
		if printed {
			fmt.Println()
		}
		printed = true
		if err := renderTable(os.Stdout, tbl, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench: %s: %v\n", name, err)
			exit = 1
		}
		if *chart && len(tbl.Series) > 0 {
			fmt.Println()
			fmt.Print(report.Chart(tbl.Title+" (chart)", 64, 16, tbl.Series...))
		}
	}
	return exit
}

func renderTable(w io.Writer, t *report.Table, csv bool) error {
	if csv {
		return t.RenderCSV(w)
	}
	return t.Render(w)
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
