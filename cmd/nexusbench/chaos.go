package main

// `nexusbench chaos` is the resilience gate: it executes the seeded
// fault-injection scenarios of internal/chaos — task panics against the
// dependency-graph oracle, hangs bounded by per-task deadlines, retry
// recovery, duplicated and dropped wire exchanges against the idempotency
// window, session expiry mid-graph, and overload shedding — and verifies
// every run's invariants. Each scenario runs twice per seed and the
// deterministic fingerprints must match, so a schedule that ever diverges
// under the same seed fails the gate.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nexuspp/internal/chaos"
)

func chaosCmd(args []string) int {
	fs := flag.NewFlagSet("nexusbench chaos", flag.ExitOnError)
	var (
		seed      = fs.Uint64("seed", 7, "fault-schedule seed")
		scenarios = fs.String("scenarios", "all", "comma-separated scenario names, or 'all'")
		repeat    = fs.Int("repeat", 2, "runs per scenario; fingerprints must match across runs")
		jsonOut   = fs.String("json", "", "also write the reports as JSON to this path ('-' for stdout)")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "nexusbench chaos: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	names := chaos.Names()
	if *scenarios != "all" {
		names = strings.Split(*scenarios, ",")
	}
	if *repeat < 1 {
		*repeat = 1
	}

	ctx := context.Background()
	var reports []*chaos.Report
	exit := 0
	for _, name := range names {
		name = strings.TrimSpace(name)
		var first *chaos.Report
		ok := true
		for r := 0; r < *repeat; r++ {
			rep, err := chaos.Run(ctx, name, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nexusbench chaos: %v\n", err)
				exit = 1
				ok = false
				break
			}
			if first == nil {
				first = rep
			} else if rep.Fingerprint != first.Fingerprint {
				fmt.Fprintf(os.Stderr,
					"nexusbench chaos: %s(seed=%d): nondeterministic fingerprint: run 1 %s, run %d %s\n",
					name, *seed, first.Fingerprint, r+1, rep.Fingerprint)
				exit = 1
				ok = false
				break
			}
		}
		if !ok || first == nil {
			continue
		}
		reports = append(reports, first)
		fmt.Printf("PASS %-20s seed=%-4d tasks=%-4d executed=%-4d failed=%-3d skipped=%-3d retried=%-3d %s fp=%s\n",
			first.Scenario, first.Seed, first.Tasks, first.Executed, first.Failed, first.Skipped,
			first.Retried, chaosExtras(first), first.Fingerprint)
	}
	if *jsonOut != "" && len(reports) > 0 {
		if err := writeChaosJSON(*jsonOut, reports); err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench chaos: %v\n", err)
			exit = 1
		}
	}
	if exit == 0 {
		fmt.Printf("chaos: %d scenario(s) passed, %d run(s) each, seed=%d\n", len(reports), *repeat, *seed)
	}
	return exit
}

func chaosExtras(rep *chaos.Report) string {
	var parts []string
	if rep.ClientRetries > 0 {
		parts = append(parts, fmt.Sprintf("client-retries=%d", rep.ClientRetries))
	}
	if rep.Deduped > 0 {
		parts = append(parts, fmt.Sprintf("deduped=%d", rep.Deduped))
	}
	if rep.Shed > 0 {
		parts = append(parts, fmt.Sprintf("shed=%d", rep.Shed))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

func writeChaosJSON(path string, reports []*chaos.Report) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Schema  string          `json:"schema"`
		Reports []*chaos.Report `json:"reports"`
	}{Schema: "nexusbench/chaos/v1", Reports: reports})
}
