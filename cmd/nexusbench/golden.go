package main

// The golden subcommand maintains the conformance corpus under
// internal/backend/testdata/golden: `golden -check` (the default) recomputes
// every golden case on every registered engine and diffs the result against
// the committed records; `golden -regen` rewrites them. The same case list
// and diff logic back the internal/backend conformance test, so CI and the
// CLI can never disagree about what conformance means.

import (
	"context"
	"flag"
	"fmt"
	"os"

	"nexuspp/internal/backend"
)

func goldenCmd(args []string) int {
	fs := flag.NewFlagSet("nexusbench golden", flag.ExitOnError)
	var (
		regen = fs.Bool("regen", false, "rewrite the committed golden files from the current engines")
		check = fs.Bool("check", false, "diff the current engines against the committed golden files (default)")
		dir   = fs.String("dir", "internal/backend/testdata/golden", "golden corpus directory")
		only  = fs.String("case", "", "restrict to one golden case (see the case list in errors)")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "nexusbench golden: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *regen && *check {
		fmt.Fprintln(os.Stderr, "nexusbench golden: -regen and -check are mutually exclusive")
		return 2
	}

	cases := backend.GoldenCases()
	if *only != "" {
		c, err := backend.LookupGoldenCase(*only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench golden: %v\n", err)
			return 2
		}
		cases = []backend.GoldenCase{c}
	}

	ctx := context.Background()
	if *regen {
		for _, c := range cases {
			rec, err := backend.ComputeGolden(ctx, c)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nexusbench golden: %s: %v\n", c.Name, err)
				return 1
			}
			path := backend.GoldenPath(*dir, c.Name)
			if err := backend.WriteGolden(path, rec); err != nil {
				fmt.Fprintf(os.Stderr, "nexusbench golden: %s: %v\n", c.Name, err)
				return 1
			}
			fmt.Printf("regen %-22s -> %s (%d tasks, %d engines)\n",
				c.Name, path, rec.Oracle.Tasks, len(rec.Engines))
		}
		fmt.Println("golden corpus regenerated; commit the diff with an explanation of why the behaviour moved")
		return 0
	}

	drift := 0
	for _, c := range cases {
		path := backend.GoldenPath(*dir, c.Name)
		want, err := backend.ReadGolden(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench golden: %s: %v (run 'nexusbench golden -regen')\n", c.Name, err)
			drift++
			continue
		}
		got, err := backend.ComputeGolden(ctx, c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench golden: %s: %v\n", c.Name, err)
			drift++
			continue
		}
		if diffs := want.Diff(got); len(diffs) > 0 {
			fmt.Printf("DRIFT %s (%d fields):\n", c.Name, len(diffs))
			for _, d := range diffs {
				fmt.Printf("  %s\n", d)
			}
			drift++
			continue
		}
		fmt.Printf("ok    %-22s %d tasks, %d engines\n", c.Name, got.Oracle.Tasks, len(got.Engines))
	}
	if drift > 0 {
		fmt.Printf("golden drift in %d/%d cases; if intentional, 'nexusbench golden -regen' and explain the change\n",
			drift, len(cases))
		return 1
	}
	fmt.Printf("golden corpus conforms: %d cases, all engines\n", len(cases))
	return 0
}
