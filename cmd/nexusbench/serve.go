package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"nexuspp/internal/obs"
	"nexuspp/internal/service"
)

// serveCmd is the end-to-end service smoke: several concurrent clients each
// open a session against a nexusd daemon, push overlapping-address task
// graphs through it (riding out 429 backpressure), await completion, and
// verify their per-session accounting. With -addr it targets a running
// daemon (the CI path); without, it spins up an in-process server on a
// loopback port so the smoke is self-contained.
func serveCmd(args []string) int {
	fs := flag.NewFlagSet("nexusbench serve", flag.ExitOnError)
	var (
		addr    = fs.String("addr", "", "daemon base URL (e.g. http://127.0.0.1:8037); empty starts an in-process server")
		clients = fs.Int("clients", 2, "concurrent client sessions")
		tasks   = fs.Int("tasks", 500, "tasks per client")
		batch   = fs.Int("batch", 64, "tasks per submit request")
		keys    = fs.Int("keys", 32, "distinct addresses per client (shared across clients)")
		execUS  = fs.Int64("exec_us", 0, "synthesized body duration per task, microseconds")
		window  = fs.Int("session_window", 128, "in-process server: per-session admission window")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "nexusbench serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	base := *addr
	if base == "" {
		srv := service.New(service.Config{SessionWindow: *window})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench serve: %v\n", err)
			return 1
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			hs.Shutdown(ctx)
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "daemon close: %v\n", err)
			}
		}()
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process daemon on %s\n", base)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	client := service.NewClient(base)
	if !client.Healthy(ctx) {
		fmt.Fprintf(os.Stderr, "nexusbench serve: daemon at %s is not healthy\n", base)
		return 1
	}

	type result struct {
		client  int
		retries int
		elapsed time.Duration
		err     error
	}
	results := make([]result, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = result{client: c}
			r := &results[c]
			t0 := time.Now()
			r.err = func() error {
				s, err := client.Open(ctx)
				if err != nil {
					return fmt.Errorf("open: %w", err)
				}
				// Every task outcome is checked via Await below; session
				// teardown is best-effort.
				defer func() { _ = s.Close(context.Background()) }()
				for sent := 0; sent < *tasks; {
					n := *batch
					if rem := *tasks - sent; n > rem {
						n = rem
					}
					specs := make([]service.TaskSpec, n)
					for i := range specs {
						// Every client uses the same address set: maximal
						// cross-session key overlap, zero cross-session
						// dependencies if isolation holds.
						mode := [...]string{"in", "inout", "out"}[(sent+i)%3]
						specs[i] = service.TaskSpec{
							Params: []service.Param{{Addr: uint64((sent + i) % *keys), Size: 64, Mode: mode}},
							ExecUS: *execUS,
						}
					}
					_, retries, err := s.SubmitWait(ctx, specs)
					if err != nil {
						return fmt.Errorf("submit after %d tasks: %w", sent, err)
					}
					r.retries += retries
					sent += n
				}
				statuses, err := s.Await(ctx, nil)
				if err != nil {
					return fmt.Errorf("await: %w", err)
				}
				for _, st := range statuses {
					if st.State != service.StateOK {
						return fmt.Errorf("task %d finished %s: %s", st.ID, st.State, st.Error)
					}
				}
				stats, err := s.Stats(ctx)
				if err != nil {
					return fmt.Errorf("stats: %w", err)
				}
				if stats.Executed != uint64(*tasks) || stats.InFlight != 0 {
					return fmt.Errorf("session accounting: executed=%d in_flight=%d, want %d/0",
						stats.Executed, stats.InFlight, *tasks)
				}
				return nil
			}()
			r.elapsed = time.Since(t0)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	exit := 0
	for _, r := range results {
		status := "ok"
		if r.err != nil {
			status = r.err.Error()
			exit = 1
		}
		fmt.Printf("client %d: %4d tasks  %8v  %3d backpressure retries  %s\n",
			r.client, *tasks, r.elapsed.Round(time.Millisecond), r.retries, status)
	}
	if dbg, err := client.Debug(ctx); err == nil {
		fmt.Printf("server: sessions=%d submitted=%d executed=%d failed=%d skipped=%d in_flight=%d goroutines=%d bank-acq=%d bank-contended=%d\n",
			dbg.Sessions, dbg.Runtime.Submitted, dbg.Runtime.Executed, dbg.Runtime.Failed,
			dbg.Runtime.Skipped, dbg.Runtime.InFlight, dbg.Goroutines,
			dbg.Runtime.BankAcquisitions, dbg.Runtime.BankContended)
	} else {
		fmt.Fprintf(os.Stderr, "nexusbench serve: debug: %v\n", err)
		exit = 1
	}
	// The smoke also gates the metrics endpoint: the body must be valid
	// Prometheus text exposition and carry the bank-contention counters.
	if body, err := client.Metrics(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "nexusbench serve: metrics: %v\n", err)
		exit = 1
	} else if n, err := obs.ValidatePrometheus(body); err != nil {
		fmt.Fprintf(os.Stderr, "nexusbench serve: metrics: malformed exposition: %v\n", err)
		exit = 1
	} else if !strings.Contains(body, "nexuspp_bank_acquisitions_total") {
		fmt.Fprintf(os.Stderr, "nexusbench serve: metrics: bank-contention counters missing\n")
		exit = 1
	} else {
		fmt.Printf("metrics: %d samples, exposition valid\n", n)
	}
	total := uint64(*clients) * uint64(*tasks)
	fmt.Printf("total: %d tasks across %d sessions in %v (%.0f tasks/s)\n",
		total, *clients, wall.Round(time.Millisecond), float64(total)/wall.Seconds())
	if exit == 0 {
		fmt.Println("serve smoke: PASS")
	} else {
		fmt.Println("serve smoke: FAIL")
	}
	return exit
}
