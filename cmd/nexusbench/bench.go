package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"nexuspp/internal/backend"
)

// benchCmd records the PR-over-PR performance trajectory: a fixed sweep of
// the executing engines (single-resolver maestro vs the sharded runtime)
// replaying traced workloads with zero-cost bodies, so the numbers measure
// pure dependency-resolution and scheduling throughput. Results land in a
// stable JSON schema (BENCH_<pr>.json files are committed per PR).
func benchCmd(args []string) int {
	fs := flag.NewFlagSet("nexusbench bench", flag.ExitOnError)
	var (
		out    = fs.String("out", "", "output JSON path (default stdout)")
		seed   = fs.Uint64("seed", 42, "trace generator seed")
		repeat = fs.Int("repeat", 3, "runs per point; the best (highest throughput) is kept")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "nexusbench bench: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	type point struct {
		Backend   string  `json:"backend"`
		Workload  string  `json:"workload"`
		Workers   int     `json:"workers"`
		ZeroCost  bool    `json:"zerocost"`
		Tasks     uint64  `json:"tasks"`
		WallNS    int64   `json:"wall_ns"`
		TasksPerS float64 `json:"tasks_per_s"`
		Repeat    int     `json:"repeat"`
	}
	type doc struct {
		Schema     string  `json:"schema"`
		RecordedAt string  `json:"recorded_at"`
		Go         string  `json:"go"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		Seed       uint64  `json:"seed"`
		Runs       []point `json:"runs"`
	}

	backends := []string{"maestro", "runtime"}
	workloads := []string{"wavefront", "starpu_deps"}
	workerCounts := []int{2, 4, 8}

	d := doc{
		Schema:     "nexusbench/bench/v1",
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       *seed,
	}
	for _, wname := range workloads {
		wl, err := backend.LookupWorkload(wname)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench bench: %v\n", err)
			return 2
		}
		for _, bname := range backends {
			b, err := backend.Lookup(bname)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nexusbench bench: %v\n", err)
				return 2
			}
			for _, workers := range workerCounts {
				best := point{Backend: bname, Workload: wname, Workers: workers, ZeroCost: true, Repeat: *repeat}
				for r := 0; r < *repeat; r++ {
					rep, err := b.Run(context.Background(),
						backend.Config{Workers: workers, ZeroCost: true}, wl.New(*seed))
					if err != nil {
						fmt.Fprintf(os.Stderr, "nexusbench bench: %s/%s w=%d: %v\n", bname, wname, workers, err)
						return 1
					}
					if tp := rep.Throughput(); best.TasksPerS == 0 || tp > best.TasksPerS {
						best.Tasks = rep.TasksExecuted
						best.WallNS = rep.Wall.Nanoseconds()
						best.TasksPerS = tp
					}
				}
				fmt.Fprintf(os.Stderr, "bench: %-8s %-12s workers=%d  %8.0f tasks/s\n",
					bname, wname, workers, best.TasksPerS)
				d.Runs = append(d.Runs, best)
			}
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench bench: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		fmt.Fprintf(os.Stderr, "nexusbench bench: %v\n", err)
		return 1
	}
	if *out != "" {
		fmt.Printf("wrote %s (%d points)\n", *out, len(d.Runs))
	}
	return 0
}
