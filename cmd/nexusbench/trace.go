package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"nexuspp/internal/backend"
	"nexuspp/internal/obs"
	"nexuspp/internal/starss"
)

// traceCmd replays one workload on the instrumented executing runtime and
// writes the drained lifecycle event log as Chrome trace-viewer JSON
// (loadable in chrome://tracing and ui.perfetto.dev). Only the sharded
// runtime backend emits events, so -backend accepts only "runtime".
func traceCmd(args []string) int {
	fs := flag.NewFlagSet("nexusbench trace", flag.ExitOnError)
	var (
		backendName = fs.String("backend", "runtime", "backend to trace (only 'runtime' emits events)")
		workName    = fs.String("workload", "wavefront", "workload name (see 'nexusbench list')")
		out         = fs.String("o", "trace.json", "output path for the Chrome trace")
		workers     = fs.Int("workers", 4, "worker goroutines")
		shards      = fs.Int("shards", 0, "dependency-table banks (0 default)")
		seed        = fs.Uint64("seed", 42, "trace generator seed")
		zerocost    = fs.Bool("zerocost", false, "empty task bodies (pure resolver throughput)")
		timescale   = fs.Int("timescale", 100, "divide synthesized body durations (1 = traced timing)")
		buffer      = fs.Int("buffer", 1<<16, "per-worker event ring capacity")
		verify      = fs.Bool("verify", false, "re-parse the written file and fail on invalid JSON (CI smoke)")
	)
	fs.Parse(args)
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "nexusbench trace: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if *backendName != "runtime" {
		fmt.Fprintf(os.Stderr, "nexusbench trace: backend %q does not emit lifecycle events (only 'runtime' does)\n", *backendName)
		return 2
	}
	wl, err := backend.LookupWorkload(*workName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nexusbench trace: %v\n", err)
		return 2
	}

	rt := starss.New(starss.Config{
		Workers:      *workers,
		Shards:       *shards,
		EventBuffer:  *buffer,
		BankCounters: true,
	})
	res, err := starss.Replay(context.Background(), rt, wl.New(*seed), starss.ReplayOptions{
		ZeroCost:  *zerocost,
		TimeScale: *timescale,
	})
	if err != nil {
		_ = rt.Close()
		fmt.Fprintf(os.Stderr, "nexusbench trace: replay: %v\n", err)
		return 1
	}
	if err := rt.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "nexusbench trace: close: %v\n", err)
		return 1
	}

	rec := rt.Events()
	events := rec.Drain()
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, events); err != nil {
		fmt.Fprintf(os.Stderr, "nexusbench trace: export: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "nexusbench trace: %v\n", err)
		return 1
	}
	if *verify {
		written, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench trace: verify: %v\n", err)
			return 1
		}
		var doc struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		if err := json.Unmarshal(written, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "nexusbench trace: verify: %s is not valid JSON: %v\n", *out, err)
			return 1
		}
		if len(doc.TraceEvents) == 0 {
			fmt.Fprintf(os.Stderr, "nexusbench trace: verify: %s has no trace events\n", *out)
			return 1
		}
		fmt.Printf("verified: %d trace events parse\n", len(doc.TraceEvents))
	}
	st := res.Stats
	fmt.Printf("traced %s on runtime: %d tasks in %v, %d events (%d dropped), bank acq=%d contended=%d max-queue=%d\n",
		wl.Name, st.Submitted, res.Wall.Round(time.Microsecond), len(events), rec.Dropped(),
		st.BankAcquisitions, st.BankContended, st.BankMaxQueue)
	if rec.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "nexusbench trace: warning: %d events dropped; raise -buffer for a complete timeline\n", rec.Dropped())
	}
	fmt.Printf("wrote %s (%d bytes) — load in chrome://tracing or ui.perfetto.dev\n", *out, buf.Len())
	return 0
}
