// Package nexuspp reproduces "Hardware-Based Task Dependency Resolution for
// the StarSs Programming Model" (Dallou & Juurlink, ICPP Workshops 2012):
// the Nexus++ hardware task-management accelerator, the simulation
// infrastructure used to evaluate it, the baselines it is compared against,
// and a real executing StarSs-style task runtime built on the same
// dependency-resolution algorithm, with the dependence table sharded into
// lock-striped banks so independent keys resolve concurrently.
//
// The package itself is a thin facade over the internal packages; see
// README.md for the architecture and DESIGN.md for the paper-to-code map.
//
// One API, five engines: every execution engine — the Nexus++ simulator,
// the original-Nexus simulator, the software-RTS model, the executing
// sharded runtime and the single-maestro baseline — sits behind the same
// Backend interface and returns the same Report shape, so any workload can
// be compared across all of them:
//
//	for _, b := range nexuspp.Backends() {
//		rep, err := b.Run(ctx, nexuspp.BackendConfig{Workers: 16}, nexuspp.Wavefront(42))
//		if err != nil { // the original Nexus may reject a workload outright
//			fmt.Println(b.Name(), "FAILS:", err)
//			continue
//		}
//		fmt.Println(rep.Backend, rep.TasksExecuted, rep.Span())
//	}
//
// The executing engines replay the traced workload for real: each traced
// task becomes a Go closure whose dependencies are the trace's parameter
// list and whose body is synthesized from the trace's timing (or empty
// under BackendConfig.ZeroCost), so the real runtime's schedules can be
// cross-validated against the oracle and the simulators on the paper's own
// workloads. Custom traces run through nexuspp.FromSpecs.
//
// Simulating Nexus++ directly (full hardware-parameter control):
//
//	cfg := nexuspp.DefaultConfig(64)            // 64 worker cores, Table IV defaults
//	res, err := nexuspp.Simulate(cfg, nexuspp.Wavefront(42))
//	fmt.Println(res.Makespan, res.CoreUtilization)
//
// Running real Go tasks with StarSs semantics:
//
//	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{
//		Workers: 8,
//		Shards:  64, // dependency-table banks; 0 = default, 1 = single bank
//	})
//	producer, _ := rt.Submit(ctx, nexuspp.Task{
//		Deps: []nexuspp.Dep{nexuspp.Out("block")},
//		Do:   func(ctx context.Context) error { return produce(ctx) },
//	})
//	consumer, _ := rt.Submit(ctx, nexuspp.Task{
//		Deps: []nexuspp.Dep{nexuspp.In("block")},
//		Do:   func(ctx context.Context) error { return consume(ctx) },
//	})
//	<-consumer.Done()          // per-task completion, the paper's task IDs
//	err := consumer.Err()      // wraps ErrDependencyFailed if producer failed
//	err = rt.Wait(ctx)         // barrier; returns the first root-cause failure
//	err = rt.Close()           // drain, stop, report the first failure
//	_ = producer
//
// Every submission returns a *Handle — the software analogue of the task
// IDs the Nexus++ hardware assigns and tracks. Task bodies take a context
// and may fail; a failed, panicking or cancelled task poisons its
// transitive dependents, which are skipped (never run) while the
// dependence table drains normally. Batches of tasks can be admitted under
// one bank acquisition with rt.SubmitAll(ctx, []nexuspp.Task{...}), which
// amortises locking on high-frequency submission paths.
package nexuspp
