// Package nexuspp reproduces "Hardware-Based Task Dependency Resolution for
// the StarSs Programming Model" (Dallou & Juurlink, ICPP Workshops 2012):
// the Nexus++ hardware task-management accelerator, the simulation
// infrastructure used to evaluate it, the baselines it is compared against,
// and a real executing StarSs-style task runtime built on the same
// dependency-resolution algorithm, with the dependence table sharded into
// lock-striped banks so independent keys resolve concurrently.
//
// The package itself is a thin facade over the internal packages; see
// README.md for the architecture and DESIGN.md for the paper-to-code map.
//
// Simulating Nexus++:
//
//	cfg := nexuspp.DefaultConfig(64)            // 64 worker cores, Table IV defaults
//	res, err := nexuspp.Simulate(cfg, nexuspp.Wavefront(42))
//	fmt.Println(res.Makespan, res.CoreUtilization)
//
// Running real Go tasks with StarSs semantics:
//
//	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{
//		Workers: 8,
//		Shards:  64, // dependency-table banks; 0 = default, 1 = single bank
//	})
//	rt.MustSubmit(nexuspp.Task{
//		Deps: []nexuspp.Dep{nexuspp.Out("block")},
//		Run:  func() { produce() },
//	})
//	rt.MustSubmit(nexuspp.Task{
//		Deps: []nexuspp.Dep{nexuspp.In("block")},
//		Run:  func() { consume() },
//	})
//	rt.Shutdown()
//
// Batches of tasks can be admitted under one bank acquisition with
// rt.SubmitAll([]nexuspp.Task{...}), which amortises locking on
// high-frequency submission paths.
package nexuspp
