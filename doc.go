// Package nexuspp reproduces "Hardware-Based Task Dependency Resolution for
// the StarSs Programming Model" (Dallou & Juurlink, ICPP Workshops 2012):
// the Nexus++ hardware task-management accelerator, the simulation
// infrastructure used to evaluate it, the baselines it is compared against,
// and a real executing StarSs-style task runtime built on the same
// dependency-resolution algorithm, with the dependence table sharded into
// lock-striped banks so independent keys resolve concurrently.
//
// The package itself is a thin facade over the internal packages; see
// README.md for the architecture and DESIGN.md for the paper-to-code map.
//
// Simulating Nexus++:
//
//	cfg := nexuspp.DefaultConfig(64)            // 64 worker cores, Table IV defaults
//	res, err := nexuspp.Simulate(cfg, nexuspp.Wavefront(42))
//	fmt.Println(res.Makespan, res.CoreUtilization)
//
// Running real Go tasks with StarSs semantics:
//
//	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{
//		Workers: 8,
//		Shards:  64, // dependency-table banks; 0 = default, 1 = single bank
//	})
//	producer, _ := rt.Submit(ctx, nexuspp.Task{
//		Deps: []nexuspp.Dep{nexuspp.Out("block")},
//		Do:   func(ctx context.Context) error { return produce(ctx) },
//	})
//	consumer, _ := rt.Submit(ctx, nexuspp.Task{
//		Deps: []nexuspp.Dep{nexuspp.In("block")},
//		Do:   func(ctx context.Context) error { return consume(ctx) },
//	})
//	<-consumer.Done()          // per-task completion, the paper's task IDs
//	err := consumer.Err()      // wraps ErrDependencyFailed if producer failed
//	err = rt.Wait(ctx)         // barrier; returns the first root-cause failure
//	err = rt.Close()           // drain, stop, report the first failure
//	_ = producer
//
// Every submission returns a *Handle — the software analogue of the task
// IDs the Nexus++ hardware assigns and tracks. Task bodies take a context
// and may fail; a failed, panicking or cancelled task poisons its
// transitive dependents, which are skipped (never run) while the
// dependence table drains normally. Batches of tasks can be admitted under
// one bank acquisition with rt.SubmitAll(ctx, []nexuspp.Task{...}), which
// amortises locking on high-frequency submission paths.
package nexuspp
