package nexuspp_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"nexuspp"
)

func TestFacadeSimulation(t *testing.T) {
	cfg := nexuspp.DefaultConfig(4)
	res, err := nexuspp.Simulate(cfg, nexuspp.GaussianElimination(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksExecuted == 0 || res.Makespan <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	for _, src := range []nexuspp.Source{
		nexuspp.Independent(1),
		nexuspp.Wavefront(1),
		nexuspp.HorizontalChains(1),
		nexuspp.VerticalChains(1),
	} {
		if src.Total() != 8160 {
			t.Errorf("%s Total = %d, want 8160", src.Name(), src.Total())
		}
	}
	if got := nexuspp.GaussianElimination(250).Total(); got != 31374 {
		t.Errorf("gaussian-250 Total = %d, want 31374 (Table II)", got)
	}
}

func TestFacadeOracle(t *testing.T) {
	g := nexuspp.Oracle(nexuspp.VerticalChains(1))
	a := g.Analyze()
	// 68 column chains: max width 68.
	if a.MaxWidth != 68 {
		t.Errorf("vertical max width = %d, want 68", a.MaxWidth)
	}
}

func TestFacadeRuntime(t *testing.T) {
	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{Workers: 2})
	var order []string
	var n atomic.Int64
	rt.MustSubmit(nexuspp.Task{
		Deps: []nexuspp.Dep{nexuspp.Out("x")},
		Do:   func(context.Context) error { order = append(order, "w"); n.Add(1); return nil },
	})
	rt.MustSubmit(nexuspp.Task{
		Deps: []nexuspp.Dep{nexuspp.In("x"), nexuspp.InOut("y")},
		Do:   func(context.Context) error { order = append(order, "r"); n.Add(1); return nil },
	})
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 2 || order[0] != "w" || order[1] != "r" {
		t.Fatalf("order = %v", order)
	}
}

func TestFacadeErrorPropagation(t *testing.T) {
	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{Workers: 2})
	boom := errors.New("boom")
	fail, err := rt.Submit(context.Background(), nexuspp.Task{
		Name: "producer",
		Deps: []nexuspp.Dep{nexuspp.Out("x")},
		Do:   func(context.Context) error { return boom },
	})
	if err != nil {
		t.Fatal(err)
	}
	dep := rt.MustSubmit(nexuspp.Task{
		Deps: []nexuspp.Dep{nexuspp.In("x")},
		Do:   func(context.Context) error { t.Error("dependent of failed producer ran"); return nil },
	})
	if err := rt.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want root cause", err)
	}
	if !errors.Is(fail.Err(), boom) {
		t.Errorf("producer handle = %v", fail.Err())
	}
	if !errors.Is(dep.Err(), nexuspp.ErrDependencyFailed) || !errors.Is(dep.Err(), boom) {
		t.Errorf("dependent handle = %v", dep.Err())
	}
	if st := rt.Stats(); st.Failed != 1 || st.Skipped != 1 {
		t.Errorf("stats = %v", st)
	}
	if err := rt.Close(); !errors.Is(err, boom) {
		t.Errorf("Close = %v", err)
	}
	if err := rt.Wait(context.Background()); !errors.Is(err, nexuspp.ErrRuntimeStopped) {
		t.Errorf("Wait after Close = %v, want ErrRuntimeStopped", err)
	}
}

// ExampleSimulate runs the paper's Gaussian elimination workload on a
// simulated 16-core Nexus++ system.
func ExampleSimulate() {
	cfg := nexuspp.DefaultConfig(16)
	res, err := nexuspp.Simulate(cfg, nexuspp.GaussianElimination(50))
	if err != nil {
		panic(err)
	}
	fmt.Println("tasks executed:", res.TasksExecuted)
	// Output:
	// tasks executed: 1274
}

// ExampleNewRuntime executes real Go closures under StarSs dataflow
// semantics on the sharded runtime: the consumer is only released once
// the producer's output is visible.
func ExampleNewRuntime() {
	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{
		Workers: 4,
		Shards:  8, // dependency-table banks; 0 selects a default
	})
	var block int
	rt.MustSubmit(nexuspp.Task{
		Deps: []nexuspp.Dep{nexuspp.Out("block")},
		Do:   func(context.Context) error { block = 41; return nil },
	})
	rt.MustSubmit(nexuspp.Task{
		Deps: []nexuspp.Dep{nexuspp.InOut("block")},
		//nexusvet:ignore norun this Example is the documented legacy-adapter demo; everything else uses Do
		Run: func() { block++ }, // the legacy Run form still works
	})
	if err := rt.Wait(context.Background()); err != nil {
		panic(err)
	}
	fmt.Println("block:", block)
	rt.Close()
	// Output:
	// block: 42
}

// ExampleHandle shows the typed task handles — the software analogue of
// the paper's hardware task IDs: each submission returns a *Handle whose
// Done/Err report the task's outcome, and a failed task poisons its
// transitive dependents, which are skipped with ErrDependencyFailed
// wrapping the root cause.
func ExampleHandle() {
	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{Workers: 2})
	producer, _ := rt.Submit(context.Background(), nexuspp.Task{
		Name: "producer",
		Deps: []nexuspp.Dep{nexuspp.Out("data")},
		Do: func(context.Context) error {
			return errors.New("disk on fire")
		},
	})
	consumer, _ := rt.Submit(context.Background(), nexuspp.Task{
		Name: "consumer",
		Deps: []nexuspp.Dep{nexuspp.In("data")},
		Do:   func(context.Context) error { return nil }, // never runs
	})
	<-consumer.Done()
	fmt.Println("producer:", producer.Err())
	fmt.Println("consumer skipped:", errors.Is(consumer.Err(), nexuspp.ErrDependencyFailed))
	fmt.Println("root cause kept:", errors.Is(consumer.Err(), producer.Err()))
	fmt.Println("close:", rt.Close())
	// Output:
	// producer: disk on fire
	// consumer skipped: true
	// root cause kept: true
	// close: disk on fire
}

// ExampleRuntime_SubmitAll admits a whole batch of independent tasks under
// one bank acquisition and waits for the results.
func ExampleRuntime_SubmitAll() {
	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{Workers: 4})
	squares := make([]int, 5)
	tasks := make([]nexuspp.Task, len(squares))
	for i := range tasks {
		i := i
		tasks[i] = nexuspp.Task{
			Deps: []nexuspp.Dep{nexuspp.Out(i)},
			Do:   func(context.Context) error { squares[i] = i * i; return nil },
		}
	}
	handles, err := rt.SubmitAll(context.Background(), tasks)
	if err != nil {
		panic(err)
	}
	for _, h := range handles {
		if err := h.Wait(context.Background()); err != nil {
			panic(err)
		}
	}
	fmt.Println(squares)
	rt.Close()
	// Output:
	// [0 1 4 9 16]
}

func TestSimulationMatchesOracleBound(t *testing.T) {
	// No simulated schedule may beat the critical path.
	src := nexuspp.Wavefront(9)
	an := nexuspp.Oracle(src).Analyze()
	res, err := nexuspp.Simulate(nexuspp.DefaultConfig(256), nexuspp.Wavefront(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < an.CriticalPath {
		t.Fatalf("makespan %v beats the critical path %v", res.Makespan, an.CriticalPath)
	}
}

func TestFacadeBackendRegistry(t *testing.T) {
	all := nexuspp.Backends()
	if len(all) != 5 {
		t.Fatalf("Backends() returned %d engines, want 5", len(all))
	}
	for _, b := range all {
		if _, err := nexuspp.LookupBackend(b.Name()); err != nil {
			t.Errorf("LookupBackend(%q): %v", b.Name(), err)
		}
	}
	if _, err := nexuspp.LookupBackend("no-such-engine"); err == nil {
		t.Error("LookupBackend(no-such-engine) succeeded")
	}
	if _, err := nexuspp.LookupWorkload("wavefront"); err != nil {
		t.Errorf("LookupWorkload(wavefront): %v", err)
	}
}

func TestFacadeFromSpecs(t *testing.T) {
	specs := []nexuspp.TaskSpec{
		{ID: 0, Params: []nexuspp.Param{{Addr: 8, Size: 4, Mode: nexuspp.WriteOnly}}, Exec: 100},
		{ID: 1, Params: []nexuspp.Param{{Addr: 8, Size: 4, Mode: nexuspp.ReadWrite}}, Exec: 100},
	}
	src := nexuspp.FromSpecs("", specs)
	if src.Name() != "custom" {
		t.Errorf("Name = %q, want custom", src.Name())
	}
	if src.Total() != 2 {
		t.Errorf("Total = %d", src.Total())
	}
	g := nexuspp.Oracle(nexuspp.FromSpecs("pair", specs))
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want the RAW edge", g.NumEdges())
	}
	b, err := nexuspp.LookupBackend("runtime")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := b.Run(context.Background(),
		nexuspp.BackendConfig{Workers: 2, ZeroCost: true}, nexuspp.FromSpecs("pair", specs))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksExecuted != 2 {
		t.Errorf("TasksExecuted = %d, want 2", rep.TasksExecuted)
	}
}
