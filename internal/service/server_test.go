package service_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"nexuspp/internal/service"
)

// The suite drives a real in-process nexusd — service.Server behind an
// httptest listener, exercised through the public client — so every test is
// an end-to-end pass over the wire format, the admission path, and the
// shared runtime.

type testDaemon struct {
	srv    *service.Server
	http   *httptest.Server
	client *service.Client
}

func startDaemon(t *testing.T, cfg service.Config) *testDaemon {
	t.Helper()
	srv := service.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	tr := &http.Transport{}
	t.Cleanup(func() {
		hs.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("service close: %v", err)
		}
		tr.CloseIdleConnections()
	})
	c := service.NewClient(hs.URL)
	c.HTTP = &http.Client{Transport: tr}
	return &testDaemon{srv: srv, http: hs, client: c}
}

func specOn(addr uint64, mode string, execUS int64) service.TaskSpec {
	return service.TaskSpec{Params: []service.Param{{Addr: addr, Size: 64, Mode: mode}}, ExecUS: execUS}
}

// TestServiceSessionIsolationIdenticalKeys is the HTTP-level form of the
// multi-tenant invariant: two sessions writing the same address must never
// order against each other. Session A holds addr 7 with a long-running
// writer; session B's writer on the identical address must finish while A's
// is still in flight.
func TestServiceSessionIsolationIdenticalKeys(t *testing.T) {
	d := startDaemon(t, service.Config{Workers: 4, BufferingDepth: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	a, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID {
		t.Fatalf("two sessions share id %s", a.ID)
	}

	const slowUS = 2_000_000 // 2s: long enough that B's result is unambiguous
	slowIDs, err := a.Submit(ctx, []service.TaskSpec{specOn(7, "inout", slowUS)})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	fastIDs, err := b.Submit(ctx, []service.TaskSpec{specOn(7, "inout", 0)})
	if err != nil {
		t.Fatal(err)
	}
	statuses, err := b.Await(ctx, fastIDs)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("session B's writer took %v: it queued behind session A's writer on the same address", elapsed)
	}
	if statuses[0].State != service.StateOK {
		t.Fatalf("session B task state = %q (%s)", statuses[0].State, statuses[0].Error)
	}

	// A's writer must still be running: same address, different namespace.
	pending, err := a.AwaitOnce(ctx, slowIDs, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if pending.Done || pending.Tasks[0].State != service.StatePending {
		t.Fatalf("session A's slow writer finished implausibly early: %+v", pending.Tasks[0])
	}

	if _, err := a.Await(ctx, slowIDs); err != nil {
		t.Fatal(err)
	}
	for s, want := range map[*service.Session]string{a: "A", b: "B"} {
		st, err := s.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Executed != 1 || st.Failed != 0 || st.Skipped != 0 {
			t.Errorf("session %s stats = %+v, want executed=1", want, st)
		}
	}
}

// TestServiceBackpressure fills one session's window and checks that (a) the
// next submit gets a 429 with Retry-After rather than blocking, (b) another
// session is unaffected, and (c) SubmitWait rides out the backpressure once
// capacity frees up.
func TestServiceBackpressure(t *testing.T) {
	const window = 4
	d := startDaemon(t, service.Config{Workers: 4, SessionWindow: window})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	a, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a.Window != window {
		t.Fatalf("session window = %d, want %d", a.Window, window)
	}

	// A serialized chain on one address: all four occupy the window while
	// only the head can execute, so the window stays full for ~4 × exec.
	chain := make([]service.TaskSpec, window)
	for i := range chain {
		chain[i] = specOn(1, "inout", 400_000)
	}
	chainIDs, err := a.Submit(ctx, chain)
	if err != nil {
		t.Fatal(err)
	}

	_, err = a.Submit(ctx, []service.TaskSpec{specOn(2, "inout", 0)})
	var bp *service.BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("submit into a full window returned %v, want BackpressureError", err)
	}
	if bp.RetryAfter <= 0 {
		t.Errorf("BackpressureError.RetryAfter = %v, want > 0", bp.RetryAfter)
	}

	// A full session must not stall anyone else.
	b, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bIDs, err := b.Submit(ctx, []service.TaskSpec{specOn(1, "inout", 0), specOn(2, "inout", 0)})
	if err != nil {
		t.Fatalf("second session rejected while first is saturated: %v", err)
	}
	if sts, err := b.Await(ctx, bIDs); err != nil {
		t.Fatal(err)
	} else {
		for _, st := range sts {
			if st.State != service.StateOK {
				t.Fatalf("session B task %d state = %q while session A saturated", st.ID, st.State)
			}
		}
	}

	// The retrying submit gets in once the chain head completes.
	extraIDs, retries, err := a.SubmitWait(ctx, []service.TaskSpec{specOn(2, "inout", 0)})
	if err != nil {
		t.Fatal(err)
	}
	if retries == 0 {
		t.Log("note: window freed before the first retry; backpressure already proven above")
	}
	if sts, err := a.Await(ctx, append(chainIDs, extraIDs...)); err != nil {
		t.Fatal(err)
	} else {
		for _, st := range sts {
			if st.State != service.StateOK {
				t.Fatalf("task %d state = %q (%s)", st.ID, st.State, st.Error)
			}
		}
	}
	st, err := a.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Executed != window+1 || st.InFlight != 0 {
		t.Errorf("session A stats = %+v, want executed=%d in_flight=0", st, window+1)
	}
}

// TestServiceDrainOnSessionClose kills a client mid-graph: closing the
// session cancels its unstarted tasks, poisoning unwinds the rest of its
// chain, the shared runtime drains, and new sessions keep working.
func TestServiceDrainOnSessionClose(t *testing.T) {
	d := startDaemon(t, service.Config{Workers: 4, SessionWindow: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	a, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Serialized 50 × 200ms = 10s of work if run to completion.
	chain := make([]service.TaskSpec, 50)
	for i := range chain {
		chain[i] = specOn(3, "inout", 200_000)
	}
	if _, err := a.Submit(ctx, chain); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// The drain must finish in a fraction of the full chain's runtime: the
	// in-flight head sees cancellation, everything behind it is skipped.
	deadline := time.Now().Add(5 * time.Second)
	for {
		dbg, err := d.client.Debug(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if dbg.Runtime.InFlight == 0 {
			if dbg.Sessions != 0 {
				t.Errorf("closed session still listed in /debug (%d sessions)", dbg.Sessions)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("runtime did not drain after session close: %d still in flight", dbg.Runtime.InFlight)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The shared resolver is not wedged: a fresh session on the same
	// address completes normally.
	b, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := b.Submit(ctx, []service.TaskSpec{specOn(3, "inout", 0), specOn(3, "inout", 0)})
	if err != nil {
		t.Fatal(err)
	}
	sts, err := b.Await(ctx, ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if st.State != service.StateOK {
			t.Fatalf("post-drain task %d state = %q (%s)", st.ID, st.State, st.Error)
		}
	}
}

// TestServiceSessionExpiry covers the vanished-client path: an idle session
// is reaped by the janitor and later requests see 404.
func TestServiceSessionExpiry(t *testing.T) {
	d := startDaemon(t, service.Config{SessionTTL: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	s, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Poll /debug (not the session: that would refresh its idle clock).
		dbg, err := d.client.Debug(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if dbg.Sessions == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session was never reaped")
		}
		time.Sleep(100 * time.Millisecond)
	}
	_, err = s.Stats(ctx)
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("stats on an expired session returned %v, want 404", err)
	}
}

// TestServiceRequestValidation sweeps the client-error surface: unknown
// sessions, empty and oversized batches, bad parameter modes, and the
// session cap.
func TestServiceRequestValidation(t *testing.T) {
	const window = 4
	d := startDaemon(t, service.Config{SessionWindow: window, MaxSessions: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	wantStatus := func(err error, status int, what string) {
		t.Helper()
		var apiErr *service.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != status {
			t.Fatalf("%s returned %v, want HTTP %d", what, err, status)
		}
	}

	ghost := d.client.Session("no-such-session")
	_, err := ghost.Stats(ctx)
	wantStatus(err, http.StatusNotFound, "stats on unknown session")

	s, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Submit(ctx, nil)
	wantStatus(err, http.StatusBadRequest, "empty submit")

	_, err = s.Submit(ctx, []service.TaskSpec{{Name: "bad", Params: []service.Param{{Addr: 1, Mode: "rw"}}}})
	wantStatus(err, http.StatusBadRequest, "unknown param mode")

	over := make([]service.TaskSpec, window+1)
	for i := range over {
		over[i] = specOn(uint64(i), "out", 0)
	}
	_, err = s.Submit(ctx, over)
	wantStatus(err, http.StatusBadRequest, "batch larger than the session window")

	_, err = s.Await(ctx, []uint64{999})
	wantStatus(err, http.StatusBadRequest, "await on unknown task id")

	if _, err := d.client.Open(ctx); err != nil {
		t.Fatal(err)
	}
	_, err = d.client.Open(ctx)
	wantStatus(err, http.StatusServiceUnavailable, "session beyond MaxSessions")
}

// TestServiceFailurePropagation checks the wire-level split of failed vs
// skipped: a cancelled-body task fails, its in-order dependent is skipped,
// and both are classified in the session stats.
func TestServiceFailurePropagation(t *testing.T) {
	d := startDaemon(t, service.Config{Workers: 2, SessionWindow: 16})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	s, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// A long head plus a dependent, then close the session: the head's
	// body is cancelled (failed), the dependent is poisoned (skipped).
	if _, err := s.Submit(ctx, []service.TaskSpec{specOn(9, "inout", 5_000_000), specOn(9, "inout", 0)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		dbg, err := d.client.Debug(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if dbg.Runtime.InFlight == 0 {
			if got := dbg.Runtime.Failed + dbg.Runtime.Skipped; got != 2 {
				t.Fatalf("runtime failed+skipped = %d after drain, want 2", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain did not complete")
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestServiceMultiClientStress is the -race soak: several concurrent
// clients hammer one in-process daemon with overlapping addresses, retrying
// through backpressure, and every session must account for exactly its own
// tasks. Afterwards the daemon shuts down without leaking goroutines.
func TestServiceMultiClientStress(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv := service.New(service.Config{Workers: 4, SessionWindow: 32, MaxSessions: 16})
	hs := httptest.NewServer(srv.Handler())
	tr := &http.Transport{}
	client := service.NewClient(hs.URL)
	client.HTTP = &http.Client{Transport: tr}

	const (
		clients       = 4
		tasksPerBatch = 16
		batches       = 12
		total         = tasksPerBatch * batches
	)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			s, err := client.Open(ctx)
			if err != nil {
				errCh <- err
				return
			}
			modes := []string{"in", "out", "inout"}
			for b := 0; b < batches; b++ {
				batch := make([]service.TaskSpec, tasksPerBatch)
				for i := range batch {
					// Eight addresses shared by every client: heavy
					// same-address traffic across namespaces.
					batch[i] = specOn(uint64(rng.Intn(8)), modes[rng.Intn(len(modes))], 0)
				}
				if _, _, err := s.SubmitWait(ctx, batch); err != nil {
					errCh <- fmt.Errorf("submit batch %d: %w", b, err)
					return
				}
			}
			sts, err := s.Await(ctx, nil)
			if err != nil {
				errCh <- err
				return
			}
			for _, st := range sts {
				if st.State != service.StateOK {
					errCh <- fmt.Errorf("task %d state %q: %s", st.ID, st.State, st.Error)
					return
				}
			}
			stat, err := s.Stats(ctx)
			if err != nil {
				errCh <- err
				return
			}
			if stat.Executed != total || stat.Submitted != total || stat.InFlight != 0 {
				errCh <- fmt.Errorf("session %s stats = %+v, want %d/%d executed", s.ID, stat, total, total)
				return
			}
			errCh <- s.Close(ctx)
		}(int64(c + 1))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Error(err)
		}
	}

	hs.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("service close: %v", err)
	}
	tr.CloseIdleConnections()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after shutdown: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
