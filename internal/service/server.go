package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"nexuspp/internal/faults"
	"nexuspp/internal/obs"
	"nexuspp/internal/starss"
)

// Config parameterises a Server.
type Config struct {
	// Workers is the shared runtime's worker-goroutine count; 0 selects
	// GOMAXPROCS.
	Workers int
	// Shards is the shared runtime's dependency-table bank count; 0 selects
	// the runtime default scaled to Workers.
	Shards int
	// BufferingDepth is each worker's local ready-task buffer depth; 0
	// selects the runtime default. Depth 1 disables prefetching, trading
	// dispatch overlap for strict readiness ordering.
	BufferingDepth int
	// Window is the shared runtime's global in-flight window. 0 derives it
	// from MaxSessions*SessionWindow (capped at 262144), so per-session
	// admission control fills before the global window can block a submit.
	Window int
	// SessionWindow is each session's admission window: the maximum number
	// of in-flight tasks before submits get 429. 0 selects 256.
	SessionWindow int
	// SessionTTL is the idle time after which a session is reaped and
	// drained (the vanished-client path). 0 selects 2 minutes.
	SessionTTL time.Duration
	// MaxSessions bounds the number of live sessions; creation beyond it
	// gets 503. 0 selects 256.
	MaxSessions int
	// ShedRatio is the global window occupancy fraction beyond which the
	// server sheds new submits with 503 + Retry-After instead of letting
	// them run the window to saturation. 0 selects 0.9; negative disables
	// shedding (submits then only see per-session 429 backpressure).
	ShedRatio float64
	// Faults, when non-nil, injects server-side wire faults (delays,
	// dropped connections) around every request; nil — the default — adds
	// no wrapper and no per-request cost.
	Faults *faults.Injector
}

func (c Config) withDefaults() Config {
	if c.SessionWindow <= 0 {
		c.SessionWindow = 256
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 2 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.Window <= 0 {
		c.Window = c.MaxSessions * c.SessionWindow
		if c.Window > 1<<18 {
			c.Window = 1 << 18
		}
	}
	if c.ShedRatio == 0 {
		c.ShedRatio = 0.9
	}
	return c
}

// Server is the multi-tenant task service: one shared sharded runtime,
// many isolated sessions. Create with New, expose with Handler, and Close
// to drain everything.
type Server struct {
	cfg   Config
	rt    *starss.Runtime
	mux   *http.ServeMux
	start time.Time

	mu       sync.Mutex
	sessions map[string]*session

	// shed counts submits rejected by the overload-shed check, exported
	// through /metrics.
	shed atomic.Uint64
	// shedAt is the precomputed occupancy threshold; <0 disables shedding.
	shedAt int

	janitorStop chan struct{}
	janitorWG   sync.WaitGroup
	closeOnce   sync.Once
}

// New starts the shared runtime and the session janitor.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg: cfg,
		rt: starss.New(starss.Config{
			Workers:        cfg.Workers,
			Shards:         cfg.Shards,
			Window:         cfg.Window,
			BufferingDepth: cfg.BufferingDepth,
			// The service always measures bank contention: /metrics exposes
			// it, and the TryLock fast path keeps the cost a counter bump
			// per acquisition.
			BankCounters: true,
		}),
		start:       time.Now(),
		sessions:    make(map[string]*session),
		janitorStop: make(chan struct{}),
	}
	if cfg.ShedRatio < 0 {
		s.shedAt = -1
	} else {
		s.shedAt = int(cfg.ShedRatio * float64(cfg.Window))
		if s.shedAt < 1 {
			s.shedAt = 1
		}
	}
	s.routes()
	s.janitorWG.Add(1)
	go s.janitor()
	return s
}

// Runtime exposes the shared runtime for in-process callers (tests,
// embedding).
func (s *Server) Runtime() *starss.Runtime { return s.rt }

// Handler returns the HTTP handler serving the service API, wrapped with
// server-side fault injection when Config.Faults is set (a nil injector
// returns the mux unwrapped).
func (s *Server) Handler() http.Handler { return faults.Middleware(s.mux, s.cfg.Faults) }

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /debug", s.handleDebug)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreateSession)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.withSession(s.handleDeleteSession))
	s.mux.HandleFunc("GET /v1/sessions/{id}/stats", s.withSession(s.handleStats))
	s.mux.HandleFunc("POST /v1/sessions/{id}/submit", s.withSession(s.handleSubmit))
	s.mux.HandleFunc("POST /v1/sessions/{id}/await", s.withSession(s.handleAwait))
}

// janitor reaps sessions idle past the TTL — graceful drain for clients
// that disconnected without a DELETE.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	period := s.cfg.SessionTTL / 4
	if period < time.Second {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-ticker.C:
			s.ReapSessions()
		}
	}
}

// ReapSessions drains every session idle past the TTL or already dead (its
// context cancelled, e.g. by a session deadline) and returns the number
// reaped. The janitor calls it on every tick; tests and the chaos suite
// call it directly to force the expiry race without waiting out a tick.
func (s *Server) ReapSessions() int {
	s.mu.Lock()
	var expired []*session
	for id, ss := range s.sessions {
		if ss.idleFor() > s.cfg.SessionTTL || ss.ctx.Err() != nil {
			expired = append(expired, ss)
			delete(s.sessions, id)
		}
	}
	s.mu.Unlock()
	for _, ss := range expired {
		ss.close(ErrSessionExpired)
	}
	return len(expired)
}

// Close drains every session and shuts the shared runtime down. Task
// failures of drained sessions are a per-client condition, not a server
// fault; Close reports only infrastructure state.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.janitorStop)
		s.mu.Lock()
		sessions := make([]*session, 0, len(s.sessions))
		for id, ss := range s.sessions {
			sessions = append(sessions, ss)
			delete(s.sessions, id)
		}
		s.mu.Unlock()
		for _, ss := range sessions {
			ss.close(ErrSessionClosed)
		}
		// Close waits for the in-flight window to drain; cancelled bodies
		// return promptly, so shutdown is bounded by one task body.
		_ = s.rt.Close()
	})
	s.janitorWG.Wait()
	return nil
}

// --- HTTP plumbing -------------------------------------------------------

// httpError is a status code plus message, with an optional Retry-After.
type httpError struct {
	code       int
	msg        string
	retryAfter int // seconds; emitted when > 0
}

func badRequest(msg string) *httpError { return &httpError{code: http.StatusBadRequest, msg: msg} }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, e *httpError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", e.retryAfter))
	}
	writeJSON(w, e.code, ErrorResponse{Error: e.msg})
}

// withSession resolves the {id} path segment; the handler only runs for a
// live session, and every hit refreshes the idle clock.
func (s *Server) withSession(h func(http.ResponseWriter, *http.Request, *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		ss, ok := s.sessions[id]
		s.mu.Unlock()
		if !ok {
			writeError(w, &httpError{code: http.StatusNotFound, msg: fmt.Sprintf("unknown session %q", id)})
			return
		}
		ss.touch()
		h(w, r, ss)
	}
}

func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: session id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// --- Handlers ------------------------------------------------------------

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	// The body is optional: an empty body means default options.
	var req CreateSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeError(w, badRequest("create session: invalid JSON: "+err.Error()))
		return
	}
	if req.DeadlineMS < 0 {
		writeError(w, badRequest("create session: negative deadline_ms"))
		return
	}
	s.mu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		writeError(w, &httpError{
			code:       http.StatusServiceUnavailable,
			msg:        fmt.Sprintf("session limit reached (%d)", s.cfg.MaxSessions),
			retryAfter: 5,
		})
		return
	}
	id := newSessionID()
	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	ss := newSession(context.Background(), id, s.rt.Scope(id), s.cfg.SessionWindow, deadline)
	s.sessions[id] = ss
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, SessionInfo{Session: id, Window: ss.window, DeadlineMS: req.DeadlineMS})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request, ss *session) {
	s.mu.Lock()
	delete(s.sessions, ss.id)
	s.mu.Unlock()
	ss.close(ErrSessionClosed)
	writeJSON(w, http.StatusOK, map[string]string{"session": ss.id, "state": "draining"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, ss *session) {
	writeJSON(w, http.StatusOK, ss.stats())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, ss *session) {
	// Overload shed: reject before decoding once the shared window runs
	// close to saturation, so the server degrades with an explicit 503 +
	// Retry-After instead of queueing submits into a saturated window.
	if s.shedAt >= 0 && s.rt.InFlight() >= s.shedAt {
		s.shed.Add(1)
		writeError(w, &httpError{
			code:       http.StatusServiceUnavailable,
			msg:        fmt.Sprintf("server overloaded: %d of %d window slots in flight", s.rt.InFlight(), s.rt.WindowSize()),
			retryAfter: ShedRetryAfterS,
		})
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest("submit: invalid JSON: "+err.Error()))
		return
	}
	resp, herr := ss.submit(req.Tasks, req.IdempotencyKey)
	if herr != nil {
		writeError(w, herr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAwait(w http.ResponseWriter, r *http.Request, ss *session) {
	var req AwaitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, badRequest("await: invalid JSON: "+err.Error()))
		return
	}
	resp, herr := ss.await(r.Context(), req)
	if herr != nil {
		writeError(w, herr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	st := s.rt.Stats()
	s.mu.Lock()
	per := make([]SessionStats, 0, len(s.sessions))
	for _, ss := range s.sessions {
		per = append(per, ss.stats())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, DebugInfo{
		UptimeS:    time.Since(s.start).Seconds(),
		Goroutines: runtime.NumGoroutine(),
		Sessions:   len(per),
		Runtime: RuntimeDebug{
			Submitted:        st.Submitted,
			Executed:         st.Executed,
			Failed:           st.Failed,
			Skipped:          st.Skipped,
			Retried:          st.Retried,
			Hazards:          st.Hazards,
			InFlight:         s.rt.InFlight(),
			QueueDepth:       s.rt.QueueDepth(),
			Window:           s.rt.WindowSize(),
			BankAcquisitions: st.BankAcquisitions,
			BankContended:    st.BankContended,
			BankMaxQueue:     st.BankMaxQueue,
		},
		PerSession: per,
	})
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: the runtime counters /debug reports (window occupancy, queue
// depth, bank contention) plus per-session task outcomes.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.rt.Stats()
	s.mu.Lock()
	per := make([]SessionStats, 0, len(s.sessions))
	for _, ss := range s.sessions {
		per = append(per, ss.stats())
	}
	s.mu.Unlock()

	taskSamples := []obs.Sample{
		{Labels: []obs.Label{{Name: "outcome", Value: "executed"}}, Value: float64(st.Executed)},
		{Labels: []obs.Label{{Name: "outcome", Value: "failed"}}, Value: float64(st.Failed)},
		{Labels: []obs.Label{{Name: "outcome", Value: "skipped"}}, Value: float64(st.Skipped)},
	}
	var sessionTasks, sessionInFlight []obs.Sample
	for _, ss := range per {
		sl := []obs.Label{{Name: "session", Value: ss.Session}}
		for _, o := range []struct {
			outcome string
			v       uint64
		}{{"executed", ss.Executed}, {"failed", ss.Failed}, {"skipped", ss.Skipped}} {
			sessionTasks = append(sessionTasks, obs.Sample{
				Labels: append([]obs.Label{{Name: "outcome", Value: o.outcome}}, sl...),
				Value:  float64(o.v),
			})
		}
		sessionInFlight = append(sessionInFlight, obs.Sample{Labels: sl, Value: float64(ss.InFlight)})
	}

	families := []obs.Metric{
		{Name: "nexuspp_uptime_seconds", Help: "Seconds since the server started.", Type: "gauge",
			Samples: []obs.Sample{{Value: time.Since(s.start).Seconds()}}},
		{Name: "nexuspp_goroutines", Help: "Live goroutines in the process.", Type: "gauge",
			Samples: []obs.Sample{{Value: float64(runtime.NumGoroutine())}}},
		{Name: "nexuspp_sessions", Help: "Live sessions.", Type: "gauge",
			Samples: []obs.Sample{{Value: float64(len(per))}}},
		{Name: "nexuspp_tasks_submitted_total", Help: "Tasks admitted into the shared runtime.", Type: "counter",
			Samples: []obs.Sample{{Value: float64(st.Submitted)}}},
		{Name: "nexuspp_tasks_total", Help: "Completed tasks by outcome.", Type: "counter",
			Samples: taskSamples},
		{Name: "nexuspp_hazards_total", Help: "Tasks that waited on at least one dependence.", Type: "counter",
			Samples: []obs.Sample{{Value: float64(st.Hazards)}}},
		{Name: "nexuspp_tasks_retried_total", Help: "Task attempts re-armed under a retry policy.", Type: "counter",
			Samples: []obs.Sample{{Value: float64(st.Retried)}}},
		{Name: "nexuspp_submits_shed_total", Help: "Submits rejected by the overload shed (503 + Retry-After).", Type: "counter",
			Samples: []obs.Sample{{Value: float64(s.shed.Load())}}},
		{Name: "nexuspp_bank_acquisitions_total", Help: "Dependence-bank lock acquisitions.", Type: "counter",
			Samples: []obs.Sample{{Value: float64(st.BankAcquisitions)}}},
		{Name: "nexuspp_bank_contended_acquisitions_total", Help: "Bank acquisitions that blocked on another holder.", Type: "counter",
			Samples: []obs.Sample{{Value: float64(st.BankContended)}}},
		{Name: "nexuspp_bank_max_queue_depth", Help: "Deepest kick-off list observed on any bank segment.", Type: "gauge",
			Samples: []obs.Sample{{Value: float64(st.BankMaxQueue)}}},
		{Name: "nexuspp_window_occupancy", Help: "In-flight (submitted, unfinished) tasks.", Type: "gauge",
			Samples: []obs.Sample{{Value: float64(s.rt.InFlight())}}},
		{Name: "nexuspp_window_size", Help: "Configured in-flight window capacity.", Type: "gauge",
			Samples: []obs.Sample{{Value: float64(s.rt.WindowSize())}}},
		{Name: "nexuspp_queue_depth", Help: "Ready tasks queued for a worker.", Type: "gauge",
			Samples: []obs.Sample{{Value: float64(s.rt.QueueDepth())}}},
		{Name: "nexuspp_session_tasks_total", Help: "Per-session completed tasks by outcome.", Type: "counter",
			Samples: sessionTasks},
		{Name: "nexuspp_session_in_flight", Help: "Per-session in-flight tasks.", Type: "gauge",
			Samples: sessionInFlight},
	}
	w.Header().Set("Content-Type", obs.PrometheusContentType)
	_ = obs.WritePrometheus(w, families)
}
