package service_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"nexuspp/internal/obs"
	"nexuspp/internal/service"
)

// TestResponseContentTypes pins the content type of every inspection
// endpoint: /debug and JSON API responses are application/json, /metrics is
// the Prometheus text exposition format.
func TestResponseContentTypes(t *testing.T) {
	d := startDaemon(t, service.Config{Workers: 2})
	for _, tc := range []struct {
		path string
		want string
	}{
		{"/debug", "application/json"},
		{"/metrics", obs.PrometheusContentType},
		{"/healthz", "text/plain; charset=utf-8"},
	} {
		resp, err := http.Get(d.http.URL + tc.path)
		if err != nil {
			t.Fatalf("GET %s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", tc.path, resp.StatusCode, body)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.want {
			t.Errorf("GET %s Content-Type = %q, want %q", tc.path, got, tc.want)
		}
	}
}

// TestMetricsExposition runs real work through a session and checks the
// /metrics body is valid Prometheus text carrying the bank-contention
// counters and per-session outcomes.
func TestMetricsExposition(t *testing.T) {
	ctx := context.Background()
	d := startDaemon(t, service.Config{Workers: 2})
	sess, err := d.client.Open(ctx)
	if err != nil {
		t.Fatalf("open session: %v", err)
	}
	// A dependent pair per address: submit path + finish path both acquire
	// banks, so acquisitions are guaranteed nonzero.
	var tasks []service.TaskSpec
	for addr := uint64(1); addr <= 32; addr++ {
		tasks = append(tasks, specOn(addr, "out", 0), specOn(addr, "in", 0))
	}
	ids, err := sess.Submit(ctx, tasks)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if _, err := sess.Await(ctx, ids); err != nil {
		t.Fatalf("await: %v", err)
	}

	body, err := d.client.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	n, err := obs.ValidatePrometheus(body)
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, body)
	}
	if n == 0 {
		t.Fatal("no samples in /metrics")
	}
	for _, want := range []string{
		"# TYPE nexuspp_bank_acquisitions_total counter",
		"# TYPE nexuspp_bank_contended_acquisitions_total counter",
		"# TYPE nexuspp_bank_max_queue_depth gauge",
		"nexuspp_tasks_total{outcome=\"executed\"} 64",
		"nexuspp_session_tasks_total{outcome=\"executed\",session=\"" + sess.ID + "\"} 64",
		"nexuspp_sessions 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
	// The dependence banks were exercised, so the acquisition counter must
	// be live, not just declared.
	if strings.Contains(body, "nexuspp_bank_acquisitions_total 0\n") {
		t.Errorf("bank acquisition counter stayed zero despite submitted work\n%s", body)
	}
}
