// Package service is the long-lived, multi-tenant task service over the
// sharded executing runtime: the software analogue of the paper's hardware
// task manager serving many master cores concurrently. A single shared
// starss.Runtime resolves dependencies for every client, while each client
// session gets an isolated namespace (its own keyspace prefix via
// starss.Scope), its own admission window with 429 backpressure, and its
// own per-session Stats. Sessions drain gracefully on explicit close or
// idle expiry: cancelling the session context fails its unstarted tasks
// and the runtime's poisoning propagates through its graph without ever
// wedging the shared resolver.
//
// The wire format deliberately reuses the traced-task shape of
// internal/trace: a task is a parameter list of (addr, size, mode) plus a
// synthesized execution time, so any traced workload can be shipped to a
// live daemon with a trivial transform (see cmd/nexusbench serve).
package service

import (
	"context"
	"fmt"
	"time"

	"nexuspp/internal/starss"
	"nexuspp/internal/trace"
)

// TaskSpec is one task in a submission request — the JSON projection of
// trace.TaskSpec onto the service API. Keys are the parameter base
// addresses, namespaced per session by the server.
type TaskSpec struct {
	// Name is optional and surfaces in error messages.
	Name string `json:"name,omitempty"`
	// Params is the input/output list; addresses are the dependency keys.
	Params []Param `json:"params"`
	// ExecUS synthesizes the task body: sleep this many microseconds
	// (honouring cancellation). Zero or negative means an empty body.
	ExecUS int64 `json:"exec_us,omitempty"`
	// TimeoutMS bounds each execution attempt of the task body; an attempt
	// exceeding it fails with the runtime's task-timeout error. 0 means no
	// per-task deadline (the session deadline, if any, still applies).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxRetries re-arms a failed body up to this many times (with the
	// runtime's capped exponential backoff) before the failure sticks and
	// poisons dependents. 0 means fail fast.
	MaxRetries int `json:"max_retries,omitempty"`
}

// Param is one entry of a task's input/output list.
type Param struct {
	Addr uint64 `json:"addr"`
	Size uint32 `json:"size,omitempty"`
	// Mode is "in", "out" or "inout" (the StarSs pragma spellings).
	Mode string `json:"mode"`
}

// FromTraceSpec converts a traced task into its wire form, so traced
// workloads can be submitted to a live daemon.
func FromTraceSpec(spec trace.TaskSpec) TaskSpec {
	ts := TaskSpec{
		Params: make([]Param, len(spec.Params)),
		ExecUS: int64(spec.Exec.Microseconds()),
	}
	for i, p := range spec.Params {
		ts.Params[i] = Param{Addr: p.Addr, Size: p.Size, Mode: p.Mode.String()}
	}
	return ts
}

// task converts the wire form into an executable runtime task.
func (ts TaskSpec) task() (starss.Task, error) {
	if len(ts.Params) == 0 {
		return starss.Task{}, fmt.Errorf("task %q has no params", ts.Name)
	}
	deps := make([]starss.Dep, len(ts.Params))
	for i, p := range ts.Params {
		switch p.Mode {
		case "in":
			deps[i] = starss.In(p.Addr)
		case "out":
			deps[i] = starss.Out(p.Addr)
		case "inout":
			deps[i] = starss.InOut(p.Addr)
		default:
			return starss.Task{}, fmt.Errorf("task %q param %d: unknown mode %q (valid: in, out, inout)", ts.Name, i, p.Mode)
		}
	}
	if ts.MaxRetries < 0 || ts.MaxRetries > 16 {
		return starss.Task{}, fmt.Errorf("task %q: max_retries %d out of range [0,16]", ts.Name, ts.MaxRetries)
	}
	t := starss.Task{
		Name:       ts.Name,
		Deps:       deps,
		MaxRetries: ts.MaxRetries,
		Timeout:    time.Duration(ts.TimeoutMS) * time.Millisecond,
	}
	if d := time.Duration(ts.ExecUS) * time.Microsecond; d > 0 {
		t.Do = func(ctx context.Context) error { return sleepFor(ctx, d) }
	} else {
		t.Do = func(ctx context.Context) error { return ctx.Err() }
	}
	return t, nil
}

// sleepFor blocks for d, honouring cancellation — the synthesized task
// body, mirroring the replay adapter's timed bodies.
func sleepFor(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SubmitRequest is the body of POST /v1/sessions/{id}/submit.
type SubmitRequest struct {
	Tasks []TaskSpec `json:"tasks"`
	// IdempotencyKey, when set, makes the submit exactly-once per session:
	// a repeat of a key whose batch was admitted returns the original IDs
	// (Deduped=true) without re-executing anything. Failed submits are not
	// memoized, so a retry after a 429 gets a fresh admission attempt.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// SubmitResponse returns the session-local IDs assigned to the admitted
// tasks, in submission order.
type SubmitResponse struct {
	IDs []uint64 `json:"ids"`
	// Deduped reports that the idempotency key matched an earlier admitted
	// batch and IDs are its original assignment.
	Deduped bool `json:"deduped,omitempty"`
}

// AwaitRequest is the body of POST /v1/sessions/{id}/await. Empty IDs
// means every task the session has submitted so far.
type AwaitRequest struct {
	IDs []uint64 `json:"ids,omitempty"`
	// TimeoutMS bounds the server-side wait; 0 selects 30s, capped at 120s.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Task states reported by await.
const (
	StateOK      = "ok"      // body ran to completion
	StateFailed  = "failed"  // body errored, panicked, or was cancelled
	StateSkipped = "skipped" // a transitive dependency failed
	StatePending = "pending" // not finished within the await timeout
)

// TaskStatus is one task's outcome in an await response.
type TaskStatus struct {
	ID    uint64 `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// AwaitResponse reports the awaited tasks; Done is true when none of them
// is still pending.
type AwaitResponse struct {
	Done  bool         `json:"done"`
	Tasks []TaskStatus `json:"tasks"`
}

// CreateSessionRequest is the optional body of POST /v1/sessions.
type CreateSessionRequest struct {
	// DeadlineMS bounds the session's total lifetime; past it every
	// unstarted task fails and the session drains exactly as on expiry.
	// 0 means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SessionInfo is the response to POST /v1/sessions.
type SessionInfo struct {
	Session string `json:"session"`
	// Window is the session's admission window: the maximum number of
	// in-flight (submitted, unfinished) tasks before submits get 429.
	Window int `json:"window"`
	// DeadlineMS echoes the session deadline, when one was requested.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// SessionStats is the response to GET /v1/sessions/{id}/stats.
type SessionStats struct {
	Session     string `json:"session"`
	Window      int    `json:"window"`
	InFlight    int64  `json:"in_flight"`
	Submitted   uint64 `json:"submitted"`
	Executed    uint64 `json:"executed"`
	Failed      uint64 `json:"failed"`
	Skipped     uint64 `json:"skipped"`
	MaxInFlight int    `json:"max_in_flight"`
}

// ShedRetryAfterS is the Retry-After hint (seconds) carried by a 503
// overload-shed response.
const ShedRetryAfterS = 1

// RuntimeDebug is the shared runtime's slice of the /debug report. The
// bank_* fields are the dependence-bank lock counters (the service enables
// starss.Config.BankCounters), also exported through GET /metrics.
type RuntimeDebug struct {
	Submitted        uint64 `json:"submitted"`
	Executed         uint64 `json:"executed"`
	Failed           uint64 `json:"failed"`
	Skipped          uint64 `json:"skipped"`
	Retried          uint64 `json:"retried"`
	Hazards          uint64 `json:"hazards"`
	InFlight         int    `json:"in_flight"`
	QueueDepth       int    `json:"queue_depth"`
	Window           int    `json:"window"`
	BankAcquisitions uint64 `json:"bank_acquisitions"`
	BankContended    uint64 `json:"bank_contended"`
	BankMaxQueue     uint64 `json:"bank_max_queue"`
}

// DebugInfo is the response to GET /debug: server-wide counters plus one
// entry per live session.
type DebugInfo struct {
	UptimeS    float64        `json:"uptime_s"`
	Goroutines int            `json:"goroutines"`
	Sessions   int            `json:"sessions"`
	Runtime    RuntimeDebug   `json:"runtime"`
	PerSession []SessionStats `json:"per_session"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
