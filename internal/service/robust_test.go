package service_test

// Robustness surface of the service: idempotent submission, session
// deadlines, overload shedding, the client's retry/backoff discipline, and
// the session-expiry race — the failure modes PR 10 hardened, exercised
// end-to-end over the wire like the rest of the suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"nexuspp/internal/service"
)

func TestServiceIdempotentSubmit(t *testing.T) {
	d := startDaemon(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs := []service.TaskSpec{specOn(1, "inout", 0), specOn(2, "inout", 0)}

	ids1, dd1, err := s.SubmitIdem(ctx, "key-a", specs)
	if err != nil || dd1 {
		t.Fatalf("first submit = (%v, deduped=%v), want fresh admission", err, dd1)
	}
	ids2, dd2, err := s.SubmitIdem(ctx, "key-a", specs)
	if err != nil || !dd2 {
		t.Fatalf("repeat submit = (%v, deduped=%v), want dedup hit", err, dd2)
	}
	if len(ids1) != 2 || len(ids2) != 2 || ids1[0] != ids2[0] || ids1[1] != ids2[1] {
		t.Fatalf("repeat IDs %v != original %v", ids2, ids1)
	}
	ids3, dd3, err := s.SubmitIdem(ctx, "key-b", specs)
	if err != nil || dd3 {
		t.Fatalf("new-key submit = (%v, deduped=%v), want fresh admission", err, dd3)
	}
	if ids3[0] == ids1[0] {
		t.Fatal("a different key returned the original IDs")
	}
	if _, err := s.Await(ctx, nil); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Two admissions of two tasks each; the dedup hit executed nothing.
	if st.Executed != 4 {
		t.Errorf("executed = %d, want 4 (the retried batch must not double-execute)", st.Executed)
	}
}

// TestServiceIdempotentSubmitConcurrent races N identical submits on one
// key: exactly one must win admission and the rest must wait for it and
// return its IDs, not race a second execution.
func TestServiceIdempotentSubmitConcurrent(t *testing.T) {
	d := startDaemon(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	specs := []service.TaskSpec{specOn(7, "inout", 1000)}

	const callers = 8
	var wg sync.WaitGroup
	ids := make([][]uint64, callers)
	deduped := make([]bool, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i], deduped[i], errs[i] = s.SubmitIdem(ctx, "shared", specs)
		}(i)
	}
	wg.Wait()

	winners := 0
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !deduped[i] {
			winners++
		}
		if len(ids[i]) != 1 || ids[i][0] != ids[0][0] {
			t.Fatalf("caller %d got IDs %v, want %v", i, ids[i], ids[0])
		}
	}
	if winners != 1 {
		t.Errorf("%d callers won admission, want exactly 1", winners)
	}
	if _, err := s.Await(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if st, err := s.Stats(ctx); err != nil || st.Executed != 1 {
		t.Errorf("stats = (%+v, %v), want executed=1", st, err)
	}
}

// TestServiceIdempotencyFailureNotMemoized: a rejected submit must not
// occupy its key — the client's retry with a corrected batch has to work.
func TestServiceIdempotencyFailureNotMemoized(t *testing.T) {
	d := startDaemon(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bad := []service.TaskSpec{{Params: []service.Param{{Addr: 1, Size: 64, Mode: "bogus"}}}}
	_, _, err = s.SubmitIdem(ctx, "key", bad)
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("bad submit = %v, want 400", err)
	}
	ids, dd, err := s.SubmitIdem(ctx, "key", []service.TaskSpec{specOn(1, "inout", 0)})
	if err != nil || dd || len(ids) != 1 {
		t.Fatalf("retry after rejection = (%v, deduped=%v, ids=%v), want fresh admission", err, dd, ids)
	}
	if _, err := s.Await(ctx, ids); err != nil {
		t.Fatal(err)
	}
}

func TestServiceSessionDeadline(t *testing.T) {
	d := startDaemon(t, service.Config{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := d.client.OpenWithDeadline(ctx, -time.Millisecond); err == nil {
		t.Error("negative deadline accepted, want 400")
	}

	s, err := d.client.OpenWithDeadline(ctx, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s.Submit(ctx, []service.TaskSpec{specOn(1, "inout", 0)})
	if err != nil {
		t.Fatalf("submit before the deadline: %v", err)
	}
	if _, err := s.Await(ctx, ids); err != nil {
		t.Fatal(err)
	}

	time.Sleep(200 * time.Millisecond)
	_, err = s.Submit(ctx, []service.TaskSpec{specOn(2, "inout", 0)})
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGone {
		t.Fatalf("submit past the deadline = %v, want 410", err)
	}

	// The janitor path drains deadline-dead sessions; after the reap the
	// session is gone entirely.
	if n := d.srv.ReapSessions(); n != 1 {
		t.Errorf("ReapSessions = %d, want 1", n)
	}
	_, err = s.Stats(ctx)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("stats after reap = %v, want 404", err)
	}
}

// TestServiceOverloadShed drives the global window past the shed threshold
// and checks submits are refused with 503 + Retry-After instead of being
// allowed to saturate the window.
func TestServiceOverloadShed(t *testing.T) {
	d := startDaemon(t, service.Config{
		Workers: 2, Window: 8, SessionWindow: 64, ShedRatio: 0.5, // sheds at 4 in flight
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s, err := d.client.Open(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Raw POSTs so the Retry-After header is observable.
	submit := func(addr uint64) (status int, retryAfter string) {
		body, _ := json.Marshal(service.SubmitRequest{
			Tasks: []service.TaskSpec{specOn(addr, "inout", 100_000)}, // 100ms body
		})
		resp, err := http.Post(d.http.URL+"/v1/sessions/"+s.ID+"/submit",
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, resp.Header.Get("Retry-After")
	}

	shed := 0
	for i := uint64(0); i < 24; i++ {
		status, retryAfter := submit(0x100 + i)
		switch status {
		case http.StatusOK, http.StatusCreated:
		case http.StatusServiceUnavailable:
			shed++
			if retryAfter == "" {
				t.Error("503 without a Retry-After header")
			}
		default:
			t.Fatalf("submit %d: unexpected status %d", i, status)
		}
	}
	if shed == 0 {
		t.Fatal("24 submits of 100ms tasks against shedAt=4 never shed")
	}
	if _, err := s.Await(ctx, nil); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if int(st.Executed)+shed != 24 || st.Failed != 0 {
		t.Errorf("executed=%d shed=%d failed=%d: admitted work must all execute", st.Executed, shed, st.Failed)
	}
}

// TestServiceSessionExpiryRace is the satellite-3 race: the janitor reaping
// a session while submits and awaits are in flight against it. Whatever the
// interleaving, every call must return promptly with nil or a typed API
// error — never an undecodable response, a double-release panic, or a
// wedge. Run under -race.
func TestServiceSessionExpiryRace(t *testing.T) {
	d := startDaemon(t, service.Config{Workers: 4, SessionTTL: 20 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	okErr := func(err error) bool {
		if err == nil {
			return true
		}
		var apiErr *service.APIError
		var bp *service.BackpressureError
		return errors.As(err, &apiErr) || errors.As(err, &bp) ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	}

	stop := time.Now().Add(500 * time.Millisecond)
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	report := func(err error) {
		if !okErr(err) {
			select {
			case errCh <- err:
			default:
			}
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for time.Now().Before(stop) {
				s, err := d.client.Open(ctx)
				if err != nil {
					report(err)
					continue
				}
				s.RetryBudget = 1
				s.RetryBase = time.Millisecond
				addr := uint64(0x9000 + g)
				ids, _, err := s.SubmitWait(ctx, []service.TaskSpec{specOn(addr, "inout", 500)})
				report(err)
				if err == nil {
					_, err = s.Await(ctx, ids)
					report(err)
				}
				report(s.Close(ctx))
			}
		}(g)
	}
	reapDone := make(chan struct{})
	go func() {
		defer close(reapDone)
		for time.Now().Before(stop) {
			d.srv.ReapSessions()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-reapDone
	select {
	case err := <-errCh:
		t.Fatalf("untyped error escaped the expiry race: %v", err)
	default:
	}
	// The daemon cleanup (startDaemon) closes the server and fails the test
	// if the runtime cannot drain — the no-wedge half of the invariant.
}

// TestClientSubmitWaitBudget pins the satellite-1 contract against a server
// that always sheds: capped backoff, a bounded number of attempts, and a
// prompt typed error once the budget is spent.
func TestClientSubmitWaitBudget(t *testing.T) {
	var hits int
	var mu sync.Mutex
	hs := newStubServer(t, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(service.ErrorResponse{Error: "shedding"})
	})
	s := service.NewClient(hs.URL).Session("x")
	s.RetryBudget = 3
	s.RetryBase = time.Millisecond
	s.RetryMaxBackoff = 2 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	_, retries, err := s.SubmitWait(ctx, []service.TaskSpec{specOn(1, "inout", 0)})
	var apiErr *service.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("exhausted SubmitWait = %v, want 503", err)
	}
	if retries != 3 {
		t.Errorf("retries = %d, want the full budget of 3", retries)
	}
	mu.Lock()
	got := hits
	mu.Unlock()
	if got != 4 {
		t.Errorf("server saw %d attempts, want 4 (1 + budget)", got)
	}
	// Retry-After of 1s caps each backoff at 1s; three sleeps with full
	// jitter must stay well under the 10s context.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("exhaustion took %v", elapsed)
	}
}

// TestClientSubmitWaitCtxCancel: a dying context must cut the backoff sleep
// short rather than serving out the full budget.
func TestClientSubmitWaitCtxCancel(t *testing.T) {
	hs := newStubServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(service.ErrorResponse{Error: "shedding"})
	})
	s := service.NewClient(hs.URL).Session("x")
	s.RetryBase = 4 * time.Second // first backoff alone would exceed the ctx

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := s.SubmitWait(ctx, []service.TaskSpec{specOn(1, "inout", 0)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled SubmitWait = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("SubmitWait outlived its context by %v", elapsed)
	}
}

// TestClientAwaitDeadlineClamp pins the satellite-2 contract: Await's
// server-side poll budget is PollTimeout clamped to the caller's deadline —
// never the old hardcoded 10s — and an expired deadline surfaces as
// DeadlineExceeded without another wire round trip.
func TestClientAwaitDeadlineClamp(t *testing.T) {
	var mu sync.Mutex
	var polls []int64
	hs := newStubServer(t, func(w http.ResponseWriter, r *http.Request) {
		var req service.AwaitRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		polls = append(polls, req.TimeoutMS)
		mu.Unlock()
		_ = json.NewEncoder(w).Encode(service.AwaitResponse{Done: false}) // never finishes
	})
	s := service.NewClient(hs.URL).Session("x")
	s.PollTimeout = 10 * time.Second

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err := s.Await(ctx, []uint64{1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Await past its deadline = %v, want DeadlineExceeded", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(polls) == 0 {
		t.Fatal("no poll ever reached the server")
	}
	for _, tms := range polls {
		if tms < 1 || tms > 150 {
			t.Errorf("poll timeout_ms = %d, want within the caller's 150ms deadline", tms)
		}
	}
}

// newStubServer runs a canned handler in place of a real daemon, for
// pinning client-side behaviour against fixed server responses.
func newStubServer(t *testing.T, h http.HandlerFunc) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return hs
}
