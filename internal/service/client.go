package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// Client is a small Go client for the nexusd HTTP API. The zero-value
// http.DefaultClient is used unless HTTP is set.
type Client struct {
	base string
	HTTP *http.Client
}

// NewClient returns a client for a daemon at base (e.g.
// "http://127.0.0.1:8037"); a trailing slash is trimmed.
func NewClient(base string) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{base: base}
}

// BackpressureError reports a 429: the session window is full. Retry after
// RetryAfter (SubmitWait does this automatically).
type BackpressureError struct {
	RetryAfter time.Duration
	Message    string
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("service: backpressure (retry after %v): %s", e.RetryAfter, e.Message)
}

// APIError is any other non-2xx response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do issues one JSON request; in and out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var er ErrorResponse
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er)
		if resp.StatusCode == http.StatusTooManyRequests {
			retry := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
					retry = time.Duration(secs) * time.Second
				}
			}
			return &BackpressureError{RetryAfter: retry, Message: er.Error}
		}
		return &APIError{Status: resp.StatusCode, Message: er.Error}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Debug fetches the server-wide /debug counters.
func (c *Client) Debug(ctx context.Context) (*DebugInfo, error) {
	var d DebugInfo
	if err := c.do(ctx, http.MethodGet, "/debug", nil, &d); err != nil {
		return nil, err
	}
	return &d, nil
}

// Metrics fetches the raw /metrics body — Prometheus text exposition
// format, not JSON, so it bypasses the do() helper.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: string(body)}
	}
	return string(body), nil
}

// Healthy reports whether the daemon answers /healthz.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// Open creates a new session.
func (c *Client) Open(ctx context.Context) (*Session, error) {
	var info SessionInfo
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", nil, &info); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: info.Session, Window: info.Window}, nil
}

// OpenWithDeadline creates a session whose total lifetime is bounded
// server-side: past the deadline every request against it fails with 410
// and its unfinished tasks drain. Zero means no deadline (plain Open).
func (c *Client) OpenWithDeadline(ctx context.Context, deadline time.Duration) (*Session, error) {
	var info SessionInfo
	req := CreateSessionRequest{DeadlineMS: deadline.Milliseconds()}
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &info); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: info.Session, Window: info.Window}, nil
}

// Session returns a handle on an existing server session by ID — e.g. one
// created by another process, or for probing error responses.
func (c *Client) Session(id string) *Session { return &Session{c: c, ID: id} }

// Session is a client-side handle on one server session.
type Session struct {
	c *Client
	// ID is the server-assigned session identifier.
	ID string
	// Window is the session's admission window, as reported at creation.
	Window int
	// RetryBudget bounds how many retryable failures (429 backpressure,
	// 503 overload, transport errors under an idempotency key) one
	// SubmitWait call absorbs before giving up. 0 selects 16.
	RetryBudget int
	// RetryBase and RetryMaxBackoff parameterise SubmitWait's capped
	// exponential backoff with full jitter. Zero selects 25ms and the
	// server's Retry-After hint (minimum 1s) respectively.
	RetryBase       time.Duration
	RetryMaxBackoff time.Duration
	// PollTimeout bounds each server-side await poll issued by Await. 0
	// selects 10s; the caller's context deadline always clamps it.
	PollTimeout time.Duration
}

func (s *Session) path(suffix string) string { return "/v1/sessions/" + s.ID + suffix }

// Submit sends one batch. On a full window it returns *BackpressureError
// without retrying; see SubmitWait for the retrying variant.
func (s *Session) Submit(ctx context.Context, tasks []TaskSpec) ([]uint64, error) {
	var resp SubmitResponse
	if err := s.c.do(ctx, http.MethodPost, s.path("/submit"), SubmitRequest{Tasks: tasks}, &resp); err != nil {
		return nil, err
	}
	return resp.IDs, nil
}

// SubmitIdem sends one batch under an idempotency key: a repeat of the same
// key on the same session returns the originally assigned IDs without
// re-executing anything, which makes retrying after a transport error safe
// even when the server may have executed the lost request.
func (s *Session) SubmitIdem(ctx context.Context, key string, tasks []TaskSpec) ([]uint64, bool, error) {
	var resp SubmitResponse
	req := SubmitRequest{Tasks: tasks, IdempotencyKey: key}
	if err := s.c.do(ctx, http.MethodPost, s.path("/submit"), req, &resp); err != nil {
		return nil, false, err
	}
	return resp.IDs, resp.Deduped, nil
}

// newIdempotencyKey returns a fresh random submit key.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("service: idempotency key entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// retryableSubmit classifies an error from one submit round: backpressure
// (429) and overload shed (503) always merit a retry; transport errors —
// where the request may or may not have executed server-side — are
// retryable only because SubmitWait submits under an idempotency key.
func retryableSubmit(err error) bool {
	var bp *BackpressureError
	if errors.As(err, &bp) {
		return true
	}
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status == http.StatusServiceUnavailable
	}
	// Anything else non-context is a transport-level failure.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// SubmitWait sends one batch under a fresh idempotency key, retrying
// backpressure (429), overload shed (503) and transport errors with capped
// exponential backoff and full jitter until the batch is admitted, the
// per-call retry budget is exhausted, or ctx is cancelled. It returns the
// assigned IDs and the number of retry rounds it absorbed.
func (s *Session) SubmitWait(ctx context.Context, tasks []TaskSpec) (ids []uint64, retries int, err error) {
	budget := s.RetryBudget
	if budget <= 0 {
		budget = 16
	}
	base := s.RetryBase
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	key := newIdempotencyKey()
	for {
		ids, _, err = s.SubmitIdem(ctx, key, tasks)
		if err == nil || !retryableSubmit(err) || retries >= budget {
			return ids, retries, err
		}
		// Cap the backoff at the server's Retry-After hint when one came
		// back, or at the configured ceiling otherwise.
		max := s.RetryMaxBackoff
		var bp *BackpressureError
		if errors.As(err, &bp) && bp.RetryAfter > 0 {
			max = bp.RetryAfter
		}
		if max <= 0 {
			max = time.Second
		}
		retries++
		if !sleepJitter(ctx, base, max, retries-1) {
			return nil, retries, ctx.Err()
		}
	}
}

// sleepJitter blocks for a full-jitter backoff delay — uniform in
// [0, min(max, base<<attempt)] — returning false when ctx dies first.
func sleepJitter(ctx context.Context, base, max time.Duration, attempt int) bool {
	if attempt > 30 {
		attempt = 30
	}
	d := base
	if d <<= attempt; d <= 0 || d > max {
		d = max
	}
	d = mrand.N(d + 1)
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// AwaitOnce issues a single bounded server-side wait and returns the raw
// response, pending states included (Await loops until everything is done).
func (s *Session) AwaitOnce(ctx context.Context, ids []uint64, timeout time.Duration) (*AwaitResponse, error) {
	var resp AwaitResponse
	req := AwaitRequest{IDs: ids, TimeoutMS: timeout.Milliseconds()}
	if err := s.c.do(ctx, http.MethodPost, s.path("/await"), req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Await blocks until the given tasks (all submitted tasks when ids is
// empty) complete or ctx is cancelled, re-issuing bounded server-side
// waits as needed, and returns their final statuses. Each poll is bounded
// by PollTimeout (default 10s) clamped to the caller's context deadline, so
// a deadline-bearing ctx never parks a poll past its own expiry.
func (s *Session) Await(ctx context.Context, ids []uint64) ([]TaskStatus, error) {
	poll := s.PollTimeout
	if poll <= 0 {
		poll = 10 * time.Second
	}
	for {
		timeout := poll
		if dl, ok := ctx.Deadline(); ok {
			if remain := time.Until(dl); remain < timeout {
				timeout = remain
			}
			if timeout <= 0 {
				return nil, context.DeadlineExceeded
			}
		}
		tms := timeout.Milliseconds()
		if tms < 1 {
			tms = 1 // 0 would select the server default, not "almost none"
		}
		var resp AwaitResponse
		req := AwaitRequest{IDs: ids, TimeoutMS: tms}
		if err := s.c.do(ctx, http.MethodPost, s.path("/await"), req, &resp); err != nil {
			return nil, err
		}
		if resp.Done {
			return resp.Tasks, nil
		}
		if err := ctx.Err(); err != nil {
			return resp.Tasks, err
		}
	}
}

// Stats fetches the session's counters.
func (s *Session) Stats(ctx context.Context) (*SessionStats, error) {
	var st SessionStats
	if err := s.c.do(ctx, http.MethodGet, s.path("/stats"), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Close deletes the session, draining any in-flight work server-side.
func (s *Session) Close(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, s.path(""), nil, nil)
}
