package service

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"nexuspp/internal/starss"
)

// Session lifecycle causes, surfaced through task errors when a drain
// cancels unstarted work.
var (
	// ErrSessionClosed is the cancellation cause of an explicitly closed
	// session (DELETE, or server shutdown).
	ErrSessionClosed = errors.New("service: session closed")
	// ErrSessionExpired is the cancellation cause of a session reaped by
	// the idle janitor — the graceful-drain path for vanished clients.
	ErrSessionExpired = errors.New("service: session expired (client idle)")
)

// session is one client's isolated slice of the shared runtime: a
// starss.Scope for keyspace isolation and per-session stats, an admission
// window enforced with tokens (never by blocking the HTTP handler), and
// the handles of every task it has submitted, addressable by session-local
// ID for await.
type session struct {
	id    string
	scope *starss.Scope
	// ctx is the context every task is submitted with; cancel drains the
	// session: unstarted tasks fail, dependents poison, kick-off lists
	// drain, and the window tokens flow back through the scope's hook.
	ctx    context.Context
	cancel context.CancelCauseFunc
	window int
	// avail is the session's remaining admission tokens. Submits reserve
	// tokens up front and get backpressure when too few remain; tokens
	// return on task completion.
	avail      atomic.Int64
	lastActive atomic.Int64 // unix nanoseconds
	closed     atomic.Bool

	mu      sync.Mutex
	handles map[uint64]*starss.Handle
	nextID  uint64
}

func newSession(parent context.Context, id string, scope *starss.Scope, window int) *session {
	ctx, cancel := context.WithCancelCause(parent)
	ss := &session{
		id:      id,
		scope:   scope,
		ctx:     ctx,
		cancel:  cancel,
		window:  window,
		handles: make(map[uint64]*starss.Handle),
	}
	ss.avail.Store(int64(window))
	ss.touch()
	// The scope hook returns the admission token of every completed task
	// and counts as activity, so a session with live work never expires.
	scope.SetOnDone(func(error) {
		ss.avail.Add(1)
		ss.touch()
	})
	return ss
}

func (ss *session) touch() { ss.lastActive.Store(time.Now().UnixNano()) }
func (ss *session) idleFor() time.Duration {
	return time.Duration(time.Now().UnixNano() - ss.lastActive.Load())
}

// reserve takes n admission tokens, or reports how many are in flight when
// the window has too few left (the backpressure signal).
func (ss *session) reserve(n int64) (ok bool, inFlight int64) {
	for {
		cur := ss.avail.Load()
		if cur < n {
			return false, int64(ss.window) - cur
		}
		if ss.avail.CompareAndSwap(cur, cur-n) {
			return true, 0
		}
	}
}

// release returns tokens reserved for tasks that were never admitted.
func (ss *session) release(n int64) {
	if n > 0 {
		ss.avail.Add(n)
	}
}

// submit admits a batch, returning the assigned session-local IDs or an
// httpError (429 with Retry-After on a full window; the submit path never
// blocks the caller on admission).
func (ss *session) submit(specs []TaskSpec) (*SubmitResponse, *httpError) {
	ss.touch()
	n := len(specs)
	if n == 0 {
		return nil, badRequest("submit: empty task list")
	}
	if n > ss.window {
		return nil, badRequest(fmt.Sprintf(
			"submit: batch of %d exceeds the session window of %d and can never be admitted; split the batch", n, ss.window))
	}
	tasks := make([]starss.Task, n)
	for i, spec := range specs {
		t, err := spec.task()
		if err != nil {
			return nil, badRequest("submit: " + err.Error())
		}
		tasks[i] = t
	}
	if ok, inFlight := ss.reserve(int64(n)); !ok {
		return nil, &httpError{
			code:       429,
			msg:        fmt.Sprintf("session window full: %d of %d tasks in flight, batch of %d rejected", inFlight, ss.window, n),
			retryAfter: 1,
		}
	}
	handles, err := ss.scope.SubmitAll(ss.ctx, tasks)
	ss.release(int64(n - len(handles))) // tokens of tasks never admitted
	if len(handles) == 0 && err != nil {
		return nil, submitError(err)
	}
	resp := &SubmitResponse{IDs: make([]uint64, len(handles))}
	ss.mu.Lock()
	for i, h := range handles {
		id := ss.nextID
		ss.nextID++
		ss.handles[id] = h
		resp.IDs[i] = id
	}
	ss.mu.Unlock()
	return resp, nil
}

// submitError maps a runtime admission error onto an HTTP status.
func submitError(err error) *httpError {
	switch {
	case errors.Is(err, starss.ErrStopped):
		return &httpError{code: 503, msg: "runtime is shutting down"}
	case errors.Is(err, context.Canceled), errors.Is(err, ErrSessionClosed), errors.Is(err, ErrSessionExpired):
		return &httpError{code: 410, msg: "session closed"}
	default:
		return &httpError{code: 500, msg: err.Error()}
	}
}

// await blocks until the requested tasks complete or the timeout expires,
// reporting each task's state. Unknown IDs are a client error.
func (ss *session) await(ctx context.Context, req AwaitRequest) (*AwaitResponse, *httpError) {
	ss.touch()
	timeout := 30 * time.Second
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 2*time.Minute {
		timeout = 2 * time.Minute
	}
	ss.mu.Lock()
	ids := req.IDs
	if len(ids) == 0 {
		ids = make([]uint64, 0, len(ss.handles))
		for id := range ss.handles {
			ids = append(ids, id)
		}
		slices.Sort(ids)
	}
	handles := make([]*starss.Handle, len(ids))
	for i, id := range ids {
		h, ok := ss.handles[id]
		if !ok {
			ss.mu.Unlock()
			return nil, badRequest(fmt.Sprintf("await: unknown task id %d", id))
		}
		handles[i] = h
	}
	ss.mu.Unlock()

	wctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp := &AwaitResponse{Done: true, Tasks: make([]TaskStatus, len(ids))}
	for i, h := range handles {
		// Block on the first still-pending task; once the deadline fires,
		// the remaining handles resolve instantly to pending or done.
		_ = h.Wait(wctx)
		st := TaskStatus{ID: ids[i]}
		select {
		case <-h.Done():
			err := h.Err()
			switch {
			case err == nil:
				st.State = StateOK
			case errors.Is(err, starss.ErrDependencyFailed):
				st.State = StateSkipped
				st.Error = err.Error()
			default:
				st.State = StateFailed
				st.Error = err.Error()
			}
		default:
			st.State = StatePending
			resp.Done = false
		}
		resp.Tasks[i] = st
	}
	ss.touch()
	return resp, nil
}

// stats snapshots the session counters.
func (ss *session) stats() SessionStats {
	st := ss.scope.Stats()
	return SessionStats{
		Session:     ss.id,
		Window:      ss.window,
		InFlight:    ss.scope.InFlight(),
		Submitted:   st.Submitted,
		Executed:    st.Executed,
		Failed:      st.Failed,
		Skipped:     st.Skipped,
		MaxInFlight: st.MaxInFlight,
	}
}

// close drains the session: the cancellation cause fails every unstarted
// task, poisoning propagates through its graph, and in-flight bodies see
// ctx.Done(). Idempotent.
func (ss *session) close(cause error) {
	if ss.closed.CompareAndSwap(false, true) {
		ss.cancel(cause)
	}
}
