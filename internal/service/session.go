package service

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"nexuspp/internal/starss"
)

// Session lifecycle causes, surfaced through task errors when a drain
// cancels unstarted work.
var (
	// ErrSessionClosed is the cancellation cause of an explicitly closed
	// session (DELETE, or server shutdown).
	ErrSessionClosed = errors.New("service: session closed")
	// ErrSessionExpired is the cancellation cause of a session reaped by
	// the idle janitor — the graceful-drain path for vanished clients.
	ErrSessionExpired = errors.New("service: session expired (client idle)")
	// ErrSessionDeadline is the cancellation cause of a session that ran
	// past its client-requested deadline: unstarted tasks fail, poisoning
	// propagates, the drain is identical to expiry.
	ErrSessionDeadline = errors.New("service: session deadline exceeded")
)

// session is one client's isolated slice of the shared runtime: a
// starss.Scope for keyspace isolation and per-session stats, an admission
// window enforced with tokens (never by blocking the HTTP handler), and
// the handles of every task it has submitted, addressable by session-local
// ID for await.
type session struct {
	id    string
	scope *starss.Scope
	// ctx is the context every task is submitted with; cancel drains the
	// session: unstarted tasks fail, dependents poison, kick-off lists
	// drain, and the window tokens flow back through the scope's hook.
	ctx    context.Context
	cancel context.CancelCauseFunc
	window int
	// avail is the session's remaining admission tokens. Submits reserve
	// tokens up front and get backpressure when too few remain; tokens
	// return on task completion.
	avail      atomic.Int64
	lastActive atomic.Int64 // unix nanoseconds
	closed     atomic.Bool

	mu      sync.Mutex
	handles map[uint64]*starss.Handle
	nextID  uint64
	// idem is the session's dedup window: idempotency key -> the submit it
	// named. Entries for admitted batches are memoized (a retried POST gets
	// the original IDs); failed submits are removed so a retry re-attempts.
	idem     map[string]*idemEntry
	idemKeys []string // insertion order, for capped eviction
}

// idemEntry is one idempotency key's state. done closes when the first
// carrier of the key has a result; concurrent duplicates wait on it instead
// of double-admitting.
type idemEntry struct {
	done chan struct{}
	resp *SubmitResponse
	herr *httpError
}

// idemWindowCap bounds the per-session dedup window; the oldest settled
// entries are evicted first.
const idemWindowCap = 1024

func newSession(parent context.Context, id string, scope *starss.Scope, window int, deadline time.Duration) *session {
	var cancelT context.CancelFunc
	if deadline > 0 {
		parent, cancelT = context.WithDeadlineCause(parent, time.Now().Add(deadline), ErrSessionDeadline)
	}
	ctx, cancel := context.WithCancelCause(parent)
	if cancelT != nil {
		// Release the deadline timer as soon as the session context dies for
		// any reason — close, expiry, or the deadline itself.
		go func() {
			<-ctx.Done()
			cancelT()
		}()
	}
	ss := &session{
		id:      id,
		scope:   scope,
		ctx:     ctx,
		cancel:  cancel,
		window:  window,
		handles: make(map[uint64]*starss.Handle),
		idem:    make(map[string]*idemEntry),
	}
	ss.avail.Store(int64(window))
	ss.touch()
	// The scope hook returns the admission token of every completed task
	// and counts as activity, so a session with live work never expires.
	scope.SetOnDone(func(error) {
		ss.avail.Add(1)
		ss.touch()
	})
	return ss
}

func (ss *session) touch() { ss.lastActive.Store(time.Now().UnixNano()) }
func (ss *session) idleFor() time.Duration {
	return time.Duration(time.Now().UnixNano() - ss.lastActive.Load())
}

// reserve takes n admission tokens, or reports how many are in flight when
// the window has too few left (the backpressure signal).
func (ss *session) reserve(n int64) (ok bool, inFlight int64) {
	for {
		cur := ss.avail.Load()
		if cur < n {
			return false, int64(ss.window) - cur
		}
		if ss.avail.CompareAndSwap(cur, cur-n) {
			return true, 0
		}
	}
}

// release returns tokens reserved for tasks that were never admitted.
func (ss *session) release(n int64) {
	if n > 0 {
		ss.avail.Add(n)
	}
}

// submit admits a batch, deduplicating on the idempotency key when one is
// set: a repeated key whose batch was admitted returns the original IDs
// without re-executing, and a concurrent duplicate waits for the first
// carrier instead of double-admitting. Failed submits are never memoized —
// a retry after a 429 must get a fresh admission attempt.
func (ss *session) submit(specs []TaskSpec, key string) (*SubmitResponse, *httpError) {
	if key == "" {
		return ss.submitOnce(specs)
	}
	ss.mu.Lock()
	if e, ok := ss.idem[key]; ok {
		ss.mu.Unlock()
		<-e.done
		if e.herr != nil {
			return nil, e.herr
		}
		dup := *e.resp
		dup.Deduped = true
		return &dup, nil
	}
	e := &idemEntry{done: make(chan struct{})}
	ss.idem[key] = e
	ss.idemKeys = append(ss.idemKeys, key)
	ss.evictIdemLocked()
	ss.mu.Unlock()
	resp, herr := ss.submitOnce(specs)
	e.resp, e.herr = resp, herr
	close(e.done)
	if herr != nil {
		ss.mu.Lock()
		if cur, ok := ss.idem[key]; ok && cur == e {
			delete(ss.idem, key)
		}
		ss.mu.Unlock()
	}
	return resp, herr
}

// evictIdemLocked bounds the dedup window: the oldest settled entries are
// evicted first; an in-flight head entry stops eviction rather than forcing
// a scan. The key log is compacted when deletions (unmemoized failures)
// leave it much longer than the map. Caller holds ss.mu.
func (ss *session) evictIdemLocked() {
	for len(ss.idem) > idemWindowCap && len(ss.idemKeys) > 0 {
		k := ss.idemKeys[0]
		if e, ok := ss.idem[k]; ok {
			select {
			case <-e.done:
				delete(ss.idem, k)
			default:
				return
			}
		}
		ss.idemKeys = ss.idemKeys[1:]
	}
	if len(ss.idemKeys) > 2*idemWindowCap && len(ss.idemKeys) > 2*len(ss.idem) {
		kept := ss.idemKeys[:0]
		for _, k := range ss.idemKeys {
			if _, ok := ss.idem[k]; ok {
				kept = append(kept, k)
			}
		}
		ss.idemKeys = kept
	}
}

// submitOnce is the non-deduplicating admission path: it returns the
// assigned session-local IDs or an httpError (429 with Retry-After on a
// full window; the submit path never blocks the caller on admission).
func (ss *session) submitOnce(specs []TaskSpec) (*SubmitResponse, *httpError) {
	ss.touch()
	n := len(specs)
	if n == 0 {
		return nil, badRequest("submit: empty task list")
	}
	if n > ss.window {
		return nil, badRequest(fmt.Sprintf(
			"submit: batch of %d exceeds the session window of %d and can never be admitted; split the batch", n, ss.window))
	}
	tasks := make([]starss.Task, n)
	for i, spec := range specs {
		t, err := spec.task()
		if err != nil {
			return nil, badRequest("submit: " + err.Error())
		}
		tasks[i] = t
	}
	if ok, inFlight := ss.reserve(int64(n)); !ok {
		return nil, &httpError{
			code:       429,
			msg:        fmt.Sprintf("session window full: %d of %d tasks in flight, batch of %d rejected", inFlight, ss.window, n),
			retryAfter: 1,
		}
	}
	handles, err := ss.scope.SubmitAll(ss.ctx, tasks)
	ss.release(int64(n - len(handles))) // tokens of tasks never admitted
	if len(handles) == 0 && err != nil {
		return nil, submitError(err)
	}
	resp := &SubmitResponse{IDs: make([]uint64, len(handles))}
	ss.mu.Lock()
	for i, h := range handles {
		id := ss.nextID
		ss.nextID++
		ss.handles[id] = h
		resp.IDs[i] = id
	}
	ss.mu.Unlock()
	return resp, nil
}

// submitError maps a runtime admission error onto an HTTP status.
func submitError(err error) *httpError {
	switch {
	case errors.Is(err, starss.ErrStopped):
		return &httpError{code: 503, msg: "runtime is shutting down"}
	case errors.Is(err, ErrSessionDeadline), errors.Is(err, context.DeadlineExceeded):
		return &httpError{code: 410, msg: "session deadline exceeded"}
	case errors.Is(err, context.Canceled), errors.Is(err, ErrSessionClosed), errors.Is(err, ErrSessionExpired):
		return &httpError{code: 410, msg: "session closed"}
	default:
		return &httpError{code: 500, msg: err.Error()}
	}
}

// await blocks until the requested tasks complete or the timeout expires,
// reporting each task's state. Unknown IDs are a client error.
func (ss *session) await(ctx context.Context, req AwaitRequest) (*AwaitResponse, *httpError) {
	ss.touch()
	timeout := 30 * time.Second
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 2*time.Minute {
		timeout = 2 * time.Minute
	}
	ss.mu.Lock()
	ids := req.IDs
	if len(ids) == 0 {
		ids = make([]uint64, 0, len(ss.handles))
		for id := range ss.handles {
			ids = append(ids, id)
		}
		slices.Sort(ids)
	}
	handles := make([]*starss.Handle, len(ids))
	for i, id := range ids {
		h, ok := ss.handles[id]
		if !ok {
			ss.mu.Unlock()
			return nil, badRequest(fmt.Sprintf("await: unknown task id %d", id))
		}
		handles[i] = h
	}
	ss.mu.Unlock()

	wctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp := &AwaitResponse{Done: true, Tasks: make([]TaskStatus, len(ids))}
	for i, h := range handles {
		// Block on the first still-pending task; once the deadline fires,
		// the remaining handles resolve instantly to pending or done.
		_ = h.Wait(wctx)
		st := TaskStatus{ID: ids[i]}
		select {
		case <-h.Done():
			err := h.Err()
			switch {
			case err == nil:
				st.State = StateOK
			case errors.Is(err, starss.ErrDependencyFailed):
				st.State = StateSkipped
				st.Error = err.Error()
			default:
				st.State = StateFailed
				st.Error = err.Error()
			}
		default:
			st.State = StatePending
			resp.Done = false
		}
		resp.Tasks[i] = st
	}
	ss.touch()
	return resp, nil
}

// stats snapshots the session counters.
func (ss *session) stats() SessionStats {
	st := ss.scope.Stats()
	return SessionStats{
		Session:     ss.id,
		Window:      ss.window,
		InFlight:    ss.scope.InFlight(),
		Submitted:   st.Submitted,
		Executed:    st.Executed,
		Failed:      st.Failed,
		Skipped:     st.Skipped,
		MaxInFlight: st.MaxInFlight,
	}
}

// close drains the session: the cancellation cause fails every unstarted
// task, poisoning propagates through its graph, and in-flight bodies see
// ctx.Done(). Idempotent.
func (ss *session) close(cause error) {
	if ss.closed.CompareAndSwap(false, true) {
		ss.cancel(cause)
	}
}
