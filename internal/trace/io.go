package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"nexuspp/internal/sim"
)

// Binary trace format (all integers little-endian or uvarint):
//
//	magic   [8]byte  "NXTRACE1"
//	nameLen uvarint, name bytes
//	count   uvarint
//	tasks   count records:
//	   id, func, exec(ps), memRead(ps), memWrite(ps)  uvarint each
//	   nParams uvarint
//	   params  nParams x {addr uvarint, size uvarint, mode byte}
//
// The format is self-contained and versioned through the magic string.

var traceMagic = [8]byte{'N', 'X', 'T', 'R', 'A', 'C', 'E', '1'}

// ErrBadMagic reports that the input is not a Nexus++ trace file.
var ErrBadMagic = errors.New("trace: bad magic (not a NXTRACE1 file)")

// Write serialises tr to w in the binary trace format.
func Write(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	putUvarint(bw, uint64(len(tr.Name)))
	if _, err := bw.WriteString(tr.Name); err != nil {
		return err
	}
	putUvarint(bw, uint64(len(tr.Tasks)))
	for i := range tr.Tasks {
		t := &tr.Tasks[i]
		putUvarint(bw, t.ID)
		putUvarint(bw, uint64(t.Func))
		putUvarint(bw, uint64(t.Exec))
		putUvarint(bw, uint64(t.MemRead))
		putUvarint(bw, uint64(t.MemWrite))
		putUvarint(bw, uint64(len(t.Params)))
		for _, p := range t.Params {
			putUvarint(bw, p.Addr)
			putUvarint(bw, uint64(p.Size))
			if err := bw.WriteByte(byte(p.Mode)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses a binary trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return nil, ErrBadMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading task count: %w", err)
	}
	if count > 1<<31 {
		return nil, fmt.Errorf("trace: unreasonable task count %d", count)
	}
	// The declared counts are untrusted until the records actually parse, so
	// cap the allocation hints: a corrupt header claiming 2^31 tasks must fail
	// on its missing first record, not allocate gigabytes up front.
	tr := &Trace{Name: string(nameBuf), Tasks: make([]TaskSpec, 0, min(count, 4096))}
	for i := uint64(0); i < count; i++ {
		var t TaskSpec
		fields := []*uint64{&t.ID}
		for _, dst := range fields {
			if *dst, err = binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("trace: task %d: %w", i, err)
			}
		}
		fn, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: task %d func: %w", i, err)
		}
		t.Func = uint32(fn)
		for _, dst := range []*sim.Time{&t.Exec, &t.MemRead, &t.MemWrite} {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: task %d time: %w", i, err)
			}
			*dst = sim.Time(v)
		}
		nParams, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: task %d param count: %w", i, err)
		}
		if nParams > 1<<20 {
			return nil, fmt.Errorf("trace: task %d has unreasonable param count %d", i, nParams)
		}
		t.Params = make([]Param, 0, min(nParams, 256))
		for j := uint64(0); j < nParams; j++ {
			var p Param
			if p.Addr, err = binary.ReadUvarint(br); err != nil {
				return nil, fmt.Errorf("trace: task %d param %d addr: %w", i, j, err)
			}
			sz, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: task %d param %d size: %w", i, j, err)
			}
			p.Size = uint32(sz)
			mode, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: task %d param %d mode: %w", i, j, err)
			}
			if mode > byte(InOut) {
				return nil, fmt.Errorf("trace: task %d param %d has invalid mode %d", i, j, mode)
			}
			p.Mode = AccessMode(mode)
			t.Params = append(t.Params, p)
		}
		tr.Tasks = append(tr.Tasks, t)
	}
	return tr, nil
}

// Dump writes a human-readable listing of the first limit tasks (all tasks
// when limit <= 0), for cmd/tracegen's inspect mode.
func Dump(w io.Writer, tr *Trace, limit int) error {
	bw := bufio.NewWriter(w)
	st := tr.Stats()
	fmt.Fprintf(bw, "trace %q: %d tasks, mean exec %v, mean mem %v, max params %d\n",
		tr.Name, st.Tasks, st.MeanExec, st.MeanMem, st.MaxParams)
	n := len(tr.Tasks)
	if limit > 0 && limit < n {
		n = limit
	}
	for i := 0; i < n; i++ {
		t := &tr.Tasks[i]
		fmt.Fprintf(bw, "  task %d f=%d exec=%v read=%v write=%v params=[", t.ID, t.Func, t.Exec, t.MemRead, t.MemWrite)
		for j, p := range t.Params {
			if j > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprintf(bw, "%#x/%d/%s", p.Addr, p.Size, p.Mode)
		}
		fmt.Fprintln(bw, "]")
	}
	if n < len(tr.Tasks) {
		fmt.Fprintf(bw, "  ... %d more tasks\n", len(tr.Tasks)-n)
	}
	return bw.Flush()
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}
