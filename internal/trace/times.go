package trace

import "nexuspp/internal/sim"

// TimeSampler produces per-task phase durations. Implementations must be
// deterministic functions of their own seeded state.
type TimeSampler interface {
	// Sample returns the execution, memory-read and memory-write durations
	// for the next task.
	Sample() (exec, memRead, memWrite sim.Time)
}

// H264Times reproduces the published statistics of the paper's Cell H.264
// decoding trace: "on average a task spends 7.5us for accessing off-chip
// memory and 11.8us for execution". Per-task values are drawn from truncated
// normal distributions around those means; the memory time is split 2:1
// between reads and writes (a decode task fetches two reference blocks and
// writes one).
type H264Times struct {
	ExecMean sim.Time
	ExecStd  sim.Time
	MemMean  sim.Time
	MemStd   sim.Time
	rng      *sim.Rand
}

// NewH264Times returns a sampler with the paper's means and a deterministic
// stream derived from seed.
func NewH264Times(seed uint64) *H264Times {
	return &H264Times{
		ExecMean: 11800 * sim.Nanosecond,
		ExecStd:  3000 * sim.Nanosecond,
		MemMean:  7500 * sim.Nanosecond,
		MemStd:   1800 * sim.Nanosecond,
		rng:      sim.NewRand(seed),
	}
}

// Sample implements TimeSampler.
func (h *H264Times) Sample() (exec, memRead, memWrite sim.Time) {
	e := h.rng.TruncNorm(float64(h.ExecMean), float64(h.ExecStd),
		float64(h.ExecMean)/8, float64(h.ExecMean)*3)
	m := h.rng.TruncNorm(float64(h.MemMean), float64(h.MemStd),
		float64(h.MemMean)/8, float64(h.MemMean)*3)
	exec = sim.Time(e)
	memRead = sim.Time(m * 2 / 3)
	memWrite = sim.Time(m) - memRead
	return exec, memRead, memWrite
}

// FixedTimes is a TimeSampler returning constant durations; useful in tests
// and for idealised experiments.
type FixedTimes struct {
	Exec, MemRead, MemWrite sim.Time
}

// Sample implements TimeSampler.
func (f FixedTimes) Sample() (exec, memRead, memWrite sim.Time) {
	return f.Exec, f.MemRead, f.MemWrite
}
