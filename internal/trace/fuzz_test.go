package trace

import (
	"bytes"
	"testing"

	"nexuspp/internal/sim"
)

// FuzzTraceRoundTrip drives the binary codec with arbitrary bytes. Two
// properties must hold: Read never panics (corrupt input fails with an
// error), and any input Read accepts re-encodes to a canonical form that
// round-trips byte-identically (Write -> Read -> Write is a fixed point).
// The input bytes themselves need not equal the first re-encode, because
// ReadUvarint tolerates non-minimal varints that Write never produces.
func FuzzTraceRoundTrip(f *testing.F) {
	empty := &Trace{Name: "empty"}
	var buf bytes.Buffer
	if err := Write(&buf, empty); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	grid := &Trace{
		Name: "grid",
		Tasks: []TaskSpec{
			{ID: 0, Func: 1, Exec: 2 * sim.Microsecond, MemRead: 40 * sim.Nanosecond,
				Params: []Param{{Addr: 0x1000, Size: 64, Mode: Out}}},
			{ID: 1, Func: 1, Exec: 3 * sim.Microsecond, MemWrite: 80 * sim.Nanosecond,
				Params: []Param{{Addr: 0x1000, Size: 64, Mode: In}, {Addr: 0x2000, Size: 64, Mode: InOut}}},
		},
	}
	buf.Reset()
	if err := Write(&buf, grid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	// Corrupt variants: truncation, bad magic, absurd declared counts.
	valid := append([]byte(nil), buf.Bytes()...)
	f.Add(valid[:len(valid)/2])
	bad := append([]byte(nil), valid...)
	bad[0] = 'X'
	f.Add(bad)
	f.Add(append(append([]byte(nil), traceMagic[:]...), 0x00, 0xff, 0xff, 0xff, 0xff, 0x0f))
	f.Add([]byte("NXTRACE1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return // corrupt input must fail cleanly, nothing more
		}
		var enc1 bytes.Buffer
		if err := Write(&enc1, tr); err != nil {
			t.Fatalf("re-encoding an accepted trace: %v", err)
		}
		tr2, err := Read(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own encoding: %v", err)
		}
		var enc2 bytes.Buffer
		if err := Write(&enc2, tr2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Errorf("canonical encoding is not a fixed point:\n first: %x\nsecond: %x",
				enc1.Bytes(), enc2.Bytes())
		}
		if len(tr2.Tasks) != len(tr.Tasks) || tr2.Name != tr.Name {
			t.Errorf("round-trip changed shape: %d tasks %q -> %d tasks %q",
				len(tr.Tasks), tr.Name, len(tr2.Tasks), tr2.Name)
		}
	})
}
