package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nexuspp/internal/sim"
)

func TestAccessMode(t *testing.T) {
	cases := []struct {
		m             AccessMode
		reads, writes bool
		s             string
	}{
		{In, true, false, "in"},
		{Out, false, true, "out"},
		{InOut, true, true, "inout"},
	}
	for _, c := range cases {
		if c.m.Reads() != c.reads || c.m.Writes() != c.writes || c.m.String() != c.s {
			t.Errorf("%v: reads=%v writes=%v str=%q", c.m, c.m.Reads(), c.m.Writes(), c.m.String())
		}
	}
	if !strings.Contains(AccessMode(9).String(), "9") {
		t.Error("unknown mode String should include the raw value")
	}
}

func validTask() TaskSpec {
	return TaskSpec{
		ID:   1,
		Func: 7,
		Params: []Param{
			{Addr: 0x1000, Size: 1024, Mode: In},
			{Addr: 0x2000, Size: 1024, Mode: InOut},
		},
		Exec:     10 * sim.Microsecond,
		MemRead:  5 * sim.Microsecond,
		MemWrite: 2 * sim.Microsecond,
	}
}

func TestTaskValidate(t *testing.T) {
	ok := validTask()
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid task rejected: %v", err)
	}
	neg := validTask()
	neg.Exec = -1
	if neg.Validate() == nil {
		t.Error("negative exec accepted")
	}
	empty := validTask()
	empty.Params = nil
	if empty.Validate() == nil {
		t.Error("empty param list accepted")
	}
	dup := validTask()
	dup.Params = append(dup.Params, Param{Addr: 0x1000, Mode: Out})
	if dup.Validate() == nil {
		t.Error("duplicate address accepted")
	}
}

func TestTraceStats(t *testing.T) {
	tr := &Trace{Name: "s", Tasks: []TaskSpec{
		{ID: 0, Params: []Param{{Addr: 1}}, Exec: 10, MemRead: 2, MemWrite: 2},
		{ID: 1, Params: []Param{{Addr: 2}, {Addr: 3}, {Addr: 4}}, Exec: 20, MemRead: 3, MemWrite: 3},
	}}
	st := tr.Stats()
	if st.Tasks != 2 || st.TotalExec != 30 || st.TotalMem != 10 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanExec != 15 || st.MeanMem != 5 {
		t.Fatalf("means = %v/%v", st.MeanExec, st.MeanMem)
	}
	if st.MaxParams != 3 || st.TotalParams != 4 {
		t.Fatalf("params = %d/%d", st.MaxParams, st.TotalParams)
	}
	if (&Trace{}).Stats().Tasks != 0 {
		t.Error("empty trace stats")
	}
}

func TestRoundTrip(t *testing.T) {
	tr := &Trace{Name: "round-trip", Tasks: []TaskSpec{validTask()}}
	tr.Tasks[0].ID = 42
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != tr.Name || len(got.Tasks) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	a, b := tr.Tasks[0], got.Tasks[0]
	if a.ID != b.ID || a.Func != b.Func || a.Exec != b.Exec ||
		a.MemRead != b.MemRead || a.MemWrite != b.MemWrite || len(a.Params) != len(b.Params) {
		t.Fatalf("task mismatch: %+v vs %+v", a, b)
	}
	for i := range a.Params {
		if a.Params[i] != b.Params[i] {
			t.Fatalf("param %d mismatch", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace file....."))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated after the magic.
	if _, err := Read(bytes.NewReader(traceMagic[:])); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestReadRejectsInvalidMode(t *testing.T) {
	tr := &Trace{Name: "x", Tasks: []TaskSpec{validTask()}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] = 99 // last byte is the final param's mode
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("invalid mode accepted")
	}
}

// Property: Write/Read round-trips arbitrary generated traces exactly.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		rng := sim.NewRand(seed)
		n := int(nRaw % 40)
		tr := &Trace{Name: "prop"}
		for i := 0; i < n; i++ {
			task := TaskSpec{
				ID:       uint64(i),
				Func:     uint32(rng.Intn(100)),
				Exec:     sim.Time(rng.Intn(1 << 30)),
				MemRead:  sim.Time(rng.Intn(1 << 20)),
				MemWrite: sim.Time(rng.Intn(1 << 20)),
			}
			for p := 0; p <= rng.Intn(12); p++ {
				task.Params = append(task.Params, Param{
					Addr: rng.Uint64() >> 16,
					Size: uint32(rng.Intn(1 << 16)),
					Mode: AccessMode(rng.Intn(3)),
				})
			}
			tr.Tasks = append(tr.Tasks, task)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Name != tr.Name || len(got.Tasks) != len(tr.Tasks) {
			return false
		}
		for i := range tr.Tasks {
			a, b := &tr.Tasks[i], &got.Tasks[i]
			if a.ID != b.ID || a.Func != b.Func || a.Exec != b.Exec ||
				a.MemRead != b.MemRead || a.MemWrite != b.MemWrite ||
				len(a.Params) != len(b.Params) {
				return false
			}
			for j := range a.Params {
				if a.Params[j] != b.Params[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDump(t *testing.T) {
	tr := &Trace{Name: "dump", Tasks: []TaskSpec{validTask(), validTask(), validTask()}}
	var buf bytes.Buffer
	if err := Dump(&buf, tr, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `trace "dump": 3 tasks`) {
		t.Errorf("missing header: %s", out)
	}
	if !strings.Contains(out, "1 more tasks") {
		t.Errorf("missing truncation note: %s", out)
	}
}

func TestH264TimesStatistics(t *testing.T) {
	s := NewH264Times(1)
	const n = 20000
	var sumE, sumM float64
	for i := 0; i < n; i++ {
		e, r, w := s.Sample()
		if e <= 0 || r <= 0 || w < 0 {
			t.Fatalf("non-positive sample: %v %v %v", e, r, w)
		}
		sumE += float64(e)
		sumM += float64(r + w)
	}
	meanE := sumE / n / float64(sim.Microsecond)
	meanM := sumM / n / float64(sim.Microsecond)
	if math.Abs(meanE-11.8) > 0.5 {
		t.Errorf("mean exec = %.2fus, want ~11.8us", meanE)
	}
	if math.Abs(meanM-7.5) > 0.4 {
		t.Errorf("mean mem = %.2fus, want ~7.5us", meanM)
	}
}

func TestH264TimesDeterminism(t *testing.T) {
	a, b := NewH264Times(5), NewH264Times(5)
	for i := 0; i < 100; i++ {
		e1, r1, w1 := a.Sample()
		e2, r2, w2 := b.Sample()
		if e1 != e2 || r1 != r2 || w1 != w2 {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestFixedTimes(t *testing.T) {
	f := FixedTimes{Exec: 10, MemRead: 5, MemWrite: 3}
	e, r, w := f.Sample()
	if e != 10 || r != 5 || w != 3 {
		t.Fatalf("FixedTimes.Sample = %v %v %v", e, r, w)
	}
}
