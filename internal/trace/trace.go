// Package trace defines the task model consumed by every simulator in this
// repository and (de)serialises task traces.
//
// The Nexus++ paper drives its SystemC model from a trace of a parallel
// H.264 decoder captured on a Cell processor: per task, the trace records
// the input/output list (base address, size, access mode), the execution
// time, and the time spent reading/writing inputs/outputs from/to memory.
// That trace is not publicly available, so this package also provides a
// synthetic generator (see times.go) that reproduces its published
// statistics: 8160 tasks (one full-HD frame of 120x68 macroblocks), an
// average execution time of 11.8us and an average memory time of 7.5us.
package trace

import (
	"fmt"
	"sort"

	"nexuspp/internal/sim"
)

// AccessMode is the declared direction of a task parameter, matching the
// input/output/inout access modes of StarSs pragmas.
type AccessMode uint8

const (
	// In marks a parameter that is only read by the task.
	In AccessMode = iota
	// Out marks a parameter that is only written by the task.
	Out
	// InOut marks a parameter that is read and written by the task.
	InOut
)

// Reads reports whether the mode observes the previous value.
func (m AccessMode) Reads() bool { return m == In || m == InOut }

// Writes reports whether the mode produces a new value.
func (m AccessMode) Writes() bool { return m == Out || m == InOut }

// String returns the StarSs pragma spelling of the mode.
func (m AccessMode) String() string {
	switch m {
	case In:
		return "in"
	case Out:
		return "out"
	case InOut:
		return "inout"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Param is one entry of a task's input/output list: a memory segment
// identified by its base address, with a size and an access mode. Nexus++
// resolves dependencies by comparing base addresses, exactly as the paper's
// SSIII-B states.
type Param struct {
	Addr uint64
	Size uint32
	Mode AccessMode
}

// TaskSpec fully describes one task as recorded in a trace: what it
// accesses and how long its three phases take on the reference machine.
// MemRead and MemWrite are contention-free durations; the memory model adds
// queueing when more tasks access memory than the banks allow.
type TaskSpec struct {
	// ID is the task's serial number in program (submission) order.
	ID uint64
	// Func identifies the task function (the paper's *f function pointer).
	Func uint32
	// Params is the input/output list.
	Params []Param
	// Exec is the pure computation time on a worker core.
	Exec sim.Time
	// MemRead is the time spent fetching inputs from off-chip memory.
	MemRead sim.Time
	// MemWrite is the time spent writing outputs back to memory.
	MemWrite sim.Time
}

// NumParams returns the length of the input/output list.
func (t *TaskSpec) NumParams() int { return len(t.Params) }

// Validate checks structural invariants every simulator relies on:
// non-negative durations and no duplicate addresses in the parameter list
// (a task depending on itself is meaningless; the StarSs compiler merges
// duplicate accesses into a single inout parameter).
func (t *TaskSpec) Validate() error {
	if t.Exec < 0 || t.MemRead < 0 || t.MemWrite < 0 {
		return fmt.Errorf("trace: task %d has negative duration", t.ID)
	}
	if len(t.Params) == 0 {
		return fmt.Errorf("trace: task %d has no parameters", t.ID)
	}
	if len(t.Params) > 1 {
		addrs := make([]uint64, len(t.Params))
		for i, p := range t.Params {
			addrs[i] = p.Addr
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for i := 1; i < len(addrs); i++ {
			if addrs[i] == addrs[i-1] {
				return fmt.Errorf("trace: task %d declares address %#x twice", t.ID, addrs[i])
			}
		}
	}
	return nil
}

// Trace is an in-memory task trace in submission order.
type Trace struct {
	// Name describes the workload the trace was captured from.
	Name string
	// Tasks holds the task descriptors in submission order.
	Tasks []TaskSpec
}

// Stats summarises a trace.
type Stats struct {
	Tasks       int
	TotalExec   sim.Time
	TotalMem    sim.Time
	MeanExec    sim.Time
	MeanMem     sim.Time
	MaxParams   int
	TotalParams int
}

// Stats computes summary statistics over the trace.
func (tr *Trace) Stats() Stats {
	var s Stats
	s.Tasks = len(tr.Tasks)
	for i := range tr.Tasks {
		t := &tr.Tasks[i]
		s.TotalExec += t.Exec
		s.TotalMem += t.MemRead + t.MemWrite
		s.TotalParams += len(t.Params)
		if len(t.Params) > s.MaxParams {
			s.MaxParams = len(t.Params)
		}
	}
	if s.Tasks > 0 {
		s.MeanExec = s.TotalExec / sim.Time(s.Tasks)
		s.MeanMem = s.TotalMem / sim.Time(s.Tasks)
	}
	return s
}

// Validate checks every task in the trace.
func (tr *Trace) Validate() error {
	for i := range tr.Tasks {
		if err := tr.Tasks[i].Validate(); err != nil {
			return err
		}
	}
	return nil
}
