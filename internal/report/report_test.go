package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("My Title", "name", "value")
	tbl.AddRow("short", 1)
	tbl.AddRow("a-much-longer-name", 123.456)
	tbl.AddNote("a note with %d args", 2)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "My Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "a-much-longer-name") {
		t.Error("missing row")
	}
	if !strings.Contains(out, "123.5") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "note: a note with 2 args") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, header, separator, 2 rows, note.
	if len(lines) != 6 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: header and rows share the first column width.
	if !strings.Contains(lines[1], "name") || !strings.HasPrefix(lines[2], "----") {
		t.Errorf("header/separator wrong:\n%s", out)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tbl := NewTable("T", "a", "b")
	tbl.AddRow("x,y", `quote"d`)
	tbl.AddNote("n")
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("comma not escaped: %s", out)
	}
	if !strings.Contains(out, `"quote""d"`) {
		t.Errorf("quote not escaped: %s", out)
	}
	if !strings.HasPrefix(out, "# T\n") {
		t.Errorf("title comment missing: %s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		143:     "143",
		54.3219: "54.32",
		123.456: "123.5",
		0.12345: "0.1235",
		-7:      "-7",
		1024:    "1024",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(1, 10)
	s.Add(2, 20)
	if y, ok := s.YAt(2); !ok || y != 20 {
		t.Errorf("YAt(2) = %v %v", y, ok)
	}
	if _, ok := s.YAt(3); ok {
		t.Error("YAt(3) should miss")
	}
	if s.Max() != 20 {
		t.Errorf("Max = %v", s.Max())
	}
	if (&Series{}).Max() != 0 {
		t.Error("empty Max should be 0")
	}
}

func TestSeriesTable(t *testing.T) {
	a := &Series{Name: "A"}
	a.Add(1, 1.5)
	a.Add(2, 3)
	b := &Series{Name: "B"}
	b.Add(2, 4)
	tbl := SeriesTable("title", "x", a, b)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Error("missing series columns")
	}
	// B has no point at x=1: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing placeholder:\n%s", out)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d", tbl.NumRows())
	}
}
