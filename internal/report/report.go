// Package report renders experiment results as aligned text tables and CSV,
// the output format of cmd/nexusbench and the benchmark harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table with an optional title.
// Tables built from parameter sweeps (SeriesTable) also carry their series
// so callers can render charts.
type Table struct {
	Title   string
	Columns []string
	Series  []*Series
	rows    [][]string
	notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case float32:
			row[i] = FormatFloat(float64(v))
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote printed under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to be useful.
func FormatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (title and notes as comments).
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(esc(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Series is a named sequence of (x, y) points, one per measurement in a
// parameter sweep — the unit a paper figure's curve corresponds to.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// YAt returns the y value for the given x, or ok=false.
func (s *Series) YAt(x float64) (float64, bool) {
	for i, v := range s.X {
		if v == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Max returns the largest y value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.Y {
		if v > m {
			m = v
		}
	}
	return m
}

// SeriesTable renders several series sharing an x axis as one table.
func SeriesTable(title, xLabel string, series ...*Series) *Table {
	cols := []string{xLabel}
	for _, s := range series {
		cols = append(cols, s.Name)
	}
	t := NewTable(title, cols...)
	t.Series = series
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		row := make([]interface{}, 0, len(cols))
		row = append(row, x)
		for _, s := range series {
			if y, ok := s.YAt(x); ok {
				row = append(row, y)
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}
