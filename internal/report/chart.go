package report

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders series as a plain-text scatter chart, the closest an
// offline terminal gets to the paper's figures. X values are plotted on a
// log2 axis when they span more than one order of magnitude (core counts
// and table sizes are powers of two), linearly otherwise. Each series gets
// a distinct marker; colliding points show the later series' marker.
func Chart(title string, width, height int, series ...*Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Collect ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := 0.0
	points := 0
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return title + "\n(no data)\n"
	}
	logX := minX > 0 && maxX/minX >= 8
	xPos := func(x float64) int {
		if maxX == minX {
			return 0
		}
		f := 0.0
		if logX {
			f = (math.Log2(x) - math.Log2(minX)) / (math.Log2(maxX) - math.Log2(minX))
		} else {
			f = (x - minX) / (maxX - minX)
		}
		return int(math.Round(f * float64(width-1)))
	}
	if maxY <= 0 {
		maxY = 1
	}
	yPos := func(y float64) int {
		f := y / maxY
		row := int(math.Round(f * float64(height-1)))
		return height - 1 - row // row 0 at the top
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			grid[yPos(s.Y[i])][xPos(s.X[i])] = m
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.5g ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.5g ", 0.0)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	axis := "lin"
	if logX {
		axis = "log2"
	}
	fmt.Fprintf(&b, "         x: %.5g .. %.5g (%s)   ", minX, maxX, axis)
	for si, s := range series {
		if si > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%c=%s", markers[si%len(markers)], s.Name)
	}
	b.WriteString("\n")
	return b.String()
}
