package report

import (
	"strings"
	"testing"
)

func TestChartBasic(t *testing.T) {
	a := &Series{Name: "ideal"}
	b := &Series{Name: "measured"}
	for _, c := range []float64{1, 2, 4, 8, 16, 32, 64} {
		a.Add(c, c)
		b.Add(c, c*0.8)
	}
	out := Chart("speedup", 40, 10, a, b)
	if !strings.Contains(out, "speedup") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "*=ideal") || !strings.Contains(out, "o=measured") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "log2") {
		t.Errorf("x range 1..64 should use log2 axis:\n%s", out)
	}
	// Max y label appears.
	if !strings.Contains(out, "64") {
		t.Errorf("missing y max label:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 { // title + 10 rows + axis + legend
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestChartLinearAxis(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(1, 5)
	s.Add(2, 7)
	out := Chart("t", 20, 5, s)
	if !strings.Contains(out, "lin") {
		t.Errorf("narrow x range should use linear axis:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("empty", 20, 5, &Series{Name: "none"})
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestChartTinyDimensionsClamped(t *testing.T) {
	s := &Series{Name: "s"}
	s.Add(1, 1)
	out := Chart("t", 1, 1, s)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestChartMonotoneMapping(t *testing.T) {
	// Higher y must never render on a lower row than smaller y.
	s := &Series{Name: "s"}
	s.Add(1, 1)
	s.Add(2, 100)
	out := Chart("t", 10, 8, s)
	lines := strings.Split(out, "\n")
	// Both points share the marker; the top-most occurrence is y=100 and
	// must be above the bottom-most (y=1).
	first, last := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "|") && strings.Contains(l, "*") {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || first == last {
		t.Fatalf("expected two distinct rows:\n%s", out)
	}
}
