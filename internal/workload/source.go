// Package workload generates the task streams used to evaluate Nexus++:
// the four dependency patterns of the paper's Figure 4 (H.264 wavefront,
// horizontal chains, vertical chains, independent tasks) and the Gaussian
// elimination with partial pivoting task graph of Figure 5 / Table II.
//
// Sources are streaming: a Gaussian run for a 5000x5000 matrix contains
// 12,502,499 tasks, so generators produce TaskSpecs on demand in submission
// order instead of materialising the whole trace.
package workload

import (
	"fmt"

	"nexuspp/internal/trace"
)

// Source produces tasks in submission order. It is the feed consumed by
// every master-core model in this repository.
type Source interface {
	// Name identifies the workload for reports.
	Name() string
	// Total returns the number of tasks the source will produce.
	Total() int
	// Next returns the next task in submission order; ok is false after the
	// last task.
	Next() (t trace.TaskSpec, ok bool)
	// Reset rewinds the source to the first task, reproducing the identical
	// stream (generators reseed their PRNGs).
	Reset()
}

// traceSource replays an in-memory trace.
type traceSource struct {
	tr  *trace.Trace
	pos int
}

// FromTrace returns a Source replaying tr in order.
func FromTrace(tr *trace.Trace) Source { return &traceSource{tr: tr} }

func (s *traceSource) Name() string { return s.tr.Name }
func (s *traceSource) Total() int   { return len(s.tr.Tasks) }
func (s *traceSource) Reset()       { s.pos = 0 }

func (s *traceSource) Next() (trace.TaskSpec, bool) {
	if s.pos >= len(s.tr.Tasks) {
		return trace.TaskSpec{}, false
	}
	t := s.tr.Tasks[s.pos]
	s.pos++
	return t, true
}

// Collect materialises a source into a Trace (the source is Reset first and
// left exhausted). Intended for tests, small workloads and cmd/tracegen;
// do not call it on multi-million-task Gaussian sources.
func Collect(s Source) *trace.Trace {
	s.Reset()
	tr := &trace.Trace{Name: s.Name()}
	if n := s.Total(); n > 0 {
		tr.Tasks = make([]trace.TaskSpec, 0, n)
	}
	for {
		t, ok := s.Next()
		if !ok {
			break
		}
		tr.Tasks = append(tr.Tasks, t)
	}
	return tr
}

// CheckExhaustive verifies that a source produces exactly Total tasks with
// sequential IDs and valid specs. It is shared by the test suites.
func CheckExhaustive(s Source) error {
	s.Reset()
	n := 0
	for {
		t, ok := s.Next()
		if !ok {
			break
		}
		if t.ID != uint64(n) {
			return fmt.Errorf("workload %s: task %d has ID %d", s.Name(), n, t.ID)
		}
		if err := t.Validate(); err != nil {
			return fmt.Errorf("workload %s: %v", s.Name(), err)
		}
		n++
	}
	if n != s.Total() {
		return fmt.Errorf("workload %s: produced %d tasks, Total() = %d", s.Name(), n, s.Total())
	}
	if _, ok := s.Next(); ok {
		return fmt.Errorf("workload %s: Next() produced a task after exhaustion", s.Name())
	}
	return nil
}
