package workload

import (
	"fmt"

	"nexuspp/internal/trace"
)

// Pattern selects one of the dependency patterns of the paper's Figure 4.
type Pattern uint8

const (
	// PatternIndependent has no inter-task dependencies; the paper uses it
	// "to measure the maximum scalability of Nexus++".
	PatternIndependent Pattern = iota
	// PatternWavefront is the H.264 macroblock pattern of Figure 4(a):
	// block (r,c) depends on its left neighbour (r,c-1) and its up-right
	// neighbour (r-1,c+1), producing the ramping parallelism profile.
	PatternWavefront
	// PatternHorizontal is Figure 4(b): chains along the task-generation
	// direction; block (r,c) depends on (r,c-1).
	PatternHorizontal
	// PatternVertical is Figure 4(c): chains across the task-generation
	// direction; block (r,c) depends on (r-1,c).
	PatternVertical
)

// String returns a short name for the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternIndependent:
		return "independent"
	case PatternWavefront:
		return "wavefront"
	case PatternHorizontal:
		return "horizontal"
	case PatternVertical:
		return "vertical"
	default:
		return fmt.Sprintf("pattern(%d)", uint8(p))
	}
}

// Default grid geometry: one full-HD frame of 16x16-pixel macroblocks,
// 1920/16 x 1088/16, iterated as in the paper's Listing 1 (outer dimension
// 120, inner dimension 68, 8160 tasks).
const (
	DefaultRows = 120
	DefaultCols = 68
	// BlockBytes is the size of one 16x16 macroblock of 4-byte pixels.
	BlockBytes = 16 * 16 * 4
)

// GridConfig parameterises the Figure 4 generators.
type GridConfig struct {
	Pattern Pattern
	// Rows and Cols give the grid geometry; zero values select the paper's
	// 120x68 full-HD frame.
	Rows, Cols int
	// Seed drives the per-task time sampler.
	Seed uint64
	// Times overrides the sampler; nil selects the H.264 statistics
	// (11.8us execution, 7.5us memory) with Seed.
	Times trace.TimeSampler
	// BaseAddr is the address of block (0,0); blocks are laid out row-major.
	BaseAddr uint64
}

func (c *GridConfig) fill() {
	if c.Rows == 0 {
		c.Rows = DefaultRows
	}
	if c.Cols == 0 {
		c.Cols = DefaultCols
	}
	if c.BaseAddr == 0 {
		c.BaseAddr = 0x1000_0000
	}
}

type gridSource struct {
	cfg   GridConfig
	times trace.TimeSampler
	next  int
}

// Grid returns a Source for one of the Figure 4 patterns.
func Grid(cfg GridConfig) Source {
	cfg.fill()
	s := &gridSource{cfg: cfg}
	s.Reset()
	return s
}

// Independent returns the paper's independent-task benchmark on the default
// full-HD grid.
func Independent(seed uint64) Source {
	return Grid(GridConfig{Pattern: PatternIndependent, Seed: seed})
}

// Wavefront returns the H.264 wavefront benchmark (Figure 4a).
func Wavefront(seed uint64) Source {
	return Grid(GridConfig{Pattern: PatternWavefront, Seed: seed})
}

// HorizontalChains returns the Figure 4(b) benchmark.
func HorizontalChains(seed uint64) Source {
	return Grid(GridConfig{Pattern: PatternHorizontal, Seed: seed})
}

// VerticalChains returns the Figure 4(c) benchmark.
func VerticalChains(seed uint64) Source {
	return Grid(GridConfig{Pattern: PatternVertical, Seed: seed})
}

func (s *gridSource) Name() string {
	return fmt.Sprintf("h264-%s-%dx%d", s.cfg.Pattern, s.cfg.Rows, s.cfg.Cols)
}

func (s *gridSource) Total() int { return s.cfg.Rows * s.cfg.Cols }

func (s *gridSource) Reset() {
	s.next = 0
	if s.cfg.Times != nil {
		s.times = s.cfg.Times
	} else {
		s.times = trace.NewH264Times(s.cfg.Seed)
	}
}

// blockAddr returns the base address of block (r,c).
func (s *gridSource) blockAddr(r, c int) uint64 {
	return s.cfg.BaseAddr + uint64(r*s.cfg.Cols+c)*BlockBytes
}

func (s *gridSource) Next() (trace.TaskSpec, bool) {
	if s.next >= s.Total() {
		return trace.TaskSpec{}, false
	}
	id := s.next
	s.next++
	r := id / s.cfg.Cols
	c := id % s.cfg.Cols
	exec, mr, mw := s.times.Sample()
	t := trace.TaskSpec{
		ID:       uint64(id),
		Func:     uint32(s.cfg.Pattern),
		Exec:     exec,
		MemRead:  mr,
		MemWrite: mw,
	}
	self := trace.Param{Addr: s.blockAddr(r, c), Size: BlockBytes, Mode: trace.InOut}
	switch s.cfg.Pattern {
	case PatternIndependent:
		t.Params = []trace.Param{self}
	case PatternWavefront:
		// decode(left=X[r][c-1], upright=X[r-1][c+1], this=X[r][c])
		t.Params = make([]trace.Param, 0, 3)
		if c > 0 {
			t.Params = append(t.Params, trace.Param{Addr: s.blockAddr(r, c-1), Size: BlockBytes, Mode: trace.In})
		}
		if r > 0 && c < s.cfg.Cols-1 {
			t.Params = append(t.Params, trace.Param{Addr: s.blockAddr(r-1, c+1), Size: BlockBytes, Mode: trace.In})
		}
		t.Params = append(t.Params, self)
	case PatternHorizontal:
		t.Params = make([]trace.Param, 0, 2)
		if c > 0 {
			t.Params = append(t.Params, trace.Param{Addr: s.blockAddr(r, c-1), Size: BlockBytes, Mode: trace.In})
		}
		t.Params = append(t.Params, self)
	case PatternVertical:
		t.Params = make([]trace.Param, 0, 2)
		if r > 0 {
			t.Params = append(t.Params, trace.Param{Addr: s.blockAddr(r-1, c), Size: BlockBytes, Mode: trace.In})
		}
		t.Params = append(t.Params, self)
	default:
		panic("workload: unknown pattern " + s.cfg.Pattern.String())
	}
	return t, true
}
