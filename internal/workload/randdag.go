package workload

import (
	"fmt"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
)

// RandomDAGConfig parameterises the seeded random-DAG generator: an
// irregular dependency graph with controllable fan-in and fan-out, the
// workload shape the dense regular kernels (Cholesky, Gaussian, wavefront)
// cannot produce. Each task writes one fresh segment and reads a random set
// of recently written segments:
//
//   - FanIn bounds the in-degree: task t draws uniform [0, FanIn] distinct
//     predecessors.
//   - Window bounds the fan-out indirectly: predecessors are drawn from the
//     last Window tasks, so one segment can be read by at most the Window
//     tasks that follow it — a small window makes deep narrow chains, a
//     large one wide diamonds.
//
// The stream is a deterministic function of Seed: Reset reseeds the PRNG,
// so replays, the dependency-graph oracle and every engine see the
// identical DAG.
type RandomDAGConfig struct {
	// Tasks is the number of tasks; zero selects 4096.
	Tasks int
	// FanIn is the maximum in-degree; zero selects 3.
	FanIn int
	// Window is how far back predecessors may reach; zero selects 64.
	Window int
	// Seed drives both the structure and the per-task durations.
	Seed uint64
	// ExecMean is the mean execution time (truncated normal, sigma =
	// mean/2, clamped to [mean/8, mean*4]); zero selects 2us.
	ExecMean sim.Time
	// BaseAddr is the address of task 0's output segment.
	BaseAddr uint64
}

// randDAGCellBytes is the size of one task's output segment.
const randDAGCellBytes = 64

func (c *RandomDAGConfig) fill() {
	if c.Tasks <= 0 {
		c.Tasks = 4096
	}
	if c.FanIn <= 0 {
		c.FanIn = 3
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.ExecMean == 0 {
		c.ExecMean = 2 * sim.Microsecond
	}
	if c.BaseAddr == 0 {
		c.BaseAddr = 0x3000_0000
	}
}

type randDAGSource struct {
	cfg  RandomDAGConfig
	rng  *sim.Rand
	next int
}

// RandomDAG returns the seeded random-DAG workload for cfg.
func RandomDAG(cfg RandomDAGConfig) Source {
	cfg.fill()
	s := &randDAGSource{cfg: cfg}
	s.Reset()
	return s
}

func (s *randDAGSource) Name() string {
	return fmt.Sprintf("randdag-%d-f%d-w%d", s.cfg.Tasks, s.cfg.FanIn, s.cfg.Window)
}

func (s *randDAGSource) Total() int { return s.cfg.Tasks }

func (s *randDAGSource) Reset() {
	s.next = 0
	s.rng = sim.NewRand(s.cfg.Seed)
}

func (s *randDAGSource) segAddr(id int) uint64 {
	return s.cfg.BaseAddr + uint64(id)*randDAGCellBytes
}

func (s *randDAGSource) Next() (trace.TaskSpec, bool) {
	if s.next >= s.cfg.Tasks {
		return trace.TaskSpec{}, false
	}
	id := s.next
	s.next++
	exec := sim.Time(s.rng.TruncNorm(
		float64(s.cfg.ExecMean), float64(s.cfg.ExecMean)/2,
		float64(s.cfg.ExecMean)/8, float64(s.cfg.ExecMean)*4))
	t := trace.TaskSpec{ID: uint64(id), Exec: exec}
	window := s.cfg.Window
	if window > id {
		window = id
	}
	want := s.rng.Intn(s.cfg.FanIn + 1)
	if want > window {
		want = window
	}
	t.Params = make([]trace.Param, 0, want+1)
	if want > 0 {
		// Draw distinct predecessors from [id-window, id-1]. want is tiny
		// relative to the window in any sane configuration, so rejection
		// sampling terminates quickly; a duplicate draw is simply redrawn.
		seen := make(map[int]struct{}, want)
		for len(seen) < want && len(seen) < window {
			p := id - 1 - s.rng.Intn(window)
			if _, dup := seen[p]; dup {
				continue
			}
			seen[p] = struct{}{}
			t.Params = append(t.Params, trace.Param{
				Addr: s.segAddr(p),
				Size: randDAGCellBytes,
				Mode: trace.In,
			})
		}
	}
	t.Params = append(t.Params, trace.Param{
		Addr: s.segAddr(id),
		Size: randDAGCellBytes,
		Mode: trace.Out,
	})
	return t, true
}
