package workload

import (
	"testing"
	"testing/quick"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
)

func TestStarPUDepsDefaults(t *testing.T) {
	s := StarPUDeps(StarPUDepsConfig{})
	if s.Total() != 32*64 {
		t.Fatalf("Total = %d, want %d", s.Total(), 32*64)
	}
	if s.Name() != "starpu-deps-32x64x3" {
		t.Errorf("Name = %q", s.Name())
	}
	if err := CheckExhaustive(s); err != nil {
		t.Fatal(err)
	}
}

// TestStarPUDepsWrapAround pins the wrap-around in-dep rule against hand
// computed values: task (i, j) reads cells i_before(k) of column j-1 with
// i_before(k) = Rows - (((Rows-i-1)+k) % Rows) - 1.
func TestStarPUDepsWrapAround(t *testing.T) {
	const rows, cols, edges = 4, 3, 3
	tr := Collect(StarPUDeps(StarPUDepsConfig{Rows: rows, Cols: cols, Edges: edges}))
	if len(tr.Tasks) != rows*cols {
		t.Fatalf("tasks = %d", len(tr.Tasks))
	}
	// Column 0: a single Out param, no in-deps.
	for i := 0; i < rows; i++ {
		task := tr.Tasks[i]
		if len(task.Params) != 1 || task.Params[0].Mode != trace.Out {
			t.Fatalf("column-0 task %d params = %+v, want single Out", i, task.Params)
		}
	}
	base := tr.Tasks[0].Params[0].Addr
	cell := func(i, j int) uint64 { return base + uint64(j*rows+i)*starpuCellBytes }
	// Task (i=2, j=1): i_before(k) for k=0,1,2 is 2, 1, 0.
	task := tr.Tasks[1*rows+2]
	wantIn := []uint64{cell(2, 0), cell(1, 0), cell(0, 0)}
	if len(task.Params) != edges+1 {
		t.Fatalf("task (2,1) params = %d, want %d", len(task.Params), edges+1)
	}
	for k, addr := range wantIn {
		if task.Params[k].Addr != addr || task.Params[k].Mode != trace.In {
			t.Errorf("task (2,1) in-dep %d = %+v, want addr %#x", k, task.Params[k], addr)
		}
	}
	if task.Params[edges].Addr != cell(2, 1) || task.Params[edges].Mode != trace.Out {
		t.Errorf("task (2,1) self = %+v", task.Params[edges])
	}
	// Task (i=0, j=1): the wrap case — i_before(k) is 0, 3, 2.
	task = tr.Tasks[1*rows+0]
	wantIn = []uint64{cell(0, 0), cell(3, 0), cell(2, 0)}
	for k, addr := range wantIn {
		if task.Params[k].Addr != addr {
			t.Errorf("task (0,1) in-dep %d = %#x, want %#x", k, task.Params[k].Addr, addr)
		}
	}
}

func TestStarPUDepsEdgesClamped(t *testing.T) {
	s := StarPUDeps(StarPUDepsConfig{Rows: 2, Cols: 3, Edges: 9})
	if err := CheckExhaustive(s); err != nil {
		t.Fatal(err) // duplicate addresses would fail Validate
	}
	tr := Collect(s)
	if n := len(tr.Tasks[2].Params); n != 3 {
		t.Errorf("column-1 task params = %d, want 3 (2 clamped in-deps + self)", n)
	}
}

func TestRandomDAGDeterministicAcrossReset(t *testing.T) {
	s := RandomDAG(RandomDAGConfig{Tasks: 300, FanIn: 4, Window: 16, Seed: 11})
	if err := CheckExhaustive(s); err != nil {
		t.Fatal(err)
	}
	a := Collect(s)
	b := Collect(RandomDAG(RandomDAGConfig{Tasks: 300, FanIn: 4, Window: 16, Seed: 11}))
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("task counts differ: %d vs %d", len(a.Tasks), len(b.Tasks))
	}
	for i := range a.Tasks {
		ta, tb := a.Tasks[i], b.Tasks[i]
		if ta.Exec != tb.Exec || len(ta.Params) != len(tb.Params) {
			t.Fatalf("task %d differs between identically seeded sources", i)
		}
		for j := range ta.Params {
			if ta.Params[j] != tb.Params[j] {
				t.Fatalf("task %d param %d differs", i, j)
			}
		}
	}
	c := Collect(RandomDAG(RandomDAGConfig{Tasks: 300, FanIn: 4, Window: 16, Seed: 12}))
	same := true
	for i := range a.Tasks {
		if a.Tasks[i].Exec != c.Tasks[i].Exec || len(a.Tasks[i].Params) != len(c.Tasks[i].Params) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical stream")
	}
}

// Property: random DAGs are valid for any small configuration, in-deps stay
// inside the window, and every task writes its own fresh segment.
func TestRandomDAGProperty(t *testing.T) {
	prop := func(nRaw, fanRaw, winRaw uint8, seed uint64) bool {
		cfg := RandomDAGConfig{
			Tasks:  int(nRaw%200) + 1,
			FanIn:  int(fanRaw%6) + 1,
			Window: int(winRaw%30) + 1,
			Seed:   seed,
		}
		s := RandomDAG(cfg)
		if CheckExhaustive(s) != nil {
			return false
		}
		s.Reset()
		for {
			task, ok := s.Next()
			if !ok {
				return true
			}
			self := task.Params[len(task.Params)-1]
			if self.Mode != trace.Out {
				return false
			}
			for _, p := range task.Params[:len(task.Params)-1] {
				if p.Mode != trace.In {
					return false
				}
				delta := int(int64(self.Addr-p.Addr) / randDAGCellBytes)
				if delta < 1 || delta > cfg.Window {
					return false
				}
			}
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSpatialSkewStructure(t *testing.T) {
	s := SpatialSkew(SpatialSkewConfig{Rows: 3, Cols: 3, Sweeps: 2, Seed: 5})
	if s.Total() != 18 {
		t.Fatalf("Total = %d, want 18", s.Total())
	}
	if err := CheckExhaustive(s); err != nil {
		t.Fatal(err)
	}
	tr := Collect(s)
	// Center tile (1,1): 4 neighbours + self.
	if n := len(tr.Tasks[4].Params); n != 5 {
		t.Errorf("center tile params = %d, want 5", n)
	}
	// Corner tile (0,0): 2 neighbours + self.
	if n := len(tr.Tasks[0].Params); n != 3 {
		t.Errorf("corner tile params = %d, want 3", n)
	}
	// Self param is InOut, neighbours are In.
	task := tr.Tasks[4]
	if task.Params[len(task.Params)-1].Mode != trace.InOut {
		t.Error("self param is not inout")
	}
	for _, p := range task.Params[:len(task.Params)-1] {
		if p.Mode != trace.In {
			t.Error("neighbour param is not in")
		}
	}
	// Second sweep repeats the same addresses (same tiles).
	if tr.Tasks[9].Params[len(tr.Tasks[9].Params)-1].Addr !=
		tr.Tasks[0].Params[len(tr.Tasks[0].Params)-1].Addr {
		t.Error("sweep 1 tile (0,0) does not alias sweep 0 tile (0,0)")
	}
}

func TestSpatialSkewCostsAreSkewedAndBounded(t *testing.T) {
	cfg := SpatialSkewConfig{Rows: 16, Cols: 16, Sweeps: 4, Seed: 9,
		BaseExec: sim.Microsecond, Alpha: 1.1, MaxFactor: 50}
	tr := Collect(SpatialSkew(cfg))
	var max, sum sim.Time
	for _, task := range tr.Tasks {
		if task.Exec < cfg.BaseExec {
			t.Fatalf("task %d exec %v below base %v", task.ID, task.Exec, cfg.BaseExec)
		}
		if task.Exec > sim.Time(float64(cfg.BaseExec)*cfg.MaxFactor)+1 {
			t.Fatalf("task %d exec %v above clamp", task.ID, task.Exec)
		}
		if task.Exec > max {
			max = task.Exec
		}
		sum += task.Exec
	}
	mean := sum / sim.Time(len(tr.Tasks))
	if max < 5*mean {
		t.Errorf("max exec %v is only %.1fx the mean %v — not a heavy tail",
			max, float64(max)/float64(mean), mean)
	}
}
