package workload

import (
	"fmt"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
)

// Blocked (tiled) Cholesky factorisation — the canonical StarSs/SMPSs
// application beyond the paper's benchmarks, included as an extension (the
// paper's introduction motivates StarSs with exactly this class of dense
// linear-algebra task graphs). The right-looking algorithm over a TxT grid
// of BxB tiles generates four task kinds per step k:
//
//	POTRF(k):    inout A[k][k]                      (factor the diagonal)
//	TRSM(i,k):   in A[k][k],  inout A[i][k]   i>k   (panel solve)
//	SYRK(i,k):   in A[i][k],  inout A[i][i]   i>k   (diagonal update)
//	GEMM(i,j,k): in A[i][k], A[j][k], inout A[i][j]  i>j>k (trailing update)
//
// The graph mixes chains (POTRF -> TRSM -> next POTRF), wide fan-out (one
// POTRF feeds T-k TRSMs) and heavy inout reuse (every A[i][j] is rewritten
// T times), exercising all the Dependence Table mechanisms at once.
type CholeskyConfig struct {
	// Tiles is the grid dimension T (the matrix is T*B x T*B).
	Tiles int
	// TileSize is B, the tile dimension; zero selects 64.
	TileSize int
	// CoreGFLOPS converts tile FLOP counts into durations; zero selects 2.
	CoreGFLOPS float64
	// FloatBytes is the element size; zero selects 4.
	FloatBytes int
	// MemChunkBytes/MemChunkTime give the off-chip quantum; zero selects
	// the paper's 128 bytes / 12 ns.
	MemChunkBytes int
	MemChunkTime  sim.Time
	// BaseAddr is the address of tile (0,0).
	BaseAddr uint64
}

func (c *CholeskyConfig) fill() {
	if c.TileSize == 0 {
		c.TileSize = 64
	}
	if c.CoreGFLOPS == 0 {
		c.CoreGFLOPS = 2.0
	}
	if c.FloatBytes == 0 {
		c.FloatBytes = 4
	}
	if c.MemChunkBytes == 0 {
		c.MemChunkBytes = 128
	}
	if c.MemChunkTime == 0 {
		c.MemChunkTime = 12 * sim.Nanosecond
	}
	if c.BaseAddr == 0 {
		c.BaseAddr = 0x8000_0000
	}
}

// CholeskyTaskCount returns the number of tasks a T-tile factorisation
// generates: T potrf + T(T-1)/2 trsm + T(T-1)/2 syrk + T(T-1)(T-2)/6 gemm.
func CholeskyTaskCount(t int) int {
	if t < 1 {
		return 0
	}
	return t + t*(t-1)/2 + t*(t-1)/2 + t*(t-1)*(t-2)/6
}

// Cholesky kernel identifiers stored in TaskSpec.Func.
const (
	CholPOTRF = 10
	CholTRSM  = 11
	CholSYRK  = 12
	CholGEMM  = 13
)

type choleskySource struct {
	cfg CholeskyConfig
	id  uint64
	// Cursor over the k-major generation order.
	k, phase, i, j int
}

// Cholesky returns the tiled Cholesky task graph for cfg.
func Cholesky(cfg CholeskyConfig) Source {
	if cfg.Tiles < 1 {
		panic("workload: Cholesky needs Tiles >= 1")
	}
	cfg.fill()
	s := &choleskySource{cfg: cfg}
	s.Reset()
	return s
}

func (s *choleskySource) Name() string {
	return fmt.Sprintf("cholesky-%dx%d-b%d", s.cfg.Tiles, s.cfg.Tiles, s.cfg.TileSize)
}

func (s *choleskySource) Total() int { return CholeskyTaskCount(s.cfg.Tiles) }

func (s *choleskySource) Reset() {
	s.id = 0
	s.k = 0
	s.phase = 0
	s.i = 0
	s.j = 0
}

func (s *choleskySource) tileAddr(i, j int) uint64 {
	bytes := uint64(s.cfg.TileSize * s.cfg.TileSize * s.cfg.FloatBytes)
	return s.cfg.BaseAddr + uint64(i*s.cfg.Tiles+j)*bytes
}

func (s *choleskySource) tileBytes() int {
	return s.cfg.TileSize * s.cfg.TileSize * s.cfg.FloatBytes
}

// kernelTimes converts kernel FLOPs and moved tiles into durations.
func (s *choleskySource) kernelTimes(flops float64, tilesRead, tilesWritten int) (exec, mr, mw sim.Time) {
	exec = sim.Time(flops / s.cfg.CoreGFLOPS * float64(sim.Nanosecond))
	chunk := func(bytes int) sim.Time {
		n := (bytes + s.cfg.MemChunkBytes - 1) / s.cfg.MemChunkBytes
		return sim.Time(n) * s.cfg.MemChunkTime
	}
	mr = chunk(tilesRead * s.tileBytes())
	mw = chunk(tilesWritten * s.tileBytes())
	return exec, mr, mw
}

func (s *choleskySource) Next() (trace.TaskSpec, bool) {
	T := s.cfg.Tiles
	if s.k >= T {
		return trace.TaskSpec{}, false
	}
	b := float64(s.cfg.TileSize)
	size := uint32(s.tileBytes())
	t := trace.TaskSpec{ID: s.id}
	k := s.k
	switch s.phase {
	case 0: // POTRF(k)
		t.Func = CholPOTRF
		t.Exec, t.MemRead, t.MemWrite = s.kernelTimes(b*b*b/3, 1, 1)
		t.Params = []trace.Param{{Addr: s.tileAddr(k, k), Size: size, Mode: trace.InOut}}
		s.phase, s.i = 1, k+1
	case 1: // TRSM(i,k)
		i := s.i
		t.Func = CholTRSM
		t.Exec, t.MemRead, t.MemWrite = s.kernelTimes(b*b*b, 2, 1)
		t.Params = []trace.Param{
			{Addr: s.tileAddr(k, k), Size: size, Mode: trace.In},
			{Addr: s.tileAddr(i, k), Size: size, Mode: trace.InOut},
		}
		s.i++
	case 2: // SYRK(i,k)
		i := s.i
		t.Func = CholSYRK
		t.Exec, t.MemRead, t.MemWrite = s.kernelTimes(b*b*b, 2, 1)
		t.Params = []trace.Param{
			{Addr: s.tileAddr(i, k), Size: size, Mode: trace.In},
			{Addr: s.tileAddr(i, i), Size: size, Mode: trace.InOut},
		}
		s.i++
	case 3: // GEMM(i,j,k)
		i, j := s.i, s.j
		t.Func = CholGEMM
		t.Exec, t.MemRead, t.MemWrite = s.kernelTimes(2*b*b*b, 3, 1)
		t.Params = []trace.Param{
			{Addr: s.tileAddr(i, k), Size: size, Mode: trace.In},
			{Addr: s.tileAddr(j, k), Size: size, Mode: trace.In},
			{Addr: s.tileAddr(i, j), Size: size, Mode: trace.InOut},
		}
		s.j++
		if s.j >= i {
			s.i++
			s.j = k + 1
		}
	}
	s.advance()
	s.id++
	return t, true
}

// advance skips exhausted (or empty, near the factorisation's end) phases
// until the cursor points at a valid next task or past the last step.
func (s *choleskySource) advance() {
	T := s.cfg.Tiles
	for {
		switch s.phase {
		case 0:
			return // POTRF(k) is valid whenever k < T (checked by Next)
		case 1, 2:
			if s.i <= T-1 {
				return
			}
			if s.phase == 1 {
				s.phase, s.i = 2, s.k+1
			} else {
				s.phase, s.i, s.j = 3, s.k+2, s.k+1
			}
		case 3:
			if s.i <= T-1 {
				return
			}
			s.k++
			s.phase = 0
			return
		}
	}
}
