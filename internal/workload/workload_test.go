package workload

import (
	"math"
	"testing"
	"testing/quick"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
)

func TestPatternString(t *testing.T) {
	if PatternIndependent.String() != "independent" ||
		PatternWavefront.String() != "wavefront" ||
		PatternHorizontal.String() != "horizontal" ||
		PatternVertical.String() != "vertical" {
		t.Error("pattern names wrong")
	}
	if Pattern(99).String() != "pattern(99)" {
		t.Error("unknown pattern name wrong")
	}
}

func TestGridDefaults(t *testing.T) {
	s := Wavefront(1)
	if s.Total() != 8160 {
		t.Fatalf("Total = %d, want 8160 (120x68 macroblocks)", s.Total())
	}
	if s.Name() != "h264-wavefront-120x68" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestGridSourcesExhaustive(t *testing.T) {
	for _, s := range []Source{
		Independent(1), Wavefront(2), HorizontalChains(3), VerticalChains(4),
	} {
		if err := CheckExhaustive(s); err != nil {
			t.Error(err)
		}
	}
}

func TestGridReset(t *testing.T) {
	s := Wavefront(7)
	first, _ := s.Next()
	for i := 0; i < 10; i++ {
		s.Next()
	}
	s.Reset()
	again, _ := s.Next()
	if first.ID != again.ID || first.Exec != again.Exec || first.MemRead != again.MemRead {
		t.Fatal("Reset did not reproduce the stream")
	}
}

func TestWavefrontDependencyStructure(t *testing.T) {
	s := Grid(GridConfig{Pattern: PatternWavefront, Rows: 3, Cols: 4, Seed: 1})
	tr := Collect(s)
	if len(tr.Tasks) != 12 {
		t.Fatalf("tasks = %d", len(tr.Tasks))
	}
	// Task (0,0): no left, no up-right -> only self.
	if n := len(tr.Tasks[0].Params); n != 1 {
		t.Errorf("task (0,0) params = %d, want 1", n)
	}
	// Task (0,1): left only -> 2 params.
	if n := len(tr.Tasks[1].Params); n != 2 {
		t.Errorf("task (0,1) params = %d, want 2", n)
	}
	// Task (1,1): left and up-right -> 3 params.
	mid := tr.Tasks[1*4+1]
	if n := len(mid.Params); n != 3 {
		t.Fatalf("task (1,1) params = %d, want 3", n)
	}
	// Its inputs must be block (1,0) and block (0,2); self is inout.
	base := uint64(0x1000_0000)
	block := func(r, c int) uint64 { return base + uint64(r*4+c)*BlockBytes }
	if mid.Params[0].Addr != block(1, 0) || mid.Params[0].Mode != trace.In {
		t.Errorf("left param = %+v", mid.Params[0])
	}
	if mid.Params[1].Addr != block(0, 2) || mid.Params[1].Mode != trace.In {
		t.Errorf("upright param = %+v", mid.Params[1])
	}
	if mid.Params[2].Addr != block(1, 1) || mid.Params[2].Mode != trace.InOut {
		t.Errorf("self param = %+v", mid.Params[2])
	}
	// Last column has no up-right input even away from row 0.
	last := tr.Tasks[1*4+3]
	if n := len(last.Params); n != 2 {
		t.Errorf("task (1,3) params = %d, want 2 (no up-right at last column)", n)
	}
}

func TestHorizontalVerticalStructure(t *testing.T) {
	h := Collect(Grid(GridConfig{Pattern: PatternHorizontal, Rows: 2, Cols: 3, Seed: 1}))
	// (r,0) tasks have 1 param, others 2.
	for i, task := range h.Tasks {
		c := i % 3
		want := 2
		if c == 0 {
			want = 1
		}
		if len(task.Params) != want {
			t.Errorf("horizontal task %d params = %d, want %d", i, len(task.Params), want)
		}
	}
	v := Collect(Grid(GridConfig{Pattern: PatternVertical, Rows: 3, Cols: 2, Seed: 1}))
	for i, task := range v.Tasks {
		r := i / 2
		want := 2
		if r == 0 {
			want = 1
		}
		if len(task.Params) != want {
			t.Errorf("vertical task %d params = %d, want %d", i, len(task.Params), want)
		}
	}
}

func TestIndependentHasNoSharedAddresses(t *testing.T) {
	tr := Collect(Independent(5))
	seen := make(map[uint64]bool, len(tr.Tasks))
	for _, task := range tr.Tasks {
		if len(task.Params) != 1 {
			t.Fatalf("independent task has %d params", len(task.Params))
		}
		a := task.Params[0].Addr
		if seen[a] {
			t.Fatalf("address %#x reused", a)
		}
		seen[a] = true
	}
}

func TestGridTimesMatchPaperMeans(t *testing.T) {
	tr := Collect(Wavefront(42))
	st := tr.Stats()
	execUs := st.MeanExec.Microseconds()
	memUs := st.MeanMem.Microseconds()
	if math.Abs(execUs-11.8) > 0.6 {
		t.Errorf("mean exec = %.2fus, want ~11.8us", execUs)
	}
	if math.Abs(memUs-7.5) > 0.5 {
		t.Errorf("mean mem = %.2fus, want ~7.5us", memUs)
	}
}

func TestGaussianTaskCountTableII(t *testing.T) {
	// Table II's task-count column.
	cases := map[int]int{
		250:  31374,
		500:  125249,
		1000: 500499,
		3000: 4501499,
		5000: 12502499,
	}
	for n, want := range cases {
		if got := GaussianTaskCount(n); got != want {
			t.Errorf("GaussianTaskCount(%d) = %d, want %d", n, got, want)
		}
	}
	if GaussianTaskCount(1) != 0 || GaussianTaskCount(0) != 0 {
		t.Error("degenerate sizes should have zero tasks")
	}
}

func TestGaussianMeanWeightNearTableII(t *testing.T) {
	// Equation (1) reproduces Table II's average weight to within a few
	// FLOPs for small matrices (the paper's own numbers drift from Eq. (1)
	// for large N; see EXPERIMENTS.md).
	cases := map[int]float64{250: 167, 500: 334, 1000: 667}
	for n, want := range cases {
		got := GaussianMeanWeight(n)
		if math.Abs(got-want) > 2.0 {
			t.Errorf("GaussianMeanWeight(%d) = %.1f, want ~%.0f", n, got, want)
		}
	}
}

func TestGaussianSourceStructure(t *testing.T) {
	s := Gaussian(GaussianConfig{N: 5})
	if s.Total() != GaussianTaskCount(5) {
		t.Fatalf("Total = %d", s.Total())
	}
	if err := CheckExhaustive(s); err != nil {
		t.Fatal(err)
	}
	tr := Collect(s)
	// Submission order: T11, T21..T51, T22, T32..T52, T33, ...
	// First task (chained model): diagonal with inout row1 only.
	if got := len(tr.Tasks[0].Params); got != 1 {
		t.Errorf("T(1,1) params = %d, want 1", got)
	}
	if tr.Tasks[0].Params[0].Mode != trace.InOut {
		t.Error("T(1,1) first param should be inout row(1)")
	}
	// Full-pivot model: diagonal reads every remaining row.
	full := Collect(Gaussian(GaussianConfig{N: 5, PivotObservesAll: true}))
	if got := len(full.Tasks[0].Params); got != 5 {
		t.Errorf("full-pivot T(1,1) params = %d, want 5", got)
	}
	// Second task: T(2,1) with in row1, inout row2.
	t21 := tr.Tasks[1]
	if len(t21.Params) != 2 || t21.Params[0].Mode != trace.In || t21.Params[1].Mode != trace.InOut {
		t.Errorf("T(2,1) params = %+v", t21.Params)
	}
	// Diagonal weights: W(T(1,1)) = 5, update W(T(j,1)) = 4.
	// exec = W/2GFLOPS -> 2.5ns and 2ns.
	if tr.Tasks[0].Exec != sim.Time(2500*sim.Picosecond) {
		t.Errorf("T(1,1) exec = %v, want 2.5ns", tr.Tasks[0].Exec)
	}
	if tr.Tasks[1].Exec != 2*sim.Nanosecond {
		t.Errorf("T(2,1) exec = %v, want 2ns", tr.Tasks[1].Exec)
	}
}

func TestGaussianWeights(t *testing.T) {
	if GaussianWeight(10, 1, 1) != 10 {
		t.Errorf("W(T(1,1)) for n=10 = %d, want 10", GaussianWeight(10, 1, 1))
	}
	if GaussianWeight(10, 5, 1) != 9 {
		t.Errorf("W(T(5,1)) for n=10 = %d, want 9", GaussianWeight(10, 5, 1))
	}
	if GaussianWeight(10, 9, 9) != 2 {
		t.Errorf("W(T(9,9)) for n=10 = %d, want 2", GaussianWeight(10, 9, 9))
	}
}

func TestGaussianMemTimes(t *testing.T) {
	// W=64 FLOPs * 4B = 256B = 2 chunks of 128B -> 24ns each way.
	s := Gaussian(GaussianConfig{N: 65})
	task, _ := s.Next() // T(1,1): W = 65+1-1 = 65 -> 260B -> 3 chunks.
	if task.MemRead != 36*sim.Nanosecond || task.MemWrite != 36*sim.Nanosecond {
		t.Errorf("T(1,1) mem = %v/%v, want 36ns/36ns", task.MemRead, task.MemWrite)
	}
}

func TestGaussianTruncatedPivot(t *testing.T) {
	s := Gaussian(GaussianConfig{N: 100, PivotObservesAll: true, TruncatedPivot: true, MaxPivotParams: 8})
	task, _ := s.Next()
	if len(task.Params) != 8 {
		t.Fatalf("truncated pivot params = %d, want 8", len(task.Params))
	}
}

func TestGaussianPanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Gaussian(N=1) did not panic")
		}
	}()
	Gaussian(GaussianConfig{N: 1})
}

func TestFromTraceRoundTrip(t *testing.T) {
	orig := Collect(Grid(GridConfig{Pattern: PatternIndependent, Rows: 2, Cols: 2, Seed: 9}))
	s := FromTrace(orig)
	if err := CheckExhaustive(s); err != nil {
		t.Fatal(err)
	}
	if s.Name() != orig.Name {
		t.Errorf("Name = %q", s.Name())
	}
}

// Property: for any small grid geometry, every pattern produces a valid,
// exhaustive stream whose parameter addresses stay inside the grid.
func TestGridProperty(t *testing.T) {
	prop := func(rRaw, cRaw uint8, pRaw uint8, seed uint64) bool {
		rows := int(rRaw%12) + 1
		cols := int(cRaw%12) + 1
		p := Pattern(pRaw % 4)
		s := Grid(GridConfig{Pattern: p, Rows: rows, Cols: cols, Seed: seed})
		if CheckExhaustive(s) != nil {
			return false
		}
		s.Reset()
		base := uint64(0x1000_0000)
		limit := base + uint64(rows*cols)*BlockBytes
		for {
			task, ok := s.Next()
			if !ok {
				break
			}
			for _, prm := range task.Params {
				if prm.Addr < base || prm.Addr >= limit {
					return false
				}
				if (prm.Addr-base)%BlockBytes != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Gaussian sources are exhaustive and deterministic for any small N.
func TestGaussianProperty(t *testing.T) {
	prop := func(nRaw uint8) bool {
		n := int(nRaw%30) + 2
		s := Gaussian(GaussianConfig{N: n})
		if CheckExhaustive(s) != nil {
			return false
		}
		// Determinism across Reset.
		s.Reset()
		a, _ := s.Next()
		s.Reset()
		b, _ := s.Next()
		return a.ID == b.ID && a.Exec == b.Exec && len(a.Params) == len(b.Params)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
