package workload

import (
	"testing"
	"testing/quick"

	"nexuspp/internal/trace"
)

func TestCholeskyTaskCount(t *testing.T) {
	cases := map[int]int{
		1: 1,                 // just POTRF(0)
		2: 1 + 1 + 1 + 0 + 1, // potrf0, trsm, syrk, potrf1
		3: 3 + 3 + 3 + 1,
		4: 4 + 6 + 6 + 4,
	}
	for tiles, want := range cases {
		if got := CholeskyTaskCount(tiles); got != want {
			t.Errorf("CholeskyTaskCount(%d) = %d, want %d", tiles, got, want)
		}
		src := Cholesky(CholeskyConfig{Tiles: tiles})
		if src.Total() != want {
			t.Errorf("Total(%d) = %d, want %d", tiles, src.Total(), want)
		}
	}
	if CholeskyTaskCount(0) != 0 {
		t.Error("zero tiles should have zero tasks")
	}
}

func TestCholeskyExhaustive(t *testing.T) {
	for _, tiles := range []int{1, 2, 3, 5, 8} {
		if err := CheckExhaustive(Cholesky(CholeskyConfig{Tiles: tiles})); err != nil {
			t.Errorf("tiles=%d: %v", tiles, err)
		}
	}
}

func TestCholeskyKernelSequence(t *testing.T) {
	tr := Collect(Cholesky(CholeskyConfig{Tiles: 3}))
	var kinds []uint32
	for _, task := range tr.Tasks {
		kinds = append(kinds, task.Func)
	}
	want := []uint32{
		CholPOTRF, CholTRSM, CholTRSM, CholSYRK, CholSYRK, CholGEMM, // k=0
		CholPOTRF, CholTRSM, CholSYRK, // k=1
		CholPOTRF, // k=2
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds[%d] = %d, want %d (%v)", i, kinds[i], want[i], kinds)
		}
	}
}

func TestCholeskyParamsWellFormed(t *testing.T) {
	tr := Collect(Cholesky(CholeskyConfig{Tiles: 6}))
	for _, task := range tr.Tasks {
		switch task.Func {
		case CholPOTRF:
			if len(task.Params) != 1 || task.Params[0].Mode != trace.InOut {
				t.Fatalf("potrf params = %+v", task.Params)
			}
		case CholTRSM, CholSYRK:
			if len(task.Params) != 2 || task.Params[0].Mode != trace.In || task.Params[1].Mode != trace.InOut {
				t.Fatalf("trsm/syrk params = %+v", task.Params)
			}
		case CholGEMM:
			if len(task.Params) != 3 || task.Params[2].Mode != trace.InOut {
				t.Fatalf("gemm params = %+v", task.Params)
			}
		default:
			t.Fatalf("unknown kernel %d", task.Func)
		}
	}
}

func TestCholeskyKernelCosts(t *testing.T) {
	// B=64, 2 GFLOPS: potrf = 64^3/3 flops -> ~43.7us exec; gemm = 2*64^3
	// -> 262us. Tile = 16KB -> 128 chunks -> 1.536us per tile moved.
	tr := Collect(Cholesky(CholeskyConfig{Tiles: 2, TileSize: 64}))
	potrf := tr.Tasks[0]
	if potrf.Exec <= 0 || potrf.MemRead != potrf.MemWrite {
		t.Fatalf("potrf times: %+v", potrf)
	}
	var gemmExec, trsmExec int64
	for _, task := range Collect(Cholesky(CholeskyConfig{Tiles: 3, TileSize: 64})).Tasks {
		switch task.Func {
		case CholGEMM:
			gemmExec = int64(task.Exec)
		case CholTRSM:
			trsmExec = int64(task.Exec)
		}
	}
	if gemmExec != 2*trsmExec {
		t.Fatalf("gemm exec %d should be 2x trsm exec %d", gemmExec, trsmExec)
	}
}

func TestCholeskyPanicsOnZeroTiles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cholesky(0 tiles) did not panic")
		}
	}()
	Cholesky(CholeskyConfig{})
}

// Property: any tile count yields an exhaustive source whose per-kernel
// counts match the closed forms.
func TestCholeskyCountsProperty(t *testing.T) {
	prop := func(tRaw uint8) bool {
		tiles := int(tRaw%12) + 1
		src := Cholesky(CholeskyConfig{Tiles: tiles})
		if CheckExhaustive(src) != nil {
			return false
		}
		src.Reset()
		counts := map[uint32]int{}
		for {
			task, ok := src.Next()
			if !ok {
				break
			}
			counts[task.Func]++
		}
		return counts[CholPOTRF] == tiles &&
			counts[CholTRSM] == tiles*(tiles-1)/2 &&
			counts[CholSYRK] == tiles*(tiles-1)/2 &&
			counts[CholGEMM] == tiles*(tiles-1)*(tiles-2)/6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
