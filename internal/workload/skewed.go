package workload

import (
	"fmt"
	"math"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
)

// SpatialSkewConfig parameterises the skewed-cost spatial-decomposition
// workload: a Rows x Cols tile grid swept Sweeps times, where every task
// updates its own tile (inout) after reading its four von-Neumann
// neighbours (in). Within one sweep the row-major submission order makes a
// task wait on the up/left neighbours updated earlier in the same sweep and
// on the down/right neighbours of the previous sweep — the classic
// neighbour-exchange stencil of spatial decompositions.
//
// Per-task costs are drawn from a bounded Pareto distribution
// (factor = u^(-1/Alpha), clamped to MaxFactor), so a few tiles are far more
// expensive than the rest. This is the serialization-effects regime (arXiv
// 1401.4441): under a barrier per sweep the heavy tiles idle every core,
// while dependency-aware scheduling lets cheap neighbours of the next sweep
// start early — exactly what makes the resolver's work visible.
type SpatialSkewConfig struct {
	// Rows and Cols give the tile grid; zero values select 16 x 16.
	Rows, Cols int
	// Sweeps is the number of grid sweeps; zero selects 4.
	Sweeps int
	// BaseExec is the minimum per-task execution time; zero selects 2us.
	BaseExec sim.Time
	// Alpha is the Pareto tail index; smaller means heavier skew. Zero
	// selects 1.2.
	Alpha float64
	// MaxFactor clamps the cost multiplier; zero selects 64.
	MaxFactor float64
	// Seed drives the cost sampler.
	Seed uint64
	// BaseAddr is the address of tile (0,0); tiles are laid out row-major.
	BaseAddr uint64
}

// skewTileBytes is the size of one spatial tile (a 32x32 patch of 4-byte
// cells).
const skewTileBytes = 32 * 32 * 4

func (c *SpatialSkewConfig) fill() {
	if c.Rows <= 0 {
		c.Rows = 16
	}
	if c.Cols <= 0 {
		c.Cols = 16
	}
	if c.Sweeps <= 0 {
		c.Sweeps = 4
	}
	if c.BaseExec == 0 {
		c.BaseExec = 2 * sim.Microsecond
	}
	if c.Alpha == 0 {
		c.Alpha = 1.2
	}
	if c.MaxFactor == 0 {
		c.MaxFactor = 64
	}
	if c.BaseAddr == 0 {
		c.BaseAddr = 0x5000_0000
	}
}

type spatialSkewSource struct {
	cfg  SpatialSkewConfig
	rng  *sim.Rand
	next int
}

// SpatialSkew returns the skewed-cost spatial-decomposition workload for
// cfg. The stream is a deterministic function of cfg.Seed.
func SpatialSkew(cfg SpatialSkewConfig) Source {
	cfg.fill()
	s := &spatialSkewSource{cfg: cfg}
	s.Reset()
	return s
}

func (s *spatialSkewSource) Name() string {
	return fmt.Sprintf("spatial-skew-%dx%dx%d", s.cfg.Rows, s.cfg.Cols, s.cfg.Sweeps)
}

func (s *spatialSkewSource) Total() int { return s.cfg.Rows * s.cfg.Cols * s.cfg.Sweeps }

func (s *spatialSkewSource) Reset() {
	s.next = 0
	s.rng = sim.NewRand(s.cfg.Seed)
}

func (s *spatialSkewSource) tileAddr(r, c int) uint64 {
	return s.cfg.BaseAddr + uint64(r*s.cfg.Cols+c)*skewTileBytes
}

// sampleExec draws one bounded-Pareto task duration.
func (s *spatialSkewSource) sampleExec() sim.Time {
	u := s.rng.Float64()
	if u == 0 {
		u = 0.5
	}
	factor := math.Pow(1/u, 1/s.cfg.Alpha)
	if factor > s.cfg.MaxFactor {
		factor = s.cfg.MaxFactor
	}
	return sim.Time(float64(s.cfg.BaseExec) * factor)
}

func (s *spatialSkewSource) Next() (trace.TaskSpec, bool) {
	if s.next >= s.Total() {
		return trace.TaskSpec{}, false
	}
	id := s.next
	s.next++
	perSweep := s.cfg.Rows * s.cfg.Cols
	cell := id % perSweep
	r := cell / s.cfg.Cols
	c := cell % s.cfg.Cols
	t := trace.TaskSpec{
		ID:   uint64(id),
		Func: uint32(id / perSweep),
		Exec: s.sampleExec(),
		// One tile in, one tile out per chunked off-chip transfer quantum.
		MemRead:  sim.Time(skewTileBytes/128) * 12 * sim.Nanosecond,
		MemWrite: sim.Time(skewTileBytes/128) * 12 * sim.Nanosecond,
	}
	t.Params = make([]trace.Param, 0, 5)
	for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
		nr, nc := r+d[0], c+d[1]
		if nr < 0 || nr >= s.cfg.Rows || nc < 0 || nc >= s.cfg.Cols {
			continue
		}
		t.Params = append(t.Params, trace.Param{
			Addr: s.tileAddr(nr, nc),
			Size: skewTileBytes,
			Mode: trace.In,
		})
	}
	t.Params = append(t.Params, trace.Param{
		Addr: s.tileAddr(r, c),
		Size: skewTileBytes,
		Mode: trace.InOut,
	})
	return t, true
}
