package workload

import (
	"fmt"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
)

// GaussianConfig parameterises the Gaussian-elimination-with-partial-pivoting
// task graph of the paper's Figure 5 and Table II.
//
// The graph works column by column on an N x N matrix. For each column
// i = 1..N-1 the pivot task T(i,i) selects the pivot (it must observe every
// row updated by the previous column, which is what partial pivoting
// requires), then the update tasks T(j,i), j = i+1..N, eliminate column i
// from row j. Task weights follow the paper's Equation (1):
//
//	W(T(i,i)) = N+1-i FLOPs        (diagonal / pivot task)
//	W(T(j,i)) = N-i   FLOPs, j > i (row-update task)
//
// and the duration of a task is its weight divided by the per-core GFLOPS.
// Each task also reads W floats from memory and writes W floats back.
//
// Input/output sets (see DESIGN.md). In the default (chained) model:
//
//	T(i,i): inout row(i)
//	T(j,i): in row(i);  inout row(j)
//
// so the pivot row written by T(i,i) is read by the N-i update tasks of its
// column: kick-off lists grow with N, exercising the dummy-*entry*
// mechanism, while every task fits one descriptor — which is the only way
// the paper's own configuration (4K Dependence Table entries, n up to 5000)
// can run at all, since a task's live parameters each hold a table entry.
//
// With PivotObservesAll the diagonal task additionally reads every
// remaining row (in row(i+1) .. row(N)), the literal partial-pivoting data
// flow of Figure 5: T(i+1,i+1) then waits for every update task of column
// i. This grows parameter lists with N and exercises the dummy-*task*
// mechanism, but is only feasible when N is small relative to the
// Dependence Table (a single task must never need more live entries than
// the table holds, or the hardware deadlocks — ours and the paper's alike).
type GaussianConfig struct {
	// N is the matrix dimension.
	N int
	// CoreGFLOPS is the floating-point rate of one worker core; the paper
	// assumes 2 GFLOPS. Zero selects 2.
	CoreGFLOPS float64
	// FloatBytes is the size of one matrix element; the paper's Cell-era
	// cores work in single precision. Zero selects 4.
	FloatBytes int
	// MemChunkBytes and MemChunkTime give the off-chip transfer quantum;
	// the paper's CACTI model yields 12ns per 128-byte chunk. Zero selects
	// those values.
	MemChunkBytes int
	MemChunkTime  sim.Time
	// BaseAddr is the address of row 1; rows are laid out consecutively.
	BaseAddr uint64
	// PivotObservesAll selects the literal partial-pivoting data flow in
	// which T(i,i) reads every remaining row (see the package comment).
	PivotObservesAll bool
	// TruncatedPivot (with PivotObservesAll) trims the diagonal input list
	// to at most MaxPivotParams parameters, an ablation used to bound
	// descriptor chains.
	TruncatedPivot bool
	MaxPivotParams int
}

func (c *GaussianConfig) fill() {
	if c.CoreGFLOPS == 0 {
		c.CoreGFLOPS = 2.0
	}
	if c.FloatBytes == 0 {
		c.FloatBytes = 4
	}
	if c.MemChunkBytes == 0 {
		c.MemChunkBytes = 128
	}
	if c.MemChunkTime == 0 {
		c.MemChunkTime = 12 * sim.Nanosecond
	}
	if c.BaseAddr == 0 {
		c.BaseAddr = 0x4000_0000
	}
	if c.TruncatedPivot && c.MaxPivotParams == 0 {
		c.MaxPivotParams = 8
	}
}

// GaussianTaskCount returns the total number of tasks for an n x n matrix,
// (n^2+n-2)/2 as stated in the paper.
func GaussianTaskCount(n int) int {
	if n < 2 {
		return 0
	}
	return (n*n + n - 2) / 2
}

// GaussianWeight returns the weight in FLOPs of task T(j,i) per Equation (1).
func GaussianWeight(n, j, i int) int {
	if i == j {
		return n + 1 - i
	}
	return n - i
}

// GaussianMeanWeight returns the average task weight in FLOPs for an n x n
// matrix under Equation (1); Table II's column is reproduced from this.
func GaussianMeanWeight(n int) float64 {
	total := 0.0
	for i := 1; i <= n-1; i++ {
		total += float64(GaussianWeight(n, i, i))
		total += float64(n-i) * float64(GaussianWeight(n, n, i))
	}
	cnt := GaussianTaskCount(n)
	if cnt == 0 {
		return 0
	}
	return total / float64(cnt)
}

type gaussianSource struct {
	cfg  GaussianConfig
	id   uint64
	i, j int // next task: T(j,i); j == i means diagonal
}

// Gaussian returns the Gaussian elimination task graph for cfg.
func Gaussian(cfg GaussianConfig) Source {
	if cfg.N < 2 {
		panic("workload: Gaussian needs N >= 2")
	}
	cfg.fill()
	s := &gaussianSource{cfg: cfg}
	s.Reset()
	return s
}

func (s *gaussianSource) Name() string {
	return fmt.Sprintf("gaussian-%dx%d", s.cfg.N, s.cfg.N)
}

func (s *gaussianSource) Total() int { return GaussianTaskCount(s.cfg.N) }

func (s *gaussianSource) Reset() {
	s.id = 0
	s.i, s.j = 1, 1
}

func (s *gaussianSource) rowAddr(j int) uint64 {
	return s.cfg.BaseAddr + uint64(j-1)*uint64(s.cfg.N*s.cfg.FloatBytes)
}

func (s *gaussianSource) rowSize() uint32 {
	return uint32(s.cfg.N * s.cfg.FloatBytes)
}

// taskTimes converts a FLOP weight into the three phase durations.
func (s *gaussianSource) taskTimes(w int) (exec, memRead, memWrite sim.Time) {
	// exec = W / GFLOPS; with W in FLOPs and GFLOPS in 1e9 FLOP/s the
	// duration in nanoseconds is W / GFLOPS.
	exec = sim.Time(float64(w) / s.cfg.CoreGFLOPS * float64(sim.Nanosecond))
	bytes := w * s.cfg.FloatBytes
	chunks := (bytes + s.cfg.MemChunkBytes - 1) / s.cfg.MemChunkBytes
	if chunks < 1 {
		chunks = 1
	}
	memRead = sim.Time(chunks) * s.cfg.MemChunkTime
	memWrite = memRead
	return exec, memRead, memWrite
}

func (s *gaussianSource) Next() (trace.TaskSpec, bool) {
	n := s.cfg.N
	if s.i > n-1 {
		return trace.TaskSpec{}, false
	}
	i, j := s.i, s.j
	w := GaussianWeight(n, j, i)
	exec, mr, mw := s.taskTimes(w)
	t := trace.TaskSpec{ID: s.id, Exec: exec, MemRead: mr, MemWrite: mw}
	s.id++
	if j == i {
		// Diagonal / pivot task: inout row(i), plus (optionally) reads of
		// every remaining row for the literal pivot-search data flow.
		t.Func = 1
		nIn := 0
		if s.cfg.PivotObservesAll {
			nIn = n - i
			if s.cfg.TruncatedPivot && nIn > s.cfg.MaxPivotParams-1 {
				nIn = s.cfg.MaxPivotParams - 1
			}
		}
		t.Params = make([]trace.Param, 0, nIn+1)
		t.Params = append(t.Params, trace.Param{Addr: s.rowAddr(i), Size: s.rowSize(), Mode: trace.InOut})
		for k := i + 1; k <= i+nIn; k++ {
			t.Params = append(t.Params, trace.Param{Addr: s.rowAddr(k), Size: s.rowSize(), Mode: trace.In})
		}
	} else {
		// Row-update task: in pivot row(i), inout row(j).
		t.Func = 2
		t.Params = []trace.Param{
			{Addr: s.rowAddr(i), Size: s.rowSize(), Mode: trace.In},
			{Addr: s.rowAddr(j), Size: s.rowSize(), Mode: trace.InOut},
		}
	}
	// Advance (j,i): diagonal, then j = i+1..n, then next column.
	if s.j == s.i {
		s.j = s.i + 1
	} else if s.j < n {
		s.j++
	} else {
		s.i++
		s.j = s.i
	}
	return t, true
}
