package workload

import (
	"fmt"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
)

// StarPUDepsConfig parameterises the TaskTorrent/StarPU wait-chain grid
// (the `starpu_deps` mini-benchmark of the TaskTorrent suite): an
// n_rows x n_cols grid of tasks submitted column by column, where task
// (i, j) of column j > 0 waits on Edges tasks of column j-1, chosen by the
// wrap-around rule
//
//	i_before(k) = Rows - (((Rows - i - 1) + k) % Rows) - 1,  k = 0..Edges-1
//
// i.e. itself-in-the-previous-column plus the k-1 rows cyclically above it.
// Every task spins for a tunable fixed time, so the workload sweeps the
// resolver-overhead vs. task-grain plane the StarPU/TaskTorrent papers
// measure: many rows and few edges give wide, cheap resolution; many edges
// give deep kick-off lists; a short spin makes the resolver the bottleneck.
type StarPUDepsConfig struct {
	// Rows and Cols give the grid geometry; zero values select 32 x 64.
	Rows, Cols int
	// Edges is the number of wrap-around in-deps per task (clamped to
	// Rows); zero selects 3, matching the benchmark's middle operating
	// point. Column 0 has no in-deps regardless.
	Edges int
	// Spin is the fixed per-task execution time; zero selects 5us.
	Spin sim.Time
	// BaseAddr is the address of cell (0,0); cells are laid out column-major
	// in submission order.
	BaseAddr uint64
}

// starpuCellBytes is the size of one wait-chain cell: the benchmark carries
// no real data, so one machine word stands in for the StarPU handle.
const starpuCellBytes = 8

func (c *StarPUDepsConfig) fill() {
	if c.Rows <= 0 {
		c.Rows = 32
	}
	if c.Cols <= 0 {
		c.Cols = 64
	}
	if c.Edges == 0 {
		c.Edges = 3
	}
	if c.Edges > c.Rows {
		c.Edges = c.Rows
	}
	if c.Edges < 0 {
		c.Edges = 0
	}
	if c.Spin == 0 {
		c.Spin = 5 * sim.Microsecond
	}
	if c.BaseAddr == 0 {
		c.BaseAddr = 0x2000_0000
	}
}

type starpuSource struct {
	cfg  StarPUDepsConfig
	next int
}

// StarPUDeps returns the wait-chain grid workload for cfg. The stream is
// fully deterministic (no sampler): every task runs for exactly cfg.Spin.
func StarPUDeps(cfg StarPUDepsConfig) Source {
	cfg.fill()
	return &starpuSource{cfg: cfg}
}

func (s *starpuSource) Name() string {
	return fmt.Sprintf("starpu-deps-%dx%dx%d", s.cfg.Rows, s.cfg.Cols, s.cfg.Edges)
}

func (s *starpuSource) Total() int { return s.cfg.Rows * s.cfg.Cols }

func (s *starpuSource) Reset() { s.next = 0 }

// cellAddr returns the address of cell (i, j) in column-major layout.
func (s *starpuSource) cellAddr(i, j int) uint64 {
	return s.cfg.BaseAddr + uint64(j*s.cfg.Rows+i)*starpuCellBytes
}

func (s *starpuSource) Next() (trace.TaskSpec, bool) {
	if s.next >= s.Total() {
		return trace.TaskSpec{}, false
	}
	id := s.next
	s.next++
	// Column-major submission order, like the original benchmark's
	// for(j){for(i){...}} loop nest.
	j := id / s.cfg.Rows
	i := id % s.cfg.Rows
	t := trace.TaskSpec{
		ID:   uint64(id),
		Func: 0,
		Exec: s.cfg.Spin,
	}
	nDeps := 0
	if j > 0 {
		nDeps = s.cfg.Edges
	}
	t.Params = make([]trace.Param, 0, nDeps+1)
	for k := 0; k < nDeps; k++ {
		iBefore := s.cfg.Rows - (((s.cfg.Rows - i - 1) + k) % s.cfg.Rows) - 1
		t.Params = append(t.Params, trace.Param{
			Addr: s.cellAddr(iBefore, j-1),
			Size: starpuCellBytes,
			Mode: trace.In,
		})
	}
	t.Params = append(t.Params, trace.Param{
		Addr: s.cellAddr(i, j),
		Size: starpuCellBytes,
		Mode: trace.Out,
	})
	return t, true
}
