package core

import (
	"strings"
	"testing"
	"testing/quick"

	"nexuspp/internal/depgraph"
	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

func testConfig(workers int) Config {
	cfg := DefaultConfig(workers)
	cfg.RecordSchedule = true
	return cfg
}

func smallGrid(p workload.Pattern, rows, cols int, seed uint64) workload.Source {
	return workload.Grid(workload.GridConfig{Pattern: p, Rows: rows, Cols: cols, Seed: seed})
}

func mustRun(t *testing.T, cfg Config, src workload.Source) *Result {
	t.Helper()
	res, err := Run(cfg, src)
	if err != nil {
		t.Fatalf("Run(%s): %v", src.Name(), err)
	}
	return res
}

// validate runs the workload and checks the recorded schedule against the
// dependency-graph oracle.
func validate(t *testing.T, cfg Config, src workload.Source) *Result {
	t.Helper()
	res := mustRun(t, cfg, src)
	if res.TasksExecuted != uint64(src.Total()) {
		t.Fatalf("%s: executed %d of %d", src.Name(), res.TasksExecuted, src.Total())
	}
	g := depgraph.Build(src)
	if err := g.ValidateSchedule(res.Schedule); err != nil {
		t.Fatalf("%s: %v", src.Name(), err)
	}
	return res
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(4)
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.BufferingDepth = 0 },
		func(c *Config) { c.TaskPoolEntries = 1 },
		func(c *Config) { c.MaxParamsPerTD = 1 },
		func(c *Config) { c.DepTableEntries = 0 },
		func(c *Config) { c.KickOffSlots = 0 },
		func(c *Config) { c.NexusCycle = 0 },
		func(c *Config) { c.TaskPrep = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig(4)
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig(0)
	if _, err := Run(cfg, workload.Independent(1)); err == nil {
		t.Fatal("Run accepted invalid config")
	}
}

func TestIndependentAllPatternsComplete(t *testing.T) {
	for _, p := range []workload.Pattern{
		workload.PatternIndependent, workload.PatternWavefront,
		workload.PatternHorizontal, workload.PatternVertical,
	} {
		validate(t, testConfig(4), smallGrid(p, 10, 8, 7))
	}
}

func TestGaussianCompletesAndValidates(t *testing.T) {
	res := validate(t, testConfig(8), workload.Gaussian(workload.GaussianConfig{N: 24}))
	if res.TasksExecuted != uint64(workload.GaussianTaskCount(24)) {
		t.Fatalf("executed = %d", res.TasksExecuted)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		res := mustRun(t, testConfig(6), smallGrid(workload.PatternWavefront, 12, 10, 3))
		return res.Makespan
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic makespan: %v vs %v", a, b)
	}
}

func TestSpeedupScalesForIndependentTasks(t *testing.T) {
	src := func() workload.Source {
		return workload.Grid(workload.GridConfig{
			Pattern: workload.PatternIndependent, Rows: 20, Cols: 10, Seed: 5,
		})
	}
	one := mustRun(t, testConfig(1), src())
	four := mustRun(t, testConfig(4), src())
	sp := float64(one.Makespan) / float64(four.Makespan)
	if sp < 3.2 || sp > 4.2 {
		t.Fatalf("speedup on 4 cores = %.2f, want ~4", sp)
	}
}

func TestDoubleBufferingBeatsSingle(t *testing.T) {
	src := func() workload.Source {
		return workload.Grid(workload.GridConfig{
			Pattern: workload.PatternIndependent, Rows: 10, Cols: 10, Seed: 5,
		})
	}
	single := testConfig(4)
	single.BufferingDepth = 1
	double := testConfig(4)
	s := mustRun(t, single, src())
	d := mustRun(t, double, src())
	if d.Makespan >= s.Makespan {
		t.Fatalf("double buffering (%v) not faster than single (%v)", d.Makespan, s.Makespan)
	}
	// With double buffering the memory phases overlap execution, so the
	// makespan should approach the pure-execution bound.
	g := depgraph.Build(src())
	var exec sim.Time
	for _, e := range g.Exec {
		exec += e
	}
	bound := exec / 4 // 4 workers
	if float64(d.Makespan) > 1.35*float64(bound) {
		t.Fatalf("double-buffered makespan %v too far above exec bound %v", d.Makespan, bound)
	}
}

func TestHorizontalSlowerThanVertical(t *testing.T) {
	// The paper's Figure 7: the horizontal pattern (dependencies along the
	// generation order) scales far worse than the vertical one. The effect
	// requires the workload to dwarf the Task Pool window, as the paper's
	// 8160-task grid dwarfs its 1K-entry pool: with the whole grid resident
	// every row chain is visible and the patterns converge.
	cfg := testConfig(16)
	cfg.TaskPoolEntries = 32
	h := validate(t, cfg, smallGrid(workload.PatternHorizontal, 30, 20, 9))
	v := validate(t, cfg, smallGrid(workload.PatternVertical, 30, 20, 9))
	if float64(h.Makespan) < 1.5*float64(v.Makespan) {
		t.Fatalf("horizontal (%v) should be much slower than vertical (%v)", h.Makespan, v.Makespan)
	}
}

func TestWideTaskUsesDummyTDs(t *testing.T) {
	// A task with 20 params needs 3 descriptors (7+7+6).
	tasks := []trace.TaskSpec{wideSpec(0, 20)}
	tasks[0].Exec = 1 * sim.Microsecond
	src := workload.FromTrace(&trace.Trace{Name: "wide", Tasks: tasks})
	res := validate(t, testConfig(2), src)
	if res.DummyTDs != 2 {
		t.Fatalf("dummy TDs = %d, want 2", res.DummyTDs)
	}
	if res.MaxTPOccupancy != 3 {
		t.Fatalf("max TP occupancy = %d, want 3", res.MaxTPOccupancy)
	}
}

func TestLongKickOffListUsesDummyEntries(t *testing.T) {
	// One long-running writer followed by 30 readers: the readers pile up
	// in the kick-off list (8 slots per segment) while the writer runs.
	tasks := []trace.TaskSpec{{
		ID:     0,
		Params: []trace.Param{{Addr: 0xAAAA, Size: 4, Mode: trace.Out}},
		Exec:   500 * sim.Microsecond,
	}}
	for i := 1; i <= 30; i++ {
		tasks = append(tasks, trace.TaskSpec{
			ID:     uint64(i),
			Params: []trace.Param{{Addr: 0xAAAA, Size: 4, Mode: trace.In}},
			Exec:   1 * sim.Microsecond,
		})
	}
	src := workload.FromTrace(&trace.Trace{Name: "hot-read", Tasks: tasks})
	res := validate(t, testConfig(4), src)
	if res.DummyDTSegments == 0 {
		t.Fatal("expected dummy Dependence Table segments to be chained")
	}
	if res.MaxKOSegments < 3 {
		t.Fatalf("max KO segments = %d, want >= 3 (30 waiters / 8 slots)", res.MaxKOSegments)
	}
}

func TestTinyTablesStillComplete(t *testing.T) {
	// Aggressively small structures exercise every stall path; the run must
	// still complete and validate.
	cfg := testConfig(3)
	cfg.TaskPoolEntries = 4
	cfg.DepTableEntries = 6
	cfg.KickOffSlots = 2
	validate(t, cfg, smallGrid(workload.PatternWavefront, 8, 8, 11))
	validate(t, cfg, workload.Gaussian(workload.GaussianConfig{N: 10}))
}

func TestContentionFreeFasterThanContended(t *testing.T) {
	mk := func(free bool) Config {
		cfg := testConfig(64)
		cfg.Mem.ContentionFree = free
		return cfg
	}
	src := func() workload.Source { return smallGrid(workload.PatternIndependent, 30, 20, 2) }
	contended := mustRun(t, mk(false), src())
	unbounded := mustRun(t, mk(true), src())
	if unbounded.Makespan >= contended.Makespan {
		t.Fatalf("contention-free (%v) not faster than contended (%v)",
			unbounded.Makespan, contended.Makespan)
	}
	if contended.MemHighWater != 32 {
		t.Fatalf("memory high water = %d, want 32 (all ports)", contended.MemHighWater)
	}
}

func TestDisableTaskPrepSpeedsUpSubmission(t *testing.T) {
	base := testConfig(32)
	noprep := testConfig(32)
	noprep.DisableTaskPrep = true
	// Tiny tasks make the master the bottleneck, so removing the 30ns
	// preparation must shorten the makespan.
	mk := func() workload.Source {
		return workload.Grid(workload.GridConfig{
			Pattern: workload.PatternIndependent, Rows: 20, Cols: 20, Seed: 3,
			Times: trace.FixedTimes{Exec: 100 * sim.Nanosecond, MemRead: 10 * sim.Nanosecond, MemWrite: 10 * sim.Nanosecond},
		})
	}
	a := mustRun(t, base, mk())
	b := mustRun(t, noprep, mk())
	if b.Makespan >= a.Makespan {
		t.Fatalf("disabling prep did not help: %v vs %v", b.Makespan, a.Makespan)
	}
}

func TestMasterStallsOnTinySizesList(t *testing.T) {
	cfg := testConfig(1)
	// Slow worker + fast master: the TDs lists fill up and the master
	// stalls; the Task Pool is small so Write TP also back-pressures.
	cfg.TaskPoolEntries = 2
	cfg.TDsListEntries = 4
	src := workload.Grid(workload.GridConfig{
		Pattern: workload.PatternIndependent, Rows: 5, Cols: 5, Seed: 1,
		Times: trace.FixedTimes{Exec: 50 * sim.Microsecond, MemRead: 1 * sim.Microsecond, MemWrite: 1 * sim.Microsecond},
	})
	res := mustRun(t, cfg, src)
	if res.MasterStall == 0 {
		t.Fatal("expected master stall time with a 2-entry Task Pool")
	}
}

func TestResultMetricsPopulated(t *testing.T) {
	res := validate(t, testConfig(4), smallGrid(workload.PatternWavefront, 10, 10, 1))
	if res.Workload == "" || res.Workers != 4 {
		t.Errorf("workload/workers = %q/%d", res.Workload, res.Workers)
	}
	if res.Makespan <= 0 || res.Events == 0 {
		t.Errorf("makespan/events = %v/%d", res.Makespan, res.Events)
	}
	if res.CoreUtilization <= 0 || res.CoreUtilization > 1 {
		t.Errorf("core utilization = %v", res.CoreUtilization)
	}
	for _, blk := range []string{"write-tp", "check-deps", "schedule", "send-tds", "handle-finished"} {
		if _, ok := res.BlockUtil[blk]; !ok {
			t.Errorf("missing block utilization %q", blk)
		}
	}
	if res.MaxTPOccupancy <= 0 || res.MaxDTOccupancy <= 0 {
		t.Errorf("occupancy stats missing: %+v", res)
	}
}

func TestSingleWorkerSerialBound(t *testing.T) {
	// On one worker with depth 1, the makespan must be at least the sum of
	// all execution and memory times (fully serialised TC pipeline).
	cfg := testConfig(1)
	cfg.BufferingDepth = 1
	src := smallGrid(workload.PatternIndependent, 5, 5, 1)
	res := mustRun(t, cfg, src)
	g := depgraph.Build(src)
	var total sim.Time
	for _, d := range g.Duration {
		total += d
	}
	if res.Makespan < total {
		t.Fatalf("makespan %v below serial bound %v", res.Makespan, total)
	}
	if float64(res.Makespan) > 1.1*float64(total) {
		t.Fatalf("makespan %v too far above serial bound %v (overhead > 10%%)", res.Makespan, total)
	}
}

func TestDeadlockDiagnosticMentionsCounts(t *testing.T) {
	// Build a system and source whose total claims more tasks than it
	// yields: the run must fail with a diagnostic instead of hanging.
	src := &lyingSource{inner: smallGrid(workload.PatternIndependent, 2, 2, 1)}
	_, err := Run(testConfig(2), src)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock diagnostic", err)
	}
}

type lyingSource struct{ inner workload.Source }

func (s *lyingSource) Name() string { return "lying" }
func (s *lyingSource) Total() int   { return s.inner.Total() + 5 }
func (s *lyingSource) Reset()       { s.inner.Reset() }
func (s *lyingSource) Next() (trace.TaskSpec, bool) {
	return s.inner.Next()
}

// Property: any small random workload on any small machine completes and
// respects the dependency oracle. This is the central correctness property
// of the whole model.
func TestRandomWorkloadsValidateProperty(t *testing.T) {
	prop := func(seed uint64, wRaw, nRaw, aRaw uint8) bool {
		rng := sim.NewRand(seed)
		workers := int(wRaw%6) + 1
		n := int(nRaw%40) + 1
		addrs := int(aRaw%10) + 1
		tasks := make([]trace.TaskSpec, n)
		for i := range tasks {
			tasks[i].ID = uint64(i)
			tasks[i].Exec = sim.Time(rng.Intn(5000)+100) * sim.Nanosecond
			tasks[i].MemRead = sim.Time(rng.Intn(500)) * sim.Nanosecond
			tasks[i].MemWrite = sim.Time(rng.Intn(500)) * sim.Nanosecond
			used := map[uint64]bool{}
			for k := 0; k <= rng.Intn(4); k++ {
				a := uint64(rng.Intn(addrs)+1) * 64
				if used[a] {
					continue
				}
				used[a] = true
				tasks[i].Params = append(tasks[i].Params, trace.Param{
					Addr: a, Size: 64, Mode: trace.AccessMode(rng.Intn(3)),
				})
			}
			if len(tasks[i].Params) == 0 {
				tasks[i].Params = []trace.Param{{Addr: 8, Size: 8, Mode: trace.InOut}}
			}
		}
		src := workload.FromTrace(&trace.Trace{Name: "prop", Tasks: tasks})
		cfg := testConfig(workers)
		cfg.BufferingDepth = int(seed%3) + 1
		res, err := Run(cfg, src)
		if err != nil {
			return false
		}
		g := depgraph.Build(src)
		return g.ValidateSchedule(res.Schedule) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
