// Package core implements the Nexus++ hardware task-management system — the
// paper's primary contribution — as a timed model on the discrete-event
// kernel of internal/sim.
//
// The model follows SSIII of the paper: a Task Maestro made of pipelined
// hardware blocks (Get TDs, Write TP, Check Deps, Schedule, Send TDs,
// Handle Finished) communicating through FIFO lists, a Task Pool indexed by
// task ID with dummy-task chains for wide parameter lists, a Dependence
// Table with separate chaining and kick-off lists extended by dummy entries,
// and one Task Controller per worker core providing double (in fact
// arbitrary) buffering.
package core

import (
	"fmt"

	"nexuspp/internal/mem"
	"nexuspp/internal/sim"
)

// Costs gives the per-operation service costs of the Task Maestro blocks in
// Nexus++ clock cycles. The hash-table costs follow the paper's rule that
// "the hash table access time equals the on-chip access time multiplied by
// the number of lookups required per access"; the remaining constants model
// the FIFO pushes/pops and per-TD table reads/writes each block performs.
type Costs struct {
	// WriteTPBase covers reading the TDs Sizes entry and the TDs Buffer.
	WriteTPBase int
	// WriteTPPerTD covers one TP Free Indices pop plus one Task Pool write,
	// charged per task descriptor (dummies included).
	WriteTPPerTD int
	// CheckDepsBase covers the New Tasks pop and the final DC test.
	CheckDepsBase int
	// CheckDepsPerAccess is one Dependence Table access (hash, chain-walk
	// step, entry update, kick-off append, dummy-entry allocation).
	CheckDepsPerAccess int
	// ScheduleCycles covers one Global Ready pop, one Worker Cores IDs pop
	// and one CiRdyTasks push.
	ScheduleCycles int
	// SendTDsBase covers request selection and the CiFinTasks write.
	SendTDsBase int
	// SendTDsPerTD is one Task Pool read per descriptor of the task.
	SendTDsPerTD int
	// SendTDsPerParam is the per-parameter word time of streaming the
	// descriptor to the Task Controller over the on-chip link.
	SendTDsPerParam int
	// SendTDsLinkSetup is the fixed link setup (handshake + header word).
	SendTDsLinkSetup int
	// HandleFinBase covers notification selection, the acknowledge, and the
	// CiFinTasks read.
	HandleFinBase int
	// HandleFinPerTD is one Task Pool access per descriptor (parameter
	// list read and entry deletion).
	HandleFinPerTD int
	// HandleFinPerAccess is one Dependence Table access (lookup step,
	// update, kick-off pop, waiter DC update).
	HandleFinPerAccess int
}

// DefaultCosts returns the cycle costs used throughout the evaluation.
func DefaultCosts() Costs {
	return Costs{
		WriteTPBase:        2,
		WriteTPPerTD:       2,
		CheckDepsBase:      1,
		CheckDepsPerAccess: 1,
		ScheduleCycles:     3,
		SendTDsBase:        2,
		SendTDsPerTD:       1,
		SendTDsPerParam:    1,
		SendTDsLinkSetup:   6,
		HandleFinBase:      3,
		HandleFinPerTD:     1,
		HandleFinPerAccess: 1,
	}
}

// Config collects every parameter of the Nexus++ system (the paper's
// Table IV) plus the experiment toggles used in SSV.
type Config struct {
	// Workers is the number of worker cores (the master core is separate).
	Workers int
	// BufferingDepth is the number of tasks a Task Controller may hold:
	// 1 disables prefetch overlap, 2 is the paper's double buffering.
	BufferingDepth int
	// NexusCycle is the Nexus++ clock period (2 ns at 500 MHz).
	NexusCycle sim.Time
	// TaskPoolEntries is the number of task descriptors the Task Pool
	// holds (1K in Table IV).
	TaskPoolEntries int
	// MaxParamsPerTD is the parameter capacity of one descriptor (8);
	// wider tasks chain dummy descriptors.
	MaxParamsPerTD int
	// DepTableEntries is the Dependence Table capacity (4K in Table IV).
	DepTableEntries int
	// KickOffSlots is the kick-off list capacity of one Dependence Table
	// entry (8); longer lists chain dummy entries.
	KickOffSlots int
	// TDsListEntries is the depth of the TDs Sizes list / TDs Buffer pair
	// between the Get TDs and Write TP blocks (1K one-byte sizes in
	// Table IV). The master core stalls when it fills.
	TDsListEntries int
	// TaskPrep is the master core's per-task preparation latency (30 ns);
	// DisableTaskPrep reproduces the paper's "disabling task preparation
	// delay" experiment.
	TaskPrep        sim.Time
	DisableTaskPrep bool
	// TablePorts models the read/write ports of the Task Pool and
	// Dependence Table SRAMs. 0 (the default) gives every Maestro block
	// its own port, the fully pipelined ideal; 1 makes each table
	// single-ported, so blocks touching the same table serialise — the
	// cheaper SRAM a real implementation would likely use. See the
	// ablation-ports experiment.
	TablePorts int
	// Mem configures the off-chip memory (set Mem.ContentionFree for the
	// paper's contention-free runs).
	Mem mem.MemConfig
	// Bus configures the master-to-maestro on-chip bus.
	Bus mem.BusConfig
	// Costs gives the per-block service costs.
	Costs Costs
	// RecordSchedule keeps per-task execution intervals so tests can
	// validate the run against the dependency-graph oracle. It costs
	// memory proportional to the task count.
	RecordSchedule bool
	// SampleEvery enables periodic occupancy snapshots (Result.Timeline)
	// at the given simulated-time period; zero disables sampling.
	SampleEvery sim.Time

	// HardParamLimit disables the dummy-task mechanism: a task with more
	// than MaxParamsPerTD parameters aborts the run, reproducing the
	// original Nexus's fixed input/output limit ("not all StarSs
	// applications can be executed on a multicore system with Nexus").
	HardParamLimit bool
	// HardKickOffLimit disables the dummy-entry mechanism: a kick-off list
	// that would outgrow its fixed slots aborts the run, reproducing the
	// original Nexus's fixed dependency-count limit.
	HardKickOffLimit bool

	// RenameFalseDeps eliminates WAR/WAW hazards for pure writers by
	// opening fresh segment versions instead of waiting — the renaming
	// alternative the paper mentions and deliberately does not implement.
	// Each live version occupies a Dependence Table slot; see
	// internal/core/renaming.go and the ablation-renaming experiment.
	RenameFalseDeps bool
}

// DefaultConfig returns the paper's Table IV configuration for the given
// number of worker cores, with double buffering enabled.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:         workers,
		BufferingDepth:  2,
		NexusCycle:      2 * sim.Nanosecond,
		TaskPoolEntries: 1024,
		MaxParamsPerTD:  8,
		DepTableEntries: 4096,
		KickOffSlots:    8,
		TDsListEntries:  1024,
		TaskPrep:        30 * sim.Nanosecond,
		Mem:             mem.DefaultMemConfig(),
		Bus:             mem.DefaultBusConfig(),
		Costs:           DefaultCosts(),
	}
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Workers < 1:
		return fmt.Errorf("core: Workers = %d, need >= 1", c.Workers)
	case c.BufferingDepth < 1:
		return fmt.Errorf("core: BufferingDepth = %d, need >= 1", c.BufferingDepth)
	case c.TaskPoolEntries < 2:
		return fmt.Errorf("core: TaskPoolEntries = %d, need >= 2", c.TaskPoolEntries)
	case c.MaxParamsPerTD < 2:
		return fmt.Errorf("core: MaxParamsPerTD = %d, need >= 2 (one slot must remain for the dummy pointer)", c.MaxParamsPerTD)
	case c.DepTableEntries < 1:
		return fmt.Errorf("core: DepTableEntries = %d, need >= 1", c.DepTableEntries)
	case c.KickOffSlots < 1:
		return fmt.Errorf("core: KickOffSlots = %d, need >= 1", c.KickOffSlots)
	case c.TDsListEntries < 1:
		return fmt.Errorf("core: TDsListEntries = %d, need >= 1", c.TDsListEntries)
	case c.NexusCycle <= 0:
		return fmt.Errorf("core: NexusCycle = %v, need > 0", c.NexusCycle)
	case c.TaskPrep < 0:
		return fmt.Errorf("core: TaskPrep = %v, need >= 0", c.TaskPrep)
	case c.TablePorts < 0:
		return fmt.Errorf("core: TablePorts = %d, need >= 0", c.TablePorts)
	}
	return nil
}

// cycles converts a cycle count into simulated time.
func (c *Config) cycles(n int) sim.Time {
	return sim.Time(n) * c.NexusCycle
}
