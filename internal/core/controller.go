package core

import (
	"nexuspp/internal/sim"
)

// TaskController is the small per-worker-core unit of SSIII-A: it buffers
// tasks ahead of execution and pipelines the four stages Get TD (performed
// by the Maestro's Send TDs block delivering into recvQ), Get Inputs,
// Run Task and Put Outputs. With BufferingDepth >= 2 the input prefetch of
// one task overlaps the execution of the previous one — the paper's double
// buffering. Each stage owns one unit (a DMA engine for the memory stages,
// the core itself for Run Task) that serves one task at a time; tasks flow
// through the stages in arrival order, so completions reach the Maestro in
// the same order Send TDs recorded them in the CiFinTasks list.
type TaskController struct {
	core   int
	eng    *sim.Engine
	sys    *System
	recvQ  *sim.FIFO[int32] // tasks delivered, waiting for Get Inputs
	runQ   *sim.FIFO[int32] // inputs fetched, waiting for the core
	writeQ *sim.FIFO[int32] // executed, waiting for Put Outputs

	getInBusy  bool
	runBusy    bool
	putOutBusy bool

	tasksRun    uint64
	execBusy    sim.Time
	memReadBusy sim.Time
}

func newTaskController(eng *sim.Engine, sys *System, core int, depth int) *TaskController {
	tc := &TaskController{
		core:   core,
		eng:    eng,
		sys:    sys,
		recvQ:  sim.NewFIFO[int32]("tc-recv", depth),
		runQ:   sim.NewFIFO[int32]("tc-run", depth),
		writeQ: sim.NewFIFO[int32]("tc-write", depth),
	}
	tc.recvQ.OnData(tc.kickGetInputs)
	tc.runQ.OnData(tc.kickRun)
	tc.runQ.OnSpace(tc.kickGetInputs)
	tc.writeQ.OnData(tc.kickPutOutputs)
	tc.writeQ.OnSpace(tc.kickRun)
	return tc
}

// canReceive reports whether the controller can buffer another descriptor.
// The Worker Cores IDs token scheme guarantees it can whenever the Maestro
// schedules here, but Send TDs checks anyway (the paper's request line).
func (tc *TaskController) canReceive() bool { return !tc.recvQ.Full() }

// receive accepts a descriptor from the Send TDs block.
func (tc *TaskController) receive(task int32) { tc.recvQ.MustPush(task) }

// ExecBusy returns the core's cumulative execution time.
func (tc *TaskController) ExecBusy() sim.Time { return tc.execBusy }

// TasksRun returns the number of tasks this core executed.
func (tc *TaskController) TasksRun() uint64 { return tc.tasksRun }

// Get Inputs: prefetch the task's code and inputs from off-chip memory.
// The stage's DMA engine is held for the full access, including any time
// spent queueing for a free memory port.
func (tc *TaskController) kickGetInputs() {
	if tc.getInBusy || tc.runQ.Full() {
		return
	}
	task, ok := tc.recvQ.Pop()
	if !ok {
		return
	}
	tc.getInBusy = true
	tc.sys.maestro.kickSendTDs() // a receive-buffer slot opened up
	spec := tc.sys.maestro.tp.Spec(task)
	tc.sys.markFetchStart(task)
	start := tc.eng.Now()
	tc.sys.memory.Access(spec.MemRead, func() {
		tc.memReadBusy += tc.eng.Now() - start
		tc.getInBusy = false
		tc.runQ.MustPush(task)
		tc.kickGetInputs()
	})
}

// Run Task: pass the task to the worker core.
func (tc *TaskController) kickRun() {
	if tc.runBusy || tc.writeQ.Full() {
		return
	}
	task, ok := tc.runQ.Pop()
	if !ok {
		return
	}
	tc.runBusy = true
	spec := tc.sys.maestro.tp.Spec(task)
	tc.sys.markExecStart(task)
	tc.eng.After(spec.Exec, func() {
		tc.tasksRun++
		tc.execBusy += spec.Exec
		tc.runBusy = false
		tc.sys.markExecEnd(task)
		tc.writeQ.MustPush(task)
		tc.kickRun()
	})
}

// Put Outputs: write results back to off-chip memory, then notify the
// Maestro with the 1-bit task-finished signal.
func (tc *TaskController) kickPutOutputs() {
	if tc.putOutBusy {
		return
	}
	task, ok := tc.writeQ.Pop()
	if !ok {
		return
	}
	tc.putOutBusy = true
	spec := tc.sys.maestro.tp.Spec(task)
	tc.sys.memory.Access(spec.MemWrite, func() {
		tc.putOutBusy = false
		tc.sys.markCommit(task)
		tc.sys.maestro.taskFinished(tc.core)
		tc.kickPutOutputs()
	})
}
