package core

import (
	"fmt"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
)

// Maestro is the Task Maestro: the central Nexus++ module responsible for
// dependency resolution, task scheduling and load balancing. Its hardware
// blocks are modeled as single-item servers wired by the FIFO lists of the
// paper's Figure 2; every block is triggered by writes to its input FIFO
// (the paper's 1-bit events) and re-kicks itself after each service.
type Maestro struct {
	eng *sim.Engine
	cfg *Config
	tp  *TaskPool
	dt  *DepTable

	// FIFO lists (paper Table IV).
	tdsSizes    *sim.FIFO[int]
	tdsBuffer   *sim.FIFO[trace.TaskSpec]
	newTasks    *sim.FIFO[int32]
	globalReady *sim.FIFO[int32]
	workerIDs   *sim.FIFO[int]
	rdyTasks    []*sim.FIFO[int32]
	finTasks    []*sim.FIFO[int32]
	finishNotif *sim.FIFO[int]

	// Blocks.
	writeTP   *sim.Server
	checkDeps *sim.Server
	schedule  *sim.Server
	sendTDs   *sim.Server
	handleFin *sim.Server

	// Check Deps in-flight state: the task being checked and the next
	// parameter index (preserved across full-table stalls).
	cdTask    int32
	cdParam   int
	cdWaiting bool // stalled on a full Dependence Table

	// Send TDs round-robin fairness pointer.
	rrPtr int

	// Optional single-ported table modeling (Config.TablePorts): blocks
	// acquire the ports of the tables they touch for their whole service.
	tpPort, dtPort *sim.Resource
	wtpPending     bool
	cdPending      bool
	stdPending     bool
	hfPending      bool

	// Destination Task Controllers, one per worker core.
	tcs []*TaskController

	// Statistics.
	tasksStored   uint64
	tasksChecked  uint64
	tasksSent     uint64
	tasksFinished uint64
	readyAtCheck  uint64 // tasks ready immediately after dependency check

	// expectTotal and finishedAt let the system read the exact completion
	// time of the final task, independent of any later bookkeeping events
	// (for example timeline samples).
	expectTotal uint64
	finishedAt  sim.Time
}

func newMaestro(eng *sim.Engine, cfg *Config) *Maestro {
	m := &Maestro{
		eng:    eng,
		cfg:    cfg,
		tp:     NewTaskPool(cfg.TaskPoolEntries, cfg.MaxParamsPerTD),
		dt:     NewDepTable(cfg.DepTableEntries, cfg.KickOffSlots),
		cdTask: -1,
	}
	m.dt.strictKO = cfg.HardKickOffLimit
	if cfg.RenameFalseDeps {
		m.dt.EnableRenaming()
	}
	if cfg.TablePorts > 0 {
		m.tpPort = sim.NewResource("task-pool-ports", cfg.TablePorts)
		m.dtPort = sim.NewResource("dep-table-ports", cfg.TablePorts)
	}
	// Invariant-safe capacities: every ID in New Tasks or Global Ready
	// belongs to a live Task Pool entry, so sizing both lists at the pool
	// capacity makes overflow impossible (Table IV sizes them identically
	// for the default 1K pool).
	m.tdsSizes = sim.NewFIFO[int]("tds-sizes", cfg.TDsListEntries)
	m.tdsBuffer = sim.NewFIFO[trace.TaskSpec]("tds-buffer", cfg.TDsListEntries)
	m.newTasks = sim.NewFIFO[int32]("new-tasks", cfg.TaskPoolEntries)
	m.globalReady = sim.NewFIFO[int32]("global-ready", cfg.TaskPoolEntries)
	tokens := cfg.Workers * cfg.BufferingDepth
	m.workerIDs = sim.NewFIFO[int]("worker-ids", tokens)
	m.finishNotif = sim.NewFIFO[int]("finish-notif", tokens)
	m.rdyTasks = make([]*sim.FIFO[int32], cfg.Workers)
	m.finTasks = make([]*sim.FIFO[int32], cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		m.rdyTasks[i] = sim.NewFIFO[int32]("rdy-tasks", cfg.BufferingDepth)
		m.finTasks[i] = sim.NewFIFO[int32]("fin-tasks", cfg.BufferingDepth)
		// The Worker Cores IDs list initially holds every core ID repeated
		// "buffering depth" times (paper SSIII-A).
		for b := 0; b < cfg.BufferingDepth; b++ {
			m.workerIDs.MustPush(i)
		}
	}
	m.writeTP = sim.NewServer(eng, "write-tp")
	m.checkDeps = sim.NewServer(eng, "check-deps")
	m.schedule = sim.NewServer(eng, "schedule")
	m.sendTDs = sim.NewServer(eng, "send-tds")
	m.handleFin = sim.NewServer(eng, "handle-finished")

	// Event wiring: FIFO writes are the 1-bit triggers of Figure 2.
	m.tdsSizes.OnData(m.kickWriteTP)
	m.tp.OnFree(m.kickWriteTP)
	m.newTasks.OnData(m.kickCheckDeps)
	m.dt.OnFree(m.kickCheckDeps)
	m.globalReady.OnData(m.kickSchedule)
	m.workerIDs.OnData(m.kickSchedule)
	m.finishNotif.OnData(m.kickHandleFinished)
	return m
}

func (m *Maestro) attachControllers(tcs []*TaskController) {
	m.tcs = tcs
	for i := range m.rdyTasks {
		m.rdyTasks[i].OnData(m.kickSendTDs)
	}
}

// submitDelivered is called by the Get TDs block when the bus finishes
// delivering a descriptor from the master core. The master guarantees space
// before submitting (it stalls while the TDs Sizes list is full).
func (m *Maestro) submitDelivered(spec trace.TaskSpec) {
	m.tdsBuffer.MustPush(spec)
	m.tdsSizes.MustPush(spec.NumParams())
}

// canAcceptSubmission reports whether the TDs Sizes list has room; when it
// is full "the Master Core stalls and stops sending new Task Descriptors".
func (m *Maestro) canAcceptSubmission() bool { return !m.tdsSizes.Full() }

// acquirePorts obtains the requested table ports in a fixed order (Task
// Pool before Dependence Table, which makes the two-port holders
// deadlock-free) and invokes fn with the matching release function. With
// unlimited ports (Config.TablePorts == 0) fn runs synchronously.
func (m *Maestro) acquirePorts(needTP, needDT bool, fn func(release func())) {
	var held []*sim.Resource
	release := func() {
		for i := len(held) - 1; i >= 0; i-- {
			held[i].Release()
		}
	}
	acquireDT := func() {
		if needDT && m.dtPort != nil {
			m.dtPort.Acquire(func() {
				held = append(held, m.dtPort)
				fn(release)
			})
			return
		}
		fn(release)
	}
	if needTP && m.tpPort != nil {
		m.tpPort.Acquire(func() {
			held = append(held, m.tpPort)
			acquireDT()
		})
		return
	}
	acquireDT()
}

// --- Write TP block -------------------------------------------------------

func (m *Maestro) kickWriteTP() {
	if m.writeTP.Busy() || m.wtpPending {
		return
	}
	size, ok := m.tdsSizes.Peek()
	if !ok {
		return
	}
	spec, _ := m.tdsBuffer.Peek()
	if m.cfg.HardParamLimit && size > m.cfg.MaxParamsPerTD {
		panic(FatalModelError{Reason: fmt.Sprintf(
			"task %d has %d parameters, exceeding the fixed per-descriptor limit of %d with dummy tasks disabled (original-Nexus limit)",
			spec.ID, size, m.cfg.MaxParamsPerTD)})
	}
	need := NumTDs(size, m.cfg.MaxParamsPerTD)
	if m.tp.FreeCount() < need {
		return // retried via tp.OnFree
	}
	m.tdsSizes.Pop()
	m.tdsBuffer.Pop()
	m.wtpPending = true
	m.acquirePorts(true, false, func(release func()) {
		m.wtpPending = false
		id, ok := m.tp.Alloc(spec)
		if !ok {
			panic("core: Task Pool allocation failed after free-count check")
		}
		lat := m.cfg.cycles(m.cfg.Costs.WriteTPBase + m.cfg.Costs.WriteTPPerTD*need)
		m.writeTP.Start(lat, func() {
			release()
			m.tasksStored++
			m.newTasks.MustPush(id)
			m.kickWriteTP()
		})
	})
}

// --- Check Deps block ------------------------------------------------------

func (m *Maestro) kickCheckDeps() {
	if m.checkDeps.Busy() || m.cdPending {
		return
	}
	if m.cdTask < 0 {
		if m.newTasks.Empty() {
			return
		}
	} else if !m.cdWaiting {
		return
	}
	m.cdPending = true
	m.acquirePorts(true, true, func(release func()) {
		m.cdPending = false
		m.doCheckDeps(release)
	})
}

func (m *Maestro) doCheckDeps(release func()) {
	accesses := 0
	if m.cdTask < 0 {
		id, ok := m.newTasks.Pop()
		if !ok {
			release()
			return
		}
		m.cdTask = id
		m.cdParam = 0
		m.cdWaiting = false
		m.tp.Entry(id).checking = true
	} else {
		m.cdWaiting = false
	}
	e := m.tp.Entry(m.cdTask)
	params := e.spec.Params
	stalled := false
	for m.cdParam < len(params) {
		p := params[m.cdParam]
		var granted, st bool
		var acc int
		if m.dt.Renaming() {
			var version int32
			version, granted, acc, st = m.dt.ProcessNewVersioned(m.cdTask, p.Addr, p.Size, toParamMode(p.Mode))
			if !st {
				e.versions = append(e.versions, version)
			}
		} else {
			granted, acc, st = m.dt.ProcessNew(m.cdTask, p.Addr, p.Size, p.Mode.Writes())
		}
		accesses += acc
		if st {
			stalled = true
			break
		}
		if !granted {
			m.tp.AddDC(m.cdTask, 1)
		}
		m.cdParam++
	}
	lat := m.cfg.cycles(m.cfg.Costs.CheckDepsBase + m.cfg.Costs.CheckDepsPerAccess*accesses)
	task := m.cdTask
	done := !stalled
	m.checkDeps.Start(lat, func() {
		release()
		if !done {
			// Stalled on a full Dependence Table. Park until dt.OnFree
			// re-kicks us — but a slot may already have been released
			// during this service window (the wake-up fired while the
			// block was busy), so check once before parking.
			m.cdWaiting = true
			if m.dt.HasFree() {
				m.kickCheckDeps()
			}
			return
		}
		entry := m.tp.Entry(task)
		entry.checking = false
		m.tasksChecked++
		if entry.dc == 0 {
			m.readyAtCheck++
			m.globalReady.MustPush(task)
		}
		m.cdTask = -1
		m.kickCheckDeps()
	})
}

// --- Schedule block --------------------------------------------------------

func (m *Maestro) kickSchedule() {
	if m.schedule.Busy() || m.globalReady.Empty() || m.workerIDs.Empty() {
		return
	}
	task, _ := m.globalReady.Pop()
	core, _ := m.workerIDs.Pop()
	m.schedule.Start(m.cfg.cycles(m.cfg.Costs.ScheduleCycles), func() {
		m.rdyTasks[core].MustPush(task)
		m.kickSchedule()
	})
}

// --- Send TDs block --------------------------------------------------------

func (m *Maestro) kickSendTDs() {
	if m.sendTDs.Busy() || m.stdPending {
		return
	}
	n := len(m.rdyTasks)
	core := -1
	for i := 0; i < n; i++ {
		c := (m.rrPtr + i) % n
		if !m.rdyTasks[c].Empty() && m.tcs[c].canReceive() {
			core = c
			break
		}
	}
	if core < 0 {
		return
	}
	m.rrPtr = (core + 1) % n
	task, _ := m.rdyTasks[core].Pop()
	m.stdPending = true
	m.acquirePorts(true, false, func(release func()) {
		m.stdPending = false
		spec := m.tp.Spec(task)
		nTDs := NumTDs(len(spec.Params), m.cfg.MaxParamsPerTD)
		c := m.cfg.Costs
		lat := m.cfg.cycles(c.SendTDsBase + c.SendTDsPerTD*nTDs +
			c.SendTDsLinkSetup + c.SendTDsPerParam*len(spec.Params))
		m.sendTDs.Start(lat, func() {
			release()
			m.finTasks[core].MustPush(task)
			m.tasksSent++
			m.tcs[core].receive(task)
			m.kickSendTDs()
		})
	})
}

// taskFinished is the Task Controller's 1-bit task-finished notification.
func (m *Maestro) taskFinished(core int) {
	m.finishNotif.MustPush(core)
}

// toParamMode converts a trace access mode to the renaming-path mode.
func toParamMode(m trace.AccessMode) paramMode {
	switch m {
	case trace.In:
		return paramIn
	case trace.Out:
		return paramOut
	default:
		return paramInOut
	}
}

// --- Handle Finished block --------------------------------------------------

func (m *Maestro) kickHandleFinished() {
	if m.handleFin.Busy() || m.hfPending {
		return
	}
	core, ok := m.finishNotif.Pop()
	if !ok {
		return
	}
	task, ok := m.finTasks[core].Pop()
	if !ok {
		panic("core: finished notification without a CiFinTasks entry")
	}
	m.hfPending = true
	m.acquirePorts(true, true, func(release func()) {
		m.hfPending = false
		e := m.tp.Entry(task)
		nTDs := 1 + len(e.extra)
		accesses := 0
		var ready []int32
		for i, p := range e.spec.Params {
			var grants []Grant
			var acc int
			if m.dt.Renaming() {
				grants, acc = m.dt.ProcessFinishedVersioned(task, e.versions[i], p.Mode.Writes())
			} else {
				grants, acc = m.dt.ProcessFinished(task, p.Addr, p.Mode.Writes())
			}
			accesses += acc
			for _, g := range grants {
				waiter := m.tp.Entry(g.Task)
				if m.tp.AddDC(g.Task, -1) == 0 && !waiter.checking {
					ready = append(ready, g.Task)
				}
			}
		}
		c := m.cfg.Costs
		lat := m.cfg.cycles(c.HandleFinBase + c.HandleFinPerTD*nTDs + c.HandleFinPerAccess*accesses)
		m.handleFin.Start(lat, func() {
			release()
			for _, r := range ready {
				m.globalReady.MustPush(r)
			}
			m.tp.Free(task)
			m.workerIDs.MustPush(core)
			m.tasksFinished++
			if m.tasksFinished == m.expectTotal {
				m.finishedAt = m.eng.Now()
			}
			m.kickHandleFinished()
		})
	})
}
