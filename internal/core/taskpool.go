package core

import (
	"fmt"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
)

// TaskPool is the Task Maestro's main task storage (paper Table I). Every
// task is identified by the index of its descriptor, so no table is ever
// searched. Tasks whose parameter list exceeds one descriptor chain dummy
// descriptors: the parent keeps MaxParamsPerTD-1 parameters plus a pointer,
// and each following dummy keeps up to MaxParamsPerTD-1 parameters plus a
// pointer (the final one may use all MaxParamsPerTD slots).
type TaskPool struct {
	entries   []tpEntry
	free      *sim.FIFO[int32]
	maxParams int

	// Statistics.
	dummyTDs     uint64
	maxOccupancy int
	occupancy    int
	allocated    uint64
}

type tpEntry struct {
	live    bool
	isDummy bool
	// checking is the paper's busy flag: while the Check Deps block is
	// processing this descriptor, the Handle Finished block must not
	// schedule it even if its dependence counter reaches zero.
	checking bool
	parent   int32
	spec     trace.TaskSpec
	dc       int     // Dependence Counter
	extra    []int32 // chained dummy descriptor indices (nD = len(extra))
	// versions binds each parameter to the Dependence Table version it was
	// granted (renaming mode only; parallel to spec.Params).
	versions []int32
}

// NewTaskPool returns a pool with the given descriptor count.
func NewTaskPool(entries, maxParamsPerTD int) *TaskPool {
	tp := &TaskPool{
		entries:   make([]tpEntry, entries),
		free:      sim.NewFIFO[int32]("tp-free-indices", entries),
		maxParams: maxParamsPerTD,
	}
	for i := 0; i < entries; i++ {
		tp.free.MustPush(int32(i))
	}
	return tp
}

// NumTDs returns the number of descriptors a task with nParams parameters
// occupies given the per-descriptor capacity.
func NumTDs(nParams, maxPerTD int) int {
	if nParams <= maxPerTD {
		return 1
	}
	// The parent holds maxPerTD-1 parameters plus a pointer; every
	// following descriptor does the same until the remainder fits whole.
	n := 1
	rem := nParams - (maxPerTD - 1)
	for rem > maxPerTD {
		rem -= maxPerTD - 1
		n++
	}
	return n + 1
}

// Capacity returns the total descriptor count.
func (tp *TaskPool) Capacity() int { return tp.free.Cap() }

// FreeCount returns the number of free descriptors.
func (tp *TaskPool) FreeCount() int { return tp.free.Len() }

// Occupancy returns the number of live descriptors.
func (tp *TaskPool) Occupancy() int { return tp.occupancy }

// MaxOccupancy returns the highest descriptor occupancy observed.
func (tp *TaskPool) MaxOccupancy() int { return tp.maxOccupancy }

// DummyTDs returns how many dummy descriptors have been chained so far.
func (tp *TaskPool) DummyTDs() uint64 { return tp.dummyTDs }

// Allocated returns the number of tasks stored so far.
func (tp *TaskPool) Allocated() uint64 { return tp.allocated }

// OnFree registers a callback invoked whenever descriptors are returned,
// used by the Write TP block to retry a stalled allocation.
func (tp *TaskPool) OnFree(fn func()) { tp.free.OnData(fn) }

// NeededTDs returns the descriptor count spec would occupy.
func (tp *TaskPool) NeededTDs(spec *trace.TaskSpec) int {
	return NumTDs(len(spec.Params), tp.maxParams)
}

// Alloc stores spec and returns its task ID (the parent descriptor index).
// ok is false when the pool lacks enough free descriptors; nothing is
// mutated in that case and the caller should retry via OnFree. Alloc panics
// if the task can never fit (more descriptors than the pool holds), which
// mirrors the paper's note that the parameter count remains bounded by the
// Task Pool size.
func (tp *TaskPool) Alloc(spec trace.TaskSpec) (id int32, ok bool) {
	need := tp.NeededTDs(&spec)
	if need > tp.Capacity() {
		panic(fmt.Sprintf("core: task %d needs %d descriptors, Task Pool holds only %d",
			spec.ID, need, tp.Capacity()))
	}
	if tp.free.Len() < need {
		return 0, false
	}
	parent, _ := tp.free.Pop()
	e := &tp.entries[parent]
	*e = tpEntry{live: true, spec: spec, parent: parent}
	for i := 1; i < need; i++ {
		idx, _ := tp.free.Pop()
		tp.entries[idx] = tpEntry{live: true, isDummy: true, parent: parent}
		e.extra = append(e.extra, idx)
		tp.dummyTDs++
	}
	tp.allocated++
	tp.occupancy += need
	if tp.occupancy > tp.maxOccupancy {
		tp.maxOccupancy = tp.occupancy
	}
	return parent, true
}

// Entry returns the live parent entry for id; it panics on a dead or dummy
// index, which would indicate a model bug (the paper's busy flag guards the
// same invariant in hardware).
func (tp *TaskPool) Entry(id int32) *tpEntry {
	e := &tp.entries[id]
	if !e.live || e.isDummy {
		panic(fmt.Sprintf("core: Task Pool access to dead or dummy entry %d", id))
	}
	return e
}

// Spec returns the stored descriptor of task id.
func (tp *TaskPool) Spec(id int32) *trace.TaskSpec { return &tp.Entry(id).spec }

// DC returns the task's dependence counter.
func (tp *TaskPool) DC(id int32) int { return tp.Entry(id).dc }

// AddDC adjusts the task's dependence counter by delta and returns the new
// value.
func (tp *TaskPool) AddDC(id int32, delta int) int {
	e := tp.Entry(id)
	e.dc += delta
	if e.dc < 0 {
		panic(fmt.Sprintf("core: task %d dependence counter went negative", id))
	}
	return e.dc
}

// Free deletes task id and returns all of its descriptors (parent plus
// dummies) to the free-indices list.
func (tp *TaskPool) Free(id int32) {
	e := tp.Entry(id)
	n := 1 + len(e.extra)
	for _, idx := range e.extra {
		tp.entries[idx] = tpEntry{}
		tp.free.MustPush(idx)
	}
	*e = tpEntry{}
	tp.free.MustPush(id)
	tp.occupancy -= n
}
