package core

import (
	"testing"
)

func findItem(t *testing.T, items []StorageItem, name string) int {
	t.Helper()
	for _, it := range items {
		if it.Name == name {
			return it.Bytes
		}
	}
	t.Fatalf("missing storage item %q", name)
	return 0
}

func TestStorageBudgetMatchesTableIV(t *testing.T) {
	// The paper's Table IV for 512 worker cores.
	cfg := DefaultConfig(512)
	items := StorageBudget(cfg)
	if got := findItem(t, items, "Task Pool"); got != 78*1024 {
		t.Errorf("Task Pool = %d, want 78KB = %d", got, 78*1024)
	}
	if got := findItem(t, items, "Dependence Table"); got != 28*4096 {
		t.Errorf("Dependence Table = %d, want 112KB = %d", got, 28*4096)
	}
	if got := findItem(t, items, "TDs Sizes list"); got != 1024 {
		t.Errorf("TDs Sizes = %d, want 1KB", got)
	}
	// 1K task IDs at 2 bytes each = 2KB for the ID-carrying lists.
	for _, name := range []string{"New Tasks list", "TP Free Indices list", "Global Ready Tasks list"} {
		if got := findItem(t, items, name); got != 2048 {
			t.Errorf("%s = %d, want 2KB", name, got)
		}
	}
	// 512 cores x depth 2 x 2-byte core IDs = 2KB Worker Cores IDs.
	if got := findItem(t, items, "Worker Cores IDs list"); got != 2048 {
		t.Errorf("Worker Cores IDs = %d, want 2KB", got)
	}
	// Per-core rdy/fin lists: 2 IDs x 2 bytes = 4 bytes per core per list.
	if got := findItem(t, items, "CxRdyTasks lists"); got != 512*4 {
		t.Errorf("CxRdyTasks = %d, want 4B per core", got)
	}
}

func TestTotalStorageUnderPaperBound(t *testing.T) {
	// "All tables and FIFO lists in the Nexus++ task manager do not exceed
	// 210KB of memory."
	total := TotalStorage(DefaultConfig(512))
	if total > 210*1024 {
		t.Fatalf("total storage %d exceeds the paper's 210KB bound", total)
	}
	if total < 190*1024 {
		t.Fatalf("total storage %d suspiciously below the paper's figure (~199KB expected)", total)
	}
	if TaskSuperscalarBytes/total < 30 {
		t.Errorf("Task Superscalar comparison lost: ratio %d", TaskSuperscalarBytes/total)
	}
}

func TestStorageSortedDescending(t *testing.T) {
	items := StorageBudget(DefaultConfig(64))
	for i := 1; i < len(items); i++ {
		if items[i].Bytes > items[i-1].Bytes {
			t.Fatalf("items not sorted: %v", items)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		100:       "100B",
		2048:      "2KB",
		78 * 1024: "78KB",
		6_500_000: "6.2MB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 1024: 10, 1025: 11, 512: 9, 4096: 12}
	for in, want := range cases {
		if got := bitsFor(in); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", in, got, want)
		}
	}
}
