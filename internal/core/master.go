package core

import (
	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

// MasterCore models the core that executes the main thread: it prepares
// Task Descriptors (30 ns each in the paper's estimate, compensating for
// the off-chip communication Nexus needed) and submits them to the Task
// Maestro over the on-chip bus. It stalls while the TDs Sizes list is full.
type MasterCore struct {
	eng     *sim.Engine
	sys     *System
	src     workload.Source
	pending *trace.TaskSpec // prepared descriptor waiting for FIFO space

	submitted  uint64
	stallSince sim.Time
	stallTime  sim.Time
	done       bool
}

func newMasterCore(eng *sim.Engine, sys *System, src workload.Source) *MasterCore {
	return &MasterCore{eng: eng, sys: sys, src: src, stallSince: -1}
}

// start begins the generate-and-submit loop at time zero.
func (mc *MasterCore) start() {
	mc.eng.After(0, mc.prepareNext)
}

// Submitted returns the number of descriptors delivered to the Maestro.
func (mc *MasterCore) Submitted() uint64 { return mc.submitted }

// StallTime returns the cumulative time spent stalled on a full TDs Sizes
// list.
func (mc *MasterCore) StallTime() sim.Time { return mc.stallTime }

// Done reports whether the source is exhausted and fully submitted.
func (mc *MasterCore) Done() bool { return mc.done }

func (mc *MasterCore) prepareNext() {
	spec, ok := mc.src.Next()
	if !ok {
		mc.done = true
		return
	}
	prep := mc.sys.cfg.TaskPrep
	if mc.sys.cfg.DisableTaskPrep {
		prep = 0
	}
	mc.eng.After(prep, func() {
		mc.pending = &spec
		mc.trySubmit()
	})
}

// trySubmit sends the prepared descriptor when the Maestro can accept it;
// otherwise the master stalls until the Get TDs path drains (retried via
// the system's onSubmitSpace hook).
func (mc *MasterCore) trySubmit() {
	if mc.pending == nil {
		return
	}
	if !mc.sys.maestro.canAcceptSubmission() {
		if mc.stallSince < 0 {
			mc.stallSince = mc.eng.Now()
		}
		return
	}
	if mc.stallSince >= 0 {
		mc.stallTime += mc.eng.Now() - mc.stallSince
		mc.stallSince = -1
	}
	spec := *mc.pending
	mc.pending = nil
	mc.sys.bus.Submit(len(spec.Params), func() {
		mc.submitted++
		mc.sys.maestro.submitDelivered(spec)
		// The master drives the bus itself, so it prepares the next
		// descriptor only after this transfer completes; the Get TDs block
		// decouples it from the Maestro's processing, not from the bus.
		mc.prepareNext()
	})
}
