package core

import "nexuspp/internal/sim"

// Timeline sampling: periodic snapshots of the structure occupancies that
// drive the design-space exploration of Figure 6 — how full the Task Pool
// and Dependence Table actually run, how deep the ready queue gets, and how
// many memory ports are busy. Enabled with Config.SampleEvery.

// TimelineSample is one snapshot of the system state.
type TimelineSample struct {
	At sim.Time
	// TPOccupancy is the number of live Task Pool descriptors.
	TPOccupancy int
	// DTOccupancy is the number of occupied Dependence Table slots.
	DTOccupancy int
	// ReadyQueue is the Global Ready Tasks list depth.
	ReadyQueue int
	// MemInUse is the number of busy off-chip memory ports.
	MemInUse int
}

// startSampler arms the periodic snapshot event. The sampler re-arms itself
// only while tasks remain, so it never keeps the event queue alive after
// the run completes; Result.Makespan is taken from the final task's
// completion, so sampling cannot distort any reported time.
func (s *System) startSampler(total uint64) {
	period := s.cfg.SampleEvery
	if period <= 0 {
		return
	}
	var tick func()
	tick = func() {
		s.timeline = append(s.timeline, TimelineSample{
			At:          s.eng.Now(),
			TPOccupancy: s.maestro.tp.Occupancy(),
			DTOccupancy: s.maestro.dt.Used(),
			ReadyQueue:  s.maestro.globalReady.Len(),
			MemInUse:    s.memory.InUse(),
		})
		if s.maestro.tasksFinished < total {
			s.eng.After(period, tick)
		}
	}
	s.eng.After(period, tick)
}
