package core

import (
	"testing"
	"testing/quick"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
)

func TestNumTDs(t *testing.T) {
	cases := []struct {
		params, max, want int
	}{
		{1, 8, 1},
		{8, 8, 1},
		{9, 8, 2},  // parent 7 + dummy 2
		{10, 8, 2}, // the paper's Table I example: 10 params in 2 TDs
		{15, 8, 2}, // parent 7 + dummy 8
		{16, 8, 3}, // parent 7 + dummy 7 + dummy 2
		{22, 8, 3}, // 7 + 7 + 8
		{23, 8, 4},
		{3, 4, 1},
		{5, 4, 2},
		{11, 4, 4}, // 3 + 3 + 3 + 2
	}
	for _, c := range cases {
		if got := NumTDs(c.params, c.max); got != c.want {
			t.Errorf("NumTDs(%d, %d) = %d, want %d", c.params, c.max, got, c.want)
		}
	}
}

// Property: NumTDs is the minimal chain covering all params under the
// layout "every non-final TD holds max-1 params + pointer; the final TD
// holds up to max params".
func TestNumTDsProperty(t *testing.T) {
	prop := func(pRaw uint16, mRaw uint8) bool {
		params := int(pRaw%500) + 1
		max := int(mRaw%14) + 2
		n := NumTDs(params, max)
		capacity := func(k int) int {
			if k <= 0 {
				return 0
			}
			return (k-1)*(max-1) + max
		}
		return capacity(n) >= params && (n == 1 || capacity(n-1) < params)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func wideSpec(id uint64, n int) trace.TaskSpec {
	s := trace.TaskSpec{ID: id, Exec: 1}
	for i := 0; i < n; i++ {
		s.Params = append(s.Params, trace.Param{Addr: 0x1000 + uint64(i)*64, Size: 64, Mode: trace.In})
	}
	return s
}

func TestTaskPoolAllocFree(t *testing.T) {
	tp := NewTaskPool(8, 8)
	if tp.Capacity() != 8 || tp.FreeCount() != 8 {
		t.Fatalf("capacity/free = %d/%d", tp.Capacity(), tp.FreeCount())
	}
	id, ok := tp.Alloc(wideSpec(0, 3))
	if !ok {
		t.Fatal("alloc failed")
	}
	if tp.FreeCount() != 7 || tp.Occupancy() != 1 {
		t.Fatalf("free/occ = %d/%d", tp.FreeCount(), tp.Occupancy())
	}
	if tp.Spec(id).ID != 0 || tp.DC(id) != 0 {
		t.Fatal("stored spec wrong")
	}
	tp.Free(id)
	if tp.FreeCount() != 8 || tp.Occupancy() != 0 {
		t.Fatalf("after free: free/occ = %d/%d", tp.FreeCount(), tp.Occupancy())
	}
}

func TestTaskPoolDummyChains(t *testing.T) {
	tp := NewTaskPool(8, 8)
	// 10 params -> 2 TDs (paper's Table I example).
	id, ok := tp.Alloc(wideSpec(0, 10))
	if !ok {
		t.Fatal("alloc failed")
	}
	if tp.Occupancy() != 2 || tp.DummyTDs() != 1 {
		t.Fatalf("occ=%d dummies=%d, want 2/1", tp.Occupancy(), tp.DummyTDs())
	}
	e := tp.Entry(id)
	if len(e.extra) != 1 {
		t.Fatalf("nD = %d, want 1", len(e.extra))
	}
	tp.Free(id)
	if tp.FreeCount() != 8 {
		t.Fatalf("dummy descriptors not returned: free = %d", tp.FreeCount())
	}
}

func TestTaskPoolInsufficientSpace(t *testing.T) {
	tp := NewTaskPool(3, 8)
	if _, ok := tp.Alloc(wideSpec(0, 10)); !ok { // needs 2 TDs
		t.Fatal("first alloc failed")
	}
	if _, ok := tp.Alloc(wideSpec(1, 10)); ok { // needs 2, only 1 free
		t.Fatal("alloc succeeded without space")
	}
	if tp.FreeCount() != 1 {
		t.Fatalf("failed alloc mutated the pool: free = %d", tp.FreeCount())
	}
}

func TestTaskPoolImpossibleTaskPanics(t *testing.T) {
	tp := NewTaskPool(2, 8)
	defer func() {
		if recover() == nil {
			t.Error("oversized task did not panic")
		}
	}()
	tp.Alloc(wideSpec(0, 100)) // needs far more TDs than the pool holds
}

func TestTaskPoolDeadEntryPanics(t *testing.T) {
	tp := NewTaskPool(4, 8)
	id, _ := tp.Alloc(wideSpec(0, 1))
	tp.Free(id)
	defer func() {
		if recover() == nil {
			t.Error("access to dead entry did not panic")
		}
	}()
	tp.Entry(id)
}

func TestTaskPoolDCUnderflowPanics(t *testing.T) {
	tp := NewTaskPool(4, 8)
	id, _ := tp.Alloc(wideSpec(0, 1))
	defer func() {
		if recover() == nil {
			t.Error("DC underflow did not panic")
		}
	}()
	tp.AddDC(id, -1)
}

func TestTaskPoolOnFree(t *testing.T) {
	tp := NewTaskPool(4, 8)
	fired := 0
	tp.OnFree(func() { fired++ })
	id, _ := tp.Alloc(wideSpec(0, 10))
	tp.Free(id)
	if fired != 2 { // two descriptors returned
		t.Fatalf("OnFree fired %d times, want 2", fired)
	}
}

// --- Dependence Table ------------------------------------------------------

func TestDepTableReadersShare(t *testing.T) {
	dt := NewDepTable(16, 8)
	g, _, st := dt.ProcessNew(1, 0xA, 4, false)
	if !g || st {
		t.Fatal("first reader not granted")
	}
	g, _, st = dt.ProcessNew(2, 0xA, 4, false)
	if !g || st {
		t.Fatal("second reader not granted")
	}
	if dt.Live() != 1 || dt.Used() != 1 {
		t.Fatalf("live/used = %d/%d", dt.Live(), dt.Used())
	}
	// First reader finishes: entry stays for the second.
	grants, _ := dt.ProcessFinished(1, 0xA, false)
	if len(grants) != 0 || dt.Live() != 1 {
		t.Fatalf("grants=%v live=%d", grants, dt.Live())
	}
	// Last reader finishes: entry removed.
	grants, _ = dt.ProcessFinished(2, 0xA, false)
	if len(grants) != 0 || dt.Live() != 0 || dt.Used() != 0 {
		t.Fatalf("after last reader: grants=%v live=%d used=%d", grants, dt.Live(), dt.Used())
	}
	if err := dt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDepTableRAW(t *testing.T) {
	dt := NewDepTable(16, 8)
	dt.ProcessNew(1, 0xA, 4, true) // writer owns A
	g, _, _ := dt.ProcessNew(2, 0xA, 4, false)
	if g {
		t.Fatal("reader granted while writer owns the segment (RAW hazard)")
	}
	grants, _ := dt.ProcessFinished(1, 0xA, true)
	if len(grants) != 1 || grants[0].Task != 2 {
		t.Fatalf("grants = %v, want task 2", grants)
	}
	// Task 2 now reads A; finishing it removes the entry.
	dt.ProcessFinished(2, 0xA, false)
	if dt.Live() != 0 {
		t.Fatal("entry leaked")
	}
}

func TestDepTableWARWriterWaits(t *testing.T) {
	dt := NewDepTable(16, 8)
	dt.ProcessNew(1, 0xB, 4, false) // reader active
	g, _, _ := dt.ProcessNew(10, 0xB, 4, true)
	if g {
		t.Fatal("writer granted while reader active (WAR hazard)")
	}
	// Any later task must wait too, regardless of mode (paper SSIII-B).
	g, _, _ = dt.ProcessNew(11, 0xB, 4, false)
	if g {
		t.Fatal("reader granted while a writer waits")
	}
	// Reader finishes: the writer takes over, the later reader still waits.
	grants, _ := dt.ProcessFinished(1, 0xB, false)
	if len(grants) != 1 || grants[0].Task != 10 {
		t.Fatalf("grants = %v, want task 10", grants)
	}
	// Writer finishes: the queued reader is granted.
	grants, _ = dt.ProcessFinished(10, 0xB, true)
	if len(grants) != 1 || grants[0].Task != 11 {
		t.Fatalf("grants = %v, want task 11", grants)
	}
	dt.ProcessFinished(11, 0xB, false)
	if err := dt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDepTableWAW(t *testing.T) {
	dt := NewDepTable(16, 8)
	dt.ProcessNew(1, 0xC, 4, true)
	g, _, _ := dt.ProcessNew(2, 0xC, 4, true)
	if g {
		t.Fatal("second writer granted (WAW hazard)")
	}
	grants, _ := dt.ProcessFinished(1, 0xC, true)
	if len(grants) != 1 || grants[0].Task != 2 {
		t.Fatalf("grants = %v", grants)
	}
	dt.ProcessFinished(2, 0xC, true)
	if dt.Live() != 0 {
		t.Fatal("entry leaked")
	}
}

func TestDepTableWriterReleasesReaderBatch(t *testing.T) {
	dt := NewDepTable(16, 8)
	dt.ProcessNew(1, 0xD, 4, true)
	for id := int32(2); id <= 5; id++ {
		dt.ProcessNew(id, 0xD, 4, false)
	}
	dt.ProcessNew(6, 0xD, 4, true) // writer behind the readers
	grants, _ := dt.ProcessFinished(1, 0xD, true)
	if len(grants) != 4 {
		t.Fatalf("granted %d readers, want 4", len(grants))
	}
	for i, g := range grants {
		if g.Task != int32(i+2) {
			t.Fatalf("grant order %v", grants)
		}
	}
	// Readers drain one by one; only after the last one does writer 6 run.
	for id := int32(2); id <= 4; id++ {
		if gs, _ := dt.ProcessFinished(id, 0xD, false); len(gs) != 0 {
			t.Fatalf("premature writer grant after reader %d", id)
		}
	}
	gs, _ := dt.ProcessFinished(5, 0xD, false)
	if len(gs) != 1 || gs[0].Task != 6 {
		t.Fatalf("final grants = %v, want task 6", gs)
	}
	dt.ProcessFinished(6, 0xD, true)
	if err := dt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDepTableDummySegments(t *testing.T) {
	dt := NewDepTable(16, 2) // tiny kick-off lists force chaining
	dt.ProcessNew(1, 0xE, 4, true)
	for id := int32(2); id <= 8; id++ { // 7 waiters, 2 per segment
		if _, _, st := dt.ProcessNew(id, 0xE, 4, false); st {
			t.Fatalf("unexpected stall at waiter %d", id)
		}
	}
	if dt.DummySegments() != 3 { // segments: 2+2+2+1 -> 3 dummies chained
		t.Fatalf("dummy segments = %d, want 3", dt.DummySegments())
	}
	if dt.MaxKOSegments() != 4 {
		t.Fatalf("max KO segments = %d, want 4", dt.MaxKOSegments())
	}
	if dt.Used() != 4 { // 1 parent + 3 dummies
		t.Fatalf("used = %d, want 4", dt.Used())
	}
	// Draining promotes dummies to parent and releases slots.
	grants, _ := dt.ProcessFinished(1, 0xE, true)
	if len(grants) != 7 {
		t.Fatalf("grants = %d, want 7", len(grants))
	}
	if dt.Used() != 1 {
		t.Fatalf("used after drain = %d, want 1 (dummies released)", dt.Used())
	}
	for id := int32(2); id <= 8; id++ {
		dt.ProcessFinished(id, 0xE, false)
	}
	if dt.Used() != 0 {
		t.Fatal("slots leaked")
	}
	if err := dt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDepTableStallsWhenFull(t *testing.T) {
	dt := NewDepTable(2, 8)
	dt.ProcessNew(1, 0xA, 4, true)
	dt.ProcessNew(2, 0xB, 4, true)
	g, _, st := dt.ProcessNew(3, 0xC, 4, false)
	if !st || g {
		t.Fatalf("expected full-table stall, got granted=%v stalled=%v", g, st)
	}
	if dt.FullStalls() != 1 {
		t.Fatalf("fullStalls = %d", dt.FullStalls())
	}
	freed := false
	dt.OnFree(func() { freed = true })
	dt.ProcessFinished(1, 0xA, true)
	if !freed {
		t.Fatal("OnFree not invoked")
	}
	if g, _, st = dt.ProcessNew(3, 0xC, 4, false); !g || st {
		t.Fatal("retry after free failed")
	}
}

func TestDepTableKOStallWhenFull(t *testing.T) {
	dt := NewDepTable(2, 1) // one KO slot per segment
	dt.ProcessNew(1, 0xA, 4, true)
	if _, _, st := dt.ProcessNew(2, 0xA, 4, false); st {
		t.Fatal("first waiter should fit in the parent segment")
	}
	dt.ProcessNew(3, 0xB, 4, true) // fills the second slot
	// Next waiter on A needs a dummy segment: table is full.
	if _, _, st := dt.ProcessNew(4, 0xA, 4, false); !st {
		t.Fatal("expected stall when a kick-off extension cannot allocate")
	}
	if err := dt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDepTableChainStats(t *testing.T) {
	dt := NewDepTable(64, 8)
	for i := 0; i < 40; i++ {
		dt.ProcessNew(int32(i), uint64(i+1)*977, 4, true)
	}
	if dt.MaxChain() < 1 {
		t.Fatal("max chain not tracked")
	}
	if dt.MaxOccupancy() != 40 {
		t.Fatalf("max occupancy = %d, want 40", dt.MaxOccupancy())
	}
}

func TestDepTableUnknownFinishPanics(t *testing.T) {
	dt := NewDepTable(8, 8)
	defer func() {
		if recover() == nil {
			t.Error("finishing an unknown segment did not panic")
		}
	}()
	dt.ProcessFinished(1, 0xDEAD, true)
}

// Property: random sequences of well-formed accesses keep the table's
// invariants and never leak slots once all tasks finish. The reference
// "well-formed" driver mirrors how the Maestro uses the table: a task is
// granted or queued per address, finishes only after being granted, and
// finishing releases its holds.
func TestDepTableLifecycleProperty(t *testing.T) {
	type hold struct {
		addr  uint64
		write bool
	}
	prop := func(seed uint64, opsRaw uint8) bool {
		rng := sim.NewRand(seed)
		dt := NewDepTable(64, 2)
		active := map[int32]hold{}  // granted tasks
		waiting := map[int32]hold{} // queued tasks
		nextID := int32(1)
		ops := int(opsRaw)%120 + 20
		for i := 0; i < ops; i++ {
			if rng.Intn(2) == 0 || len(active) == 0 {
				// Submit a new single-param task.
				addr := uint64(rng.Intn(6) + 1)
				write := rng.Intn(2) == 0
				id := nextID
				nextID++
				granted, _, stalled := dt.ProcessNew(id, addr, 4, write)
				if stalled {
					continue
				}
				if granted {
					active[id] = hold{addr, write}
				} else {
					waiting[id] = hold{addr, write}
				}
			} else {
				// Finish a random active task.
				var id int32 = -1
				for k := range active {
					if id < 0 || k < id {
						id = k
					}
				}
				h := active[id]
				delete(active, id)
				grants, _ := dt.ProcessFinished(id, h.addr, h.write)
				for _, g := range grants {
					hw, ok := waiting[g.Task]
					if !ok {
						return false // granted a task that was not waiting
					}
					delete(waiting, g.Task)
					active[g.Task] = hw
				}
			}
			if dt.checkInvariants() != nil {
				return false
			}
		}
		// Drain everything.
		for len(active) > 0 {
			var id int32 = -1
			for k := range active {
				if id < 0 || k < id {
					id = k
				}
			}
			h := active[id]
			delete(active, id)
			grants, _ := dt.ProcessFinished(id, h.addr, h.write)
			for _, g := range grants {
				hw := waiting[g.Task]
				delete(waiting, g.Task)
				active[g.Task] = hw
			}
		}
		return len(waiting) == 0 && dt.Used() == 0 && dt.checkInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
