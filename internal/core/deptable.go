package core

import (
	"fmt"
)

// FatalModelError aborts a simulation from deep inside a hardware block:
// the modeled machine cannot execute the workload at all (for example a
// hard structure limit was exceeded with the dummy mechanisms disabled).
// It is thrown as a panic and converted to an error by System.Run.
type FatalModelError struct {
	Reason string
}

func (e FatalModelError) Error() string { return "core: " + e.Reason }

// DepTable is the Dependence Table of the paper's Table III: a hash table
// with separate chaining in which every memory segment accessed by an
// in-flight task has an entry carrying its access state (isOut, readers
// count, writer-waits flag) and a kick-off list of waiting task IDs.
// Kick-off lists longer than KickOffSlots chain dummy entries, each of
// which consumes a table slot; when the first segment of a chain drains,
// the next dummy is promoted to parent and the slot is reused — the
// mechanism of SSIII-C.
//
// Semantics implement Listing 2 (Check Deps) and the Handle Finished rules
// of SSIII-B, including WAR/WAW enforcement via the ww flag (Nexus++
// supports the false dependencies "as a safe guard" instead of renaming).
type DepTable struct {
	slots    int // total entry capacity, parents + dummy segments
	koSlots  int
	strictKO bool // original-Nexus mode: no dummy entries, overflow is fatal
	renaming bool // WAR/WAW elimination for pure writers (see renaming.go)

	renamedVersions uint64
	used            int
	buckets         [][]int32 // collision chains of live entry indices
	nBuckets        int
	entries         []dtEntry
	freeIdx         []int32
	addrIdx         map[uint64]int32
	onFree          []func()

	// Statistics.
	maxOccupancy  int
	maxChain      int
	maxKOSegments int
	dummySegments uint64
	fullStalls    uint64
	lookups       uint64
}

type koItem struct {
	task       int32
	wantsWrite bool
}

type dtEntry struct {
	live   bool
	addr   uint64
	size   uint32
	isOut  bool
	rdrs   int
	ww     bool
	bucket int32
	// current marks the newest version of an address in renaming mode;
	// demoted versions serve their remaining users and then retire.
	current bool
	// Kick-off list state. ko is the logical queue; segs is the number of
	// physical segments (1 parent + segs-1 dummy entries), frontDrained the
	// number of already-read slots in the front segment.
	ko           []koItem
	segs         int
	frontDrained int
}

// Grant reports a task released from a kick-off list by Handle Finished.
type Grant struct {
	Task int32
}

// NewDepTable returns an empty table with the given slot and kick-off-list
// capacities.
func NewDepTable(slots, koSlots int) *DepTable {
	dt := &DepTable{
		slots:    slots,
		koSlots:  koSlots,
		nBuckets: slots,
		buckets:  make([][]int32, slots),
		addrIdx:  make(map[uint64]int32, slots),
	}
	return dt
}

// Live returns the number of live addresses (parent entries).
func (dt *DepTable) Live() int { return len(dt.addrIdx) }

// HasFree reports whether at least one slot is unoccupied.
func (dt *DepTable) HasFree() bool { return dt.used < dt.slots }

// Used returns the number of occupied slots (parents plus dummy segments).
func (dt *DepTable) Used() int { return dt.used }

// MaxOccupancy returns the highest slot occupancy observed.
func (dt *DepTable) MaxOccupancy() int { return dt.maxOccupancy }

// MaxChain returns the longest hash-collision chain observed.
func (dt *DepTable) MaxChain() int { return dt.maxChain }

// MaxKOSegments returns the longest kick-off chain (in segments) observed.
func (dt *DepTable) MaxKOSegments() int { return dt.maxKOSegments }

// DummySegments returns the number of dummy entries ever chained.
func (dt *DepTable) DummySegments() uint64 { return dt.dummySegments }

// FullStalls returns how many operations stalled on a full table.
func (dt *DepTable) FullStalls() uint64 { return dt.fullStalls }

// OnFree registers a callback invoked whenever slots are released, used by
// the Check Deps block to retry stalled operations.
func (dt *DepTable) OnFree(fn func()) { dt.onFree = append(dt.onFree, fn) }

func (dt *DepTable) notifyFree() {
	for _, fn := range dt.onFree {
		fn()
	}
}

func (dt *DepTable) hash(addr uint64) int {
	// Full-avalanche mix (splitmix64 finalizer) over the segment base
	// address. Base addresses are block-aligned, so their low bits are
	// zero; a plain multiplicative hash reduced modulo the table size
	// would keep only those dead low bits and collapse every segment into
	// a handful of buckets, exactly the long-chain pathology Figure 6
	// warns about.
	x := addr
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return int(x % uint64(dt.nBuckets))
}

func (dt *DepTable) takeSlot() bool {
	if dt.used >= dt.slots {
		return false
	}
	dt.used++
	if dt.used > dt.maxOccupancy {
		dt.maxOccupancy = dt.used
	}
	return true
}

func (dt *DepTable) releaseSlots(n int) {
	dt.used -= n
	if dt.used < 0 {
		panic("core: Dependence Table slot accounting went negative")
	}
	dt.notifyFree()
}

// lookup finds the *current* entry index of addr and the number of chain
// positions walked (>= 1 when the bucket is non-empty). In renaming mode a
// bucket may also hold demoted versions of the address; only the current
// one (tracked by the index map) matches.
func (dt *DepTable) lookup(addr uint64) (idx int32, walk int, found bool) {
	dt.lookups++
	b := dt.hash(addr)
	if cur, ok := dt.addrIdx[addr]; ok {
		for i, ei := range dt.buckets[b] {
			if ei == cur {
				return cur, i + 1, true
			}
		}
		panic(fmt.Sprintf("core: index map for %#x points outside its bucket", addr))
	}
	walk = len(dt.buckets[b])
	if walk == 0 {
		walk = 1
	}
	return -1, walk, false
}

// insert creates a parent entry for addr; the caller must have verified
// space with takeSlot.
func (dt *DepTable) insert(addr uint64, size uint32) int32 {
	var idx int32
	if n := len(dt.freeIdx); n > 0 {
		idx = dt.freeIdx[n-1]
		dt.freeIdx = dt.freeIdx[:n-1]
	} else {
		idx = int32(len(dt.entries))
		dt.entries = append(dt.entries, dtEntry{})
	}
	b := dt.hash(addr)
	dt.entries[idx] = dtEntry{live: true, addr: addr, size: size, bucket: int32(b), segs: 1}
	dt.buckets[b] = append(dt.buckets[b], idx)
	if l := len(dt.buckets[b]); l > dt.maxChain {
		dt.maxChain = l
	}
	dt.addrIdx[addr] = idx
	return idx
}

// remove deletes the entry and releases all its slots.
func (dt *DepTable) remove(idx int32) {
	e := &dt.entries[idx]
	if len(e.ko) != 0 || e.ww {
		panic("core: removing Dependence Table entry with waiting tasks")
	}
	segs := e.segs
	b := e.bucket
	chain := dt.buckets[b]
	for i, ei := range chain {
		if ei == idx {
			dt.buckets[b] = append(chain[:i], chain[i+1:]...)
			break
		}
	}
	delete(dt.addrIdx, e.addr)
	*e = dtEntry{}
	dt.freeIdx = append(dt.freeIdx, idx)
	dt.releaseSlots(segs)
}

// koCapacity returns the current kick-off capacity of e.
func (dt *DepTable) koCapacity(e *dtEntry) int {
	return e.segs*dt.koSlots - e.frontDrained
}

// koAppend enqueues a waiter, growing the chain with a dummy entry when the
// current segments are full. It reports (ok=false) without mutating when a
// new segment is needed but the table is full.
func (dt *DepTable) koAppend(e *dtEntry, it koItem) (grew bool, ok bool) {
	if len(e.ko) >= dt.koCapacity(e) {
		if dt.strictKO {
			panic(FatalModelError{Reason: fmt.Sprintf(
				"kick-off list of segment %#x exceeds its %d fixed slots and dummy entries are disabled (original-Nexus limit)",
				e.addr, dt.koSlots)})
		}
		if !dt.takeSlot() {
			return false, false
		}
		e.segs++
		dt.dummySegments++
		if e.segs > dt.maxKOSegments {
			dt.maxKOSegments = e.segs
		}
		grew = true
	}
	e.ko = append(e.ko, it)
	return grew, true
}

// koPop dequeues the head waiter and applies the paper's parent-promotion:
// when the front segment is fully drained and dummies remain, the dummy
// becomes the new parent and a slot is released. It returns the item and
// whether a promotion (an extra copy access) happened.
func (dt *DepTable) koPop(e *dtEntry) (koItem, bool) {
	it := e.ko[0]
	e.ko = e.ko[1:]
	e.frontDrained++
	if e.frontDrained >= dt.koSlots && e.segs > 1 {
		e.segs--
		e.frontDrained = 0
		dt.releaseSlots(1)
		return it, true
	}
	if len(e.ko) == 0 && e.frontDrained > 0 && e.segs == 1 {
		// Empty single-segment list: reset the drain cursor.
		e.frontDrained = 0
	}
	return it, false
}

// ProcessNew implements Listing 2 for one parameter of a newly submitted
// task. It returns whether the task was granted immediate access to the
// segment (granted == false means it was enqueued on the kick-off list and
// the caller must increment the task's dependence counter), the number of
// table accesses performed (for service-time accounting), and whether the
// operation stalled on a full table (nothing is mutated in that case).
func (dt *DepTable) ProcessNew(task int32, addr uint64, size uint32, wantsWrite bool) (granted bool, accesses int, stalled bool) {
	idx, walk, found := dt.lookup(addr)
	accesses = 1 + walk // hash + chain walk
	if !found {
		if !dt.takeSlot() {
			dt.fullStalls++
			return false, accesses, true
		}
		e := &dt.entries[dt.insert(addr, size)]
		accesses++
		if wantsWrite {
			e.isOut = true // Listing 2 branch 2'
		} else {
			e.rdrs = 1 // Listing 2 branch 2
		}
		return true, accesses, false
	}
	e := &dt.entries[idx]
	if !wantsWrite {
		if !e.isOut && !e.ww { // Listing 2 branch 4: read granted
			e.rdrs++
			accesses++
			return true, accesses, false
		}
		// Branch 4': wait behind the writer.
		grew, ok := dt.koAppend(e, koItem{task: task})
		if !ok {
			dt.fullStalls++
			return false, accesses, true
		}
		accesses++
		if grew {
			accesses++
		}
		return false, accesses, false
	}
	// Branch 3': writers always wait behind the current owner.
	grew, ok := dt.koAppend(e, koItem{task: task, wantsWrite: true})
	if !ok {
		dt.fullStalls++
		return false, accesses, true
	}
	accesses++
	if grew {
		accesses++
	}
	if !e.isOut {
		e.ww = true // a writer waits behind active readers (WAR)
	}
	return false, accesses, false
}

// ProcessFinished implements the Handle Finished rules for one parameter of
// a completed task. It returns the tasks granted access from the kick-off
// list (the caller decrements their dependence counters) and the number of
// table accesses performed. It never stalls: draining only releases slots.
func (dt *DepTable) ProcessFinished(task int32, addr uint64, wasWriter bool) (grants []Grant, accesses int) {
	idx, walk, found := dt.lookup(addr)
	accesses = 1 + walk
	if !found {
		panic(fmt.Sprintf("core: finished task %d references unknown segment %#x", task, addr))
	}
	e := &dt.entries[idx]
	if !wasWriter {
		// Reader finished.
		if e.rdrs <= 0 {
			panic(fmt.Sprintf("core: reader count underflow on segment %#x", addr))
		}
		e.rdrs--
		accesses++
		if e.rdrs > 0 {
			return nil, accesses
		}
		if !e.ww {
			if len(e.ko) != 0 {
				panic(fmt.Sprintf("core: segment %#x has waiters but no writer-waits flag", addr))
			}
			dt.remove(idx)
			accesses++
			return nil, accesses
		}
		// The pending writer takes over.
		it, promoted := dt.koPop(e)
		accesses++
		if promoted {
			accesses++
		}
		if !it.wantsWrite {
			panic(fmt.Sprintf("core: ww set on %#x but kick-off head is a reader", addr))
		}
		e.isOut = true
		e.ww = false
		return []Grant{{Task: it.task}}, accesses
	}
	// Writer finished.
	e.isOut = false
	if len(e.ko) == 0 {
		dt.remove(idx)
		accesses++
		return nil, accesses
	}
	// Read waiters off the list while they are readers; stop at a writer
	// (which then waits on the new readers) or grant a writer immediately
	// when it is first.
	if e.ko[0].wantsWrite {
		it, promoted := dt.koPop(e)
		accesses++
		if promoted {
			accesses++
		}
		e.isOut = true
		return []Grant{{Task: it.task}}, accesses
	}
	for len(e.ko) > 0 && !e.ko[0].wantsWrite {
		it, promoted := dt.koPop(e)
		accesses += 2 // pop + readers-count increment
		if promoted {
			accesses++
		}
		e.rdrs++
		grants = append(grants, Grant{Task: it.task})
	}
	if len(e.ko) > 0 {
		// A writer remains behind the newly granted readers.
		e.ww = true
		accesses++
	}
	return grants, accesses
}

// checkInvariants verifies internal consistency; tests call it after
// mutation sequences.
func (dt *DepTable) checkInvariants() error {
	for a, idx := range dt.addrIdx {
		e := &dt.entries[idx]
		if !e.live || e.addr != a {
			return fmt.Errorf("deptable: index map corrupt for %#x", a)
		}
		if dt.renaming && !e.current {
			return fmt.Errorf("deptable: index map for %#x points at a demoted version", a)
		}
	}
	used := 0
	for i := range dt.entries {
		e := &dt.entries[i]
		if !e.live {
			continue
		}
		used += e.segs
		a := e.addr
		if !dt.renaming || e.current {
			if cur, ok := dt.addrIdx[a]; !ok || cur != int32(i) {
				return fmt.Errorf("deptable: live entry %d for %#x missing from the index map", i, a)
			}
		} else if e.rdrs == 0 && !e.isOut && len(e.ko) == 0 && !e.ww {
			return fmt.Errorf("deptable: demoted version of %#x is empty but not retired", a)
		}
		if e.ww && len(e.ko) == 0 {
			return fmt.Errorf("deptable: %#x has ww without waiters", a)
		}
		if !e.isOut && !e.ww && len(e.ko) > 0 {
			return fmt.Errorf("deptable: %#x has waiters with no owner conflict", a)
		}
		if e.isOut && e.rdrs > 0 {
			return fmt.Errorf("deptable: %#x is owned by a writer but has readers", a)
		}
		need := len(e.ko) + e.frontDrained
		if need > e.segs*dt.koSlots {
			return fmt.Errorf("deptable: %#x kick-off accounting broken", a)
		}
	}
	if used != dt.used {
		return fmt.Errorf("deptable: used = %d but entries account for %d", dt.used, used)
	}
	return nil
}
