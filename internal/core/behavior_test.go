package core

import (
	"errors"
	"strings"
	"testing"

	"nexuspp/internal/depgraph"
	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

// Behavioral tests of the Maestro blocks, the master core and the Task
// Controllers beyond the end-to-end suite in system_test.go.

func TestHardParamLimitAbortsRun(t *testing.T) {
	cfg := testConfig(2)
	cfg.MaxParamsPerTD = 5
	cfg.HardParamLimit = true
	wide := wideSpec(0, 6)
	wide.Exec = sim.Microsecond
	src := workload.FromTrace(&trace.Trace{Name: "wide", Tasks: []trace.TaskSpec{wide}})
	_, err := Run(cfg, src)
	var fatal FatalModelError
	if !errors.As(err, &fatal) {
		t.Fatalf("err = %v, want FatalModelError", err)
	}
	if !strings.Contains(err.Error(), "6 parameters") {
		t.Fatalf("err = %v", err)
	}
}

func TestHardKickOffLimitAbortsRun(t *testing.T) {
	cfg := testConfig(2)
	cfg.HardKickOffLimit = true
	tasks := []trace.TaskSpec{{
		ID:     0,
		Params: []trace.Param{{Addr: 0xF00, Size: 4, Mode: trace.Out}},
		Exec:   time500us(),
	}}
	for i := 1; i <= 20; i++ {
		tasks = append(tasks, trace.TaskSpec{
			ID:     uint64(i),
			Params: []trace.Param{{Addr: 0xF00, Size: 4, Mode: trace.In}},
			Exec:   sim.Microsecond,
		})
	}
	_, err := Run(cfg, workload.FromTrace(&trace.Trace{Name: "fan", Tasks: tasks}))
	var fatal FatalModelError
	if !errors.As(err, &fatal) {
		t.Fatalf("err = %v, want FatalModelError", err)
	}
	if !strings.Contains(err.Error(), "kick-off") {
		t.Fatalf("err = %v", err)
	}
}

func time500us() sim.Time { return 500 * sim.Microsecond }

func TestRoundRobinLoadBalancing(t *testing.T) {
	// Equal independent tasks on 4 cores must be spread almost evenly —
	// the paper's round-robin Worker Cores IDs mechanism.
	cfg := testConfig(4)
	src := workload.Grid(workload.GridConfig{
		Pattern: workload.PatternIndependent, Rows: 10, Cols: 10, Seed: 1,
		Times: trace.FixedTimes{Exec: 10 * sim.Microsecond, MemRead: sim.Microsecond, MemWrite: sim.Microsecond},
	})
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.run(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksExecuted != 100 {
		t.Fatalf("executed %d", res.TasksExecuted)
	}
	for i, tc := range s.tcs {
		if tc.TasksRun() < 20 || tc.TasksRun() > 30 {
			t.Errorf("core %d ran %d tasks, want ~25", i, tc.TasksRun())
		}
	}
}

func TestMasterSubmitsAllAndStallsAccounted(t *testing.T) {
	cfg := testConfig(1)
	cfg.TDsListEntries = 2
	cfg.TaskPoolEntries = 2
	src := workload.Grid(workload.GridConfig{
		Pattern: workload.PatternIndependent, Rows: 4, Cols: 4, Seed: 1,
		Times: trace.FixedTimes{Exec: 100 * sim.Microsecond, MemRead: sim.Microsecond, MemWrite: sim.Microsecond},
	})
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.run(src)
	if err != nil {
		t.Fatal(err)
	}
	if s.master.Submitted() != 16 || !s.master.Done() {
		t.Fatalf("submitted %d done=%v", s.master.Submitted(), s.master.Done())
	}
	if res.MasterStall <= 0 {
		t.Fatal("expected master stalls with 2-deep lists and slow tasks")
	}
	// Stall time can never exceed the makespan.
	if res.MasterStall > res.Makespan {
		t.Fatalf("stall %v > makespan %v", res.MasterStall, res.Makespan)
	}
}

func TestBlockUtilizationAccounting(t *testing.T) {
	res := mustRun(t, testConfig(4), smallGrid(workload.PatternIndependent, 8, 8, 1))
	sum := 0.0
	for name, u := range res.BlockUtil {
		if u < 0 || u > 1 {
			t.Errorf("block %s utilization %v out of range", name, u)
		}
		sum += u
	}
	if sum == 0 {
		t.Error("all blocks idle?")
	}
}

func TestFinishedOrderPerCoreIsFIFO(t *testing.T) {
	// Tasks delivered to one core complete in delivery order, which is the
	// invariant the CiFinTasks list relies on. With one worker and
	// distinct exec times, the recorded exec intervals must be disjoint
	// and ordered by task ID (submission order = delivery order here).
	cfg := testConfig(1)
	src := workload.Grid(workload.GridConfig{
		Pattern: workload.PatternIndependent, Rows: 3, Cols: 4, Seed: 2,
	})
	res := mustRun(t, cfg, src)
	for i := 1; i < len(res.ExecIntervals); i++ {
		if res.ExecIntervals[i].Start < res.ExecIntervals[i-1].End {
			t.Fatalf("exec intervals overlap on one core: %v then %v",
				res.ExecIntervals[i-1], res.ExecIntervals[i])
		}
	}
}

func TestDeepBufferingKeepsSemantics(t *testing.T) {
	cfg := testConfig(3)
	cfg.BufferingDepth = 5
	validate(t, cfg, smallGrid(workload.PatternWavefront, 10, 10, 4))
}

func TestManyWorkersFewTasks(t *testing.T) {
	cfg := testConfig(128)
	validate(t, cfg, smallGrid(workload.PatternIndependent, 2, 3, 1))
}

func TestZeroMemoryPhases(t *testing.T) {
	// Tasks with no memory time exercise the zero-duration Access path.
	cfg := testConfig(2)
	src := workload.Grid(workload.GridConfig{
		Pattern: workload.PatternVertical, Rows: 5, Cols: 4, Seed: 1,
		Times: trace.FixedTimes{Exec: sim.Microsecond},
	})
	validate(t, cfg, src)
}

func TestExecIntervalsWithinSchedule(t *testing.T) {
	res := validate(t, testConfig(4), smallGrid(workload.PatternWavefront, 6, 6, 3))
	for i := range res.Schedule {
		s, e := res.Schedule[i], res.ExecIntervals[i]
		if e.Start < s.Start || e.End > s.End {
			t.Fatalf("task %d exec %v outside fetch/commit span %v", i, e, s)
		}
	}
}

func TestSinglePortedTablesStillCorrect(t *testing.T) {
	cfg := testConfig(4)
	cfg.TablePorts = 1
	validate(t, cfg, smallGrid(workload.PatternWavefront, 10, 10, 6))
	validate(t, cfg, workload.Gaussian(workload.GaussianConfig{N: 16}))
}

func TestSinglePortedTablesSlowerAtScale(t *testing.T) {
	// With tiny tasks the Maestro throughput is the bottleneck, so
	// serialising the blocks on shared table ports must cost makespan.
	mk := func() workload.Source {
		return workload.Grid(workload.GridConfig{
			Pattern: workload.PatternIndependent, Rows: 20, Cols: 20, Seed: 2,
			Times: trace.FixedTimes{Exec: 200 * sim.Nanosecond, MemRead: 20 * sim.Nanosecond, MemWrite: 20 * sim.Nanosecond},
		})
	}
	ideal := testConfig(32)
	single := testConfig(32)
	single.TablePorts = 1
	a := mustRun(t, ideal, mk())
	b := mustRun(t, single, mk())
	if b.Makespan <= a.Makespan {
		t.Fatalf("single-ported (%v) should be slower than multi-ported (%v)", b.Makespan, a.Makespan)
	}
}

func TestNegativeTablePortsRejected(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.TablePorts = -1
	if cfg.Validate() == nil {
		t.Fatal("negative TablePorts accepted")
	}
}

func TestCholeskyWorkloadValidates(t *testing.T) {
	// The tiled Cholesky graph mixes chains, fan-out and inout reuse —
	// the densest exercise of the Dependence Table in the suite.
	res := validate(t, testConfig(8), workload.Cholesky(workload.CholeskyConfig{Tiles: 8}))
	if res.TasksExecuted != uint64(workload.CholeskyTaskCount(8)) {
		t.Fatalf("executed %d", res.TasksExecuted)
	}
	// And under renaming (gemm outputs are inout, so the graph is mostly
	// unchanged, but the run must stay correct).
	cfg := testConfig(8)
	cfg.RenameFalseDeps = true
	src := workload.Cholesky(workload.CholeskyConfig{Tiles: 8})
	r2, err := Run(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	g := depgraph.BuildRenamed(workload.Cholesky(workload.CholeskyConfig{Tiles: 8}))
	if err := g.ValidateSchedule(r2.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyScalesWithCores(t *testing.T) {
	mk := func() workload.Source {
		return workload.Cholesky(workload.CholeskyConfig{Tiles: 12})
	}
	one := mustRun(t, testConfig(1), mk())
	eight := mustRun(t, testConfig(8), mk())
	sp := float64(one.Makespan) / float64(eight.Makespan)
	if sp < 3 {
		t.Fatalf("cholesky speedup on 8 cores = %.2f, want >= 3", sp)
	}
}

func TestEventCountScalesLinearly(t *testing.T) {
	// Sanity guard on simulator cost: events per task stay bounded, which
	// keeps the 12.5M-task Gaussian runs tractable.
	res := mustRun(t, testConfig(8), smallGrid(workload.PatternIndependent, 20, 20, 1))
	perTask := float64(res.Events) / 400
	if perTask > 40 {
		t.Fatalf("%.1f events per task, model got too chatty", perTask)
	}
}
