package core

import "fmt"

// Renaming support — the extension the paper points at in SSIII-B:
// "Although the WAR hazards and the write-after-write WAW hazards are false
// dependencies and are normally resolved using renaming techniques, Nexus++
// supports them as a safe guard."
//
// With renaming enabled, a *pure writer* (out parameter) arriving at a busy
// segment does not wait: the Dependence Table opens a fresh version of the
// segment and grants the writer immediately, eliminating its WAR and WAW
// hazards. Readers and inout tasks keep the classic protocol on the version
// that was current when they were submitted — their value dependencies are
// real. Demoted versions retire as soon as their last user finishes.
//
// The cost is table pressure: every live version occupies a slot, which is
// exactly why a small hardware table prefers enforcing the false
// dependencies — the trade-off the ablation-renaming experiment measures.
//
// Tasks must remember which version of each segment they were bound to
// (hardware would carry a version tag in the descriptor), so
// ProcessNewVersioned returns the version index and Handle Finished passes
// it back to ProcessFinishedVersioned.

// EnableRenaming switches the table into renaming mode. It must be called
// before any task is processed.
func (dt *DepTable) EnableRenaming() {
	if dt.used != 0 {
		panic("core: EnableRenaming on a non-empty Dependence Table")
	}
	dt.renaming = true
}

// Renaming reports whether renaming mode is active.
func (dt *DepTable) Renaming() bool { return dt.renaming }

// RenamedVersions returns how many fresh versions pure writers opened.
func (dt *DepTable) RenamedVersions() uint64 { return dt.renamedVersions }

// ProcessNewVersioned implements Listing 2 under renaming for one
// parameter. It returns the version index the task was bound to, whether
// access was granted immediately, the number of table accesses, and
// whether the operation stalled on a full table.
func (dt *DepTable) ProcessNewVersioned(task int32, addr uint64, size uint32, mode paramMode) (version int32, granted bool, accesses int, stalled bool) {
	if !dt.renaming {
		panic("core: ProcessNewVersioned without renaming mode")
	}
	idx, walk, found := dt.lookup(addr)
	accesses = 1 + walk
	if !found {
		if !dt.takeSlot() {
			dt.fullStalls++
			return -1, false, accesses, true
		}
		idx = dt.insert(addr, size)
		e := &dt.entries[idx]
		e.current = true
		accesses++
		if mode == paramIn {
			e.rdrs = 1
		} else {
			e.isOut = true
		}
		return idx, true, accesses, false
	}
	e := &dt.entries[idx]
	switch mode {
	case paramIn:
		if !e.isOut && !e.ww {
			e.rdrs++
			accesses++
			return idx, true, accesses, false
		}
		grew, ok := dt.koAppend(e, koItem{task: task})
		if !ok {
			dt.fullStalls++
			return -1, false, accesses, true
		}
		accesses++
		if grew {
			accesses++
		}
		return idx, false, accesses, false
	case paramInOut:
		// The read side is a true dependency: classic writer protocol.
		grew, ok := dt.koAppend(e, koItem{task: task, wantsWrite: true})
		if !ok {
			dt.fullStalls++
			return -1, false, accesses, true
		}
		accesses++
		if grew {
			accesses++
		}
		if !e.isOut {
			e.ww = true
		}
		return idx, false, accesses, false
	default: // paramOut: rename instead of waiting.
		if !dt.takeSlot() {
			dt.fullStalls++
			return -1, false, accesses, true
		}
		e.current = false
		nv := dt.insert(addr, size)
		dt.entries[nv].current = true
		dt.entries[nv].isOut = true
		dt.renamedVersions++
		accesses += 2 // demote + insert
		return nv, true, accesses, false
	}
}

// ProcessFinishedVersioned retires one parameter access of a finished task
// against the version it was bound to, with the classic grant rules; empty
// versions retire whether current or demoted.
func (dt *DepTable) ProcessFinishedVersioned(task int32, version int32, wasWriter bool) (grants []Grant, accesses int) {
	if !dt.renaming {
		panic("core: ProcessFinishedVersioned without renaming mode")
	}
	e := &dt.entries[version]
	if !e.live {
		panic(fmt.Sprintf("core: finished task %d references dead version %d", task, version))
	}
	accesses = 1
	if !wasWriter {
		if e.rdrs <= 0 {
			panic(fmt.Sprintf("core: reader count underflow on version %d of %#x", version, e.addr))
		}
		e.rdrs--
		accesses++
		if e.rdrs > 0 {
			return nil, accesses
		}
		if !e.ww {
			dt.retireIfEmpty(version)
			accesses++
			return nil, accesses
		}
		it, promoted := dt.koPop(e)
		accesses++
		if promoted {
			accesses++
		}
		if !it.wantsWrite {
			panic(fmt.Sprintf("core: ww set on version of %#x but kick-off head is a reader", e.addr))
		}
		e.isOut = true
		e.ww = false
		return []Grant{{Task: it.task}}, accesses
	}
	// Writer finished on this version.
	e.isOut = false
	if len(e.ko) == 0 {
		dt.retireIfEmpty(version)
		accesses++
		return nil, accesses
	}
	if e.ko[0].wantsWrite {
		it, promoted := dt.koPop(e)
		accesses++
		if promoted {
			accesses++
		}
		e.isOut = true
		return []Grant{{Task: it.task}}, accesses
	}
	for len(e.ko) > 0 && !e.ko[0].wantsWrite {
		it, promoted := dt.koPop(e)
		accesses += 2
		if promoted {
			accesses++
		}
		e.rdrs++
		grants = append(grants, Grant{Task: it.task})
	}
	if len(e.ko) > 0 {
		e.ww = true
		accesses++
	}
	return grants, accesses
}

// retireIfEmpty removes a version with no users and no waiters.
func (dt *DepTable) retireIfEmpty(version int32) {
	e := &dt.entries[version]
	if e.isOut || e.rdrs > 0 || len(e.ko) > 0 || e.ww {
		return
	}
	if e.current {
		dt.remove(version)
		return
	}
	dt.removeStale(version)
}

// removeStale deletes a demoted (non-current) version; addrIdx already
// points at a newer version, so only the bucket chain and slot accounting
// are touched.
func (dt *DepTable) removeStale(idx int32) {
	e := &dt.entries[idx]
	segs := e.segs
	b := e.bucket
	chain := dt.buckets[b]
	for i, ei := range chain {
		if ei == idx {
			dt.buckets[b] = append(chain[:i], chain[i+1:]...)
			break
		}
	}
	*e = dtEntry{}
	dt.freeIdx = append(dt.freeIdx, idx)
	dt.releaseSlots(segs)
}

// paramMode is the three-way access mode used by the renaming paths.
type paramMode uint8

const (
	paramIn paramMode = iota
	paramOut
	paramInOut
)
