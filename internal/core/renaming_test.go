package core

import (
	"testing"
	"testing/quick"

	"nexuspp/internal/depgraph"
	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

func TestRenamingPureWriterNeverWaits(t *testing.T) {
	dt := NewDepTable(16, 8)
	dt.EnableRenaming()
	v1, g, _, st := dt.ProcessNewVersioned(1, 0xA, 4, paramOut)
	if !g || st {
		t.Fatal("first writer not granted")
	}
	// A second pure writer forks a version instead of waiting (WAW gone).
	v2, g, _, st := dt.ProcessNewVersioned(2, 0xA, 4, paramOut)
	if !g || st {
		t.Fatal("renamed writer had to wait")
	}
	if v1 == v2 {
		t.Fatal("no fresh version created")
	}
	if dt.RenamedVersions() != 1 || dt.Used() != 2 {
		t.Fatalf("versions=%d used=%d", dt.RenamedVersions(), dt.Used())
	}
	// Finishing in either order retires both versions.
	dt.ProcessFinishedVersioned(2, v2, true)
	dt.ProcessFinishedVersioned(1, v1, true)
	if dt.Used() != 0 {
		t.Fatalf("used = %d after drain", dt.Used())
	}
	if err := dt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRenamingWAREliminated(t *testing.T) {
	dt := NewDepTable(16, 8)
	dt.EnableRenaming()
	vr, g, _, _ := dt.ProcessNewVersioned(1, 0xB, 4, paramIn)
	if !g {
		t.Fatal("reader not granted")
	}
	// A pure writer does not wait for the reader (WAR gone).
	vw, g, _, _ := dt.ProcessNewVersioned(2, 0xB, 4, paramOut)
	if !g {
		t.Fatal("writer waited for a reader despite renaming")
	}
	// A reader submitted now binds to the new version and waits for the
	// writer (RAW preserved).
	_, g, _, _ = dt.ProcessNewVersioned(3, 0xB, 4, paramIn)
	if g {
		t.Fatal("RAW hazard lost under renaming")
	}
	// Old reader finishes -> old version retires.
	dt.ProcessFinishedVersioned(1, vr, false)
	// Writer finishes -> waiting reader granted on the new version.
	grants, _ := dt.ProcessFinishedVersioned(2, vw, true)
	if len(grants) != 1 || grants[0].Task != 3 {
		t.Fatalf("grants = %v", grants)
	}
	dt.ProcessFinishedVersioned(3, vw, false)
	if dt.Used() != 0 {
		t.Fatalf("used = %d", dt.Used())
	}
	if err := dt.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRenamingInOutKeepsTrueDependency(t *testing.T) {
	dt := NewDepTable(16, 8)
	dt.EnableRenaming()
	v1, _, _, _ := dt.ProcessNewVersioned(1, 0xC, 4, paramOut)
	// An inout must wait: it reads the current value.
	_, g, _, _ := dt.ProcessNewVersioned(2, 0xC, 4, paramInOut)
	if g {
		t.Fatal("inout bypassed its RAW dependency")
	}
	grants, _ := dt.ProcessFinishedVersioned(1, v1, true)
	if len(grants) != 1 || grants[0].Task != 2 {
		t.Fatalf("grants = %v", grants)
	}
	dt.ProcessFinishedVersioned(2, v1, true)
	if dt.Used() != 0 {
		t.Fatal("leak")
	}
}

func TestRenamingSystemEndToEnd(t *testing.T) {
	// A WAW/WAR-heavy workload: every task rewrites one of 4 hot blocks.
	rng := sim.NewRand(3)
	var tasks []trace.TaskSpec
	for i := 0; i < 60; i++ {
		mode := trace.Out
		if rng.Intn(4) == 0 {
			mode = trace.In
		}
		tasks = append(tasks, trace.TaskSpec{
			ID:     uint64(i),
			Params: []trace.Param{{Addr: uint64(rng.Intn(4)+1) * 64, Size: 64, Mode: mode}},
			Exec:   sim.Time(rng.Intn(4000)+500) * sim.Nanosecond,
		})
	}
	mk := func() workload.Source {
		return workload.FromTrace(&trace.Trace{Name: "hot-writes", Tasks: tasks})
	}
	cfg := testConfig(8)
	cfg.RenameFalseDeps = true
	res, err := Run(cfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	g := depgraph.BuildRenamed(mk())
	if err := g.ValidateSchedule(res.Schedule); err != nil {
		t.Fatal(err)
	}
	// Renaming must beat the safe-guard mode on this WAW-heavy workload.
	safeCfg := testConfig(8)
	safe, err := Run(safeCfg, mk())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan >= safe.Makespan {
		t.Fatalf("renaming (%v) should beat WAW enforcement (%v)", res.Makespan, safe.Makespan)
	}
}

func TestRenamingStillSerialisesChains(t *testing.T) {
	// Inout chains are true dependencies: renaming must not break them.
	cfg := testConfig(4)
	cfg.RenameFalseDeps = true
	src := workload.Gaussian(workload.GaussianConfig{N: 12})
	res, err := Run(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	g := depgraph.BuildRenamed(workload.Gaussian(workload.GaussianConfig{N: 12}))
	if err := g.ValidateSchedule(res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestRenamingOnWavefront(t *testing.T) {
	cfg := testConfig(8)
	cfg.RenameFalseDeps = true
	src := smallGrid(workload.PatternWavefront, 10, 10, 5)
	res, err := Run(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	g := depgraph.BuildRenamed(smallGrid(workload.PatternWavefront, 10, 10, 5))
	if err := g.ValidateSchedule(res.Schedule); err != nil {
		t.Fatal(err)
	}
	if res.TasksExecuted != 100 {
		t.Fatalf("executed %d", res.TasksExecuted)
	}
}

func TestEnableRenamingOnDirtyTablePanics(t *testing.T) {
	dt := NewDepTable(8, 8)
	dt.ProcessNew(1, 0xA, 4, true)
	defer func() {
		if recover() == nil {
			t.Error("EnableRenaming on a non-empty table did not panic")
		}
	}()
	dt.EnableRenaming()
}

// Property: random workloads under renaming complete, validate against the
// renamed oracle, and never leak table slots.
func TestRenamingRandomProperty(t *testing.T) {
	prop := func(seed uint64, wRaw, nRaw uint8) bool {
		rng := sim.NewRand(seed)
		n := int(nRaw%35) + 1
		tasks := make([]trace.TaskSpec, n)
		for i := range tasks {
			tasks[i].ID = uint64(i)
			tasks[i].Exec = sim.Time(rng.Intn(3000)+100) * sim.Nanosecond
			used := map[uint64]bool{}
			for k := 0; k <= rng.Intn(3); k++ {
				a := uint64(rng.Intn(6)+1) * 64
				if used[a] {
					continue
				}
				used[a] = true
				tasks[i].Params = append(tasks[i].Params, trace.Param{
					Addr: a, Size: 64, Mode: trace.AccessMode(rng.Intn(3)),
				})
			}
			if len(tasks[i].Params) == 0 {
				tasks[i].Params = []trace.Param{{Addr: 8, Size: 8, Mode: trace.Out}}
			}
		}
		mk := func() workload.Source {
			return workload.FromTrace(&trace.Trace{Name: "prop", Tasks: tasks})
		}
		cfg := testConfig(int(wRaw%5) + 1)
		cfg.RenameFalseDeps = true
		res, err := Run(cfg, mk())
		if err != nil {
			return false
		}
		return depgraph.BuildRenamed(mk()).ValidateSchedule(res.Schedule) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
