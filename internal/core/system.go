package core

import (
	"fmt"

	"nexuspp/internal/depgraph"
	"nexuspp/internal/mem"
	"nexuspp/internal/sim"
	"nexuspp/internal/workload"
)

// System wires a complete Nexus++ multicore: one master core, the Task
// Maestro, one Task Controller per worker core, the on-chip bus and the
// off-chip memory, all driven by a single deterministic event engine.
type System struct {
	cfg     Config
	eng     *sim.Engine
	memory  *mem.Memory
	bus     *mem.Bus
	maestro *Maestro
	tcs     []*TaskController
	master  *MasterCore

	// Per-task schedule recording (optional).
	record   bool
	fetchAt  map[int32]sim.Time  // task-pool index -> fetch start
	schedule []depgraph.Interval // by trace task ID
	execIv   []depgraph.Interval // by trace task ID (pure execution)

	// Periodic occupancy snapshots (optional, Config.SampleEvery).
	timeline []TimelineSample
}

// Result reports the outcome and the key observables of one simulation.
type Result struct {
	Workload string
	Workers  int
	Config   Config

	// Makespan is the simulated time at which the last event fired.
	Makespan sim.Time
	// TasksExecuted counts tasks that completed the full lifecycle.
	TasksExecuted uint64

	// CoreUtilization is total execution time divided by workers*makespan.
	CoreUtilization float64
	// MasterStall is the time the master spent blocked on a full TDs list.
	MasterStall sim.Time

	// Structure statistics.
	DummyTDs        uint64 // dummy task descriptors chained in the Task Pool
	DummyDTSegments uint64 // dummy kick-off segments chained in the Dependence Table
	MaxTPOccupancy  int
	MaxDTOccupancy  int
	MaxDTChain      int // longest hash-collision chain
	MaxKOSegments   int // longest kick-off chain in segments
	DTFullStalls    uint64

	// Memory statistics.
	MemHighWater int
	MemWaits     uint64

	// Block busy fractions of the makespan.
	BlockUtil map[string]float64

	// Events is the number of simulation events processed.
	Events uint64

	// Schedule and ExecIntervals are per-task (by trace ID) when
	// Config.RecordSchedule is set: Schedule spans input fetch to output
	// commit (the span the dependency oracle validates), ExecIntervals the
	// pure execution phase.
	Schedule      []depgraph.Interval
	ExecIntervals []depgraph.Interval

	// Timeline holds periodic occupancy snapshots when Config.SampleEvery
	// is set.
	Timeline []TimelineSample
}

// NewSystem builds a system for cfg. The source is attached by Run.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	s := &System{
		cfg:    cfg,
		eng:    eng,
		memory: mem.NewMemory(eng, cfg.Mem),
		bus:    mem.NewBus(eng, cfg.Bus),
	}
	s.maestro = newMaestro(eng, &s.cfg)
	s.tcs = make([]*TaskController, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		s.tcs[i] = newTaskController(eng, s, i, cfg.BufferingDepth)
	}
	s.maestro.attachControllers(s.tcs)
	return s, nil
}

// Run simulates src to completion and returns the results. It returns an
// error if the system deadlocks (events drain with unfinished tasks), which
// would indicate a model bug or an impossible configuration.
func Run(cfg Config, src workload.Source) (*Result, error) {
	s, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return s.run(src)
}

// drive runs the event loop, converting FatalModelError panics (hard
// structure limits in original-Nexus mode) into plain errors.
func (s *System) drive() (makespan sim.Time, err error) {
	defer func() {
		if r := recover(); r != nil {
			if fe, ok := r.(FatalModelError); ok {
				err = fe
				return
			}
			panic(r)
		}
	}()
	return s.eng.Run(), nil
}

func (s *System) run(src workload.Source) (*Result, error) {
	src.Reset()
	total := src.Total()
	s.record = s.cfg.RecordSchedule
	if s.record {
		s.fetchAt = make(map[int32]sim.Time, s.cfg.TaskPoolEntries)
		s.schedule = make([]depgraph.Interval, total)
		s.execIv = make([]depgraph.Interval, total)
	}
	s.master = newMasterCore(s.eng, s, src)
	// Un-stall the master when the TDs Sizes list drains.
	s.maestro.tdsSizes.OnSpace(s.master.trySubmit)
	s.maestro.expectTotal = uint64(total)
	s.startSampler(uint64(total))
	s.master.start()
	makespan, err := s.drive()
	if err != nil {
		return nil, err
	}
	// With timeline sampling the engine may process one final snapshot
	// after the last task retires; the makespan is the completion time of
	// the final task, recorded by the Handle Finished block.
	if total > 0 && s.maestro.finishedAt > 0 {
		makespan = s.maestro.finishedAt
	}

	if s.maestro.tasksFinished != uint64(total) {
		return nil, fmt.Errorf("core: deadlock: %d of %d tasks finished (stored %d, checked %d, sent %d; TP free %d, DT used %d)",
			s.maestro.tasksFinished, total, s.maestro.tasksStored, s.maestro.tasksChecked,
			s.maestro.tasksSent, s.maestro.tp.FreeCount(), s.maestro.dt.Used())
	}
	if err := s.maestro.dt.checkInvariants(); err != nil {
		return nil, err
	}
	if live := s.maestro.dt.Live(); live != 0 {
		return nil, fmt.Errorf("core: %d Dependence Table entries leaked", live)
	}
	if occ := s.maestro.tp.Occupancy(); occ != 0 {
		return nil, fmt.Errorf("core: %d Task Pool descriptors leaked", occ)
	}

	var execTotal sim.Time
	for _, tc := range s.tcs {
		execTotal += tc.ExecBusy()
	}
	util := 0.0
	if makespan > 0 {
		util = float64(execTotal) / (float64(makespan) * float64(s.cfg.Workers))
	}
	res := &Result{
		Workload:        src.Name(),
		Workers:         s.cfg.Workers,
		Config:          s.cfg,
		Makespan:        makespan,
		TasksExecuted:   s.maestro.tasksFinished,
		CoreUtilization: util,
		MasterStall:     s.master.StallTime(),
		DummyTDs:        s.maestro.tp.DummyTDs(),
		DummyDTSegments: s.maestro.dt.DummySegments(),
		MaxTPOccupancy:  s.maestro.tp.MaxOccupancy(),
		MaxDTOccupancy:  s.maestro.dt.MaxOccupancy(),
		MaxDTChain:      s.maestro.dt.MaxChain(),
		MaxKOSegments:   s.maestro.dt.MaxKOSegments(),
		DTFullStalls:    s.maestro.dt.FullStalls(),
		MemHighWater:    s.memory.HighWater(),
		MemWaits:        s.memory.Waits(),
		Events:          s.eng.Processed(),
	}
	if makespan > 0 {
		res.BlockUtil = map[string]float64{
			"write-tp":        s.maestro.writeTP.Utilization(makespan),
			"check-deps":      s.maestro.checkDeps.Utilization(makespan),
			"schedule":        s.maestro.schedule.Utilization(makespan),
			"send-tds":        s.maestro.sendTDs.Utilization(makespan),
			"handle-finished": s.maestro.handleFin.Utilization(makespan),
		}
	}
	if s.record {
		res.Schedule = s.schedule
		res.ExecIntervals = s.execIv
	}
	if len(s.timeline) > 0 {
		res.Timeline = s.timeline
	}
	return res, nil
}

// markFetchStart records the beginning of a task's Get Inputs phase.
func (s *System) markFetchStart(task int32) {
	if !s.record {
		return
	}
	s.fetchAt[task] = s.eng.Now()
}

// markExecStart records the beginning of a task's Run phase.
func (s *System) markExecStart(task int32) {
	if !s.record {
		return
	}
	id := s.maestro.tp.Spec(task).ID
	s.execIv[id].Start = s.eng.Now()
}

// markExecEnd records the end of a task's Run phase.
func (s *System) markExecEnd(task int32) {
	if !s.record {
		return
	}
	id := s.maestro.tp.Spec(task).ID
	s.execIv[id].End = s.eng.Now()
}

// markCommit records the end of a task's Put Outputs phase, closing the
// interval the dependency oracle validates.
func (s *System) markCommit(task int32) {
	if !s.record {
		return
	}
	id := s.maestro.tp.Spec(task).ID
	s.schedule[id] = depgraph.Interval{Start: s.fetchAt[task], End: s.eng.Now()}
	delete(s.fetchAt, task)
}
