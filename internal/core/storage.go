package core

import (
	"fmt"
	"sort"
)

// Storage accounting for the Nexus++ structures, reproducing the paper's
// Table IV sizing discussion and its closing comparison: "All tables and
// FIFO lists in the Nexus++ task manager do not exceed 210KB of memory",
// versus more than 6.5MB for the Task Superscalar.

// Byte widths taken from the paper.
const (
	// TaskDescriptorBytes is the size of one Task Pool entry (78 bytes:
	// metadata plus 8 parameter slots).
	TaskDescriptorBytes = 78
	// DepTableEntryBytes is the size of one Dependence Table entry
	// (28 bytes: address, state and an 8-slot kick-off list of 2-byte IDs).
	DepTableEntryBytes = 28
	// TaskSuperscalarBytes is the storage the paper attributes to the Task
	// Superscalar design it compares against.
	TaskSuperscalarBytes = 6_500_000 // "more than 6.5MB"
	// TaskSuperscalarParamLimit is its static parameter limit.
	TaskSuperscalarParamLimit = 19
)

// StorageItem is one structure's memory budget.
type StorageItem struct {
	Name  string
	Bytes int
}

// StorageBudget returns the on-chip memory each Nexus++ structure occupies
// under cfg, following the paper's derivation: task IDs round up to whole
// bytes (10 bits -> 2 bytes for a 1K pool), descriptor sizes occupy one
// byte each, and each worker core needs BufferingDepth task-ID slots in its
// CiRdyTasks and CiFinTasks lists.
func StorageBudget(cfg Config) []StorageItem {
	idBytes := bytesFor(bitsFor(cfg.TaskPoolEntries))
	coreIDBytes := bytesFor(bitsFor(cfg.Workers))
	items := []StorageItem{
		{"Task Pool", cfg.TaskPoolEntries * TaskDescriptorBytes},
		{"Dependence Table", cfg.DepTableEntries * DepTableEntryBytes},
		{"TDs Sizes list", cfg.TDsListEntries * 1},
		{"New Tasks list", cfg.TaskPoolEntries * idBytes},
		{"TP Free Indices list", cfg.TaskPoolEntries * idBytes},
		{"Global Ready Tasks list", cfg.TaskPoolEntries * idBytes},
		{"Worker Cores IDs list", cfg.Workers * cfg.BufferingDepth * coreIDBytes},
		{"CxRdyTasks lists", cfg.Workers * cfg.BufferingDepth * idBytes},
		{"CxFinTasks lists", cfg.Workers * cfg.BufferingDepth * idBytes},
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].Bytes > items[j].Bytes })
	return items
}

// TotalStorage sums the structure budget.
func TotalStorage(cfg Config) int {
	total := 0
	for _, it := range StorageBudget(cfg) {
		total += it.Bytes
	}
	return total
}

// FormatBytes renders a byte count the way the paper does (KB = 1024).
func FormatBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.0fKB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func bitsFor(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	if bits == 0 {
		bits = 1
	}
	return bits
}

func bytesFor(bits int) int { return (bits + 7) / 8 }
