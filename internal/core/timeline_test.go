package core

import (
	"testing"

	"nexuspp/internal/sim"
	"nexuspp/internal/workload"
)

func TestTimelineSampling(t *testing.T) {
	cfg := testConfig(4)
	cfg.SampleEvery = 100 * sim.Microsecond
	res := mustRun(t, cfg, smallGrid(workload.PatternIndependent, 10, 10, 1))
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	var prev sim.Time = -1
	for i, s := range res.Timeline {
		if s.At <= prev {
			t.Fatalf("sample %d not monotone: %v after %v", i, s.At, prev)
		}
		prev = s.At
		if s.TPOccupancy < 0 || s.TPOccupancy > cfg.TaskPoolEntries {
			t.Fatalf("TP occupancy %d out of range", s.TPOccupancy)
		}
		if s.DTOccupancy < 0 || s.DTOccupancy > cfg.DepTableEntries {
			t.Fatalf("DT occupancy %d out of range", s.DTOccupancy)
		}
		if s.MemInUse < 0 || s.MemInUse > cfg.Mem.Ports {
			t.Fatalf("mem in use %d out of range", s.MemInUse)
		}
	}
	// Mid-run samples must observe live structures.
	busy := false
	for _, s := range res.Timeline {
		if s.TPOccupancy > 0 {
			busy = true
		}
	}
	if !busy {
		t.Fatal("no sample observed a non-empty Task Pool")
	}
}

func TestTimelineDoesNotChangeMakespan(t *testing.T) {
	mk := func() workload.Source { return smallGrid(workload.PatternWavefront, 10, 10, 2) }
	plain := mustRun(t, testConfig(4), mk())
	sampled := testConfig(4)
	sampled.SampleEvery = 37 * sim.Microsecond
	with := mustRun(t, sampled, mk())
	if plain.Makespan != with.Makespan {
		t.Fatalf("sampling changed the makespan: %v vs %v", plain.Makespan, with.Makespan)
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	res := mustRun(t, testConfig(2), smallGrid(workload.PatternIndependent, 4, 4, 1))
	if len(res.Timeline) != 0 {
		t.Fatalf("timeline recorded without SampleEvery: %d samples", len(res.Timeline))
	}
}
