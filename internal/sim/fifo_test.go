package sim

import (
	"testing"
	"testing/quick"
)

func TestFIFOBasic(t *testing.T) {
	f := NewFIFO[int]("test", 3)
	if f.Name() != "test" || f.Cap() != 3 {
		t.Fatalf("name/cap = %q/%d", f.Name(), f.Cap())
	}
	if !f.Empty() || f.Full() {
		t.Fatal("new FIFO should be empty and not full")
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("Pop on empty FIFO returned ok")
	}
	for i := 1; i <= 3; i++ {
		if !f.Push(i) {
			t.Fatalf("Push(%d) failed", i)
		}
	}
	if !f.Full() {
		t.Fatal("FIFO should be full")
	}
	if f.Push(4) {
		t.Fatal("Push succeeded on full FIFO")
	}
	if f.FullStalls() != 1 {
		t.Fatalf("FullStalls = %d, want 1", f.FullStalls())
	}
	for i := 1; i <= 3; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if f.HighWater() != 3 {
		t.Fatalf("HighWater = %d, want 3", f.HighWater())
	}
	if f.Pushes() != 3 {
		t.Fatalf("Pushes = %d, want 3", f.Pushes())
	}
}

func TestFIFOPeek(t *testing.T) {
	f := NewFIFO[string]("peek", 2)
	if _, ok := f.Peek(); ok {
		t.Fatal("Peek on empty returned ok")
	}
	f.MustPush("a")
	f.MustPush("b")
	if v, ok := f.Peek(); !ok || v != "a" {
		t.Fatalf("Peek = %q,%v", v, ok)
	}
	if f.Len() != 2 {
		t.Fatalf("Peek must not consume; Len = %d", f.Len())
	}
}

func TestFIFOCallbacks(t *testing.T) {
	f := NewFIFO[int]("cb", 2)
	var data, space int
	f.OnData(func() { data++ })
	f.OnSpace(func() { space++ })
	f.Push(1)
	f.Push(2)
	f.Push(3) // full: no callback
	if data != 2 {
		t.Fatalf("data callbacks = %d, want 2", data)
	}
	f.Pop()
	if space != 1 {
		t.Fatalf("space callbacks = %d, want 1", space)
	}
}

func TestFIFOMustPushPanics(t *testing.T) {
	f := NewFIFO[int]("mp", 1)
	f.MustPush(1)
	defer func() {
		if recover() == nil {
			t.Error("MustPush on full FIFO did not panic")
		}
	}()
	f.MustPush(2)
}

func TestFIFOZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFIFO(0) did not panic")
		}
	}()
	NewFIFO[int]("bad", 0)
}

func TestFIFOCompaction(t *testing.T) {
	// Force many push/pop cycles so the internal compaction path runs and
	// verify ordering survives it.
	f := NewFIFO[int]("compact", 8)
	next, expect := 0, 0
	for round := 0; round < 1000; round++ {
		for f.Push(next) {
			next++
		}
		for i := 0; i < 3; i++ {
			v, ok := f.Pop()
			if !ok || v != expect {
				t.Fatalf("round %d: Pop = %d,%v, want %d,true", round, v, ok, expect)
			}
			expect++
		}
	}
}

// Property: a FIFO behaves exactly like a bounded slice queue for any
// push/pop interleaving.
func TestFIFOModelProperty(t *testing.T) {
	prop := func(ops []bool, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		f := NewFIFO[int]("prop", capacity)
		var model []int
		n := 0
		for _, push := range ops {
			if push {
				want := len(model) < capacity
				got := f.Push(n)
				if got != want {
					return false
				}
				if got {
					model = append(model, n)
				}
				n++
			} else {
				v, ok := f.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
			if f.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
