package sim

// Resource is a counting semaphore with FIFO-fair waiters. It models finite
// hardware ports: the Nexus++ evaluation bounds off-chip memory to 32
// concurrent accessors (one per bank port), and Resource reproduces exactly
// that "no more than N tasks can access the memory at a given time" rule.
type Resource struct {
	name    string
	cap     int
	inUse   int
	waiters []func()

	// Statistics.
	acquires  uint64
	waits     uint64
	highWater int
}

// NewResource returns a resource with the given number of slots.
func NewResource(name string, slots int) *Resource {
	if slots < 1 {
		panic("sim: Resource needs at least one slot: " + name)
	}
	return &Resource{name: name, cap: slots}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Cap returns the number of slots.
func (r *Resource) Cap() int { return r.cap }

// InUse returns the number of currently held slots.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of waiters.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// HighWater returns the maximum concurrent holders observed.
func (r *Resource) HighWater() int { return r.highWater }

// Acquires returns the number of successful acquisitions.
func (r *Resource) Acquires() uint64 { return r.acquires }

// Waits returns how many acquisitions had to queue first.
func (r *Resource) Waits() uint64 { return r.waits }

// Acquire invokes granted as soon as a slot is free — immediately
// (synchronously) when one is available, otherwise when a holder releases.
// Grant order is strictly FIFO.
func (r *Resource) Acquire(granted func()) {
	if r.inUse < r.cap {
		r.take()
		granted()
		return
	}
	r.waits++
	r.waiters = append(r.waiters, granted)
}

// TryAcquire takes a slot if one is free and returns whether it did.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap {
		r.take()
		return true
	}
	return false
}

func (r *Resource) take() {
	r.inUse++
	r.acquires++
	if r.inUse > r.highWater {
		r.highWater = r.inUse
	}
}

// Release frees one slot and synchronously grants the oldest waiter, if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire on " + r.name)
	}
	r.inUse--
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		r.take()
		next()
	}
}
