package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceBasic(t *testing.T) {
	r := NewResource("mem", 2)
	if r.Cap() != 2 || r.Name() != "mem" {
		t.Fatalf("cap/name = %d/%q", r.Cap(), r.Name())
	}
	granted := 0
	r.Acquire(func() { granted++ })
	r.Acquire(func() { granted++ })
	if granted != 2 || r.InUse() != 2 {
		t.Fatalf("granted=%d inUse=%d", granted, r.InUse())
	}
	r.Acquire(func() { granted++ }) // queued
	if granted != 2 || r.QueueLen() != 1 {
		t.Fatalf("granted=%d queue=%d", granted, r.QueueLen())
	}
	r.Release()
	if granted != 3 || r.InUse() != 2 || r.QueueLen() != 0 {
		t.Fatalf("after release: granted=%d inUse=%d queue=%d", granted, r.InUse(), r.QueueLen())
	}
	r.Release()
	r.Release()
	if r.InUse() != 0 {
		t.Fatalf("inUse = %d, want 0", r.InUse())
	}
	if r.Waits() != 1 || r.Acquires() != 3 || r.HighWater() != 2 {
		t.Fatalf("waits=%d acquires=%d hw=%d", r.Waits(), r.Acquires(), r.HighWater())
	}
}

func TestResourceFIFOGrantOrder(t *testing.T) {
	r := NewResource("ordered", 1)
	r.Acquire(func() {})
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.Acquire(func() { order = append(order, i) })
	}
	for i := 0; i < 5; i++ {
		r.Release()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order %v, want FIFO", order)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	r := NewResource("try", 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire succeeded with no free slot")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after Release failed")
	}
}

func TestResourceOverReleasePanics(t *testing.T) {
	r := NewResource("over", 1)
	defer func() {
		if recover() == nil {
			t.Error("Release without Acquire did not panic")
		}
	}()
	r.Release()
}

// Property: with S slots and any acquire/release trace, holders never exceed
// S and every waiter is eventually granted once enough releases happen.
func TestResourceInvariantProperty(t *testing.T) {
	prop := func(ops []bool, slotsRaw uint8) bool {
		slots := int(slotsRaw%8) + 1
		r := NewResource("prop", slots)
		granted, outstanding := 0, 0
		for _, acq := range ops {
			if acq {
				r.Acquire(func() { granted++ })
				outstanding++
			} else if granted > 0 && r.InUse() > 0 {
				r.Release()
			}
			if r.InUse() > slots {
				return false
			}
			if granted > outstanding {
				return false
			}
		}
		// Drain: release everything; all waiters must be granted.
		for r.InUse() > 0 {
			r.Release()
		}
		return granted == outstanding && r.QueueLen() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestServerBasic(t *testing.T) {
	eng := NewEngine()
	s := NewServer(eng, "blk")
	done := 0
	s.Start(10*Nanosecond, func() { done++ })
	if !s.Busy() {
		t.Fatal("server should be busy after Start")
	}
	eng.Run()
	if done != 1 || s.Busy() {
		t.Fatalf("done=%d busy=%v", done, s.Busy())
	}
	if s.Served() != 1 || s.BusyTime() != 10*Nanosecond {
		t.Fatalf("served=%d busyTime=%v", s.Served(), s.BusyTime())
	}
	if u := s.Utilization(20 * Nanosecond); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if u := s.Utilization(0); u != 0 {
		t.Fatalf("utilization(0) = %v, want 0", u)
	}
}

func TestServerDoubleStartPanics(t *testing.T) {
	eng := NewEngine()
	s := NewServer(eng, "blk")
	s.Start(1, func() {})
	defer func() {
		if recover() == nil {
			t.Error("Start while busy did not panic")
		}
	}()
	s.Start(1, func() {})
}

func TestServerPipelinesAcrossItems(t *testing.T) {
	eng := NewEngine()
	s := NewServer(eng, "blk")
	var completions []Time
	var feed func()
	remaining := 3
	feed = func() {
		if remaining == 0 {
			return
		}
		remaining--
		s.Start(5*Nanosecond, func() {
			completions = append(completions, eng.Now())
			feed()
		})
	}
	feed()
	eng.Run()
	want := []Time{5 * Nanosecond, 10 * Nanosecond, 15 * Nanosecond}
	if len(completions) != 3 {
		t.Fatalf("completions = %v", completions)
	}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions = %v, want %v", completions, want)
		}
	}
}
