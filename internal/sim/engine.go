// Package sim provides a deterministic discrete-event simulation kernel.
//
// It plays the role of the SystemC "Task Machine" used by the Nexus++ paper:
// hardware blocks are modeled as callbacks scheduled on a global event queue,
// bounded FIFOs provide the paper's FIFO lists with full/empty back-pressure,
// and Resource models finite hardware ports (for example the 32-bank
// off-chip memory). All ordering is deterministic: events fire in
// (time, insertion-sequence) order, so repeated runs of the same
// configuration produce bit-identical results.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated instant or duration in picoseconds. Picoseconds keep
// every latency in the paper (2 ns cycles, 4 ns bus words, 12 ns memory
// chunks, 30 ns preparation, microsecond tasks) an exact integer while
// leaving headroom for multi-second simulations (int64 picoseconds cover
// about 106 days).
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.4gns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// Engine is the discrete-event simulation core. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	pq        eventHeap
	processed uint64
	running   bool
}

// NewEngine returns an empty engine positioned at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.pq)
	return e
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of scheduled-but-unexecuted events.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it would silently corrupt causality in a hardware model.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before current time %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.pq, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative delays panic.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// Run executes events until the queue is empty and returns the final time.
func (e *Engine) Run() Time {
	return e.RunUntil(Time(1<<62 - 1))
}

// RunUntil executes events with timestamps <= limit, leaves later events
// queued, and returns the time of the last executed event (or the current
// time if nothing ran). It panics when called reentrantly from an event.
func (e *Engine) RunUntil(limit Time) Time {
	if e.running {
		panic("sim: RunUntil called from inside an event callback")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.pq) > 0 {
		if e.pq[0].at > limit {
			break
		}
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.at
		e.processed++
		ev.fn()
	}
	return e.now
}
