package sim

// FIFO is a bounded first-in first-out queue modeling the hardware FIFO
// lists of the Nexus++ Task Maestro (TDs Sizes, New Tasks, TP Free Indices,
// Global Ready Tasks, Worker Cores IDs, CiRdyTasks, CiFinTasks, ...).
//
// Pushing into a full FIFO fails, which the producer block turns into a
// stall; the paper's 1-bit "list written" events are modeled with the
// OnData/OnSpace subscriber callbacks, which fire (in the same event-queue
// step) whenever the FIFO transitions or stays relevant for a waiting block.
// Callbacks are invoked synchronously; blocks are written so that re-entrant
// kicks are cheap no-ops when they are busy.
type FIFO[T any] struct {
	name    string
	cap     int
	items   []T
	head    int
	onData  []func()
	onSpace []func()

	// Statistics.
	pushes     uint64
	fullStalls uint64
	highWater  int
}

// NewFIFO returns an empty FIFO with the given capacity. Capacity must be
// at least 1.
func NewFIFO[T any](name string, capacity int) *FIFO[T] {
	if capacity < 1 {
		panic("sim: FIFO capacity must be >= 1: " + name)
	}
	return &FIFO[T]{name: name, cap: capacity}
}

// Name returns the FIFO's diagnostic name.
func (f *FIFO[T]) Name() string { return f.name }

// Cap returns the configured capacity.
func (f *FIFO[T]) Cap() int { return f.cap }

// Len returns the number of queued items.
func (f *FIFO[T]) Len() int { return len(f.items) - f.head }

// Full reports whether a Push would fail.
func (f *FIFO[T]) Full() bool { return f.Len() >= f.cap }

// Empty reports whether a Pop would fail.
func (f *FIFO[T]) Empty() bool { return f.Len() == 0 }

// HighWater returns the maximum occupancy ever observed.
func (f *FIFO[T]) HighWater() int { return f.highWater }

// Pushes returns the total number of successful pushes.
func (f *FIFO[T]) Pushes() uint64 { return f.pushes }

// FullStalls returns how many Push attempts failed because the FIFO was full.
func (f *FIFO[T]) FullStalls() uint64 { return f.fullStalls }

// OnData registers a callback invoked after every successful Push.
// It models a 1-bit "list written" event wire.
func (f *FIFO[T]) OnData(fn func()) { f.onData = append(f.onData, fn) }

// OnSpace registers a callback invoked after every successful Pop.
// It models the wire a stalled producer watches to resume.
func (f *FIFO[T]) OnSpace(fn func()) { f.onSpace = append(f.onSpace, fn) }

// Push appends v and returns true, or returns false if the FIFO is full.
func (f *FIFO[T]) Push(v T) bool {
	if f.Full() {
		f.fullStalls++
		return false
	}
	f.items = append(f.items, v)
	f.pushes++
	if n := f.Len(); n > f.highWater {
		f.highWater = n
	}
	for _, fn := range f.onData {
		fn()
	}
	return true
}

// MustPush panics if the FIFO is full. Use it for FIFOs whose sizing
// guarantees (token schemes) make overflow a model bug rather than a stall.
func (f *FIFO[T]) MustPush(v T) {
	if !f.Push(v) {
		panic("sim: FIFO overflow on " + f.name)
	}
}

// Pop removes and returns the oldest item; ok is false when empty.
func (f *FIFO[T]) Pop() (v T, ok bool) {
	if f.Empty() {
		return v, false
	}
	v = f.items[f.head]
	var zero T
	f.items[f.head] = zero
	f.head++
	// Compact occasionally so memory stays bounded on long runs.
	if f.head > 64 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	for _, fn := range f.onSpace {
		fn()
	}
	return v, true
}

// Peek returns the oldest item without removing it.
func (f *FIFO[T]) Peek() (v T, ok bool) {
	if f.Empty() {
		return v, false
	}
	return f.items[f.head], true
}
