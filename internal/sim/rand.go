package sim

import "math"

// Rand is a small deterministic PRNG (xorshift64*), used to synthesise
// per-task execution and memory times for the trace generator. It is
// seedable and splittable so that every workload is reproducible and
// independent of Go's global rand state.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with seed (zero is remapped).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Split derives an independent stream from the current state.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0xD1B54A32D192ED03)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with the given mean and
// standard deviation (Box-Muller, one value per call).
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// TruncNorm returns a normal sample clamped to [lo, hi].
func (r *Rand) TruncNorm(mean, stddev, lo, hi float64) float64 {
	v := r.Norm(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
