package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatalf("Nanosecond = %d ps", Nanosecond)
	}
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("Second = %d ps", Second)
	}
	if got := (2500 * Picosecond).Nanoseconds(); got != 2.5 {
		t.Errorf("Nanoseconds() = %v, want 2.5", got)
	}
	if got := (3 * Microsecond).Microseconds(); got != 3 {
		t.Errorf("Microseconds() = %v, want 3", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{12 * Nanosecond, "12ns"},
		{3 * Microsecond, "3us"},
		{15 * Millisecond, "15ms"},
		{20 * Second, "20s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.After(10*Nanosecond, func() { order = append(order, 2) })
	eng.After(5*Nanosecond, func() { order = append(order, 1) })
	eng.After(10*Nanosecond, func() { order = append(order, 3) })
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if eng.Now() != 10*Nanosecond {
		t.Errorf("Now() = %v, want 10ns", eng.Now())
	}
	if eng.Processed() != 3 {
		t.Errorf("Processed() = %d, want 3", eng.Processed())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	// Events at the same timestamp must run in insertion order.
	eng := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		eng.At(7*Nanosecond, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var hits []Time
	eng.After(1*Nanosecond, func() {
		hits = append(hits, eng.Now())
		eng.After(2*Nanosecond, func() {
			hits = append(hits, eng.Now())
		})
	})
	end := eng.Run()
	if end != 3*Nanosecond {
		t.Fatalf("end = %v, want 3ns", end)
	}
	if len(hits) != 2 || hits[0] != 1*Nanosecond || hits[1] != 3*Nanosecond {
		t.Fatalf("hits = %v", hits)
	}
}

func TestEngineRunUntil(t *testing.T) {
	eng := NewEngine()
	var count int
	for i := 1; i <= 10; i++ {
		eng.At(Time(i)*Nanosecond, func() { count++ })
	}
	eng.RunUntil(5 * Nanosecond)
	if count != 5 {
		t.Fatalf("count after RunUntil(5ns) = %d, want 5", count)
	}
	if eng.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", eng.Pending())
	}
	eng.Run()
	if count != 10 {
		t.Fatalf("count after Run() = %d, want 10", count)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	eng := NewEngine()
	eng.After(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		eng.At(5*Nanosecond, func() {})
	})
	eng.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	eng := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	eng.After(-1, func() {})
}

func TestEngineReentrantRunPanics(t *testing.T) {
	eng := NewEngine()
	eng.After(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("reentrant Run did not panic")
			}
		}()
		eng.Run()
	})
	eng.Run()
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []int {
		eng := NewEngine()
		rng := NewRand(42)
		var order []int
		for i := 0; i < 500; i++ {
			i := i
			eng.At(Time(rng.Intn(50))*Nanosecond, func() { order = append(order, i) })
		}
		eng.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of non-negative delays, the engine fires events in
// non-decreasing time order and processes all of them.
func TestEngineMonotonicProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		eng := NewEngine()
		var last Time = -1
		ok := true
		for _, d := range delays {
			eng.After(Time(d), func() {
				if eng.Now() < last {
					ok = false
				}
				last = eng.Now()
			})
		}
		eng.Run()
		return ok && eng.Processed() == uint64(len(delays))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
