package sim

// Server models a hardware block that processes one item at a time with a
// per-item latency, the shape of every Task Maestro block in the paper
// (Write TP, Check Deps, Schedule, Send TDs, Handle Finished). A block owns
// a Server and calls Start with the item's computed service latency; the
// done callback runs when the latency elapses. Kick is the idempotent
// "try to make progress" entry point blocks register on their input FIFOs.
type Server struct {
	eng  *Engine
	name string
	busy bool

	// Statistics.
	served   uint64
	busyTime Time
	lastIdle Time
}

// NewServer returns an idle server bound to eng.
func NewServer(eng *Engine, name string) *Server {
	return &Server{eng: eng, name: name}
}

// Name returns the server's diagnostic name.
func (s *Server) Name() string { return s.name }

// Busy reports whether an item is currently in service.
func (s *Server) Busy() bool { return s.busy }

// Served returns the number of completed service operations.
func (s *Server) Served() uint64 { return s.served }

// BusyTime returns the cumulative time spent in service.
func (s *Server) BusyTime() Time { return s.busyTime }

// Utilization returns busy time as a fraction of total elapsed time.
func (s *Server) Utilization(total Time) float64 {
	if total <= 0 {
		return 0
	}
	return float64(s.busyTime) / float64(total)
}

// Start begins servicing an item for the given latency and invokes done at
// completion. It panics when the server is already busy: callers must check
// Busy (via their Kick pattern) first.
func (s *Server) Start(latency Time, done func()) {
	if s.busy {
		panic("sim: Server.Start while busy: " + s.name)
	}
	if latency < 0 {
		panic("sim: negative latency on " + s.name)
	}
	s.busy = true
	s.eng.After(latency, func() {
		s.busy = false
		s.served++
		s.busyTime += latency
		done()
	})
}
