package sim

import (
	"math"
	"testing"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRandZeroSeedRemapped(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestRandSplitIndependence(t *testing.T) {
	r := NewRand(99)
	s := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream collides with parent %d/100 times", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(11)
	const n = 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Errorf("stddev = %v, want ~2", std)
	}
}

func TestRandTruncNormBounds(t *testing.T) {
	r := NewRand(13)
	for i := 0; i < 10000; i++ {
		v := r.TruncNorm(5, 10, 1, 9)
		if v < 1 || v > 9 {
			t.Fatalf("TruncNorm out of bounds: %v", v)
		}
	}
}
