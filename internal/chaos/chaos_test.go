package chaos

import (
	"context"
	"testing"
)

// TestScenarios runs every chaos scenario under the CI seed; each scenario
// verifies its own invariants (oracle-matched outcomes, exactly-once
// submission, typed errors, counter balance) and Run adds the shared
// goroutine-leak check.
func TestScenarios(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			rep, err := Run(context.Background(), name, 7)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Fingerprint == "" {
				t.Fatalf("scenario %s returned no fingerprint", name)
			}
		})
	}
}

// TestDeterminism re-runs the runtime-level scenarios and checks the
// fingerprints are bit-identical per seed — the reproducibility contract of
// the seeded injector. The service scenarios assert their own deterministic
// sub-observables inline (dedup counts, retry-per-drop) because wall-clock
// interleaving makes their full counter sets timing-dependent.
func TestDeterminism(t *testing.T) {
	for _, name := range []string{"task_panic", "task_hang_deadline", "retry_recovers", "dup_submit", "dropped_response"} {
		for _, seed := range []uint64{1, 42} {
			a, err := Run(context.Background(), name, seed)
			if err != nil {
				t.Fatalf("%s seed=%d first run: %v", name, seed, err)
			}
			b, err := Run(context.Background(), name, seed)
			if err != nil {
				t.Fatalf("%s seed=%d second run: %v", name, seed, err)
			}
			if a.Fingerprint != b.Fingerprint {
				t.Fatalf("%s seed=%d: fingerprints diverge: %s vs %s", name, seed, a.Fingerprint, b.Fingerprint)
			}
		}
	}
}
