// Package chaos is the scenario runner behind `nexusbench chaos`: it
// executes irregular workloads under seeded fault schedules
// (internal/faults) and verifies, after every run, the invariants the
// paper's hardware gets for free and the software service must earn —
// counters balance, the skipped set matches the dependency-graph oracle,
// no window wedges, and no goroutine leaks.
//
// Every scenario is deterministic per seed: fault decisions are pure
// functions of (seed, site, key), workload structure is seeded, and each
// report carries a fingerprint over the deterministic observables so CI can
// run a scenario twice and assert bit-equal outcomes.
package chaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Report is one scenario run's outcome. Fingerprint covers only the
// deterministic observables (task outcome counts, oracle sets, fault
// decisions) — wall-clock and retry timing are excluded.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Tasks    int    `json:"tasks"`
	Executed uint64 `json:"executed"`
	Failed   uint64 `json:"failed"`
	Skipped  uint64 `json:"skipped"`
	Retried  uint64 `json:"retried,omitempty"`
	// Faults is the per-site injected-fault count reported by the injector.
	Faults map[string]uint64 `json:"faults,omitempty"`
	// ClientRetries counts client-side retry rounds (SubmitWait), where the
	// scenario exercises them. Timing-dependent sites make this
	// informational, not fingerprinted, unless the scenario is sequential.
	ClientRetries int `json:"client_retries,omitempty"`
	// Shed counts submits rejected by the overload shed (503).
	Shed int `json:"shed,omitempty"`
	// Deduped counts submits answered from the idempotency window.
	Deduped int `json:"deduped,omitempty"`
	// Fingerprint digests the deterministic observables.
	Fingerprint string `json:"fingerprint"`
	// WallMS is informational only.
	WallMS float64 `json:"wall_ms"`
}

// fingerprint folds the given observables into a stable hex digest.
func fingerprint(parts ...any) string {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%v|", p)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// faultLine renders a fault-count map deterministically for fingerprints.
func faultLine(m map[string]uint64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d,", k, m[k])
	}
	return b.String()
}

// scenario is one named chaos experiment.
type scenario struct {
	name string
	run  func(ctx context.Context, seed uint64) (*Report, error)
}

// scenarios returns the registry in canonical order.
func scenarios() []scenario {
	return []scenario{
		{"task_panic", runTaskPanic},
		{"task_hang_deadline", runTaskHangDeadline},
		{"retry_recovers", runRetryRecovers},
		{"dup_submit", runDupSubmit},
		{"dropped_response", runDroppedResponse},
		{"session_expiry", runSessionExpiry},
		{"overload_shed", runOverloadShed},
	}
}

// Names lists every scenario in canonical order.
func Names() []string {
	sc := scenarios()
	names := make([]string, len(sc))
	for i, s := range sc {
		names[i] = s.name
	}
	return names
}

// Run executes one scenario under the given seed, enforcing the shared
// invariants (goroutine-leak-free shutdown on top of each scenario's own
// checks), and returns its report.
func Run(ctx context.Context, name string, seed uint64) (*Report, error) {
	for _, s := range scenarios() {
		if s.name != name {
			continue
		}
		baseline := runtime.NumGoroutine()
		start := time.Now()
		rep, err := s.run(ctx, seed)
		if err != nil {
			return nil, fmt.Errorf("chaos %s(seed=%d): %w", name, seed, err)
		}
		if err := waitGoroutines(baseline + goroutineSlack); err != nil {
			return nil, fmt.Errorf("chaos %s(seed=%d): %w", name, seed, err)
		}
		rep.Scenario = name
		rep.Seed = seed
		rep.WallMS = float64(time.Since(start).Microseconds()) / 1e3
		return rep, nil
	}
	return nil, fmt.Errorf("chaos: unknown scenario %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// goroutineSlack tolerates runtime-internal goroutines (finalizers, timer
// wheels, lingering HTTP keep-alive closers) that come and go around a
// scenario.
const goroutineSlack = 6

// waitGoroutines polls until the process goroutine count returns to at most
// limit — the leak check every scenario must pass after closing its server
// and runtime.
func waitGoroutines(limit int) error {
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= limit {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("goroutine leak: %d live, want <= %d", n, limit)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
