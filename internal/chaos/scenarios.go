package chaos

// The seven scenarios. The first three drive the runtime directly and
// verify exact, oracle-predicted outcomes (fault decisions are pure
// functions of seed and task index, so expected failed/retried sets are
// computable without running anything). The last four drive the full HTTP
// service and verify the end-to-end guarantees: exactly-once submission
// under duplicated requests and lost responses, typed errors (not wedges)
// for sessions expiring mid-graph, and explicit 503 shedding under
// overload.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"time"

	"nexuspp/internal/depgraph"
	"nexuspp/internal/faults"
	"nexuspp/internal/service"
	"nexuspp/internal/starss"
	"nexuspp/internal/workload"
)

// runTaskPanic injects body panics into an irregular random DAG with
// admission gated ahead of execution, and verifies the skipped set matches
// the dependency-graph oracle exactly: a task is skipped iff a transitive
// predecessor failed, failed iff the seeded injector picked it (and nothing
// upstream failed first), executed otherwise.
func runTaskPanic(ctx context.Context, seed uint64) (*Report, error) {
	const n = 200
	src := workload.RandomDAG(workload.RandomDAGConfig{Tasks: n, Seed: seed})
	g := depgraph.Build(src)
	in := faults.New(&faults.Plan{Seed: seed, Rules: []faults.Rule{{Site: faults.SiteTaskPanic, Prob: 0.05}}})

	// Oracle pass in ID order (a topological order): skipped dominates a
	// task's own injected panic, because the runtime classifies poison
	// before running the body.
	const (
		wantExec = iota
		wantFail
		wantSkip
	)
	want := make([]int, n)
	for i := 0; i < n; i++ {
		for _, p := range g.Preds(i) {
			if want[p] != wantExec {
				want[i] = wantSkip
				break
			}
		}
		if want[i] == wantExec && in.Peek(faults.SiteTaskPanic, faults.TaskKey(uint64(i), 0)) {
			want[i] = wantFail
		}
	}

	rt := starss.New(starss.Config{Workers: 4, Window: n + 1})
	tr := workload.Collect(src)
	gate := make(chan struct{})
	handles := make([]*starss.Handle, n)
	for i := range tr.Tasks {
		t := starss.TaskFromSpec(tr.Tasks[i], starss.ReplayOptions{ZeroCost: true})
		idx := uint64(i)
		t.Do = func(ctx context.Context) error {
			<-gate
			if in.Should(faults.SiteTaskPanic, faults.TaskKey(idx, 0)) {
				panic(fmt.Sprintf("chaos: injected panic in task %d", idx))
			}
			return ctx.Err()
		}
		h, err := rt.Submit(ctx, t)
		if err != nil {
			close(gate)
			_ = rt.Close()
			return nil, fmt.Errorf("submit task %d: %w", i, err)
		}
		handles[i] = h
	}
	close(gate)
	_ = rt.Wait(ctx) // first injected panic, expected
	for i, h := range handles {
		err := h.Err()
		got := wantExec
		switch {
		case errors.Is(err, starss.ErrDependencyFailed):
			got = wantSkip
		case err != nil:
			got = wantFail
		}
		if got != want[i] {
			_ = rt.Close()
			return nil, fmt.Errorf("task %d: outcome %d, oracle wants %d (err=%v)", i, got, want[i], err)
		}
	}
	st := rt.Stats()
	_ = rt.Close()
	if st.Executed+st.Failed+st.Skipped != st.Submitted || st.Submitted != n {
		return nil, fmt.Errorf("counters unbalanced: %+v", st)
	}
	counts := in.Counts()
	return &Report{
		Tasks: n, Executed: st.Executed, Failed: st.Failed, Skipped: st.Skipped,
		Faults:      counts,
		Fingerprint: fingerprint("task_panic", seed, st.Executed, st.Failed, st.Skipped, faultLine(counts)),
	}, nil
}

// runTaskHangDeadline injects hung bodies into independent tasks bounded by
// a per-task deadline, and verifies every hung task fails with
// ErrTaskTimeout — the deadline, not a wedge, ends the hang — while the
// rest execute.
func runTaskHangDeadline(ctx context.Context, seed uint64) (*Report, error) {
	const n = 64
	in := faults.New(&faults.Plan{Seed: seed, Rules: []faults.Rule{{Site: faults.SiteTaskHang, Prob: 0.2}}})
	var wantFailed uint64
	for i := 0; i < n; i++ {
		if in.Peek(faults.SiteTaskHang, faults.TaskKey(uint64(i), 0)) {
			wantFailed++
		}
	}
	rt := starss.New(starss.Config{Workers: 8, Window: n + 1, Faults: in})
	handles := make([]*starss.Handle, n)
	for i := 0; i < n; i++ {
		h, err := rt.Submit(ctx, starss.Task{
			Name:    fmt.Sprintf("hang%d", i),
			Deps:    []starss.Dep{starss.Out(uint64(i))},
			Timeout: 30 * time.Millisecond,
			Do:      func(ctx context.Context) error { return ctx.Err() },
		})
		if err != nil {
			_ = rt.Close()
			return nil, fmt.Errorf("submit task %d: %w", i, err)
		}
		handles[i] = h
	}
	_ = rt.Wait(ctx)
	for i, h := range handles {
		err := h.Err()
		if hung := in.Peek(faults.SiteTaskHang, faults.TaskKey(uint64(i), 0)); hung {
			if !errors.Is(err, starss.ErrTaskTimeout) {
				_ = rt.Close()
				return nil, fmt.Errorf("hung task %d: err=%v, want ErrTaskTimeout", i, err)
			}
		} else if err != nil {
			_ = rt.Close()
			return nil, fmt.Errorf("clean task %d failed: %v", i, err)
		}
	}
	st := rt.Stats()
	_ = rt.Close()
	if st.Failed != wantFailed || st.Executed != n-wantFailed || st.Skipped != 0 {
		return nil, fmt.Errorf("outcomes executed=%d failed=%d skipped=%d, want %d/%d/0",
			st.Executed, st.Failed, st.Skipped, n-wantFailed, wantFailed)
	}
	counts := in.Counts()
	return &Report{
		Tasks: n, Executed: st.Executed, Failed: st.Failed,
		Faults:      counts,
		Fingerprint: fingerprint("task_hang_deadline", seed, st.Executed, st.Failed, faultLine(counts)),
	}, nil
}

// runRetryRecovers injects body errors at 50% per attempt into independent
// tasks carrying MaxRetries=4, and verifies the retry policy recovers
// exactly the tasks the seeded schedule says it should: expected failures
// and expected re-arms are both computed from Peek before running.
func runRetryRecovers(ctx context.Context, seed uint64) (*Report, error) {
	const (
		n       = 64
		retries = 4
	)
	in := faults.New(&faults.Plan{Seed: seed, Rules: []faults.Rule{{Site: faults.SiteTaskError, Prob: 0.5}}})
	var wantFailed, wantRetried uint64
	for i := 0; i < n; i++ {
		a := 0
		for a <= retries && in.Peek(faults.SiteTaskError, faults.TaskKey(uint64(i), a)) {
			a++
		}
		if a > retries {
			wantFailed++
			wantRetried += retries // every attempt but the last re-arms
		} else {
			wantRetried += uint64(a)
		}
	}
	rt := starss.New(starss.Config{Workers: 8, Window: n + 1, Faults: in})
	handles := make([]*starss.Handle, n)
	for i := 0; i < n; i++ {
		h, err := rt.Submit(ctx, starss.Task{
			Name:            fmt.Sprintf("retry%d", i),
			Deps:            []starss.Dep{starss.Out(uint64(i))},
			MaxRetries:      retries,
			RetryBackoff:    100 * time.Microsecond,
			RetryMaxBackoff: time.Millisecond,
			Do:              func(ctx context.Context) error { return ctx.Err() },
		})
		if err != nil {
			_ = rt.Close()
			return nil, fmt.Errorf("submit task %d: %w", i, err)
		}
		handles[i] = h
	}
	_ = rt.Wait(ctx)
	for i, h := range handles {
		if err := h.Err(); err != nil && !errors.Is(err, faults.ErrInjected) {
			_ = rt.Close()
			return nil, fmt.Errorf("task %d: unexpected error %v", i, err)
		}
	}
	st := rt.Stats()
	_ = rt.Close()
	if st.Failed != wantFailed || st.Retried != wantRetried || st.Executed != n-wantFailed {
		return nil, fmt.Errorf("executed=%d failed=%d retried=%d, want %d/%d/%d",
			st.Executed, st.Failed, st.Retried, n-wantFailed, wantFailed, wantRetried)
	}
	counts := in.Counts()
	return &Report{
		Tasks: n, Executed: st.Executed, Failed: st.Failed, Retried: st.Retried,
		Faults:      counts,
		Fingerprint: fingerprint("retry_recovers", seed, st.Executed, st.Failed, st.Retried, faultLine(counts)),
	}, nil
}

// soloSpec returns a one-task wire batch on its own key.
func soloSpec(i int, execUS int64) []service.TaskSpec {
	return []service.TaskSpec{{
		Name:   fmt.Sprintf("t%d", i),
		Params: []service.Param{{Addr: 0x1000 + uint64(i), Mode: "out"}},
		ExecUS: execUS,
	}}
}

// newChaosServer starts an in-process service + HTTP listener.
func newChaosServer(cfg service.Config) (*service.Server, *httptest.Server, *service.Client) {
	srv := service.New(cfg)
	hs := httptest.NewServer(srv.Handler())
	return srv, hs, service.NewClient(hs.URL)
}

// runDupSubmit duplicates every second client request on the wire and
// verifies idempotency keys keep submission exactly-once: the duplicate is
// answered from the dedup window and the server executes each logical batch
// exactly once.
func runDupSubmit(ctx context.Context, seed uint64) (*Report, error) {
	const n = 20
	srv, hs, client := newChaosServer(service.Config{Workers: 4, ShedRatio: -1})
	defer func() { _ = srv.Close() }() // infrastructure-only; scenario invariants are checked explicitly
	defer hs.Close()
	sess, err := client.Open(ctx)
	if err != nil {
		return nil, fmt.Errorf("open: %w", err)
	}
	in := faults.New(&faults.Plan{Seed: seed, Rules: []faults.Rule{{Site: faults.SiteReqDup, Every: 2}}})
	clean := client.HTTP
	client.HTTP = &http.Client{Transport: &faults.Transport{In: in}}
	deduped := 0
	for i := 0; i < n; i++ {
		_, dup, err := sess.SubmitIdem(ctx, fmt.Sprintf("batch-%d", i), soloSpec(i, 100))
		if err != nil {
			return nil, fmt.Errorf("submit %d: %w", i, err)
		}
		if dup {
			deduped++
		}
	}
	if _, err := sess.Await(ctx, nil); err != nil {
		return nil, fmt.Errorf("await: %w", err)
	}
	stats, err := sess.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("stats: %w", err)
	}
	if stats.Executed != n || stats.Submitted != n {
		return nil, fmt.Errorf("executed=%d submitted=%d, want exactly %d each (duplicates double-executed?)",
			stats.Executed, stats.Submitted, n)
	}
	// Every duplicated submit lands on the dedup window: seq 0,2,4,... of
	// the sequential request stream, so exactly half the submits dedup.
	if deduped != n/2 {
		return nil, fmt.Errorf("deduped=%d, want %d", deduped, n/2)
	}
	// A duplicated DELETE would 404 against its own duplicate; the scenario
	// targets submits, so close over the clean transport.
	client.HTTP = clean
	if err := sess.Close(ctx); err != nil {
		return nil, fmt.Errorf("close: %w", err)
	}
	return &Report{
		Tasks: n, Executed: stats.Executed, Deduped: deduped,
		Faults:      in.Counts(),
		Fingerprint: fingerprint("dup_submit", seed, stats.Executed, stats.Submitted, deduped),
	}, nil
}

// runDroppedResponse drops every third response after the server has fully
// processed the request — the classic double-execution trap — and verifies
// SubmitWait's idempotent retry keeps each logical batch exactly-once.
func runDroppedResponse(ctx context.Context, seed uint64) (*Report, error) {
	const n = 12
	srv, hs, client := newChaosServer(service.Config{Workers: 4, ShedRatio: -1})
	defer func() { _ = srv.Close() }() // infrastructure-only; scenario invariants are checked explicitly
	defer hs.Close()
	sess, err := client.Open(ctx)
	if err != nil {
		return nil, fmt.Errorf("open: %w", err)
	}
	in := faults.New(&faults.Plan{Seed: seed, Rules: []faults.Rule{{Site: faults.SiteRespDrop, Every: 3}}})
	clean := client.HTTP
	client.HTTP = &http.Client{Transport: &faults.Transport{In: in}}
	sess.RetryBase = time.Millisecond
	sess.RetryMaxBackoff = 5 * time.Millisecond
	totalRetries := 0
	for i := 0; i < n; i++ {
		_, retries, err := sess.SubmitWait(ctx, soloSpec(i, 100))
		if err != nil {
			return nil, fmt.Errorf("submit %d: %w", i, err)
		}
		totalRetries += retries
	}
	client.HTTP = clean // the scenario targets submit responses only
	if _, err := sess.Await(ctx, nil); err != nil {
		return nil, fmt.Errorf("await: %w", err)
	}
	stats, err := sess.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("stats: %w", err)
	}
	if stats.Executed != n || stats.Submitted != n {
		return nil, fmt.Errorf("executed=%d submitted=%d, want exactly %d each (dropped responses double-executed?)",
			stats.Executed, stats.Submitted, n)
	}
	if drops := in.Fired(faults.SiteRespDrop); uint64(totalRetries) != drops {
		return nil, fmt.Errorf("client retries=%d, want one per dropped response (%d)", totalRetries, drops)
	}
	if totalRetries == 0 {
		return nil, fmt.Errorf("no responses dropped; the scenario exercised nothing")
	}
	if err := sess.Close(ctx); err != nil {
		return nil, fmt.Errorf("close: %w", err)
	}
	return &Report{
		Tasks: n, Executed: stats.Executed, ClientRetries: totalRetries,
		Faults:      in.Counts(),
		Fingerprint: fingerprint("dropped_response", seed, stats.Executed, stats.Submitted, totalRetries),
	}, nil
}

// runSessionExpiry expires a session in the middle of a live dependency
// chain and verifies the failure is typed and total: in-flight awaits
// return instead of wedging, post-expiry requests get a stable 404/410, and
// the shared runtime drains every admitted task.
func runSessionExpiry(ctx context.Context, seed uint64) (*Report, error) {
	const depth = 20
	// TTL of 1ns makes any reap pass treat the session as idle, forcing
	// the janitor race deterministically mid-graph.
	srv, hs, client := newChaosServer(service.Config{Workers: 4, SessionTTL: time.Nanosecond, ShedRatio: -1})
	defer func() { _ = srv.Close() }() // infrastructure-only; scenario invariants are checked explicitly
	defer hs.Close()
	sess, err := client.Open(ctx)
	if err != nil {
		return nil, fmt.Errorf("open: %w", err)
	}
	// One long chain on a single inout key: only the head can ever run, so
	// expiry always lands mid-graph.
	specs := make([]service.TaskSpec, depth)
	for i := range specs {
		specs[i] = service.TaskSpec{
			Name:   fmt.Sprintf("chain%d", i),
			Params: []service.Param{{Addr: 0x2000, Mode: "inout"}},
			ExecUS: 20_000,
		}
	}
	ids, err := sess.Submit(ctx, specs)
	if err != nil {
		return nil, fmt.Errorf("submit: %w", err)
	}
	// An await in flight while the session expires must return, not wedge.
	awaitDone := make(chan error, 1)
	go func() {
		actx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		_, err := sess.Await(actx, ids)
		awaitDone <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the chain start
	if reaped := srv.ReapSessions(); reaped != 1 {
		return nil, fmt.Errorf("reaped %d sessions, want 1", reaped)
	}
	select {
	case err = <-awaitDone:
		// The await either finished before the reap with failed/cancelled
		// states (nil) or lost its session underneath it (404 APIError).
		var ae *service.APIError
		if err != nil && !errors.As(err, &ae) {
			return nil, fmt.Errorf("in-flight await: untyped error %v", err)
		}
	case <-time.After(15 * time.Second):
		return nil, fmt.Errorf("in-flight await wedged across session expiry")
	}
	// Post-expiry requests get a stable typed error.
	var ae *service.APIError
	if _, err := sess.Submit(ctx, soloSpec(0, 0)); !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		return nil, fmt.Errorf("post-expiry submit: %v, want 404 APIError", err)
	}
	// The shared runtime must drain the poisoned chain completely.
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	_ = srv.Runtime().Wait(wctx) // first cancelled task's error, expected
	if err := wctx.Err(); err != nil {
		return nil, fmt.Errorf("runtime failed to drain after expiry: %w", err)
	}
	st := srv.Runtime().Stats()
	if st.Executed+st.Failed+st.Skipped != st.Submitted || st.Submitted != depth {
		return nil, fmt.Errorf("counters unbalanced after expiry: %+v", st)
	}
	// Which chain links executed before the cut is timing-dependent; the
	// fingerprint covers only the deterministic contract.
	return &Report{
		Tasks: depth, Executed: st.Executed, Failed: st.Failed, Skipped: st.Skipped,
		Fingerprint: fingerprint("session_expiry", seed, depth, "typed-errors", "drained"),
	}, nil
}

// runOverloadShed saturates a tiny shared window and verifies the server
// sheds with an explicit 503 before saturation instead of queueing, then
// recovers: everything it admitted still executes.
func runOverloadShed(ctx context.Context, seed uint64) (*Report, error) {
	srv, hs, client := newChaosServer(service.Config{
		Workers: 2, Window: 8, SessionWindow: 64, ShedRatio: 0.5,
	})
	defer func() { _ = srv.Close() }() // infrastructure-only; scenario invariants are checked explicitly
	defer hs.Close()
	sess, err := client.Open(ctx)
	if err != nil {
		return nil, fmt.Errorf("open: %w", err)
	}
	const attempts = 32
	admitted, shed := 0, 0
	for i := 0; i < attempts; i++ {
		_, err := sess.Submit(ctx, soloSpec(i, 50_000))
		switch {
		case err == nil:
			admitted++
		default:
			var ae *service.APIError
			if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
				return nil, fmt.Errorf("submit %d: %v, want 503 APIError under overload", i, err)
			}
			shed++
		}
	}
	if shed == 0 {
		return nil, fmt.Errorf("no submits shed across %d attempts on a %d-slot window", attempts, 8)
	}
	if _, err := sess.Await(ctx, nil); err != nil {
		return nil, fmt.Errorf("await after shed: %w", err)
	}
	stats, err := sess.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("stats: %w", err)
	}
	if stats.Executed != uint64(admitted) || stats.Failed != 0 {
		return nil, fmt.Errorf("executed=%d failed=%d, want all %d admitted tasks to execute", stats.Executed, stats.Failed, admitted)
	}
	if err := sess.Close(ctx); err != nil {
		return nil, fmt.Errorf("close: %w", err)
	}
	// How many submits land before the window fills is timing-dependent;
	// the deterministic contract is shed>0, admitted+shed==attempts, and
	// every admitted task executing.
	return &Report{
		Tasks: admitted, Executed: stats.Executed, Shed: shed,
		Fingerprint: fingerprint("overload_shed", seed, "shed-observed", "admitted-executed"),
	}, nil
}
