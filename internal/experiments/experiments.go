// Package experiments contains one driver per table and figure of the
// Nexus++ paper's evaluation (SSV), plus the ablations DESIGN.md calls out.
// Each driver runs the simulators at the paper's operating points and
// renders a table whose rows correspond to the paper's data series;
// cmd/nexusbench and the repository-level benchmarks are thin wrappers
// around these functions.
package experiments

import (
	"fmt"
	"io"

	"nexuspp/internal/core"
	"nexuspp/internal/report"
	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

// Options controls experiment scale.
type Options struct {
	// Full enables the paper-scale operating points that take minutes
	// (Gaussian n = 3000 and 5000). The default keeps every driver within
	// seconds while preserving the shapes.
	Full bool
	// Seed drives the synthetic trace generators.
	Seed uint64
	// Progress, when non-nil, receives one line per simulation run.
	Progress io.Writer
	// Cores optionally overrides the worker-count sweep of Fig7/Fig8.
	Cores []int
}

func (o *Options) seed() uint64 {
	if o.Seed == 0 {
		return 42
	}
	return o.Seed
}

func (o *Options) logf(format string, args ...interface{}) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// runner caches single-worker baselines keyed by workload + config variant.
type runner struct {
	opts  *Options
	cache map[string]sim.Time
}

func newRunner(opts *Options) *runner {
	return &runner{opts: opts, cache: make(map[string]sim.Time)}
}

func (r *runner) run(cfg core.Config, src workload.Source, tag string) (*core.Result, error) {
	r.opts.logf("run %-28s workers=%-3d %s", src.Name(), cfg.Workers, tag)
	return core.Run(cfg, src)
}

// baseline returns the 1-worker makespan for the given config/workload,
// cached under key.
func (r *runner) baseline(key string, cfg core.Config, mk func() workload.Source) (sim.Time, error) {
	if t, ok := r.cache[key]; ok {
		return t, nil
	}
	bcfg := cfg
	bcfg.Workers = 1
	res, err := r.run(bcfg, mk(), "baseline")
	if err != nil {
		return 0, err
	}
	r.cache[key] = res.Makespan
	return res.Makespan, nil
}

// Table2 reproduces Table II: Gaussian elimination task counts and average
// task weights for the paper's matrix sizes. It is a property of the
// workload generator (Equation 1), not a simulation.
func Table2(opts Options) *report.Table {
	t := report.NewTable(
		"Table II: Gaussian elimination tasks for different matrix sizes",
		"matrix dim", "# tasks", "# tasks (paper)", "avg weight (Eq.1)", "avg weight (paper)")
	paperTasks := map[int]int{250: 31374, 500: 125249, 1000: 500499, 3000: 4501499, 5000: 12502499}
	paperWeight := map[int]float64{250: 167, 500: 334, 1000: 667, 3000: 2012, 5000: 3523}
	for _, n := range []int{250, 500, 1000, 3000, 5000} {
		t.AddRow(n, workload.GaussianTaskCount(n), paperTasks[n],
			workload.GaussianMeanWeight(n), paperWeight[n])
	}
	t.AddNote("task counts follow (n^2+n-2)/2 exactly; Equation (1) reproduces the paper's average weights for n<=1000 and drifts ~5%% below for n=5000 (see EXPERIMENTS.md)")
	return t
}

// Fig6 reproduces the design-space exploration of Figure 6: speedup of the
// independent-task benchmark on 256 double-buffered cores with
// contention-free memory, sweeping the Dependence Table size (Task Pool
// fixed at 8K) and the Task Pool size (Dependence Table fixed at 8K), plus
// the longest Dependence Table chain as a function of the table size.
func Fig6(opts Options) (*report.Table, error) {
	r := newRunner(&opts)
	mk := func() workload.Source { return workload.Independent(opts.seed()) }
	base := core.DefaultConfig(256)
	base.Mem.ContentionFree = true
	base.TaskPoolEntries = 8192
	base.DepTableEntries = 8192
	t1, err := r.baseline("fig6", base, mk)
	if err != nil {
		return nil, err
	}

	dtSweep := &report.Series{Name: "speedup (TP=8K, DT=x)"}
	chains := &report.Series{Name: "longest DT chain"}
	for _, dt := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
		cfg := base
		cfg.DepTableEntries = dt
		res, err := r.run(cfg, mk(), fmt.Sprintf("DT=%d", dt))
		if err != nil {
			return nil, err
		}
		dtSweep.Add(float64(dt), float64(t1)/float64(res.Makespan))
		chains.Add(float64(dt), float64(res.MaxDTChain))
	}
	tpSweep := &report.Series{Name: "speedup (DT=8K, TP=x)"}
	for _, tp := range []int{128, 256, 512, 1024, 2048, 4096, 8192} {
		cfg := base
		cfg.TaskPoolEntries = tp
		res, err := r.run(cfg, mk(), fmt.Sprintf("TP=%d", tp))
		if err != nil {
			return nil, err
		}
		tpSweep.Add(float64(tp), float64(t1)/float64(res.Makespan))
	}
	t := report.SeriesTable(
		"Figure 6: speedup vs Task Pool / Dependence Table size (independent tasks, 256 cores, double buffering, contention-free memory)",
		"entries", dtSweep, tpSweep, chains)
	t.AddNote("paper: speedup saturates at 143x from DT=2K / TP=512; chains roughly halve from DT 2K to 4K")
	return t, nil
}

// Fig7 reproduces Figure 7: speedup of the four dependency patterns of
// Figure 4 against the worker-core count, with double buffering.
func Fig7(opts Options) (*report.Table, error) {
	r := newRunner(&opts)
	cores := opts.Cores
	if cores == nil {
		cores = []int{2, 4, 8, 16, 32, 64, 128, 256}
	}
	patterns := []struct {
		name string
		p    workload.Pattern
	}{
		{"independent", workload.PatternIndependent},
		{"wavefront (4a)", workload.PatternWavefront},
		{"horizontal (4b)", workload.PatternHorizontal},
		{"vertical (4c)", workload.PatternVertical},
	}
	var series []*report.Series
	for _, pat := range patterns {
		pat := pat
		mk := func() workload.Source {
			return workload.Grid(workload.GridConfig{Pattern: pat.p, Seed: opts.seed()})
		}
		cfg := core.DefaultConfig(1)
		t1, err := r.baseline("fig7-"+pat.name, cfg, mk)
		if err != nil {
			return nil, err
		}
		s := &report.Series{Name: pat.name}
		for _, c := range cores {
			ccfg := core.DefaultConfig(c)
			res, err := r.run(ccfg, mk(), "")
			if err != nil {
				return nil, err
			}
			s.Add(float64(c), float64(t1)/float64(res.Makespan))
		}
		series = append(series, s)
	}
	t := report.SeriesTable(
		"Figure 7: speedup vs cores for the Figure 4 dependency patterns (8160 H.264-sized tasks, double buffering)",
		"cores", series...)
	t.AddNote("paper shapes: horizontal saturates earliest (window-limited), vertical scales to ~64, independent is bounded by the 32-port memory beyond ~64 cores")
	return t, nil
}

// Fig8 reproduces Figure 8: Gaussian elimination speedup against the core
// count for a range of matrix sizes, with memory contention modeled and
// double buffering. The n=3000/5000 points require Options.Full.
func Fig8(opts Options) (*report.Table, error) {
	r := newRunner(&opts)
	cores := opts.Cores
	if cores == nil {
		cores = []int{2, 4, 8, 16, 32, 64}
	}
	type sizeCase struct {
		n       int
		halfMem bool
	}
	sizes := []sizeCase{{250, false}, {500, false}, {1000, false}}
	if opts.Full {
		sizes = append(sizes, sizeCase{3000, false}, sizeCase{5000, false}, sizeCase{5000, true})
	}
	var series []*report.Series
	for _, sc := range sizes {
		sc := sc
		gcfg := workload.GaussianConfig{N: sc.n}
		name := fmt.Sprintf("n=%d", sc.n)
		if sc.halfMem {
			// Sensitivity: the paper does not state its Gaussian memory
			// accounting; halving the per-float traffic (6ns per chunk)
			// shows where its 45x at 64 cores comes from (see
			// EXPERIMENTS.md).
			gcfg.MemChunkTime = 6 * sim.Nanosecond
			name += " (half mem traffic)"
		}
		mk := func() workload.Source { return workload.Gaussian(gcfg) }
		cfg := core.DefaultConfig(1)
		t1, err := r.baseline("fig8-"+name, cfg, mk)
		if err != nil {
			return nil, err
		}
		s := &report.Series{Name: name}
		for _, c := range cores {
			res, err := r.run(core.DefaultConfig(c), mk(), "")
			if err != nil {
				return nil, err
			}
			s.Add(float64(c), float64(t1)/float64(res.Makespan))
		}
		series = append(series, s)
	}
	t := report.SeriesTable(
		"Figure 8: Gaussian elimination speedup vs cores (memory contention modeled, double buffering)",
		"cores", series...)
	t.AddNote("paper: speedup grows with matrix size; n=5000 reaches ~45x at 64 cores, n=250 peaks at 2.3x around 4 cores")
	if !opts.Full {
		t.AddNote("n=3000/5000 omitted (enable with -full); they add millions of tasks per run")
	}
	return t, nil
}

// AblationRenaming contrasts the paper's WAR/WAW safe-guard with the
// renaming alternative it mentions (RenameFalseDeps): pure writers fork
// fresh segment versions instead of waiting. A WAW-heavy workload gains;
// the price is Dependence Table pressure (one slot per live version).
func AblationRenaming(opts Options) (*report.Table, error) {
	r := newRunner(&opts)
	t := report.NewTable(
		"Ablation: WAR/WAW safe-guard vs renaming (16 cores)",
		"workload", "mode", "makespan", "max DT occupancy")
	cases := []struct {
		name string
		mk   func() workload.Source
	}{
		{"hot-output rewrite", func() workload.Source { return hotWriteSource(opts.seed(), 2000, 8) }},
		{"wavefront", func() workload.Source {
			return workload.Grid(workload.GridConfig{Pattern: workload.PatternWavefront, Seed: opts.seed()})
		}},
	}
	for _, c := range cases {
		for _, rename := range []bool{false, true} {
			cfg := core.DefaultConfig(16)
			cfg.RenameFalseDeps = rename
			mode := "safe-guard (paper)"
			if rename {
				mode = "renaming"
			}
			res, err := r.run(cfg, c.mk(), mode)
			if err != nil {
				return nil, err
			}
			t.AddRow(c.name, mode, res.Makespan.String(), res.MaxDTOccupancy)
		}
	}
	t.AddNote("renaming helps only workloads with pure-writer WAW/WAR conflicts; StarSs wavefront codes use inout and are unaffected, supporting the paper's choice to keep tables small")
	return t, nil
}

// hotWriteSource builds a WAW-heavy workload: n tasks each rewriting one of
// k hot output blocks, with a 25% sprinkle of readers.
func hotWriteSource(seed uint64, n, k int) workload.Source {
	rng := sim.NewRand(seed)
	tasks := make([]trace.TaskSpec, n)
	for i := range tasks {
		mode := trace.Out
		if rng.Intn(4) == 0 {
			mode = trace.In
		}
		tasks[i] = trace.TaskSpec{
			ID:     uint64(i),
			Params: []trace.Param{{Addr: uint64(rng.Intn(k)+1) * 1024, Size: 1024, Mode: mode}},
			Exec:   sim.Time(rng.Intn(8000)+2000) * sim.Nanosecond,
		}
	}
	return workload.FromTrace(&trace.Trace{Name: fmt.Sprintf("hot-write-%d", k), Tasks: tasks})
}

// Headline reproduces the paper's headline speedups for the independent
// task benchmark with double buffering: 54x at 64 cores with memory
// contention, 143x at 256 cores contention-free, and 221x at 256 cores
// contention-free with the task-preparation delay disabled.
func Headline(opts Options) (*report.Table, error) {
	r := newRunner(&opts)
	mk := func() workload.Source { return workload.Independent(opts.seed()) }

	type point struct {
		label    string
		workers  int
		contFree bool
		noPrep   bool
		paper    string
	}
	points := []point{
		{"64 cores, memory contention", 64, false, false, "54x"},
		{"256 cores, memory contention", 256, false, false, "(plateau)"},
		{"256 cores, contention-free", 256, true, false, "143x"},
		{"256 cores, contention-free, no prep delay", 256, true, true, "221x"},
		{"512 cores, contention-free", 512, true, false, "-"},
		{"512 cores, contention-free, no prep delay", 512, true, true, "-"},
	}
	t := report.NewTable(
		"Headline: independent tasks, double buffering (speedup vs 1 core)",
		"operating point", "speedup", "paper")
	for _, p := range points {
		cfg := core.DefaultConfig(p.workers)
		cfg.Mem.ContentionFree = p.contFree
		cfg.DisableTaskPrep = p.noPrep
		key := "headline"
		if p.contFree {
			key += "-cf"
		}
		t1, err := r.baseline(key, cfg, mk)
		if err != nil {
			return nil, err
		}
		res, err := r.run(cfg, mk(), p.label)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.label, float64(t1)/float64(res.Makespan), p.paper)
	}
	t.AddNote("our fully pipelined Task Maestro sustains ~1 task per 44ns, so the contention-free plateau lands above the paper's 143x; the memory-contention bound matches closely (see EXPERIMENTS.md)")
	return t, nil
}

// AblationBuffering sweeps the Task Controller buffering depth, the design
// choice SSIII motivates: depth 1 disables the prefetch overlap, depth 2 is
// the paper's double buffering, higher depths probe "in fact arbitrary"
// buffering.
func AblationBuffering(opts Options) (*report.Table, error) {
	r := newRunner(&opts)
	t := report.NewTable(
		"Ablation: Task Controller buffering depth (64 cores)",
		"workload", "depth", "makespan", "speedup vs depth 1")
	for _, pat := range []workload.Pattern{workload.PatternIndependent, workload.PatternWavefront} {
		pat := pat
		mk := func() workload.Source {
			return workload.Grid(workload.GridConfig{Pattern: pat, Seed: opts.seed()})
		}
		var depth1 sim.Time
		for _, depth := range []int{1, 2, 4} {
			cfg := core.DefaultConfig(64)
			cfg.BufferingDepth = depth
			res, err := r.run(cfg, mk(), fmt.Sprintf("depth=%d", depth))
			if err != nil {
				return nil, err
			}
			if depth == 1 {
				depth1 = res.Makespan
			}
			t.AddRow(pat.String(), depth, res.Makespan.String(),
				float64(depth1)/float64(res.Makespan))
		}
	}
	t.AddNote("double buffering hides the Get Inputs / Put Outputs phases behind execution; deeper buffering adds little once the memory phases are fully hidden")
	return t, nil
}

// AblationDummies contrasts Nexus++'s dummy tasks/entries against
// original-Nexus hard limits: workloads with wide parameter lists or wide
// dependency fan-out run on Nexus++ and abort on Nexus.
func AblationDummies(opts Options) (*report.Table, error) {
	r := newRunner(&opts)
	t := report.NewTable(
		"Ablation: dummy tasks and dummy entries vs fixed limits (4 cores)",
		"workload", "system", "outcome", "dummy TDs", "dummy DT segments")

	runCase := func(name string, cfg core.Config, mk func() workload.Source, system string) error {
		res, err := r.run(cfg, mk(), system)
		if err != nil {
			t.AddRow(name, system, "FAILS: "+trim(err.Error(), 60), "-", "-")
			return nil
		}
		t.AddRow(name, system, fmt.Sprintf("completes in %v", res.Makespan),
			res.DummyTDs, res.DummyDTSegments)
		return nil
	}

	// Wide parameter lists: full-pivot Gaussian tasks carry up to n params.
	mkWide := func() workload.Source {
		return workload.Gaussian(workload.GaussianConfig{N: 24, PivotObservesAll: true})
	}
	plus := core.DefaultConfig(4)
	if err := runCase("gaussian-24 full pivot", plus, mkWide, "Nexus++"); err != nil {
		return nil, err
	}
	hard := core.DefaultConfig(4)
	hard.MaxParamsPerTD = 5
	hard.HardParamLimit = true
	if err := runCase("gaussian-24 full pivot", hard, mkWide, "Nexus (5-param limit)"); err != nil {
		return nil, err
	}

	// Wide dependency fan-out, deterministic: one long-running producer
	// whose output 120 tasks read — the kick-off list must chain 15 dummy
	// segments of 8 slots.
	mkFan := func() workload.Source { return fanOutSource(120) }
	if err := runCase("fan-out-120", core.DefaultConfig(4), mkFan, "Nexus++"); err != nil {
		return nil, err
	}
	hardKO := core.DefaultConfig(4)
	hardKO.HardKickOffLimit = true
	if err := runCase("fan-out-120", hardKO, mkFan, "Nexus (fixed kick-off)"); err != nil {
		return nil, err
	}

	// Gaussian elimination: the paper's real case. The kick-off pressure is
	// dynamic (it depends on how many update tasks pile up behind each
	// pivot), so run it on few cores where readers drain slowly.
	mkGauss := func() workload.Source {
		return workload.Gaussian(workload.GaussianConfig{N: 250})
	}
	if err := runCase("gaussian-250", core.DefaultConfig(4), mkGauss, "Nexus++"); err != nil {
		return nil, err
	}
	hardKO2 := core.DefaultConfig(4)
	hardKO2.HardKickOffLimit = true
	if err := runCase("gaussian-250", hardKO2, mkGauss, "Nexus (fixed kick-off)"); err != nil {
		return nil, err
	}
	t.AddNote("the paper: applications that could not be executed by Nexus, such as Gaussian elimination, run efficiently on Nexus++")
	return t, nil
}

// AblationPorts contrasts fully pipelined Maestro tables (every block has
// its own SRAM port, our default and the paper's implicit assumption) with
// single-ported tables, where blocks touching the same table serialise.
// This is the main candidate explanation for why our contention-free
// plateau exceeds the paper's 143x: an implementation with single-ported
// SRAMs loses exactly this kind of block-level overlap.
func AblationPorts(opts Options) (*report.Table, error) {
	r := newRunner(&opts)
	mk := func() workload.Source { return workload.Independent(opts.seed()) }
	t := report.NewTable(
		"Ablation: Task Pool / Dependence Table ports (independent tasks, 256 cores, contention-free)",
		"table ports", "speedup", "makespan")
	type variant struct {
		label        string
		ports        int
		conservative bool
	}
	variants := []variant{
		{"unlimited (pipelined)", 0, false},
		{"2 per table", 2, false},
		{"1 per table", 1, false},
		{"1 per table, 3x access cost", 1, true},
	}
	for _, v := range variants {
		cfg := core.DefaultConfig(256)
		cfg.Mem.ContentionFree = true
		cfg.TablePorts = v.ports
		if v.conservative {
			// Read-modify-write as three SRAM operations per logical
			// access instead of one.
			cfg.Costs.CheckDepsPerAccess = 3
			cfg.Costs.HandleFinPerAccess = 3
		}
		t1, err := r.baseline("ports", core.DefaultConfig(256), mk)
		if err != nil {
			return nil, err
		}
		res, err := r.run(cfg, mk(), v.label)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.label, float64(t1)/float64(res.Makespan), res.Makespan.String())
	}
	t.AddNote("single-ported tables with a conservative 3-operations-per-access cost land near the paper's 143x plateau; our default fully pipelined model sits above it")
	return t, nil
}

// fanOutSource builds the deterministic wide-fan-out workload: one
// 500us producer followed by n 1us readers of its output.
func fanOutSource(n int) workload.Source {
	tasks := []trace.TaskSpec{{
		ID:     0,
		Params: []trace.Param{{Addr: 0xF0000, Size: 4, Mode: trace.Out}},
		Exec:   500 * sim.Microsecond,
	}}
	for i := 1; i <= n; i++ {
		tasks = append(tasks, trace.TaskSpec{
			ID:     uint64(i),
			Params: []trace.Param{{Addr: 0xF0000, Size: 4, Mode: trace.In}},
			Exec:   sim.Microsecond,
		})
	}
	return workload.FromTrace(&trace.Trace{Name: fmt.Sprintf("fan-out-%d", n), Tasks: tasks})
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
