package experiments

import (
	"context"
	"fmt"
	"runtime"

	"nexuspp/internal/backend"
	"nexuspp/internal/report"
	"nexuspp/internal/starss"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

// ShardScaling measures the executing runtime's replay throughput under
// three dependency resolvers, all driven through the unified backend
// interface in zero-cost mode (empty task bodies, so the resolver is the
// only cost): the retained single-maestro baseline backend (every submit
// and finish funnels through one resolver goroutine — the software
// bottleneck of the paper's SSI motivation), the sharded runtime backend
// clamped to one bank, and the sharded default. Striped keys is the
// workload sharding exists for; a single contended key is serial by
// construction and bounds what any resolver can do.
func ShardScaling(opts Options) (*report.Table, error) {
	tasks := 100_000
	if opts.Full {
		tasks = 1_000_000
	}
	cores := opts.Cores
	if cores == nil {
		cores = []int{2, 4, 8}
		if runtime.GOMAXPROCS(0) >= 16 {
			cores = append(cores, 16)
		}
	}
	type resolver struct {
		name   string
		b      backend.Backend
		shards int
	}
	maestro := mustBackend("maestro")
	sharded := mustBackend("runtime")
	resolvers := []resolver{
		{"maestro", maestro, 0},
		{"1 bank", sharded, 1},
		{"sharded", sharded, 0},
	}
	run := func(r resolver, workers int, src workload.Source) (float64, starss.Stats, error) {
		opts.logf("run %-28s workers=%-3d resolver=%s", src.Name(), workers, r.name)
		rep, err := r.b.Run(context.Background(), backend.Config{
			Workers:  workers,
			ZeroCost: true,
			Shards:   r.shards,
		}, src)
		if err != nil {
			return 0, starss.Stats{}, err
		}
		detail, ok := rep.Detail.(*starss.ReplayResult)
		if !ok {
			return 0, starss.Stats{}, fmt.Errorf("shard scaling: %s reported %T, want *starss.ReplayResult", r.name, rep.Detail)
		}
		return rep.Throughput(), detail.Stats, nil
	}

	t := report.NewTable(
		fmt.Sprintf("Dependency-resolution scaling: single maestro vs sharded banks (%d striped / %d contended empty tasks replayed, tasks/s)", tasks, tasks/10),
		"workers", "maestro striped", "1-bank striped", "sharded striped", "speedup vs maestro",
		"maestro contended", "sharded contended")
	var health starss.Stats
	for _, w := range cores {
		row := []any{w}
		var striped []float64
		for _, r := range resolvers {
			thr, st, err := run(r, w, stripedSource(tasks, 4096))
			if err != nil {
				return nil, err
			}
			accumulate(&health, st)
			striped = append(striped, thr)
			row = append(row, thr)
		}
		row = append(row, striped[2]/striped[0])
		for _, i := range []int{0, 2} {
			thr, st, err := run(resolvers[i], w, contendedSource(tasks/10))
			if err != nil {
				return nil, err
			}
			accumulate(&health, st)
			row = append(row, thr)
		}
		t.AddRow(row...)
	}
	t.AddNote("maestro: the original resolver goroutine, a synchronous channel rendezvous per submit and per finish (the serialization the paper motivates against); it has no batch admission")
	t.AddNote("striped keys: 4096 independent InOut chains, the resolver itself is the bottleneck; sharded banks plus batch admission remove it")
	t.AddNote("contended: every task InOuts one key (1/10th the task count — the chain is serial by construction), no resolver design can help; tasks/s stays comparable")
	t.AddNote("runtime health across all runs: %v (failed/skipped must be 0 on this workload)", health)
	if health.Failed != 0 || health.Skipped != 0 {
		return nil, fmt.Errorf("shard scaling: tasks failed or were skipped: %v", health)
	}
	return t, nil
}

// accumulate folds one run's counters into the experiment-wide health
// totals, so poisoning (Failed/Skipped) is observable in the report.
func accumulate(total *starss.Stats, st starss.Stats) {
	total.Submitted += st.Submitted
	total.Executed += st.Executed
	total.Failed += st.Failed
	total.Skipped += st.Skipped
	total.Hazards += st.Hazards
	if st.MaxInFlight > total.MaxInFlight {
		total.MaxInFlight = st.MaxInFlight
	}
}

// stripedSource builds n empty tasks spread across k InOut key chains: keys
// in different banks resolve concurrently, so it exposes resolver
// parallelism without any real work.
func stripedSource(n, k int) workload.Source {
	tasks := make([]trace.TaskSpec, n)
	for i := range tasks {
		tasks[i] = trace.TaskSpec{
			ID:     uint64(i),
			Params: []trace.Param{{Addr: uint64(i%k)*64 + 64, Size: 4, Mode: trace.InOut}},
		}
	}
	return workload.FromTrace(&trace.Trace{Name: fmt.Sprintf("striped-%d", k), Tasks: tasks})
}

// contendedSource builds n empty tasks all InOut-ing a single key: one
// serial dependency chain, the resolver-design-independent lower bound.
func contendedSource(n int) workload.Source {
	tasks := make([]trace.TaskSpec, n)
	for i := range tasks {
		tasks[i] = trace.TaskSpec{
			ID:     uint64(i),
			Params: []trace.Param{{Addr: 0x40, Size: 4, Mode: trace.InOut}},
		}
	}
	return workload.FromTrace(&trace.Trace{Name: "contended", Tasks: tasks})
}
