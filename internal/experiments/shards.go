package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"nexuspp/internal/report"
	"nexuspp/internal/starss"
)

// ShardScaling measures the executing runtime's Submit→completion
// throughput under three dependency resolvers: the retained single-maestro
// baseline (every submit and finish funnels through one resolver goroutine
// — the software bottleneck of the paper's SSI motivation), the sharded
// table clamped to one bank, and the sharded default. Independent keys is
// the workload sharding exists for; a single contended key is serial by
// construction and bounds what any resolver can do.
func ShardScaling(opts Options) (*report.Table, error) {
	tasks := 100_000
	if opts.Full {
		tasks = 1_000_000
	}
	cores := opts.Cores
	if cores == nil {
		cores = []int{2, 4, 8}
		if runtime.GOMAXPROCS(0) >= 16 {
			cores = append(cores, 16)
		}
	}
	resolvers := []struct {
		name string
		mk   func(w int) starss.TaskRuntime
	}{
		{"maestro", func(w int) starss.TaskRuntime {
			return starss.NewMaestro(starss.Config{Workers: w, Window: 4096})
		}},
		{"1 bank", func(w int) starss.TaskRuntime {
			return starss.New(starss.Config{Workers: w, Shards: 1, Window: 4096})
		}},
		{"sharded", func(w int) starss.TaskRuntime {
			return starss.New(starss.Config{Workers: w, Window: 4096})
		}},
	}
	t := report.NewTable(
		fmt.Sprintf("Dependency-resolution scaling: single maestro vs sharded banks (%d empty tasks, tasks/s)", tasks),
		"workers", "maestro indep", "1-bank indep", "sharded indep", "speedup vs maestro",
		"maestro contended", "sharded contended")
	var health starss.Stats
	for _, w := range cores {
		row := []interface{}{w}
		var indep []float64
		for _, r := range resolvers {
			opts.logf("run shard-scaling            workers=%-3d resolver=%-8s independent", w, r.name)
			thr, st := measureThroughput(r.mk(w), w, tasks, false)
			accumulate(&health, st)
			indep = append(indep, thr)
			row = append(row, thr)
		}
		row = append(row, indep[2]/indep[0])
		for _, r := range []int{0, 2} {
			opts.logf("run shard-scaling            workers=%-3d resolver=%-8s contended", w, resolvers[r].name)
			thr, st := measureThroughput(resolvers[r].mk(w), w, tasks, true)
			accumulate(&health, st)
			row = append(row, thr)
		}
		t.AddRow(row...)
	}
	t.AddNote("maestro: the original resolver goroutine, two synchronous channel rendezvous per task (the serialization the paper motivates against)")
	t.AddNote("independent keys: each submitter owns a disjoint key range, the resolver itself is the bottleneck; sharded banks remove it")
	t.AddNote("contended: every task InOuts one key, the dependency chain is serial and no resolver design can help")
	t.AddNote("runtime health across all runs: %v (failed/skipped must be 0 on this workload)", health)
	if health.Failed != 0 || health.Skipped != 0 {
		return nil, fmt.Errorf("shard scaling: tasks failed or were skipped: %v", health)
	}
	return t, nil
}

// accumulate folds one run's counters into the experiment-wide health
// totals, so poisoning (Failed/Skipped) is observable in the report.
func accumulate(total *starss.Stats, st starss.Stats) {
	total.Submitted += st.Submitted
	total.Executed += st.Executed
	total.Failed += st.Failed
	total.Skipped += st.Skipped
	total.Hazards += st.Hazards
	if st.MaxInFlight > total.MaxInFlight {
		total.MaxInFlight = st.MaxInFlight
	}
}

// measureThroughput runs `tasks` empty tasks through rt with `submitters`
// goroutines and returns tasks per second (drain included) plus the final
// runtime counters.
func measureThroughput(rt starss.TaskRuntime, submitters, tasks int, contended bool) (float64, starss.Stats) {
	per := tasks / submitters
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				var dep starss.Dep
				if contended {
					dep = starss.InOut("hot")
				} else {
					dep = starss.InOut([2]int{g, i % 512})
				}
				rt.MustSubmit(starss.Task{Deps: []starss.Dep{dep}, Run: func() {}})
			}
		}()
	}
	wg.Wait()
	if err := rt.Wait(context.Background()); err != nil {
		panic(err)
	}
	thr := float64(per*submitters) / time.Since(start).Seconds()
	st := rt.Stats()
	if err := rt.Close(); err != nil {
		panic(err)
	}
	return thr, st
}
