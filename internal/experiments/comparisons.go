package experiments

import (
	"fmt"

	"nexuspp/internal/core"
	"nexuspp/internal/nexus1"
	"nexuspp/internal/report"
	"nexuspp/internal/softrts"
	"nexuspp/internal/workload"
)

// RTSComparison contrasts the software StarSs runtime with Nexus++ on the
// H.264 workload — the paper's motivation (SSI): the software RTS "cannot
// compute task dependencies and attend to finished tasks fast enough to
// keep all worker cores busy".
func RTSComparison(opts Options) (*report.Table, error) {
	r := newRunner(&opts)
	t := report.NewTable(
		"Motivation: software StarSs RTS vs Nexus++ (speedup vs 1 core of the same system)",
		"workload", "cores", "software RTS", "Nexus++", "HW/SW makespan ratio")
	for _, pat := range []workload.Pattern{workload.PatternIndependent, workload.PatternWavefront} {
		pat := pat
		mk := func() workload.Source {
			return workload.Grid(workload.GridConfig{Pattern: pat, Seed: opts.seed()})
		}
		swBase, err := softrts.Run(softrts.DefaultConfig(1), mk())
		if err != nil {
			return nil, err
		}
		hwBase, err := r.baseline("rts-"+pat.String(), core.DefaultConfig(1), mk)
		if err != nil {
			return nil, err
		}
		for _, cores := range []int{4, 16, 64} {
			opts.logf("run %-28s workers=%-3d software RTS", mk().Name(), cores)
			sw, err := softrts.Run(softrts.DefaultConfig(cores), mk())
			if err != nil {
				return nil, err
			}
			hw, err := r.run(core.DefaultConfig(cores), mk(), "")
			if err != nil {
				return nil, err
			}
			t.AddRow(pat.String(), cores,
				float64(swBase.Makespan)/float64(sw.Makespan),
				float64(hwBase)/float64(hw.Makespan),
				float64(sw.Makespan)/float64(hw.Makespan))
		}
	}
	t.AddNote("the Nexus paper reported a 4.3x scalability improvement at 16 worker cores for an H.264-like workload")
	return t, nil
}

// Cholesky is an extension experiment: the canonical StarSs tiled Cholesky
// factorisation on Nexus++, the original Nexus and the software RTS, as a
// dense-linear-algebra counterpart to the paper's Gaussian graph.
func Cholesky(opts Options) (*report.Table, error) {
	r := newRunner(&opts)
	cores := opts.Cores
	if cores == nil {
		cores = []int{2, 4, 8, 16, 32, 64}
	}
	var series []*report.Series
	// Two granularities: coarse 64x64 tiles (gemm ~262us) amortise any
	// runtime; fine 16x16 tiles (gemm ~4us) expose the software RTS's
	// per-task cost — the paper's fine-grained-task argument.
	for _, b := range []int{64, 16} {
		b := b
		tiles := 24
		if b == 16 {
			tiles = 32
		}
		mk := func() workload.Source {
			return workload.Cholesky(workload.CholeskyConfig{Tiles: tiles, TileSize: b})
		}
		t1, err := r.baseline(fmt.Sprintf("cholesky-%d", b), core.DefaultConfig(1), mk)
		if err != nil {
			return nil, err
		}
		swBase, err := softrts.Run(softrts.DefaultConfig(1), mk())
		if err != nil {
			return nil, err
		}
		plus := &report.Series{Name: fmt.Sprintf("Nexus++ b=%d", b)}
		sw := &report.Series{Name: fmt.Sprintf("software b=%d", b)}
		for _, c := range cores {
			res, err := r.run(core.DefaultConfig(c), mk(), "")
			if err != nil {
				return nil, err
			}
			plus.Add(float64(c), float64(t1)/float64(res.Makespan))
			opts.logf("run %-28s workers=%-3d software RTS", mk().Name(), c)
			s, err := softrts.Run(softrts.DefaultConfig(c), mk())
			if err != nil {
				return nil, err
			}
			sw.Add(float64(c), float64(swBase.Makespan)/float64(s.Makespan))
		}
		series = append(series, plus, sw)
	}
	t := report.SeriesTable(
		"Extension: tiled Cholesky speedup vs 1 core (coarse 64x64 and fine 16x16 tiles)",
		"cores", series...)
	t.AddNote("coarse tiles amortise the software runtime; fine tiles expose its per-task cost while Nexus++ keeps scaling — the paper's fine-grained-task argument on a new workload")
	return t, nil
}

// NexusComparison contrasts the original Nexus (nexus1) with Nexus++ on
// workloads both can execute, and reports which workloads Nexus rejects.
func NexusComparison(opts Options) (*report.Table, error) {
	r := newRunner(&opts)
	t := report.NewTable(
		"Nexus vs Nexus++ (16 cores)",
		"workload", "Nexus", "Nexus++", "Nexus++ advantage")
	for _, pat := range []workload.Pattern{workload.PatternIndependent, workload.PatternWavefront} {
		pat := pat
		mk := func() workload.Source {
			return workload.Grid(workload.GridConfig{Pattern: pat, Seed: opts.seed()})
		}
		opts.logf("run %-28s workers=16  original Nexus", mk().Name())
		old, err := nexus1.Run(16, mk())
		if err != nil {
			t.AddRow(pat.String(), "FAILS: "+trim(err.Error(), 40), "-", "-")
			continue
		}
		plus, err := r.run(core.DefaultConfig(16), mk(), "")
		if err != nil {
			return nil, err
		}
		t.AddRow(pat.String(), old.Makespan.String(), plus.Makespan.String(),
			float64(old.Makespan)/float64(plus.Makespan))
	}
	// Gaussian with the full partial-pivoting data flow: the pivot tasks'
	// parameter lists exceed Nexus's fixed limit of 5, so Nexus statically
	// cannot run it — the paper's example of an application "that could
	// not be executed by Nexus".
	fullPivot := func() workload.Source {
		return workload.Gaussian(workload.GaussianConfig{N: 60, PivotObservesAll: true})
	}
	if ok, reason := nexus1.Supports(fullPivot()); ok {
		t.AddNote("unexpected: Nexus claims to support the full-pivot Gaussian workload")
	} else {
		plus, perr := r.run(core.DefaultConfig(16), fullPivot(), "")
		if perr != nil {
			return nil, perr
		}
		t.AddRow("gaussian-60 full pivot", "FAILS: "+trim(reason, 40), plus.Makespan.String(), "runs at all")
	}
	// Chained Gaussian: within Nexus's parameter limit, but its kick-off
	// lists may overflow dynamically depending on timing; report whatever
	// happens.
	gauss := func() workload.Source {
		return workload.Gaussian(workload.GaussianConfig{N: 250})
	}
	opts.logf("run %-28s workers=16  original Nexus", gauss().Name())
	plus, perr := r.run(core.DefaultConfig(16), gauss(), "")
	if perr != nil {
		return nil, perr
	}
	if old, err := nexus1.Run(16, gauss()); err != nil {
		t.AddRow("gaussian-250", "FAILS: "+trim(err.Error(), 40), plus.Makespan.String(), "runs at all")
	} else {
		t.AddRow("gaussian-250", old.Makespan.String(), plus.Makespan.String(),
			float64(old.Makespan)/float64(plus.Makespan))
	}
	t.AddNote("double buffering and cheaper table accesses give Nexus++ its advantage even on workloads Nexus supports")
	return t, nil
}
