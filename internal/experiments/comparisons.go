package experiments

// The cross-engine comparison drivers. They are written entirely against
// the unified backend interface (internal/backend): every engine is
// resolved from the registry by name and driven through the same
// Run(ctx, Config, Source) entry point, so the drivers contain no
// engine-specific wiring — the architecture the paper's comparative claims
// ask for.

import (
	"context"
	"fmt"

	"nexuspp/internal/backend"
	"nexuspp/internal/nexus1"
	"nexuspp/internal/report"
	"nexuspp/internal/workload"
)

// mustBackend resolves a registered backend; the names used by the drivers
// are pinned by the backend package's own tests.
func mustBackend(name string) backend.Backend {
	b, err := backend.Lookup(name)
	if err != nil {
		panic(err)
	}
	return b
}

// runOn executes src on the named backend with the given worker count,
// logging progress like every other driver.
func (o *Options) runOn(b backend.Backend, workers int, src workload.Source) (*backend.Report, error) {
	o.logf("run %-28s workers=%-3d backend=%s", src.Name(), workers, b.Name())
	return b.Run(context.Background(), backend.Config{Workers: workers}, src)
}

// RTSComparison contrasts the software StarSs runtime with Nexus++ on the
// H.264 workload — the paper's motivation (SSI): the software RTS "cannot
// compute task dependencies and attend to finished tasks fast enough to
// keep all worker cores busy". Both engines are driven through the unified
// backend interface.
func RTSComparison(opts Options) (*report.Table, error) {
	sw := mustBackend("softrts")
	hw := mustBackend("nexuspp")
	t := report.NewTable(
		"Motivation: software StarSs RTS vs Nexus++ (speedup vs 1 core of the same system)",
		"workload", "cores", "software RTS", "Nexus++", "HW/SW makespan ratio")
	for _, pat := range []workload.Pattern{workload.PatternIndependent, workload.PatternWavefront} {
		mk := func() workload.Source {
			return workload.Grid(workload.GridConfig{Pattern: pat, Seed: opts.seed()})
		}
		swBase, err := opts.runOn(sw, 1, mk())
		if err != nil {
			return nil, err
		}
		hwBase, err := opts.runOn(hw, 1, mk())
		if err != nil {
			return nil, err
		}
		for _, cores := range []int{4, 16, 64} {
			swRes, err := opts.runOn(sw, cores, mk())
			if err != nil {
				return nil, err
			}
			hwRes, err := opts.runOn(hw, cores, mk())
			if err != nil {
				return nil, err
			}
			t.AddRow(pat.String(), cores,
				float64(swBase.Makespan)/float64(swRes.Makespan),
				float64(hwBase.Makespan)/float64(hwRes.Makespan),
				float64(swRes.Makespan)/float64(hwRes.Makespan))
		}
	}
	t.AddNote("the Nexus paper reported a 4.3x scalability improvement at 16 worker cores for an H.264-like workload")
	return t, nil
}

// Cholesky is an extension experiment: the canonical StarSs tiled Cholesky
// factorisation on Nexus++ and the software RTS, as a dense-linear-algebra
// counterpart to the paper's Gaussian graph.
func Cholesky(opts Options) (*report.Table, error) {
	sw := mustBackend("softrts")
	hw := mustBackend("nexuspp")
	cores := opts.Cores
	if cores == nil {
		cores = []int{2, 4, 8, 16, 32, 64}
	}
	var series []*report.Series
	// Two granularities: coarse 64x64 tiles (gemm ~262us) amortise any
	// runtime; fine 16x16 tiles (gemm ~4us) expose the software RTS's
	// per-task cost — the paper's fine-grained-task argument.
	for _, b := range []int{64, 16} {
		tiles := 24
		if b == 16 {
			tiles = 32
		}
		mk := func() workload.Source {
			return workload.Cholesky(workload.CholeskyConfig{Tiles: tiles, TileSize: b})
		}
		hwBase, err := opts.runOn(hw, 1, mk())
		if err != nil {
			return nil, err
		}
		swBase, err := opts.runOn(sw, 1, mk())
		if err != nil {
			return nil, err
		}
		plus := &report.Series{Name: fmt.Sprintf("Nexus++ b=%d", b)}
		soft := &report.Series{Name: fmt.Sprintf("software b=%d", b)}
		for _, c := range cores {
			res, err := opts.runOn(hw, c, mk())
			if err != nil {
				return nil, err
			}
			plus.Add(float64(c), float64(hwBase.Makespan)/float64(res.Makespan))
			s, err := opts.runOn(sw, c, mk())
			if err != nil {
				return nil, err
			}
			soft.Add(float64(c), float64(swBase.Makespan)/float64(s.Makespan))
		}
		series = append(series, plus, soft)
	}
	t := report.SeriesTable(
		"Extension: tiled Cholesky speedup vs 1 core (coarse 64x64 and fine 16x16 tiles)",
		"cores", series...)
	t.AddNote("coarse tiles amortise the software runtime; fine tiles expose its per-task cost while Nexus++ keeps scaling — the paper's fine-grained-task argument on a new workload")
	return t, nil
}

// NexusComparison contrasts the original Nexus with Nexus++ on workloads
// both can execute, and reports which workloads Nexus rejects. Both are
// configurations of the shared hardware model, resolved from the backend
// registry.
func NexusComparison(opts Options) (*report.Table, error) {
	old := mustBackend("nexus")
	plus := mustBackend("nexuspp")
	t := report.NewTable(
		"Nexus vs Nexus++ (16 cores)",
		"workload", "Nexus", "Nexus++", "Nexus++ advantage")
	for _, pat := range []workload.Pattern{workload.PatternIndependent, workload.PatternWavefront} {
		mk := func() workload.Source {
			return workload.Grid(workload.GridConfig{Pattern: pat, Seed: opts.seed()})
		}
		oldRes, err := opts.runOn(old, 16, mk())
		if err != nil {
			t.AddRow(pat.String(), "FAILS: "+trim(err.Error(), 40), "-", "-")
			continue
		}
		plusRes, err := opts.runOn(plus, 16, mk())
		if err != nil {
			return nil, err
		}
		t.AddRow(pat.String(), oldRes.Makespan.String(), plusRes.Makespan.String(),
			float64(oldRes.Makespan)/float64(plusRes.Makespan))
	}
	// Gaussian with the full partial-pivoting data flow: the pivot tasks'
	// parameter lists exceed Nexus's fixed limit of 5, so Nexus statically
	// cannot run it — the paper's example of an application "that could
	// not be executed by Nexus".
	fullPivot := func() workload.Source {
		return workload.Gaussian(workload.GaussianConfig{N: 60, PivotObservesAll: true})
	}
	if ok, reason := nexus1.Supports(fullPivot()); ok {
		t.AddNote("unexpected: Nexus claims to support the full-pivot Gaussian workload")
	} else {
		plusRes, perr := opts.runOn(plus, 16, fullPivot())
		if perr != nil {
			return nil, perr
		}
		t.AddRow("gaussian-60 full pivot", "FAILS: "+trim(reason, 40), plusRes.Makespan.String(), "runs at all")
	}
	// Chained Gaussian: within Nexus's parameter limit, but its kick-off
	// lists may overflow dynamically depending on timing; report whatever
	// happens.
	gauss := func() workload.Source {
		return workload.Gaussian(workload.GaussianConfig{N: 250})
	}
	plusRes, perr := opts.runOn(plus, 16, gauss())
	if perr != nil {
		return nil, perr
	}
	if oldRes, err := opts.runOn(old, 16, gauss()); err != nil {
		t.AddRow("gaussian-250", "FAILS: "+trim(err.Error(), 40), plusRes.Makespan.String(), "runs at all")
	} else {
		t.AddRow("gaussian-250", oldRes.Makespan.String(), plusRes.Makespan.String(),
			float64(oldRes.Makespan)/float64(plusRes.Makespan))
	}
	t.AddNote("double buffering and cheaper table accesses give Nexus++ its advantage even on workloads Nexus supports")
	return t, nil
}
