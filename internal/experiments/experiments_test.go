package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The experiment drivers run full simulations; the tests here use trimmed
// core sweeps to keep the suite fast while still executing every driver
// end-to-end and asserting the paper's qualitative shapes.

func quickOpts() Options {
	return Options{Seed: 42, Cores: []int{2, 8}}
}

func TestTable2MatchesPaper(t *testing.T) {
	tbl := Table2(Options{})
	if tbl.NumRows() != 5 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"31374", "125249", "500499", "4501499", "12502499"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing task count %s in:\n%s", want, out)
		}
	}
}

func TestFig7QuickShapes(t *testing.T) {
	opts := quickOpts()
	tbl, err := Fig7(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"independent", "wavefront", "horizontal", "vertical"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing series %q", name)
		}
	}
}

func TestFig8Quick(t *testing.T) {
	opts := quickOpts()
	tbl, err := Fig8(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n=250") {
		t.Error("missing n=250 series")
	}
}

func TestAblationDummiesShowsNexusFailure(t *testing.T) {
	tbl, err := AblationDummies(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FAILS") {
		t.Errorf("expected a Nexus failure row:\n%s", out)
	}
	if !strings.Contains(out, "completes") {
		t.Errorf("expected Nexus++ success rows:\n%s", out)
	}
}

func TestRTSComparisonQuick(t *testing.T) {
	// Reuse the driver at reduced scale by calling it directly; it uses
	// fixed core counts, so just verify it completes and shows the gap.
	if testing.Short() {
		t.Skip("full RTS comparison in -short mode")
	}
	tbl, err := RTSComparison(Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "independent") {
		t.Error("missing independent row")
	}
}

func TestNexusComparisonQuick(t *testing.T) {
	tbl, err := NexusComparison(Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "gaussian-60 full pivot") || !strings.Contains(out, "FAILS") {
		t.Errorf("expected the Gaussian rejection row:\n%s", out)
	}
	if !strings.Contains(out, "gaussian-250") {
		t.Errorf("expected the chained Gaussian row:\n%s", out)
	}
}

func TestHeadlineAndFig6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second drivers skipped in -short mode")
	}
	hl, err := Headline(Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := hl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"54x", "143x", "221x", "contention-free"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline table missing %q:\n%s", want, out)
		}
	}
	f6, err := Fig6(Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f6.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "longest DT chain") {
		t.Error("fig6 missing chain column")
	}
}

func TestAblationBufferingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second drivers skipped in -short mode")
	}
	tbl, err := AblationBuffering(Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "independent") || !strings.Contains(out, "wavefront") {
		t.Errorf("missing workload rows:\n%s", out)
	}
}

func TestCholeskyExperimentQuick(t *testing.T) {
	tbl, err := Cholesky(Options{Seed: 5, Cores: []int{4}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Nexus++ b=64") || !strings.Contains(out, "software b=16") {
		t.Errorf("missing series:\n%s", out)
	}
}

func TestFanOutSource(t *testing.T) {
	src := fanOutSource(10)
	if src.Total() != 11 {
		t.Fatalf("Total = %d", src.Total())
	}
	first, _ := src.Next()
	if !first.Params[0].Mode.Writes() {
		t.Fatal("first task must be the producer")
	}
}

func TestProgressLogging(t *testing.T) {
	var log bytes.Buffer
	opts := Options{Seed: 1, Cores: []int{2}, Progress: &log}
	if _, err := Fig8(opts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "gaussian") {
		t.Errorf("progress log empty: %q", log.String())
	}
}

func TestShardScalingQuick(t *testing.T) {
	tbl, err := ShardScaling(Options{Cores: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"maestro", "sharded"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing column %q in:\n%s", want, buf.String())
		}
	}
}
