// Package depgraph builds the reference dependency graph of a workload by
// sequential replay and provides the analyses the test-suite and the
// experiment harness rely on: schedule validation (does a simulated
// execution respect every RAW/WAR/WAW edge?), critical-path length, and the
// parallelism profile that explains the "ramping effect" of the paper's
// H.264 benchmark (Figure 4a).
//
// The replay follows the StarSs semantics the paper implements in hardware:
// for every memory segment we track the last writer and the readers since
// that writer; a reading task depends on the last writer (RAW), and a
// writing task depends on the last writer (WAW) and on all readers since
// (WAR). Nexus++ deliberately enforces the false WAR/WAW dependencies
// instead of renaming, so the oracle encodes them as real edges too.
package depgraph

import (
	"fmt"
	"sort"

	"nexuspp/internal/sim"
	"nexuspp/internal/workload"
)

// Graph is the dependency DAG of a workload in submission order. Edges
// always point from a lower task ID to a higher one, so ID order is a
// topological order.
type Graph struct {
	// Name is the originating workload's name.
	Name string
	// Duration holds each task's total busy time (exec + memory phases),
	// used for critical-path analysis.
	Duration []sim.Time
	// Exec holds each task's pure execution time.
	Exec  []sim.Time
	preds [][]int32
	succs [][]int32
	edges int
}

// NumTasks returns the number of tasks.
func (g *Graph) NumTasks() int { return len(g.preds) }

// NumEdges returns the number of dependency edges.
func (g *Graph) NumEdges() int { return g.edges }

// Preds returns task t's predecessor IDs (do not modify).
func (g *Graph) Preds(t int) []int32 { return g.preds[t] }

// Succs returns task t's successor IDs (do not modify).
func (g *Graph) Succs(t int) []int32 { return g.succs[t] }

type addrState struct {
	lastWriter   int32 // -1 when none
	readersSince []int32
}

// Build replays src sequentially and returns its dependency graph.
// The source is Reset first.
func Build(src workload.Source) *Graph {
	return build(src, false)
}

// BuildRenamed replays src under writer-renaming semantics (the
// core.Config.RenameFalseDeps mode): pure writers never wait — they open a
// fresh version of the segment — so only RAW edges and the WAR/WAW edges of
// reading writers (inout) remain. Schedules of renamed runs validate
// against this graph.
func BuildRenamed(src workload.Source) *Graph {
	return build(src, true)
}

func build(src workload.Source, renamed bool) *Graph {
	src.Reset()
	g := &Graph{Name: src.Name()}
	if n := src.Total(); n > 0 {
		g.preds = make([][]int32, 0, n)
		g.succs = make([][]int32, 0, n)
		g.Duration = make([]sim.Time, 0, n)
		g.Exec = make([]sim.Time, 0, n)
	}
	state := make(map[uint64]*addrState)
	var id int32
	for {
		task, ok := src.Next()
		if !ok {
			break
		}
		depSet := make(map[int32]struct{})
		for _, p := range task.Params {
			st := state[p.Addr]
			if st == nil {
				st = &addrState{lastWriter: -1}
				state[p.Addr] = st
			}
			if p.Mode.Reads() && st.lastWriter >= 0 {
				depSet[st.lastWriter] = struct{}{}
			}
			if p.Mode.Writes() {
				// Under renaming, a pure writer forks a fresh version: no
				// WAW edge to the previous writer and no WAR edges to its
				// readers. A reading writer (inout) keeps them: its read
				// side pins it to the current version.
				if !renamed || p.Mode.Reads() {
					if st.lastWriter >= 0 {
						depSet[st.lastWriter] = struct{}{}
					}
					for _, r := range st.readersSince {
						depSet[r] = struct{}{}
					}
				}
				st.lastWriter = id
				st.readersSince = st.readersSince[:0]
			} else {
				st.readersSince = append(st.readersSince, id)
			}
		}
		delete(depSet, id) // a task never depends on itself
		preds := make([]int32, 0, len(depSet))
		for d := range depSet {
			preds = append(preds, d)
		}
		sort.Slice(preds, func(a, b int) bool { return preds[a] < preds[b] })
		g.preds = append(g.preds, preds)
		g.succs = append(g.succs, nil)
		for _, d := range preds {
			g.succs[d] = append(g.succs[d], id)
		}
		g.edges += len(preds)
		g.Duration = append(g.Duration, task.Exec+task.MemRead+task.MemWrite)
		g.Exec = append(g.Exec, task.Exec)
		id++
	}
	return g
}

// Analysis summarises the intrinsic parallelism of a graph, independent of
// any machine: the makespan on infinitely many cores (critical path), the
// total work, and the resulting average parallelism. These bound every
// speedup the simulators can report.
type Analysis struct {
	TotalWork      sim.Time
	CriticalPath   sim.Time
	AvgParallelism float64
	// MaxWidth is the maximum number of simultaneously running tasks under
	// a greedy infinite-core schedule.
	MaxWidth int
}

// Analyze computes the graph's intrinsic-parallelism summary.
func (g *Graph) Analyze() Analysis {
	n := g.NumTasks()
	finish := make([]sim.Time, n)
	type ev struct {
		t     sim.Time
		delta int
	}
	events := make([]ev, 0, 2*n)
	var a Analysis
	for i := 0; i < n; i++ {
		var ready sim.Time
		for _, p := range g.preds[i] {
			if finish[p] > ready {
				ready = finish[p]
			}
		}
		finish[i] = ready + g.Duration[i]
		if finish[i] > a.CriticalPath {
			a.CriticalPath = finish[i]
		}
		a.TotalWork += g.Duration[i]
		events = append(events, ev{ready, +1}, ev{finish[i], -1})
	}
	sort.Slice(events, func(x, y int) bool {
		if events[x].t != events[y].t {
			return events[x].t < events[y].t
		}
		return events[x].delta < events[y].delta // end before start at ties
	})
	cur := 0
	for _, e := range events {
		cur += e.delta
		if cur > a.MaxWidth {
			a.MaxWidth = cur
		}
	}
	if a.CriticalPath > 0 {
		a.AvgParallelism = float64(a.TotalWork) / float64(a.CriticalPath)
	}
	return a
}

// Interval records when a task executed in a simulated schedule.
type Interval struct {
	Start, End sim.Time
}

// ValidateSchedule checks that a simulated execution respects every
// dependency edge: a task's execution may begin only after all of its
// predecessors' executions have ended. It also checks that every task ran
// exactly once (a zero-valued interval with End == 0 counts as "never ran").
func (g *Graph) ValidateSchedule(ivs []Interval) error {
	if len(ivs) != g.NumTasks() {
		return fmt.Errorf("depgraph: schedule has %d intervals, graph has %d tasks", len(ivs), g.NumTasks())
	}
	for i, iv := range ivs {
		if iv.End <= 0 && iv.Start <= 0 && g.Duration[i] > 0 {
			return fmt.Errorf("depgraph: task %d never executed", i)
		}
		if iv.End < iv.Start {
			return fmt.Errorf("depgraph: task %d has End %v before Start %v", i, iv.End, iv.Start)
		}
		for _, p := range g.preds[i] {
			if ivs[p].End > iv.Start {
				return fmt.Errorf("depgraph: task %d started at %v before predecessor %d finished at %v",
					i, iv.Start, p, ivs[p].End)
			}
		}
	}
	return nil
}

// WidthProfile returns, for b equal time buckets across the infinite-core
// schedule, the average number of running tasks per bucket. It visualises
// the Figure 4(a) "ramping effect" versus the flat profiles of 4(b)/4(c).
func (g *Graph) WidthProfile(b int) []float64 {
	n := g.NumTasks()
	if n == 0 || b <= 0 {
		return nil
	}
	finish := make([]sim.Time, n)
	var horizon sim.Time
	starts := make([]sim.Time, n)
	for i := 0; i < n; i++ {
		var ready sim.Time
		for _, p := range g.preds[i] {
			if finish[p] > ready {
				ready = finish[p]
			}
		}
		starts[i] = ready
		finish[i] = ready + g.Duration[i]
		if finish[i] > horizon {
			horizon = finish[i]
		}
	}
	if horizon == 0 {
		return make([]float64, b)
	}
	prof := make([]float64, b)
	for i := 0; i < n; i++ {
		s, e := starts[i], finish[i]
		for bk := 0; bk < b; bk++ {
			bs := sim.Time(int64(horizon) * int64(bk) / int64(b))
			be := sim.Time(int64(horizon) * int64(bk+1) / int64(b))
			lo, hi := s, e
			if lo < bs {
				lo = bs
			}
			if hi > be {
				hi = be
			}
			if hi > lo {
				prof[bk] += float64(hi-lo) / float64(be-bs)
			}
		}
	}
	return prof
}
