package depgraph

import (
	"testing"
	"testing/quick"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

func mkTrace(tasks ...trace.TaskSpec) workload.Source {
	for i := range tasks {
		tasks[i].ID = uint64(i)
		if tasks[i].Exec == 0 {
			tasks[i].Exec = 10 * sim.Nanosecond
		}
	}
	return workload.FromTrace(&trace.Trace{Name: "test", Tasks: tasks})
}

func p(addr uint64, m trace.AccessMode) trace.Param {
	return trace.Param{Addr: addr, Size: 4, Mode: m}
}

func TestBuildRAW(t *testing.T) {
	g := Build(mkTrace(
		trace.TaskSpec{Params: []trace.Param{p(1, trace.Out)}},
		trace.TaskSpec{Params: []trace.Param{p(1, trace.In)}},
	))
	if g.NumTasks() != 2 || g.NumEdges() != 1 {
		t.Fatalf("tasks=%d edges=%d", g.NumTasks(), g.NumEdges())
	}
	if len(g.Preds(1)) != 1 || g.Preds(1)[0] != 0 {
		t.Fatalf("preds(1) = %v", g.Preds(1))
	}
	if len(g.Succs(0)) != 1 || g.Succs(0)[0] != 1 {
		t.Fatalf("succs(0) = %v", g.Succs(0))
	}
}

func TestBuildWARAndWAW(t *testing.T) {
	// T0 writes A; T1,T2 read A; T3 writes A.
	// Edges: T1<-T0, T2<-T0 (RAW); T3<-T0 (WAW), T3<-T1, T3<-T2 (WAR).
	g := Build(mkTrace(
		trace.TaskSpec{Params: []trace.Param{p(1, trace.Out)}},
		trace.TaskSpec{Params: []trace.Param{p(1, trace.In)}},
		trace.TaskSpec{Params: []trace.Param{p(1, trace.In)}},
		trace.TaskSpec{Params: []trace.Param{p(1, trace.Out)}},
	))
	if g.NumEdges() != 5 {
		t.Fatalf("edges = %d, want 5", g.NumEdges())
	}
	want := []int32{0, 1, 2}
	got := g.Preds(3)
	if len(got) != 3 {
		t.Fatalf("preds(3) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("preds(3) = %v, want %v", got, want)
		}
	}
}

func TestBuildReadersDoNotDependOnEachOther(t *testing.T) {
	g := Build(mkTrace(
		trace.TaskSpec{Params: []trace.Param{p(1, trace.In)}},
		trace.TaskSpec{Params: []trace.Param{p(1, trace.In)}},
		trace.TaskSpec{Params: []trace.Param{p(1, trace.In)}},
	))
	if g.NumEdges() != 0 {
		t.Fatalf("reader-only workload should have no edges, got %d", g.NumEdges())
	}
}

func TestBuildInOutChains(t *testing.T) {
	g := Build(mkTrace(
		trace.TaskSpec{Params: []trace.Param{p(1, trace.InOut)}},
		trace.TaskSpec{Params: []trace.Param{p(1, trace.InOut)}},
		trace.TaskSpec{Params: []trace.Param{p(1, trace.InOut)}},
	))
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want chain of 2", g.NumEdges())
	}
	if len(g.Preds(2)) != 1 || g.Preds(2)[0] != 1 {
		t.Fatalf("preds(2) = %v", g.Preds(2))
	}
}

func TestWavefrontGraphShape(t *testing.T) {
	g := Build(workload.Grid(workload.GridConfig{
		Pattern: workload.PatternWavefront, Rows: 4, Cols: 4, Seed: 1,
	}))
	if g.NumTasks() != 16 {
		t.Fatalf("tasks = %d", g.NumTasks())
	}
	// Corner task (0,0) has no predecessors.
	if len(g.Preds(0)) != 0 {
		t.Errorf("preds(0) = %v", g.Preds(0))
	}
	// Interior task (1,1) = id 5 depends on (1,0)=4 via left-read and
	// (0,2)=2 via upright-read, plus WAR edges: its write to (1,1) conflicts
	// with (0,2)... no: (0,2) reads (0,1),( -, -) — check at least RAW set.
	preds := g.Preds(5)
	has := func(want int32) bool {
		for _, v := range preds {
			if v == want {
				return true
			}
		}
		return false
	}
	if !has(4) || !has(2) {
		t.Errorf("preds(5) = %v, want to include 4 and 2", preds)
	}
}

func TestGaussianGraphMatchesFigure5(t *testing.T) {
	g := Build(workload.Gaussian(workload.GaussianConfig{N: 4}))
	// n=4: tasks T11,T21,T31,T41,T22,T32,T42,T33,T43 = 9 = (16+4-2)/2.
	if g.NumTasks() != 9 {
		t.Fatalf("tasks = %d, want 9", g.NumTasks())
	}
	// T11 (id 0) has no preds.
	if len(g.Preds(0)) != 0 {
		t.Errorf("T11 preds = %v", g.Preds(0))
	}
	// T21,T31,T41 (ids 1..3) each depend on T11 only.
	for id := 1; id <= 3; id++ {
		pr := g.Preds(id)
		if len(pr) != 1 || pr[0] != 0 {
			t.Errorf("T(%d,1) preds = %v, want [0]", id+1, pr)
		}
	}
	// Chained model: T22 (id 4) depends on T21 only.
	if pr := g.Preds(4); len(pr) != 1 || pr[0] != 1 {
		t.Errorf("chained T22 preds = %v, want [1]", pr)
	}
}

func TestGaussianFullPivotBarrier(t *testing.T) {
	g := Build(workload.Gaussian(workload.GaussianConfig{N: 4, PivotObservesAll: true}))
	// T22 (id 4) depends on every T(j,1): the partial-pivoting barrier.
	// (T11 is only a transitive predecessor, via T21..T41.)
	pr := g.Preds(4)
	if len(pr) != 3 {
		t.Fatalf("T22 preds = %v, want exactly [1 2 3]", pr)
	}
	for i, want := range []int32{1, 2, 3} {
		if pr[i] != want {
			t.Errorf("T22 preds = %v, want [1 2 3]", pr)
		}
	}
	// The barrier serialises phases: max width is n-1 (the update fan-out).
	if a := g.Analyze(); a.MaxWidth != 3 {
		t.Errorf("full-pivot max width = %d, want 3", a.MaxWidth)
	}
}

func TestAnalyzeChain(t *testing.T) {
	g := Build(mkTrace(
		trace.TaskSpec{Params: []trace.Param{p(1, trace.InOut)}, Exec: 10 * sim.Nanosecond},
		trace.TaskSpec{Params: []trace.Param{p(1, trace.InOut)}, Exec: 10 * sim.Nanosecond},
		trace.TaskSpec{Params: []trace.Param{p(1, trace.InOut)}, Exec: 10 * sim.Nanosecond},
	))
	a := g.Analyze()
	if a.CriticalPath != 30*sim.Nanosecond {
		t.Errorf("critical path = %v, want 30ns", a.CriticalPath)
	}
	if a.TotalWork != 30*sim.Nanosecond {
		t.Errorf("total work = %v", a.TotalWork)
	}
	if a.AvgParallelism != 1 {
		t.Errorf("avg parallelism = %v, want 1", a.AvgParallelism)
	}
	if a.MaxWidth != 1 {
		t.Errorf("max width = %d, want 1", a.MaxWidth)
	}
}

func TestAnalyzeIndependent(t *testing.T) {
	g := Build(mkTrace(
		trace.TaskSpec{Params: []trace.Param{p(1, trace.InOut)}, Exec: 10 * sim.Nanosecond},
		trace.TaskSpec{Params: []trace.Param{p(2, trace.InOut)}, Exec: 10 * sim.Nanosecond},
		trace.TaskSpec{Params: []trace.Param{p(3, trace.InOut)}, Exec: 10 * sim.Nanosecond},
	))
	a := g.Analyze()
	if a.CriticalPath != 10*sim.Nanosecond || a.MaxWidth != 3 || a.AvgParallelism != 3 {
		t.Errorf("analysis = %+v", a)
	}
}

func TestWavefrontRampProfile(t *testing.T) {
	g := Build(workload.Grid(workload.GridConfig{
		Pattern: workload.PatternWavefront, Rows: 20, Cols: 20, Seed: 1,
		Times: trace.FixedTimes{Exec: 10 * sim.Microsecond, MemRead: 1, MemWrite: 1},
	}))
	prof := g.WidthProfile(10)
	// The ramp: middle buckets must be substantially wider than the first
	// and last buckets.
	mid := prof[4]
	if mid <= prof[0]*2 || mid <= prof[9]*2 {
		t.Errorf("no ramping effect: profile = %v", prof)
	}
}

func TestVerticalProfileIsFlat(t *testing.T) {
	g := Build(workload.Grid(workload.GridConfig{
		Pattern: workload.PatternVertical, Rows: 20, Cols: 10, Seed: 1,
		Times: trace.FixedTimes{Exec: 10 * sim.Microsecond},
	}))
	a := g.Analyze()
	if a.MaxWidth != 10 {
		t.Errorf("vertical max width = %d, want 10 (one per column)", a.MaxWidth)
	}
}

func TestValidateSchedule(t *testing.T) {
	g := Build(mkTrace(
		trace.TaskSpec{Params: []trace.Param{p(1, trace.Out)}},
		trace.TaskSpec{Params: []trace.Param{p(1, trace.In)}},
	))
	good := []Interval{{0, 10}, {10, 20}}
	if err := g.ValidateSchedule(good); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	bad := []Interval{{0, 10}, {5, 20}}
	if g.ValidateSchedule(bad) == nil {
		t.Error("overlapping dependent schedule accepted")
	}
	missing := []Interval{{0, 10}, {}}
	if g.ValidateSchedule(missing) == nil {
		t.Error("schedule with unexecuted task accepted")
	}
	short := []Interval{{0, 10}}
	if g.ValidateSchedule(short) == nil {
		t.Error("short schedule accepted")
	}
	inverted := []Interval{{10, 5}, {20, 30}}
	if g.ValidateSchedule(inverted) == nil {
		t.Error("inverted interval accepted")
	}
}

// Property: on random workloads, the greedy infinite-core schedule that
// Analyze computes internally is itself a valid schedule, edges always point
// forward, and pred/succ lists are consistent.
func TestGraphConsistencyProperty(t *testing.T) {
	prop := func(seed uint64, nRaw, aRaw uint8) bool {
		rng := sim.NewRand(seed)
		n := int(nRaw%30) + 1
		addrs := int(aRaw%8) + 1
		tasks := make([]trace.TaskSpec, n)
		for i := range tasks {
			tasks[i].ID = uint64(i)
			tasks[i].Exec = sim.Time(rng.Intn(100)+1) * sim.Nanosecond
			used := map[uint64]bool{}
			for k := 0; k <= rng.Intn(3); k++ {
				a := uint64(rng.Intn(addrs) + 1)
				if used[a] {
					continue
				}
				used[a] = true
				tasks[i].Params = append(tasks[i].Params,
					p(a, trace.AccessMode(rng.Intn(3))))
			}
			if len(tasks[i].Params) == 0 {
				tasks[i].Params = []trace.Param{p(1, trace.In)}
			}
		}
		g := Build(workload.FromTrace(&trace.Trace{Name: "prop", Tasks: tasks}))
		// Edges point forward; succs mirror preds.
		for t := 0; t < g.NumTasks(); t++ {
			for _, pr := range g.Preds(t) {
				if int(pr) >= t {
					return false
				}
				found := false
				for _, s := range g.Succs(int(pr)) {
					if int(s) == t {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		// Greedy infinite-core schedule is valid.
		finish := make([]sim.Time, n)
		ivs := make([]Interval, n)
		for i := 0; i < n; i++ {
			var ready sim.Time
			for _, pr := range g.Preds(i) {
				if finish[pr] > ready {
					ready = finish[pr]
				}
			}
			finish[i] = ready + g.Duration[i]
			ivs[i] = Interval{ready, finish[i]}
		}
		return g.ValidateSchedule(ivs) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
