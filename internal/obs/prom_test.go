package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	families := []Metric{
		{
			Name: "nexuspp_tasks_total",
			Help: "Tasks by outcome.",
			Type: "counter",
			Samples: []Sample{
				{Labels: []Label{{Name: "outcome", Value: "executed"}}, Value: 42},
				{Labels: []Label{{Name: "outcome", Value: "failed"}}, Value: 1},
			},
		},
		{
			Name:    "nexuspp_window_occupancy",
			Help:    "In-flight tasks.",
			Type:    "gauge",
			Samples: []Sample{{Value: 7}},
		},
		{Name: "nexuspp_empty", Type: "counter"}, // no samples: omitted entirely
	}
	var b strings.Builder
	if err := WritePrometheus(&b, families); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := b.String()
	want := `# HELP nexuspp_tasks_total Tasks by outcome.
# TYPE nexuspp_tasks_total counter
nexuspp_tasks_total{outcome="executed"} 42
nexuspp_tasks_total{outcome="failed"} 1
# HELP nexuspp_window_occupancy In-flight tasks.
# TYPE nexuspp_window_occupancy gauge
nexuspp_window_occupancy 7
`
	if got != want {
		t.Fatalf("exposition mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if n, err := ValidatePrometheus(got); err != nil || n != 3 {
		t.Fatalf("ValidatePrometheus(own output) = %d, %v; want 3, nil", n, err)
	}
}

func TestWritePrometheusEscaping(t *testing.T) {
	families := []Metric{{
		Name: "nexuspp_sessions",
		Help: "Line one\nline two with \\ backslash.",
		Type: "gauge",
		Samples: []Sample{
			{Labels: []Label{{Name: "session", Value: `quo"te\back` + "\nnewline"}}, Value: 1},
		},
	}}
	var b strings.Builder
	if err := WritePrometheus(&b, families); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	got := b.String()
	if !strings.Contains(got, `session="quo\"te\\back\nnewline"`) {
		t.Fatalf("label value not escaped: %s", got)
	}
	if !strings.Contains(got, `Line one\nline two`) {
		t.Fatalf("help text not escaped: %s", got)
	}
	if _, err := ValidatePrometheus(got); err != nil {
		t.Fatalf("escaped output does not validate: %v", err)
	}
}

func TestValidatePrometheusAccepts(t *testing.T) {
	cases := []string{
		"metric_a 1\n",
		"metric_a{l=\"v\"} 1.5\nmetric_a{l=\"w\"} +Inf\n",
		"# HELP m something\n# TYPE m counter\nm 0\n",
		"m 3 1700000000000\n",
		"m{a=\"x\",b=\"y\"} NaN\n",
	}
	for _, body := range cases {
		if _, err := ValidatePrometheus(body); err != nil {
			t.Errorf("ValidatePrometheus(%q) = %v, want nil", body, err)
		}
	}
}

func TestValidatePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"comments only":     "# HELP m x\n# TYPE m counter\n",
		"bad name":          "9metric 1\n",
		"no value":          "metric_a\n",
		"bad value":         "metric_a one\n",
		"unclosed labels":   "metric_a{l=\"v\" 1\n",
		"unquoted label":    "metric_a{l=v} 1\n",
		"bad type":          "# TYPE m flavour\nm 1\n",
		"bad timestamp":     "m 1 soon\n",
		"reserved label":    "m{__name__=\"x\"} 1\n",
		"html not a metric": "<html><body>404</body></html>\n",
	}
	for name, body := range cases {
		if _, err := ValidatePrometheus(body); err == nil {
			t.Errorf("%s: ValidatePrometheus(%q) accepted, want error", name, body)
		}
	}
}
