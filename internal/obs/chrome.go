package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-viewer export. The output is the Trace Event Format's JSON
// object form ({"traceEvents": [...]}), loadable in chrome://tracing and
// Perfetto: each executed task becomes one complete ("X") slice on its
// worker's row spanning run→finish, skipped tasks become zero-work slices
// in the "poison" category, and submit/ready transitions become instant
// ("i") events. Timestamps are microseconds, as the format requires.

// chromeEvent is one Trace Event Format record. Field order (and
// encoding/json's sorted map keys for Args) keeps the output stable for
// golden-file tests.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level document.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

const chromePID = 1

// chromeTID maps a worker index onto a trace row: row 0 is the admission
// (submit-side) lane, worker w is row w+1.
func chromeTID(worker int) int {
	if worker < 0 {
		return 0
	}
	return worker + 1
}

// usOf converts recorder nanoseconds to trace microseconds.
func usOf(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace converts a drained event log into Chrome trace-viewer
// JSON. Events are re-sorted into the canonical order first, so the output
// depends only on the event set, not on the caller's ordering. Run events
// with no matching finish/poison (a drain mid-flight, or a ring that
// dropped the closing event) become zero-duration slices in the
// "unterminated" category rather than being lost.
func WriteChromeTrace(w io.Writer, events []Event) error {
	sorted := append([]Event(nil), events...)
	SortEvents(sorted)

	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: metadataEvents(sorted)}
	open := make(map[uint64]Event) // task -> its unmatched run event
	var openOrder []uint64
	for _, ev := range sorted {
		switch ev.Kind {
		case KindSubmit, KindReady, KindRetry, KindFault:
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: ev.Kind.String(),
				Cat:  "lifecycle",
				Ph:   "i",
				TS:   usOf(ev.TS),
				PID:  chromePID,
				TID:  chromeTID(ev.Worker),
				S:    "t",
				Args: taskArgs(ev),
			})
		case KindRun:
			if _, dup := open[ev.Task]; !dup {
				openOrder = append(openOrder, ev.Task)
			}
			open[ev.Task] = ev
		case KindFinish, KindPoison:
			run, ok := open[ev.Task]
			if !ok {
				// A finish whose run was dropped: anchor a zero-duration
				// slice at the finish time so the task still appears.
				run = ev
			}
			delete(open, ev.Task)
			cat := "task"
			if ev.Kind == KindPoison {
				cat = "poison"
			}
			dur := usOf(ev.TS - run.TS)
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("task%d", ev.Task),
				Cat:  cat,
				Ph:   "X",
				TS:   usOf(run.TS),
				Dur:  &dur,
				PID:  chromePID,
				TID:  chromeTID(ev.Worker),
				Args: taskArgs(ev),
			})
		}
	}
	for _, task := range openOrder {
		run, ok := open[task]
		if !ok {
			continue
		}
		dur := 0.0
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: fmt.Sprintf("task%d", run.Task),
			Cat:  "unterminated",
			Ph:   "X",
			TS:   usOf(run.TS),
			Dur:  &dur,
			PID:  chromePID,
			TID:  chromeTID(run.Worker),
			Args: taskArgs(run),
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// taskArgs renders the event's task identity for the slice's Args pane.
func taskArgs(ev Event) map[string]any {
	return map[string]any{"task": ev.Task, "keys": ev.Keys, "bank": ev.Bank}
}

// metadataEvents names the process and every thread row that appears in
// the event set, so the viewer shows "admission" and "worker N" instead of
// bare thread IDs.
func metadataEvents(sorted []Event) []chromeEvent {
	maxWorker := -1
	hasExternal := false
	for _, ev := range sorted {
		if ev.Worker > maxWorker {
			maxWorker = ev.Worker
		}
		if ev.Worker < 0 {
			hasExternal = true
		}
	}
	meta := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "nexuspp runtime"},
	}}
	if hasExternal {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: 0,
			Args: map[string]any{"name": "admission"},
		})
	}
	for w := 0; w <= maxWorker; w++ {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: chromeTID(w),
			Args: map[string]any{"name": fmt.Sprintf("worker %d", w)},
		})
	}
	return meta
}
