// Package obs is the runtime observability layer: a low-overhead event
// stream recording the task lifecycle the paper's hardware makes visible
// (submission into the Task Pool, dependence resolution, Get Inputs/Run
// Task on a worker, Handle Finished), an exporter to Chrome trace-viewer
// JSON for post-mortem timeline inspection, and a Prometheus-text-format
// encoder for the service's /metrics endpoint.
//
// The event layer is designed so the runtime pays a single nil check when
// it is disabled and one uncontended mutex acquisition on a per-worker ring
// buffer when it is enabled. Events are drained in bulk (Recorder.Drain)
// and post-processed offline — Temanejo (arXiv 1112.4604) attaches a
// debugger to a live StarSs runtime for the same reason: task-graph
// runtimes are opaque when they misbehave unless the runtime itself emits
// its lifecycle transitions.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind is one task lifecycle transition.
type Kind uint8

const (
	// KindSubmit records a task's admission: its ID is assigned and its
	// dependencies enter the dependence banks (the paper's Check Deps).
	KindSubmit Kind = iota
	// KindReady records a task's dependence count reaching zero: it leaves
	// the waiting state and queues for a worker (the Task Pool handoff).
	KindReady
	// KindRun records a worker starting the task (Get Inputs / Run Task).
	KindRun
	// KindFinish records the task's body completing — successfully or with
	// its own failure — and entering the Handle Finished path.
	KindFinish
	// KindPoison records a task skipped because a transitive dependency
	// failed: it occupied a worker only long enough to be classified.
	KindPoison
	// KindRetry records a failed attempt being re-armed under the task's
	// retry policy: the task will run again after backoff.
	KindRetry
	// KindFault records an injected fault firing inside the task's body
	// (internal/faults) — the ground truth a chaos scenario's invariant
	// checks reconcile against.
	KindFault
)

// String returns the lowercase event name used in exports.
func (k Kind) String() string {
	switch k {
	case KindSubmit:
		return "submit"
	case KindReady:
		return "ready"
	case KindRun:
		return "run"
	case KindFinish:
		return "finish"
	case KindPoison:
		return "poison"
	case KindRetry:
		return "retry"
	case KindFault:
		return "fault"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded lifecycle transition.
type Event struct {
	// Kind is the transition.
	Kind Kind
	// Task is the runtime's submission index — the task-ID analogue.
	Task uint64
	// Keys is the task's declared dependency-key count.
	Keys int
	// Bank is the first dependence-table bank the task's keys hash to, in
	// the sorted acquisition order; -1 for tasks with no dependencies.
	Bank int
	// Worker is the executing worker's index for run/finish/poison events;
	// -1 for transitions recorded outside a worker (submit, and ready
	// events resolved on the submit path).
	Worker int
	// TS is the event time in nanoseconds on the recorder's monotonic
	// clock (zero at recorder creation).
	TS int64
}

// ring is one fixed-capacity event buffer. The padding keeps adjacent
// rings' hot state on separate cache lines.
type ring struct {
	mu      sync.Mutex
	buf     []Event
	next    uint64 // events ever pushed; next%cap is the write slot
	dropped uint64 // events overwritten before a drain observed them
	_       [16]byte
}

// push appends one event, overwriting the oldest when the ring is full.
func (r *ring) push(ev Event) {
	r.mu.Lock()
	cap64 := uint64(len(r.buf))
	if r.next >= cap64 {
		r.dropped++
	}
	r.buf[r.next%cap64] = ev
	r.next++
	r.mu.Unlock()
}

// droppedCount returns the ring's cumulative overwrite count.
func (r *ring) droppedCount() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// drain moves the ring's retained events onto dst (oldest first) and
// resets the ring; the cumulative drop count is preserved.
func (r *ring) drain(dst []Event) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	cap64 := uint64(len(r.buf))
	n := r.next
	if n > cap64 {
		n = cap64
	}
	for i := r.next - n; i < r.next; i++ {
		dst = append(dst, r.buf[i%cap64])
	}
	r.next = 0
	return dst
}

// Recorder collects runtime events into per-lane ring buffers: one lane
// per worker so run/finish streams never contend, plus one extra lane for
// transitions recorded on the submit path. Emitting is safe from any
// goroutine on any lane; per-worker ordering is only guaranteed when each
// worker emits on its own lane.
type Recorder struct {
	start time.Time
	rings []ring
}

// NewRecorder returns a recorder with workers+1 lanes (lane `workers` is
// the submit-side lane) of capacity events each. Capacity below 16 is
// raised to 16.
func NewRecorder(workers, capacity int) *Recorder {
	if workers < 1 {
		workers = 1
	}
	if capacity < 16 {
		capacity = 16
	}
	r := &Recorder{start: time.Now(), rings: make([]ring, workers+1)}
	for i := range r.rings {
		r.rings[i].buf = make([]Event, capacity)
	}
	return r
}

// Lanes returns the number of lanes (workers + the submit-side lane).
func (r *Recorder) Lanes() int { return len(r.rings) }

// ExternalLane is the lane index for events recorded outside a worker.
func (r *Recorder) ExternalLane() int { return len(r.rings) - 1 }

// Now returns the recorder's monotonic clock reading in nanoseconds.
func (r *Recorder) Now() int64 { return int64(time.Since(r.start)) }

// Emit timestamps and records one transition on the given lane. A lane
// outside [0, Lanes) is clamped to the external lane.
func (r *Recorder) Emit(lane int, kind Kind, task uint64, keys, bank, worker int) {
	if lane < 0 || lane >= len(r.rings) {
		lane = len(r.rings) - 1
	}
	r.rings[lane].push(Event{
		Kind:   kind,
		Task:   task,
		Keys:   keys,
		Bank:   bank,
		Worker: worker,
		TS:     r.Now(),
	})
}

// Drain removes every retained event from all lanes and returns them
// merged, sorted by timestamp (ties broken by task then kind, so the
// result is deterministic for a fixed event set). Events overwritten
// before the drain are counted by Dropped.
func (r *Recorder) Drain() []Event {
	var out []Event
	for i := range r.rings {
		out = r.rings[i].drain(out)
	}
	SortEvents(out)
	return out
}

// Dropped returns the cumulative number of events overwritten before any
// drain observed them — nonzero means the rings were sized too small for
// the drain cadence.
func (r *Recorder) Dropped() uint64 {
	var n uint64
	for i := range r.rings {
		n += r.rings[i].droppedCount()
	}
	return n
}

// SortEvents orders events by (TS, Task, Kind, Worker) — the canonical
// deterministic order shared by Drain and the exporters.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Worker < b.Worker
	})
}
