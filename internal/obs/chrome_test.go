package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current exporter output")

// smallWavefrontEvents is a hand-built, fully deterministic event log for a
// 2x2 anti-diagonal wavefront on two workers: task 0 unblocks tasks 1 and 2,
// which unblock task 3; task 3's row poisons nothing but task 2 is skipped
// to exercise the poison slice path. Timestamps are synthetic nanoseconds.
func smallWavefrontEvents() []Event {
	return []Event{
		{Kind: KindSubmit, Task: 0, Keys: 1, Bank: 0, Worker: -1, TS: 1000},
		{Kind: KindReady, Task: 0, Keys: 1, Bank: 0, Worker: -1, TS: 1500},
		{Kind: KindSubmit, Task: 1, Keys: 2, Bank: 0, Worker: -1, TS: 2000},
		{Kind: KindSubmit, Task: 2, Keys: 2, Bank: 1, Worker: -1, TS: 2500},
		{Kind: KindSubmit, Task: 3, Keys: 2, Bank: 0, Worker: -1, TS: 3000},
		{Kind: KindRun, Task: 0, Keys: 1, Bank: 0, Worker: 0, TS: 4000},
		{Kind: KindFinish, Task: 0, Keys: 1, Bank: 0, Worker: 0, TS: 9000},
		{Kind: KindReady, Task: 1, Keys: 2, Bank: 0, Worker: 0, TS: 9200},
		{Kind: KindReady, Task: 2, Keys: 2, Bank: 1, Worker: 0, TS: 9400},
		{Kind: KindRun, Task: 1, Keys: 2, Bank: 0, Worker: 0, TS: 10000},
		{Kind: KindRun, Task: 2, Keys: 2, Bank: 1, Worker: 1, TS: 10500},
		{Kind: KindPoison, Task: 2, Keys: 2, Bank: 1, Worker: 1, TS: 10600},
		{Kind: KindFinish, Task: 1, Keys: 2, Bank: 0, Worker: 0, TS: 15000},
		{Kind: KindReady, Task: 3, Keys: 2, Bank: 0, Worker: 0, TS: 15200},
		{Kind: KindRun, Task: 3, Keys: 2, Bank: 0, Worker: 1, TS: 16000},
		{Kind: KindFinish, Task: 3, Keys: 2, Bank: 0, Worker: 1, TS: 21000},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, smallWavefrontEvents()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	goldenPath := filepath.Join("testdata", "wavefront_small.trace.json")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("rewrite golden: %v", err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exporter output drifted from %s\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, buf.String(), want)
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	events := smallWavefrontEvents()
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, events); err != nil {
		t.Fatalf("first export: %v", err)
	}
	// Reverse the input order: the exporter re-sorts, so output must match.
	reversed := make([]Event, len(events))
	for i, ev := range events {
		reversed[len(events)-1-i] = ev
	}
	if err := WriteChromeTrace(&b, reversed); err != nil {
		t.Fatalf("second export: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("export depends on input event order")
	}
}

func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, smallWavefrontEvents()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string   `json:"name"`
			Cat  string   `json:"cat"`
			Ph   string   `json:"ph"`
			TS   float64  `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  int      `json:"pid"`
			TID  int      `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var slices, instants, meta, poisons int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("slice %q has invalid duration", ev.Name)
			}
			if ev.Cat == "poison" {
				poisons++
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	// 4 tasks -> 4 slices (one poisoned); 4 submits + 4 readys -> 8 instants;
	// process + admission + 2 workers -> 4 metadata records.
	if slices != 4 || instants != 8 || meta != 4 || poisons != 1 {
		t.Fatalf("got slices=%d instants=%d meta=%d poisons=%d, want 4/8/4/1",
			slices, instants, meta, poisons)
	}
}

func TestChromeTraceUnterminatedRun(t *testing.T) {
	events := []Event{
		{Kind: KindRun, Task: 7, Keys: 1, Bank: 0, Worker: 0, TS: 100},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Cat == "unterminated" {
			found = true
		}
	}
	if !found {
		t.Fatalf("run event with no finish did not produce an unterminated slice")
	}
}
