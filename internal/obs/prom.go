package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition format (version 0.0.4) encoder and validator.
// The service's /metrics endpoint is the only producer and the CI smoke is
// the main consumer, so this implements the subset both need — counters and
// gauges with optional labels — rather than wrapping a client library.

// PrometheusContentType is the Content-Type for the text exposition format.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one measurement line of a metric family.
type Sample struct {
	Labels []Label
	Value  float64
}

// Metric is one metric family: a HELP/TYPE header and its samples.
type Metric struct {
	Name    string
	Help    string
	Type    string // "counter" or "gauge"
	Samples []Sample
}

// WritePrometheus encodes the families in the text exposition format.
// Families are emitted in the order given; samples within a family are
// sorted by their rendered label set so the output is deterministic.
func WritePrometheus(w io.Writer, families []Metric) error {
	bw := bufio.NewWriter(w)
	for _, m := range families {
		if len(m.Samples) == 0 {
			continue
		}
		if m.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.Name, escapeHelp(m.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.Name, m.Type)
		lines := make([]string, 0, len(m.Samples))
		for _, s := range m.Samples {
			lines = append(lines, m.Name+renderLabels(s.Labels)+" "+formatValue(s.Value))
		}
		sort.Strings(lines)
		for _, line := range lines {
			fmt.Fprintln(bw, line)
		}
	}
	return bw.Flush()
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidatePrometheus checks that body parses as text exposition format:
// every non-comment line is `name[{labels}] value [timestamp]` with a valid
// metric name and float value, every TYPE comment names a known type, and
// at least one sample is present. It returns the number of sample lines.
func ValidatePrometheus(body string) (samples int, err error) {
	for i, line := range strings.Split(body, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line); err != nil {
				return samples, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := validateSample(line); err != nil {
			return samples, fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples in exposition")
	}
	return samples, nil
}

func validateComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) != 4 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	}
	return nil
}

func validateSample(line string) error {
	name := line
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		close := strings.IndexByte(line[i:], '}')
		if close < 0 {
			return fmt.Errorf("unterminated label set in %q", line)
		}
		if err := validateLabels(line[i+1 : i+close]); err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
		rest = strings.TrimSpace(line[i+close+1:])
	} else if sp := strings.IndexAny(line, " \t"); sp >= 0 {
		name = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	} else {
		return fmt.Errorf("sample line %q has no value", line)
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("expected value [timestamp] after name in %q", line)
	}
	if _, err := parsePromValue(fields[0]); err != nil {
		return fmt.Errorf("invalid sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return nil
}

func validateLabels(s string) error {
	if s == "" {
		return nil
	}
	rest := s
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("label pair missing '='")
		}
		name := rest[:eq]
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("label value for %q not quoted", name)
		}
		rest = rest[1:]
		for {
			qi := strings.IndexByte(rest, '"')
			if qi < 0 {
				return fmt.Errorf("unterminated label value for %q", name)
			}
			// Count the backslashes before the quote: an odd run means
			// the quote is escaped and the value continues.
			bs := 0
			for j := qi - 1; j >= 0 && rest[j] == '\\'; j-- {
				bs++
			}
			if bs%2 == 0 {
				rest = rest[qi+1:]
				break
			}
			rest = rest[qi+1:]
		}
		rest = strings.TrimPrefix(rest, ",")
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
