package obs

import (
	"sync"
	"testing"
)

func TestRingDrainOrder(t *testing.T) {
	r := NewRecorder(1, 16)
	for i := 0; i < 10; i++ {
		r.Emit(0, KindSubmit, uint64(i), 1, 0, -1)
	}
	events := r.Drain()
	if len(events) != 10 {
		t.Fatalf("drained %d events, want 10", len(events))
	}
	for i, ev := range events {
		if ev.Task != uint64(i) {
			t.Fatalf("event %d has task %d, want %d (oldest first)", i, ev.Task, i)
		}
	}
	if got := r.Drain(); len(got) != 0 {
		t.Fatalf("second drain returned %d events, want 0", len(got))
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	r := NewRecorder(1, 16)
	for i := 0; i < 40; i++ {
		r.Emit(0, KindSubmit, uint64(i), 1, 0, -1)
	}
	events := r.Drain()
	if len(events) != 16 {
		t.Fatalf("drained %d events, want ring capacity 16", len(events))
	}
	// The retained window is the newest 16 emissions, oldest first.
	for i, ev := range events {
		if want := uint64(24 + i); ev.Task != want {
			t.Fatalf("event %d has task %d, want %d", i, ev.Task, want)
		}
	}
	if got := r.Dropped(); got != 24 {
		t.Fatalf("Dropped() = %d, want 24", got)
	}
	// The drop count is cumulative across drains.
	r.Emit(0, KindSubmit, 99, 1, 0, -1)
	r.Drain()
	if got := r.Dropped(); got != 24 {
		t.Fatalf("Dropped() after clean drain = %d, want still 24", got)
	}
}

func TestRecorderLanes(t *testing.T) {
	r := NewRecorder(4, 32)
	if r.Lanes() != 5 {
		t.Fatalf("Lanes() = %d, want 5 (workers + external)", r.Lanes())
	}
	if r.ExternalLane() != 4 {
		t.Fatalf("ExternalLane() = %d, want 4", r.ExternalLane())
	}
	// Out-of-range lanes clamp to the external lane rather than panicking.
	r.Emit(-1, KindSubmit, 1, 0, -1, -1)
	r.Emit(99, KindReady, 2, 0, -1, -1)
	events := r.Drain()
	if len(events) != 2 {
		t.Fatalf("drained %d events, want 2", len(events))
	}
}

func TestDrainMergesSorted(t *testing.T) {
	r := NewRecorder(3, 16)
	// Interleave emissions across lanes; timestamps are monotonic per the
	// shared clock, so the merged drain must be globally ordered.
	for i := 0; i < 30; i++ {
		r.Emit(i%3, KindRun, uint64(i), 1, 0, i%3)
	}
	events := r.Drain()
	if len(events) != 30 {
		t.Fatalf("drained %d events, want 30", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("event %d (ts=%d) precedes event %d (ts=%d)", i, events[i].TS, i-1, events[i-1].TS)
		}
	}
}

func TestConcurrentEmit(t *testing.T) {
	const (
		workers = 4
		perLane = 1000
	)
	r := NewRecorder(workers, perLane)
	var wg sync.WaitGroup
	for lane := 0; lane < workers; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < perLane; i++ {
				r.Emit(lane, KindFinish, uint64(lane*perLane+i), 1, 0, lane)
			}
		}(lane)
	}
	wg.Wait()
	events := r.Drain()
	if len(events) != workers*perLane {
		t.Fatalf("drained %d events, want %d", len(events), workers*perLane)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped() = %d, want 0 with exact-capacity lanes", r.Dropped())
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindSubmit: "submit",
		KindReady:  "ready",
		KindRun:    "run",
		KindFinish: "finish",
		KindPoison: "poison",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("unknown kind renders %q", Kind(200).String())
	}
}
