package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestDecisionDeterminism is the core contract: the same (seed, site, key)
// triple always decides the same way, across injector instances, and a
// different seed produces a different schedule.
func TestDecisionDeterminism(t *testing.T) {
	plan := &Plan{Seed: 42, Rules: []Rule{{Site: SiteTaskError, Prob: 0.3}}}
	a, b := New(plan), New(plan)
	diff := New(&Plan{Seed: 43, Rules: plan.Rules})

	same, fired := true, 0
	for key := uint64(0); key < 2000; key++ {
		da := a.Should(SiteTaskError, key)
		if da != b.Should(SiteTaskError, key) {
			t.Fatalf("key %d: two injectors with the same seed disagree", key)
		}
		if da {
			fired++
		}
		if da != diff.Should(SiteTaskError, key) {
			same = false
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical 2000-key schedules")
	}
	// Prob 0.3 over 2000 keys: allow a generous band; the point is that the
	// hash behaves like a probability, not that it is a perfect one.
	if fired < 400 || fired > 800 {
		t.Errorf("prob 0.3 fired %d/2000 times, outside [400, 800]", fired)
	}
	if got := a.Fired(SiteTaskError); got != uint64(fired) {
		t.Errorf("Fired = %d, want %d", got, fired)
	}
}

// TestPeekIsPure verifies Peek agrees with Should decision-for-decision but
// never counts — the property chaos oracles depend on.
func TestPeekIsPure(t *testing.T) {
	in := New(&Plan{Seed: 7, Rules: []Rule{{Site: SiteTaskPanic, Prob: 0.5}}})
	var shouldFired uint64
	for key := uint64(0); key < 500; key++ {
		want := in.Peek(SiteTaskPanic, key)
		if in.Peek(SiteTaskPanic, key) != want {
			t.Fatalf("key %d: Peek is not stable", key)
		}
		if in.Fired(SiteTaskPanic) != shouldFired {
			t.Fatalf("key %d: Peek moved the fired counter", key)
		}
		if in.Should(SiteTaskPanic, key) != want {
			t.Fatalf("key %d: Should disagrees with Peek", key)
		}
		if want {
			shouldFired++
		}
	}
}

// TestEveryDiscipline checks the modulo rule: every=N fires exactly on keys
// divisible by N, and ShouldSeq walks the keys 0, 1, 2, ...
func TestEveryDiscipline(t *testing.T) {
	in := New(&Plan{Seed: 1, Rules: []Rule{{Site: SiteRespDrop, Every: 4}}})
	for key := uint64(0); key < 40; key++ {
		if got, want := in.Peek(SiteRespDrop, key), key%4 == 0; got != want {
			t.Fatalf("every=4 at key %d: got %v, want %v", key, got, want)
		}
	}
	var hits int
	for i := 0; i < 12; i++ {
		if in.ShouldSeq(SiteRespDrop) {
			hits++
		}
	}
	if hits != 3 { // seq keys 0..11, fires at 0, 4, 8
		t.Errorf("ShouldSeq over 12 calls fired %d times, want 3", hits)
	}
}

// TestTaskKeyRerolls: the attempt number must change the key, so a retried
// task re-rolls its fate rather than failing forever.
func TestTaskKeyRerolls(t *testing.T) {
	in := New(&Plan{Seed: 9, Rules: []Rule{{Site: SiteTaskError, Prob: 0.5}}})
	varied := false
	for idx := uint64(0); idx < 64; idx++ {
		first := in.Peek(SiteTaskError, TaskKey(idx, 0))
		for attempt := 1; attempt < 4; attempt++ {
			if in.Peek(SiteTaskError, TaskKey(idx, attempt)) != first {
				varied = true
			}
		}
	}
	if !varied {
		t.Error("64 tasks × 4 attempts at prob 0.5 never re-rolled a decision")
	}
}

// TestNilInjector: the disabled state must be inert through every method.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Should(SiteTaskError, 0) || in.Peek(SiteTaskError, 0) || in.ShouldSeq(SiteReqDrop) {
		t.Error("nil injector fired")
	}
	if in.Delay(SiteKickoffDelay, 0) != 0 || in.DelaySeq(SiteReqDelay) != 0 {
		t.Error("nil injector delayed")
	}
	if in.Fired(SiteTaskError) != 0 || in.Counts() != nil {
		t.Error("nil injector counted")
	}
	if in.String() != "faults: disabled" {
		t.Errorf("nil injector String = %q", in.String())
	}
	if New(nil) != nil || New(&Plan{Seed: 1}) != nil {
		t.Error("empty plan compiled to a non-nil injector")
	}
}

// TestDelaySite: a delay rule returns its configured latency when it fires
// and zero otherwise, and counts only the firings.
func TestDelaySite(t *testing.T) {
	in := New(&Plan{Seed: 3, Rules: []Rule{{Site: SiteKickoffDelay, Every: 2, Delay: 5 * time.Millisecond}}})
	if d := in.Delay(SiteKickoffDelay, 0); d != 5*time.Millisecond {
		t.Errorf("key 0 delay = %v, want 5ms", d)
	}
	if d := in.Delay(SiteKickoffDelay, 1); d != 0 {
		t.Errorf("key 1 delay = %v, want 0", d)
	}
	if got := in.Fired(SiteKickoffDelay); got != 1 {
		t.Errorf("fired = %d, want 1", got)
	}
}

func TestParseSpec(t *testing.T) {
	in, err := ParseSpec(11, "task_panic:0.05, resp_drop:every=4:2ms")
	if err != nil {
		t.Fatal(err)
	}
	if in == nil {
		t.Fatal("valid spec compiled to nil")
	}
	if !in.Peek(SiteRespDrop, 8) || in.Peek(SiteRespDrop, 9) {
		t.Error("resp_drop:every=4 not armed as a modulo rule")
	}
	if d := in.Delay(SiteRespDrop, 4); d != 2*time.Millisecond {
		t.Errorf("resp_drop delay = %v, want 2ms", d)
	}
	if got := in.String(); !strings.Contains(got, "seed=11") || !strings.Contains(got, "task_panic:0.05") {
		t.Errorf("String = %q, want seed and rule spelled out", got)
	}

	if in, err := ParseSpec(1, ""); err != nil || in != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", in, err)
	}
	for _, bad := range []string{
		"task_panic",          // no rule body
		"nosuchsite:0.5",      // unknown site
		"task_panic:1.5",      // probability out of range
		"task_panic:every=0",  // zero modulo
		"task_panic:0.1:-3ms", // negative delay
		"task_panic:0.1:2ms:x",
	} {
		if _, err := ParseSpec(1, bad); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
}

// TestTransportWire exercises the client-side RoundTripper against a real
// server: a duplicated request arrives twice, a dropped response is still
// fully served, and a dropped request never arrives.
func TestTransportWire(t *testing.T) {
	var served atomic.Uint64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		served.Add(1)
		_, _ = io.WriteString(w, "ok")
	}))
	defer hs.Close()

	do := func(tr *Transport) error {
		c := &http.Client{Transport: tr}
		resp, err := c.Post(hs.URL, "text/plain", strings.NewReader("body"))
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.Body.Close()
	}

	t.Run("req_dup", func(t *testing.T) {
		served.Store(0)
		in := New(&Plan{Seed: 1, Rules: []Rule{{Site: SiteReqDup, Every: 1}}})
		if err := do(&Transport{In: in}); err != nil {
			t.Fatal(err)
		}
		if served.Load() != 2 {
			t.Errorf("server saw %d requests, want 2 (original + duplicate)", served.Load())
		}
	})

	t.Run("resp_drop", func(t *testing.T) {
		served.Store(0)
		in := New(&Plan{Seed: 1, Rules: []Rule{{Site: SiteRespDrop, Every: 1}}})
		err := do(&Transport{In: in})
		var de *DropError
		if !errors.As(err, &de) || de.Phase != "response" {
			t.Fatalf("err = %v, want response DropError", err)
		}
		if !errors.Is(err, ErrInjected) {
			t.Error("DropError does not unwrap to ErrInjected")
		}
		if served.Load() != 1 {
			t.Errorf("server saw %d requests, want 1 (served, response lost)", served.Load())
		}
	})

	t.Run("req_drop", func(t *testing.T) {
		served.Store(0)
		in := New(&Plan{Seed: 1, Rules: []Rule{{Site: SiteReqDrop, Every: 1}}})
		err := do(&Transport{In: in})
		var de *DropError
		if !errors.As(err, &de) || de.Phase != "request" {
			t.Fatalf("err = %v, want request DropError", err)
		}
		if served.Load() != 0 {
			t.Errorf("server saw %d requests, want 0", served.Load())
		}
	})

	t.Run("disabled", func(t *testing.T) {
		served.Store(0)
		if err := do(&Transport{In: nil}); err != nil {
			t.Fatal(err)
		}
		if served.Load() != 1 {
			t.Errorf("server saw %d requests, want 1", served.Load())
		}
	})
}

// TestMiddleware: server_drop aborts the connection before the handler runs,
// and a nil injector wraps nothing at all.
func TestMiddleware(t *testing.T) {
	var served atomic.Uint64
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
	})
	if got := Middleware(next, nil); got == nil {
		t.Fatal("nil-injector middleware returned nil handler")
	}

	in := New(&Plan{Seed: 1, Rules: []Rule{{Site: SiteServerDrop, Every: 2}}})
	hs := httptest.NewServer(Middleware(next, in))
	defer hs.Close()

	// Seq keys 0, 1: the first request is dropped, the second served.
	if _, err := http.Get(hs.URL); err == nil {
		t.Error("server_drop request succeeded, want transport error")
	}
	resp, err := http.Get(hs.URL)
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	_ = resp.Body.Close()
	if served.Load() != 1 {
		t.Errorf("handler ran %d times, want 1", served.Load())
	}
	if in.Fired(SiteServerDrop) != 1 {
		t.Errorf("server_drop fired %d times, want 1", in.Fired(SiteServerDrop))
	}
}
