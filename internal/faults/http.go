package faults

// HTTP wire injection: a client-side http.RoundTripper that drops,
// duplicates and delays requests or drops fully-served responses, and a
// server-side middleware that delays or aborts requests before handling.
// Together they reproduce the partial-failure modes a distributed StarSs
// deployment (the Hybrid MPI/StarSs case study, arXiv 1204.4086) layers on
// top of the node-local runtime: a lost submit, a retried submit that
// arrives twice, and the nastiest one — a submit the server fully executed
// whose response never reached the client.

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// DropError is the transport error surfaced for an injected request or
// response drop; it wraps ErrInjected and is retryable by the service
// client's idempotent submit path.
type DropError struct {
	// Phase is "request" (never sent) or "response" (served, then lost).
	Phase string
}

func (e *DropError) Error() string {
	return fmt.Sprintf("faults: injected %s drop", e.Phase)
}

// Unwrap makes errors.Is(err, ErrInjected) hold.
func (e *DropError) Unwrap() error { return ErrInjected }

// Transport wraps a base http.RoundTripper with wire fault injection. A nil
// Injector passes everything through untouched.
type Transport struct {
	// Base is the underlying transport; nil selects http.DefaultTransport.
	Base http.RoundTripper
	// In decides the faults; nil disables injection.
	In *Injector
}

// RoundTrip applies, in order: req_delay, req_drop, req_dup (the duplicate
// is sent first and its response discarded — the server sees two requests),
// the real round trip, then resp_drop (the response body is consumed and
// discarded so the server observes a completed exchange).
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	in := t.In
	if in == nil {
		return base.RoundTrip(req)
	}
	if d := in.DelaySeq(SiteReqDelay); d > 0 {
		if err := sleepCtx(req, d); err != nil {
			return nil, err
		}
	}
	if in.ShouldSeq(SiteReqDrop) {
		return nil, &DropError{Phase: "request"}
	}
	if in.ShouldSeq(SiteReqDup) {
		if dup := cloneRequest(req); dup != nil {
			if resp, err := base.RoundTrip(dup); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
		}
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if in.ShouldSeq(SiteRespDrop) {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil, &DropError{Phase: "response"}
	}
	return resp, nil
}

// cloneRequest builds a re-sendable copy of req, or nil when the body
// cannot be replayed (no GetBody). Requests built by the service client use
// bytes.Reader bodies, for which net/http provides GetBody automatically.
func cloneRequest(req *http.Request) *http.Request {
	dup := req.Clone(req.Context())
	if req.Body == nil {
		return dup
	}
	if req.GetBody == nil {
		return nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	dup.Body = body
	return dup
}

// sleepCtx blocks for d, honouring the request's context.
func sleepCtx(req *http.Request, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-req.Context().Done():
		return req.Context().Err()
	}
}

// Middleware wraps an http.Handler with server-side fault injection:
// server_delay stalls the request before handling and server_drop aborts
// the connection without running the handler (the client sees a transport
// error; the server provably never executed the request). A nil Injector
// returns next unchanged — no wrapper, no per-request cost.
func Middleware(next http.Handler, in *Injector) http.Handler {
	if in == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := in.DelaySeq(SiteServerDelay); d > 0 {
			if err := sleepCtx(r, d); err != nil {
				return
			}
		}
		if in.ShouldSeq(SiteServerDrop) {
			panic(http.ErrAbortHandler)
		}
		next.ServeHTTP(w, r)
	})
}
