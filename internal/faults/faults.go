// Package faults is the deterministic, seeded fault-injection framework
// behind `nexusbench chaos`. The paper's hardware task manager assumes a
// reliable fabric — the Dependence Table never loses an entry, kick-off
// lists always drain, task IDs are never duplicated — but the software
// service reproducing it runs on a fabric where task bodies panic, clients
// retry, and requests vanish mid-flight. This package makes those failures
// injectable at every layer (task bodies, the runtime's dispatch path, and
// the HTTP wire) so the recovery paths can be exercised deterministically.
//
// Design rules, in priority order:
//
//   - Off means free. A nil *Injector disables everything; every injection
//     point in the runtime and the service pays exactly one nil check, the
//     same discipline internal/obs uses for the event stream.
//   - Deterministic per seed. Decisions are pure functions of (seed, site,
//     key) — a hash, not a stateful PRNG — so a fault schedule is
//     reproducible regardless of goroutine interleaving as long as the
//     keys are (task indices are; per-site sequence numbers are under a
//     sequential caller).
//   - Observable. Every fired injection is counted per site, so a chaos
//     scenario can assert that the faults it planned actually happened.
package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site is one fault-injection point.
type Site uint8

const (
	// SiteTaskError makes a task body return an injected error instead of
	// running — the software analogue of a worker core signalling failure.
	SiteTaskError Site = iota
	// SiteTaskPanic makes a task body panic; the runtime recovers it into
	// ErrTaskPanicked and poisons dependents like any failure.
	SiteTaskPanic
	// SiteTaskHang makes a task body block until its context is cancelled —
	// the stuck-worker case that per-task deadlines exist to bound.
	SiteTaskHang
	// SiteKickoffDelay delays a ready task's dispatch to a worker — a slow
	// dependence bank / kick-off list.
	SiteKickoffDelay
	// SiteReqDrop drops a client request before it is sent; the server
	// never sees it.
	SiteReqDrop
	// SiteReqDup sends a client request twice; the duplicate's response is
	// discarded. Exercises server-side idempotent submission.
	SiteReqDup
	// SiteReqDelay delays a client request before it is sent.
	SiteReqDelay
	// SiteRespDrop drops a response after the server has fully processed
	// the request — the case where a retried POST would double-execute
	// without idempotency keys.
	SiteRespDrop
	// SiteServerDelay delays a request inside the server before handling.
	SiteServerDelay
	// SiteServerDrop aborts a request inside the server before handling
	// (the connection is reset; the handler never runs).
	SiteServerDrop
	numSites
)

var siteNames = [numSites]string{
	"task_error", "task_panic", "task_hang", "kickoff_delay",
	"req_drop", "req_dup", "req_delay", "resp_drop",
	"server_delay", "server_drop",
}

// String returns the site's spec-file spelling (e.g. "task_error").
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// ErrInjected is the root of every fault this package injects; test
// assertions and retry policies match it with errors.Is.
var ErrInjected = errors.New("faults: injected fault")

// Rule arms one site. Exactly one of Prob and Every selects the firing
// discipline: Prob fires when the (seed, site, key) hash lands below the
// probability — deterministic per key, independent across keys — and Every
// fires on every Every-th decision at the site (key % Every == 0), the
// right tool for sequence-keyed wire faults ("drop every 4th response").
type Rule struct {
	Site Site
	// Prob is the per-decision firing probability in [0, 1].
	Prob float64
	// Every fires the rule when key%Every == 0; it takes precedence over
	// Prob when nonzero.
	Every uint64
	// Delay is the injected latency for the delay-flavoured sites
	// (kickoff_delay, req_delay, server_delay); ignored elsewhere.
	Delay time.Duration
}

// Plan is a seed plus the armed rules — one reproducible fault schedule.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// compiled is one site's armed state inside an Injector.
type compiled struct {
	armed bool
	prob  float64
	every uint64
	delay time.Duration
}

// Injector decides, deterministically per seed, whether a fault fires at a
// given site for a given key. The zero of the type is never used: a nil
// *Injector is the disabled state and every method is nil-safe.
type Injector struct {
	seed  uint64
	rules [numSites]compiled
	fired [numSites]atomic.Uint64
	seq   [numSites]atomic.Uint64
}

// New compiles a plan into an injector. A nil plan or an empty rule set
// returns nil — the disabled injector.
func New(plan *Plan) *Injector {
	if plan == nil || len(plan.Rules) == 0 {
		return nil
	}
	in := &Injector{seed: plan.Seed}
	for _, r := range plan.Rules {
		if int(r.Site) >= int(numSites) {
			continue
		}
		in.rules[r.Site] = compiled{armed: true, prob: r.Prob, every: r.Every, delay: r.Delay}
	}
	return in
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// decide is the pure decision function: true when the site's rule fires for
// key under the injector's seed.
func (in *Injector) decide(site Site, key uint64) bool {
	r := &in.rules[site]
	if !r.armed {
		return false
	}
	if r.every > 0 {
		return key%r.every == 0
	}
	if r.prob <= 0 {
		return false
	}
	if r.prob >= 1 {
		return true
	}
	h := splitmix64(in.seed ^ (uint64(site)+1)*0x9e3779b97f4a7c15 ^ splitmix64(key))
	return float64(h>>11)/(1<<53) < r.prob
}

// TaskKey derives the decision key for one execution attempt of one task,
// mixing the attempt in so a retried task re-rolls its fate independently.
func TaskKey(index uint64, attempt int) uint64 {
	return splitmix64(index*2654435761 + uint64(attempt))
}

// Should reports whether the site's rule fires for key, counting the hit.
// Nil-safe: a nil injector never fires.
func (in *Injector) Should(site Site, key uint64) bool {
	if in == nil {
		return false
	}
	if !in.decide(site, key) {
		return false
	}
	in.fired[site].Add(1)
	return true
}

// Peek is Should without the side effects: the pure decision, not counted.
// Chaos oracles use it to predict the schedule an identical injector
// produced. Nil-safe.
func (in *Injector) Peek(site Site, key uint64) bool {
	if in == nil {
		return false
	}
	return in.decide(site, key)
}

// ShouldSeq is Should keyed by the site's own call sequence number — the
// discipline for wire sites, where there is no task index. Deterministic
// when the site's callers are sequential. Nil-safe.
func (in *Injector) ShouldSeq(site Site) bool {
	if in == nil {
		return false
	}
	return in.Should(site, in.seq[site].Add(1)-1)
}

// Delay returns the site's injected latency when its rule fires for key,
// and zero otherwise. Nil-safe.
func (in *Injector) Delay(site Site, key uint64) time.Duration {
	if in == nil {
		return 0
	}
	if !in.decide(site, key) {
		return 0
	}
	in.fired[site].Add(1)
	return in.rules[site].delay
}

// DelaySeq is Delay keyed by the site's call sequence number. Nil-safe.
func (in *Injector) DelaySeq(site Site) time.Duration {
	if in == nil {
		return 0
	}
	return in.Delay(site, in.seq[site].Add(1)-1)
}

// Fired returns the number of times the site's rule has fired. Nil-safe.
func (in *Injector) Fired(site Site) uint64 {
	if in == nil {
		return 0
	}
	return in.fired[site].Load()
}

// Counts returns every site that has fired with its count, sorted by site
// name — the chaos report's injected-fault summary. Nil-safe.
func (in *Injector) Counts() map[string]uint64 {
	if in == nil {
		return nil
	}
	m := make(map[string]uint64)
	for s := Site(0); s < numSites; s++ {
		if n := in.fired[s].Load(); n > 0 {
			m[s.String()] = n
		}
	}
	return m
}

// String renders the armed rules in spec syntax.
func (in *Injector) String() string {
	if in == nil {
		return "faults: disabled"
	}
	var parts []string
	for s := Site(0); s < numSites; s++ {
		r := &in.rules[s]
		if !r.armed {
			continue
		}
		p := s.String()
		if r.every > 0 {
			p += fmt.Sprintf(":every=%d", r.every)
		} else {
			p += fmt.Sprintf(":%g", r.prob)
		}
		if r.delay > 0 {
			p += ":" + r.delay.String()
		}
		parts = append(parts, p)
	}
	sort.Strings(parts)
	return "faults: seed=" + strconv.FormatUint(in.seed, 10) + " " + strings.Join(parts, ",")
}

// ParseSpec compiles a textual fault plan, the nexusd / nexusbench flag
// syntax: a comma-separated list of rules, each
//
//	<site>:<prob>[:<delay>]      probability-keyed, e.g. task_panic:0.05
//	<site>:every=<n>[:<delay>]   sequence-keyed,   e.g. resp_drop:every=4:2ms
//
// Site names are the Site.String spellings. An empty spec returns a nil
// (disabled) injector.
func ParseSpec(seed uint64, spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var plan Plan
	plan.Seed = seed
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("faults: bad rule %q (want site:prob[:delay] or site:every=N[:delay])", part)
		}
		site, err := siteByName(fields[0])
		if err != nil {
			return nil, err
		}
		r := Rule{Site: site}
		if ev, ok := strings.CutPrefix(fields[1], "every="); ok {
			n, err := strconv.ParseUint(ev, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("faults: bad every count %q in rule %q", ev, part)
			}
			r.Every = n
		} else {
			p, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || p < 0 || p > 1 {
				return nil, fmt.Errorf("faults: bad probability %q in rule %q (want [0,1])", fields[1], part)
			}
			r.Prob = p
		}
		if len(fields) == 3 {
			d, err := time.ParseDuration(fields[2])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faults: bad delay %q in rule %q", fields[2], part)
			}
			r.Delay = d
		}
		plan.Rules = append(plan.Rules, r)
	}
	return New(&plan), nil
}

// siteByName resolves a spec-file site name.
func siteByName(name string) (Site, error) {
	for s := Site(0); s < numSites; s++ {
		if siteNames[s] == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown site %q (valid: %s)", name, strings.Join(siteNames[:], ", "))
}
