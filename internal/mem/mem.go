// Package mem models the memory hierarchy of the paper's evaluation
// platform: a 32-bank off-chip memory in which "no more than 32 tasks can
// access the memory at a given time" (12 ns per 128-byte chunk, 10.67 GB/s
// aggregate), and the 8-byte-wide on-chip bus over which the master core
// submits Task Descriptors to the Task Maestro (5-cycle handshake plus the
// descriptor words).
package mem

import "nexuspp/internal/sim"

// MemConfig describes the off-chip memory.
type MemConfig struct {
	// Ports is the number of concurrent accessors (banks with one
	// read/write port each). The paper uses 32.
	Ports int
	// ChunkBytes and ChunkTime give the transfer quantum: 12ns per
	// 128-byte chunk in the paper's CACTI 5.3 model.
	ChunkBytes int
	ChunkTime  sim.Time
	// ContentionFree disables the port limit, reproducing the paper's
	// "assuming contention-free memory" experiments.
	ContentionFree bool
}

// DefaultMemConfig returns the paper's Table IV memory parameters.
func DefaultMemConfig() MemConfig {
	return MemConfig{Ports: 32, ChunkBytes: 128, ChunkTime: 12 * sim.Nanosecond}
}

// Memory is the off-chip memory model.
type Memory struct {
	cfg   MemConfig
	eng   *sim.Engine
	ports *sim.Resource // nil when contention-free
}

// NewMemory builds a memory bound to eng. A zero Ports/ChunkBytes/ChunkTime
// field selects the paper default.
func NewMemory(eng *sim.Engine, cfg MemConfig) *Memory {
	def := DefaultMemConfig()
	if cfg.Ports == 0 {
		cfg.Ports = def.Ports
	}
	if cfg.ChunkBytes == 0 {
		cfg.ChunkBytes = def.ChunkBytes
	}
	if cfg.ChunkTime == 0 {
		cfg.ChunkTime = def.ChunkTime
	}
	m := &Memory{cfg: cfg, eng: eng}
	if !cfg.ContentionFree {
		m.ports = sim.NewResource("memory-ports", cfg.Ports)
	}
	return m
}

// Config returns the effective configuration.
func (m *Memory) Config() MemConfig { return m.cfg }

// TransferTime returns the contention-free duration of moving n bytes
// (whole chunks; zero bytes take zero time).
func (m *Memory) TransferTime(bytes int) sim.Time {
	if bytes <= 0 {
		return 0
	}
	chunks := (bytes + m.cfg.ChunkBytes - 1) / m.cfg.ChunkBytes
	return sim.Time(chunks) * m.cfg.ChunkTime
}

// Access models one task-side memory phase of the given contention-free
// duration: it waits for a free port (FIFO order), holds it for duration,
// then invokes done. A zero duration completes after the current event
// (never synchronously) so callers can rely on consistent ordering.
func (m *Memory) Access(duration sim.Time, done func()) {
	if m.ports == nil {
		m.eng.After(duration, done)
		return
	}
	m.ports.Acquire(func() {
		m.eng.After(duration, func() {
			m.ports.Release()
			done()
		})
	})
}

// InUse returns the number of busy ports (always 0 when contention-free).
func (m *Memory) InUse() int {
	if m.ports == nil {
		return 0
	}
	return m.ports.InUse()
}

// HighWater returns the maximum number of concurrently busy ports.
func (m *Memory) HighWater() int {
	if m.ports == nil {
		return 0
	}
	return m.ports.HighWater()
}

// Waits returns how many accesses had to queue for a port.
func (m *Memory) Waits() uint64 {
	if m.ports == nil {
		return 0
	}
	return m.ports.Waits()
}

// BusConfig describes the on-chip master-to-maestro bus.
type BusConfig struct {
	// CycleTime is one Nexus++ clock cycle (2 ns at 500 MHz).
	CycleTime sim.Time
	// HandshakeCycles is the fixed per-submission setup cost (5 cycles).
	HandshakeCycles int
	// HeaderWords is the number of words before the parameters (1: the
	// task ID + function pointer word).
	HeaderWords int
}

// DefaultBusConfig returns the paper's bus parameters. Note: the paper's
// text says each 8-byte word takes 2 cycles, but its worked examples (a
// 4-parameter task takes 10 cycles, an 8-parameter one 14) fit
// cycles = handshake(5) + header(1) + nParams; we follow the examples.
func DefaultBusConfig() BusConfig {
	return BusConfig{CycleTime: 2 * sim.Nanosecond, HandshakeCycles: 5, HeaderWords: 1}
}

// Bus is a single-master serial link: one submission occupies it at a time,
// later submissions queue in FIFO order.
type Bus struct {
	cfg       BusConfig
	eng       *sim.Engine
	line      *sim.Resource
	transfers uint64
	busyTime  sim.Time
}

// NewBus builds a bus bound to eng; zero config fields select defaults.
func NewBus(eng *sim.Engine, cfg BusConfig) *Bus {
	def := DefaultBusConfig()
	if cfg.CycleTime == 0 {
		cfg.CycleTime = def.CycleTime
	}
	if cfg.HandshakeCycles == 0 {
		cfg.HandshakeCycles = def.HandshakeCycles
	}
	if cfg.HeaderWords == 0 {
		cfg.HeaderWords = def.HeaderWords
	}
	return &Bus{cfg: cfg, eng: eng, line: sim.NewResource("onchip-bus", 1)}
}

// Config returns the effective configuration.
func (b *Bus) Config() BusConfig { return b.cfg }

// SubmitTime returns the bus occupancy of submitting a descriptor with
// nParams parameters: (handshake + header + nParams) cycles.
func (b *Bus) SubmitTime(nParams int) sim.Time {
	cycles := b.cfg.HandshakeCycles + b.cfg.HeaderWords + nParams
	return sim.Time(cycles) * b.cfg.CycleTime
}

// Submit occupies the bus for SubmitTime(nParams) and then calls delivered.
func (b *Bus) Submit(nParams int, delivered func()) {
	d := b.SubmitTime(nParams)
	b.line.Acquire(func() {
		b.eng.After(d, func() {
			b.transfers++
			b.busyTime += d
			b.line.Release()
			delivered()
		})
	})
}

// Transfers returns the number of completed submissions.
func (b *Bus) Transfers() uint64 { return b.transfers }

// BusyTime returns cumulative bus occupancy.
func (b *Bus) BusyTime() sim.Time { return b.busyTime }
