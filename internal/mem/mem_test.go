package mem

import (
	"testing"
	"testing/quick"

	"nexuspp/internal/sim"
)

func TestTransferTime(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemConfig{})
	cases := []struct {
		bytes int
		want  sim.Time
	}{
		{0, 0},
		{-4, 0},
		{1, 12 * sim.Nanosecond},
		{128, 12 * sim.Nanosecond},
		{129, 24 * sim.Nanosecond},
		{1024, 96 * sim.Nanosecond},
	}
	for _, c := range cases {
		if got := m.TransferTime(c.bytes); got != c.want {
			t.Errorf("TransferTime(%d) = %v, want %v", c.bytes, got, c.want)
		}
	}
}

func TestMemoryDefaults(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemConfig{})
	cfg := m.Config()
	if cfg.Ports != 32 || cfg.ChunkBytes != 128 || cfg.ChunkTime != 12*sim.Nanosecond {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestMemoryPortLimit(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemConfig{Ports: 2})
	var done []int
	for i := 0; i < 4; i++ {
		i := i
		m.Access(10*sim.Nanosecond, func() { done = append(done, i) })
	}
	eng.Run()
	if len(done) != 4 {
		t.Fatalf("completions = %v", done)
	}
	// With 2 ports, 4 accesses of 10ns finish at 10,10,20,20.
	if eng.Now() != 20*sim.Nanosecond {
		t.Fatalf("end time = %v, want 20ns", eng.Now())
	}
	if m.HighWater() != 2 {
		t.Fatalf("high water = %d, want 2", m.HighWater())
	}
	if m.Waits() != 2 {
		t.Fatalf("waits = %d, want 2", m.Waits())
	}
	if m.InUse() != 0 {
		t.Fatalf("in use at end = %d", m.InUse())
	}
}

func TestMemoryContentionFree(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemConfig{Ports: 2, ContentionFree: true})
	count := 0
	for i := 0; i < 100; i++ {
		m.Access(10*sim.Nanosecond, func() { count++ })
	}
	eng.Run()
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
	if eng.Now() != 10*sim.Nanosecond {
		t.Fatalf("contention-free end = %v, want 10ns", eng.Now())
	}
	if m.InUse() != 0 || m.HighWater() != 0 || m.Waits() != 0 {
		t.Error("contention-free stats should be zero")
	}
}

func TestMemoryZeroDurationNotSynchronous(t *testing.T) {
	eng := sim.NewEngine()
	m := NewMemory(eng, MemConfig{})
	fired := false
	m.Access(0, func() { fired = true })
	if fired {
		t.Fatal("zero-duration access completed synchronously")
	}
	eng.Run()
	if !fired {
		t.Fatal("zero-duration access never completed")
	}
}

// Property: with P ports and any batch of equal-duration accesses, the
// makespan is ceil(n/P)*d — the canonical bank-limited schedule.
func TestMemoryBatchScheduleProperty(t *testing.T) {
	prop := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%40) + 1
		ports := int(pRaw%8) + 1
		eng := sim.NewEngine()
		m := NewMemory(eng, MemConfig{Ports: ports})
		d := 10 * sim.Nanosecond
		for i := 0; i < n; i++ {
			m.Access(d, func() {})
		}
		eng.Run()
		waves := (n + ports - 1) / ports
		return eng.Now() == sim.Time(waves)*d
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBusSubmitTimeMatchesPaperExamples(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBus(eng, BusConfig{})
	// Paper SSIV-B: "a task with 4 parameters takes 10 cycles (20ns),
	// whereas an 8-parameter task takes 14 cycles (28ns)".
	if got := b.SubmitTime(4); got != 20*sim.Nanosecond {
		t.Errorf("SubmitTime(4) = %v, want 20ns", got)
	}
	if got := b.SubmitTime(8); got != 28*sim.Nanosecond {
		t.Errorf("SubmitTime(8) = %v, want 28ns", got)
	}
}

func TestBusSerialises(t *testing.T) {
	eng := sim.NewEngine()
	b := NewBus(eng, BusConfig{})
	var times []sim.Time
	for i := 0; i < 3; i++ {
		b.Submit(4, func() { times = append(times, eng.Now()) })
	}
	eng.Run()
	want := []sim.Time{20 * sim.Nanosecond, 40 * sim.Nanosecond, 60 * sim.Nanosecond}
	if len(times) != 3 {
		t.Fatalf("times = %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	if b.Transfers() != 3 {
		t.Errorf("transfers = %d", b.Transfers())
	}
	if b.BusyTime() != 60*sim.Nanosecond {
		t.Errorf("busy time = %v", b.BusyTime())
	}
}
