// Package backend unifies every execution engine in this repository — the
// Nexus++ simulator, the original-Nexus simulator, the software-RTS model,
// the sharded executing runtime, and the single-maestro baseline — behind
// one Backend interface with a single Report shape, so cross-engine
// comparisons stop being hand-wired per experiment.
//
// The paper's core claim is comparative: the same StarSs workloads on
// Nexus++ vs. original Nexus vs. the software runtime. A Backend takes the
// same workload.Source every engine consumes and returns a Report with the
// same headline observables (tasks executed, makespan or wall time), plus a
// typed Detail for engine-specific depth. Backends register themselves in a
// package-level registry; cmd/nexusbench and internal/experiments resolve
// them by name.
package backend

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"nexuspp/internal/sim"
	"nexuspp/internal/workload"
)

// Config is the engine-independent run configuration. Every field beyond
// Workers is a knob a subset of engines honours; engines ignore knobs that
// do not apply to them (documented per field).
type Config struct {
	// Workers is the number of worker cores (simulated) or worker
	// goroutines (executing); 0 selects 8.
	Workers int
	// RecordSchedule keeps per-task execution intervals on simulated
	// engines so callers can validate the run against the dependency-graph
	// oracle. Executing engines ignore it.
	RecordSchedule bool
	// ZeroCost makes the executing engines replace every synthesized task
	// body with an empty function, measuring pure dependency-resolution
	// throughput. Simulated engines ignore it.
	ZeroCost bool
	// TimeScale divides the synthesized body durations of the executing
	// engines: 1 (or 0) replays traced timing unscaled. Simulated engines
	// ignore it.
	TimeScale int
	// Shards overrides the sharded runtime's dependency-table bank count
	// (0 = scaled to Workers, 1 = single bank). Other engines ignore it.
	Shards int
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	return c
}

// Report is the unified result of running one workload on one backend.
// Exactly one of Makespan (simulated engines) and Wall (executing engines)
// is meaningful; Simulated says which.
type Report struct {
	// Backend and Workload identify the run.
	Backend  string
	Workload string
	// Workers is the worker count the run used.
	Workers int
	// Simulated distinguishes simulated engines (Makespan is simulated
	// time) from executing engines (Wall is measured wall-clock time).
	Simulated bool
	// Makespan is the simulated completion time; zero for executing engines.
	Makespan sim.Time
	// Wall is the measured wall-clock time; zero for simulated engines.
	Wall time.Duration
	// TasksExecuted counts tasks that completed the full lifecycle.
	TasksExecuted uint64
	// Detail carries the engine's native result for callers that need more
	// than the headline: *core.Result for the simulators, *softrts.Result
	// for the software-RTS model, *starss.ReplayResult for the executing
	// runtimes.
	Detail any
}

// Throughput returns tasks per second: per simulated second for simulated
// engines, per wall-clock second for executing ones. Zero when the run
// completed in zero time.
func (r *Report) Throughput() float64 {
	if r.Simulated {
		if r.Makespan <= 0 {
			return 0
		}
		return float64(r.TasksExecuted) / (r.Makespan.Nanoseconds() * 1e-9)
	}
	if r.Wall <= 0 {
		return 0
	}
	return float64(r.TasksExecuted) / r.Wall.Seconds()
}

// Span renders the engine's time axis: the simulated makespan or the
// measured wall time.
func (r *Report) Span() string {
	if r.Simulated {
		return r.Makespan.String()
	}
	return r.Wall.String()
}

// Backend is one execution engine driving a traced workload to completion.
type Backend interface {
	// Name is the registry key (stable, flag-friendly).
	Name() string
	// Describe is a one-line description for listings.
	Describe() string
	// Run executes src to completion and reports the unified observables.
	// Engines that cannot execute the workload (the original Nexus's hard
	// structure limits) return an error.
	Run(ctx context.Context, cfg Config, src workload.Source) (*Report, error)
}

var registry struct {
	mu     sync.RWMutex
	byName map[string]Backend
}

// Register adds a backend to the registry; it panics on a duplicate or
// empty name. The five built-in engines register themselves at init.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("backend: Register with empty name")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.byName == nil {
		registry.byName = make(map[string]Backend)
	}
	if _, dup := registry.byName[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry.byName[name] = b
}

// All returns every registered backend sorted by name.
func All() []Backend {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Backend, 0, len(registry.byName))
	for _, b := range registry.byName {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Names returns the sorted registered backend names.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, b := range all {
		names[i] = b.Name()
	}
	return names
}

// Lookup resolves a backend by name; an unknown name fails with an error
// listing every valid name.
func Lookup(name string) (Backend, error) {
	registry.mu.RLock()
	b, ok := registry.byName[name]
	registry.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("backend: unknown backend %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
	return b, nil
}
