package backend

import (
	"sort"
	"strings"
	"testing"
)

// TestLookupWorkloadUnknownListsSortedNames pins the exact failure message:
// an unknown workload name must enumerate every valid name in sorted order,
// so the message is deterministic across runs and map-iteration orders.
func TestLookupWorkloadUnknownListsSortedNames(t *testing.T) {
	_, err := LookupWorkload("no-such-workload")
	if err == nil {
		t.Fatal("lookup of an unknown workload succeeded")
	}
	names := WorkloadNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("WorkloadNames() is not sorted: %v", names)
	}
	want := `backend: unknown workload "no-such-workload" (valid: ` + strings.Join(names, ", ") + ")"
	if got := err.Error(); got != want {
		t.Errorf("error message drifted:\n got: %s\nwant: %s", got, want)
	}
	for _, must := range []string{"starpu_deps", "randdag", "skewed", "wavefront"} {
		if !strings.Contains(err.Error(), must) {
			t.Errorf("error message does not list registered workload %q: %s", must, err)
		}
	}
	// Repeated lookups must render the identical message (no map-order leak).
	for i := 0; i < 16; i++ {
		_, again := LookupWorkload("no-such-workload")
		if again.Error() != want {
			t.Fatalf("error message is nondeterministic:\n%s\nvs\n%s", again, want)
		}
	}
}

// TestRegisterWorkloadRejectsBadEntries pins the registry's panics: empty
// name, nil constructor, duplicate name.
func TestRegisterWorkloadRejectsBadEntries(t *testing.T) {
	mustPanic := func(name string, w WorkloadInfo) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterWorkload did not panic", name)
			}
		}()
		RegisterWorkload(w)
	}
	mustPanic("empty-name", WorkloadInfo{New: Workloads()[0].New})
	mustPanic("nil-constructor", WorkloadInfo{Name: "broken"})
	mustPanic("duplicate", WorkloadInfo{Name: "wavefront", New: Workloads()[0].New})
}
