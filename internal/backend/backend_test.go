package backend

import (
	"context"
	"strings"
	"testing"

	"nexuspp/internal/depgraph"
	"nexuspp/internal/workload"
)

// TestRegistryShape pins the registry contract: all five engines present,
// sorted, and resolvable by name.
func TestRegistryShape(t *testing.T) {
	want := []string{"maestro", "nexus", "nexuspp", "runtime", "softrts"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
		b, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, b.Name())
		}
		if b.Describe() == "" {
			t.Errorf("backend %q has an empty description", name)
		}
	}
}

// TestLookupUnknownListsValidNames pins the satellite requirement: unknown
// backend and workload names fail with a message enumerating the valid ones.
func TestLookupUnknownListsValidNames(t *testing.T) {
	if _, err := Lookup("nexus++"); err == nil || !strings.Contains(err.Error(), "nexuspp") {
		t.Errorf("Lookup(nexus++) error = %v, want the valid-name list", err)
	}
	if _, err := LookupWorkload("wave"); err == nil || !strings.Contains(err.Error(), "wavefront") {
		t.Errorf("LookupWorkload(wave) error = %v, want the valid-name list", err)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	ws := Workloads()
	if len(ws) == 0 {
		t.Fatal("no workloads registered")
	}
	for _, w := range ws {
		if w.Description == "" {
			t.Errorf("workload %q has an empty description", w.Name)
		}
		src := w.New(1)
		if src.Total() <= 0 {
			t.Errorf("workload %q: Total = %d", w.Name, src.Total())
		}
	}
}

// TestBackendConformance is the cross-backend contract: every registered
// backend runs wavefront and Gaussian elimination, executes exactly the
// oracle's task count, and — for the simulated engines — never reports a
// makespan below the oracle's critical path (no simulator may beat the
// infinite-core schedule of its own workload). The executing runtimes run
// in zero-cost mode so the suite stays fast; under `go test -race` this is
// also the race check of the replay adapter on real dependency patterns.
func TestBackendConformance(t *testing.T) {
	cases := []struct {
		name string
		mk   func() workload.Source
	}{
		{"wavefront", func() workload.Source { return workload.Wavefront(7) }},
		{"gaussian-60", func() workload.Source {
			return workload.Gaussian(workload.GaussianConfig{N: 60})
		}},
	}
	for _, wc := range cases {
		oracle := depgraph.Build(wc.mk()).Analyze()
		total := uint64(wc.mk().Total())
		for _, b := range All() {
			b := b
			t.Run(b.Name()+"/"+wc.name, func(t *testing.T) {
				rep, err := b.Run(context.Background(),
					Config{Workers: 8, ZeroCost: true}, wc.mk())
				if err != nil {
					// The original Nexus legitimately rejects workloads that
					// exceed its hard structure limits; every other engine
					// must execute everything.
					if b.Name() == "nexus" {
						t.Logf("nexus rejected %s: %v", wc.name, err)
						return
					}
					t.Fatalf("%s on %s: %v", b.Name(), wc.name, err)
				}
				if rep.TasksExecuted != total {
					t.Errorf("TasksExecuted = %d, oracle task count = %d",
						rep.TasksExecuted, total)
				}
				if rep.Backend != b.Name() {
					t.Errorf("Report.Backend = %q, want %q", rep.Backend, b.Name())
				}
				if rep.Simulated {
					if rep.Makespan < oracle.CriticalPath {
						t.Errorf("simulated makespan %v beats the oracle critical path %v",
							rep.Makespan, oracle.CriticalPath)
					}
					if rep.Wall != 0 {
						t.Errorf("simulated backend reported wall time %v", rep.Wall)
					}
				} else {
					if rep.Wall <= 0 {
						t.Errorf("executing backend reported wall time %v", rep.Wall)
					}
					if rep.Makespan != 0 {
						t.Errorf("executing backend reported simulated makespan %v", rep.Makespan)
					}
				}
				if rep.Detail == nil {
					t.Error("Report.Detail is nil")
				}
				if rep.Throughput() <= 0 {
					t.Errorf("Throughput() = %v", rep.Throughput())
				}
			})
		}
	}
}

// TestExecutingBackendsReplayTracedTiming runs both executing engines with
// synthesized timed bodies (scaled down 50x) and checks the wall time is at
// least the scaled critical path: a real schedule cannot beat the oracle
// either. Together with the zero-cost conformance above this pins every
// engine — simulated or executing — to the oracle bound.
func TestExecutingBackendsReplayTracedTiming(t *testing.T) {
	src := func() workload.Source {
		return workload.Gaussian(workload.GaussianConfig{N: 40})
	}
	oracle := depgraph.Build(src()).Analyze()
	const scale = 50
	scaledCP := oracle.CriticalPath.Nanoseconds() / scale
	for _, name := range []string{"runtime", "maestro"} {
		t.Run(name, func(t *testing.T) {
			b, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := b.Run(context.Background(),
				Config{Workers: 4, TimeScale: scale}, src())
			if err != nil {
				t.Fatal(err)
			}
			if rep.TasksExecuted != uint64(src().Total()) {
				t.Errorf("TasksExecuted = %d, want %d", rep.TasksExecuted, src().Total())
			}
			if got := float64(rep.Wall.Nanoseconds()); got < scaledCP {
				t.Errorf("wall time %v beats the scaled critical path %.0fns", rep.Wall, scaledCP)
			}
		})
	}
}

// TestShardsKnobReachesRuntime pins that Config.Shards reaches the sharded
// runtime: a single-bank run must still execute everything correctly.
func TestShardsKnobReachesRuntime(t *testing.T) {
	b, err := Lookup("runtime")
	if err != nil {
		t.Fatal(err)
	}
	src := workload.Wavefront(3)
	rep, err := b.Run(context.Background(),
		Config{Workers: 4, ZeroCost: true, Shards: 1}, src)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksExecuted != uint64(src.Total()) {
		t.Errorf("TasksExecuted = %d, want %d", rep.TasksExecuted, src.Total())
	}
}
