package backend

import (
	"context"
	"strings"
	"testing"
)

// TestGoldenConformance is the standing regression wall: every golden case
// is recomputed on every registered engine and diffed field-by-field
// against the committed record in testdata/golden. Any behavioural change
// to a resolver — task counts, simulated makespans, dependency-order
// respect, poison propagation — fails here with the readable diff, and an
// intentional change must ship regenerated goldens (nexusbench golden
// -regen) plus an explanation.
func TestGoldenConformance(t *testing.T) {
	for _, c := range GoldenCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			path := GoldenPath("testdata/golden", c.Name)
			want, err := ReadGolden(path)
			if err != nil {
				t.Fatalf("missing golden record: %v (run 'go run ./cmd/nexusbench golden -regen' and commit)", err)
			}
			got, err := ComputeGolden(context.Background(), c)
			if err != nil {
				t.Fatal(err)
			}
			if diffs := want.Diff(got); len(diffs) > 0 {
				t.Errorf("golden drift (%d fields):\n  %s", len(diffs), strings.Join(diffs, "\n  "))
			}
		})
	}
}

// TestGoldenCorpusShape pins what the corpus must cover: at least six
// workload families including the three irregular shapes, all five engines
// per case, a non-trivial poison-propagation count somewhere, and validated
// dependency order on every simulated engine that accepted the workload.
func TestGoldenCorpusShape(t *testing.T) {
	cases := GoldenCases()
	families := map[string]bool{}
	for _, c := range cases {
		if _, err := LookupWorkload(c.Workload); err != nil {
			t.Errorf("case %s references unregistered workload: %v", c.Name, err)
		}
		families[c.Workload] = true
	}
	if len(families) < 6 {
		t.Errorf("corpus covers %d workload families, want >= 6: %v", len(families), families)
	}
	for _, name := range []string{"starpu_deps", "randdag", "skewed"} {
		if !families[name] {
			t.Errorf("corpus is missing the %s family", name)
		}
	}
	engineCount := len(Names())
	sawPoison := false
	for _, c := range cases {
		g, err := ReadGolden(GoldenPath("testdata/golden", c.Name))
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		if len(g.Engines) != engineCount {
			t.Errorf("%s: golden covers %d engines, want %d", c.Name, len(g.Engines), engineCount)
		}
		if g.Oracle.PoisonSkipped > 0 {
			sawPoison = true
		}
		for _, e := range g.Engines {
			if e.Rejected != "" {
				continue
			}
			if e.Tasks != uint64(g.Oracle.Tasks) {
				t.Errorf("%s/%s: golden tasks %d != oracle %d", c.Name, e.Backend, e.Tasks, g.Oracle.Tasks)
			}
			if e.Simulated {
				if !e.ScheduleOK {
					t.Errorf("%s/%s: simulated engine without validated schedule", c.Name, e.Backend)
				}
				if e.MakespanPs < g.Oracle.CriticalPathPs {
					t.Errorf("%s/%s: makespan %d beats the oracle critical path %d",
						c.Name, e.Backend, e.MakespanPs, g.Oracle.CriticalPathPs)
				}
			} else {
				// The gated poison replay must skip exactly the oracle's
				// transitive descendants of the failed task.
				if e.PoisonFailed != 1 {
					t.Errorf("%s/%s: poison_failed = %d, want 1", c.Name, e.Backend, e.PoisonFailed)
				}
				if e.PoisonSkipped != uint64(g.Oracle.PoisonSkipped) {
					t.Errorf("%s/%s: poison_skipped = %d, oracle descendants = %d",
						c.Name, e.Backend, e.PoisonSkipped, g.Oracle.PoisonSkipped)
				}
			}
		}
	}
	if !sawPoison {
		t.Error("no golden case has a non-trivial poison-propagation count")
	}
}

// TestGoldenDiffCatchesPerturbation pins the failure mode the corpus
// exists for: perturb each recorded observable of a real golden record and
// require a readable one-line diff naming the field.
func TestGoldenDiffCatchesPerturbation(t *testing.T) {
	orig, err := ReadGolden(GoldenPath("testdata/golden", "wavefront-12x10"))
	if err != nil {
		t.Fatal(err)
	}
	perturb := []struct {
		name string
		mut  func(*Golden)
		want string
	}{
		{"makespan", func(g *Golden) { g.Engines[2].MakespanPs++ }, ".makespan_ps"},
		{"tasks", func(g *Golden) { g.Engines[0].Tasks-- }, ".tasks"},
		{"critical-path", func(g *Golden) { g.Oracle.CriticalPathPs++ }, "oracle.critical_path_ps"},
		{"poison", func(g *Golden) { g.Engines[0].PoisonSkipped++ }, ".poison_skipped"},
		{"schedule", func(g *Golden) { g.Engines[2].ScheduleOK = false }, ".schedule_ok"},
		{"rejection", func(g *Golden) { g.Engines[1].Rejected = "nope" }, ".rejected"},
	}
	for _, p := range perturb {
		t.Run(p.name, func(t *testing.T) {
			mutated := *orig
			mutated.Engines = append([]GoldenEngine(nil), orig.Engines...)
			p.mut(&mutated)
			diffs := orig.Diff(&mutated)
			if len(diffs) == 0 {
				t.Fatal("perturbation produced no diff")
			}
			found := false
			for _, d := range diffs {
				if strings.Contains(d, p.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("diff %v does not name the perturbed field %q", diffs, p.want)
			}
		})
	}
}
