package backend

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nexuspp/internal/workload"
)

// WorkloadInfo is one named entry of the workload registry: a constructor
// plus a one-line description for listings.
type WorkloadInfo struct {
	// Name is the registry key (flag-friendly).
	Name string
	// Description is the one-line listing text.
	Description string
	// New builds a fresh source; seed drives the synthetic generators
	// (deterministic workloads ignore it).
	New func(seed uint64) workload.Source
}

var workloadReg struct {
	mu     sync.RWMutex
	byName map[string]WorkloadInfo
	// names is the sorted key list, rebuilt on registration, so every
	// error message and listing enumerates the valid names in one
	// deterministic order regardless of map iteration.
	names []string
}

// RegisterWorkload adds a named workload to the registry; it panics on a
// duplicate or empty name or a nil constructor. The built-in workloads
// register themselves at init.
func RegisterWorkload(w WorkloadInfo) {
	if w.Name == "" {
		panic("backend: RegisterWorkload with empty name")
	}
	if w.New == nil {
		panic(fmt.Sprintf("backend: RegisterWorkload(%q) with nil constructor", w.Name))
	}
	workloadReg.mu.Lock()
	defer workloadReg.mu.Unlock()
	if workloadReg.byName == nil {
		workloadReg.byName = make(map[string]WorkloadInfo)
	}
	if _, dup := workloadReg.byName[w.Name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of workload %q", w.Name))
	}
	workloadReg.byName[w.Name] = w
	workloadReg.names = append(workloadReg.names, w.Name)
	sort.Strings(workloadReg.names)
}

// The built-in evaluation workloads: the paper's Figure 4 patterns, its
// Gaussian graph, the Cholesky extension, and the irregular family (the
// TaskTorrent/StarPU wait-chain grid, seeded random DAGs, and the
// skewed-cost spatial decomposition).
func init() {
	RegisterWorkload(WorkloadInfo{
		Name:        "independent",
		Description: "8160 H.264-sized tasks, no dependencies (paper Figure 4, independent)",
		New:         workload.Independent,
	})
	RegisterWorkload(WorkloadInfo{
		Name:        "wavefront",
		Description: "H.264 macroblock wavefront, 8160 tasks (paper Figure 4a)",
		New:         workload.Wavefront,
	})
	RegisterWorkload(WorkloadInfo{
		Name:        "horizontal",
		Description: "horizontal chains along the task-generation order (paper Figure 4b)",
		New:         workload.HorizontalChains,
	})
	RegisterWorkload(WorkloadInfo{
		Name:        "vertical",
		Description: "vertical chains across the task-generation order (paper Figure 4c)",
		New:         workload.VerticalChains,
	})
	RegisterWorkload(WorkloadInfo{
		Name:        "gaussian",
		Description: "Gaussian elimination with partial pivoting, n=250, 31374 tasks (paper Figure 5 / Table II)",
		New: func(uint64) workload.Source {
			return workload.Gaussian(workload.GaussianConfig{N: 250})
		},
	})
	RegisterWorkload(WorkloadInfo{
		Name:        "cholesky",
		Description: "tiled Cholesky factorisation, 16x16 tiles of 32 (DESIGN.md extension workload)",
		New: func(uint64) workload.Source {
			return workload.Cholesky(workload.CholeskyConfig{Tiles: 16, TileSize: 32})
		},
	})
	RegisterWorkload(WorkloadInfo{
		Name:        "starpu_deps",
		Description: "TaskTorrent/StarPU wait-chain grid, 32x64 tasks with 3 wrap-around in-deps, 5us spin",
		New: func(uint64) workload.Source {
			return workload.StarPUDeps(workload.StarPUDepsConfig{})
		},
	})
	RegisterWorkload(WorkloadInfo{
		Name:        "randdag",
		Description: "seeded random DAG, 4096 tasks, fan-in <= 3 over a 64-task window",
		New: func(seed uint64) workload.Source {
			return workload.RandomDAG(workload.RandomDAGConfig{Seed: seed})
		},
	})
	RegisterWorkload(WorkloadInfo{
		Name:        "skewed",
		Description: "skewed-cost spatial decomposition, 16x16 tiles x 4 sweeps, bounded-Pareto costs",
		New: func(seed uint64) workload.Source {
			return workload.SpatialSkew(workload.SpatialSkewConfig{Seed: seed})
		},
	})
}

// Workloads returns every registered workload sorted by name.
func Workloads() []WorkloadInfo {
	workloadReg.mu.RLock()
	defer workloadReg.mu.RUnlock()
	out := make([]WorkloadInfo, 0, len(workloadReg.names))
	for _, name := range workloadReg.names {
		out = append(out, workloadReg.byName[name])
	}
	return out
}

// WorkloadNames returns the sorted registered workload names.
func WorkloadNames() []string {
	workloadReg.mu.RLock()
	defer workloadReg.mu.RUnlock()
	return append([]string(nil), workloadReg.names...)
}

// LookupWorkload resolves a workload by name; an unknown name fails with an
// error listing every valid name in sorted order, so the message is stable
// for golden error-message tests.
func LookupWorkload(name string) (WorkloadInfo, error) {
	workloadReg.mu.RLock()
	w, ok := workloadReg.byName[name]
	names := workloadReg.names
	workloadReg.mu.RUnlock()
	if !ok {
		return WorkloadInfo{}, fmt.Errorf("backend: unknown workload %q (valid: %s)",
			name, strings.Join(names, ", "))
	}
	return w, nil
}
