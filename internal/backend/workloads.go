package backend

import (
	"fmt"
	"sort"
	"strings"

	"nexuspp/internal/workload"
)

// WorkloadInfo is one named entry of the workload registry: a constructor
// plus a one-line description for listings.
type WorkloadInfo struct {
	// Name is the registry key (flag-friendly).
	Name string
	// Description is the one-line listing text.
	Description string
	// New builds a fresh source; seed drives the synthetic generators
	// (deterministic workloads ignore it).
	New func(seed uint64) workload.Source
}

// workloads is the static registry of named evaluation workloads — the
// paper's Figure 4 patterns, its Gaussian graph, and the Cholesky extension.
var workloads = map[string]WorkloadInfo{
	"independent": {
		Name:        "independent",
		Description: "8160 H.264-sized tasks, no dependencies (paper Figure 4, independent)",
		New:         workload.Independent,
	},
	"wavefront": {
		Name:        "wavefront",
		Description: "H.264 macroblock wavefront, 8160 tasks (paper Figure 4a)",
		New:         workload.Wavefront,
	},
	"horizontal": {
		Name:        "horizontal",
		Description: "horizontal chains along the task-generation order (paper Figure 4b)",
		New:         workload.HorizontalChains,
	},
	"vertical": {
		Name:        "vertical",
		Description: "vertical chains across the task-generation order (paper Figure 4c)",
		New:         workload.VerticalChains,
	},
	"gaussian": {
		Name:        "gaussian",
		Description: "Gaussian elimination with partial pivoting, n=250, 31374 tasks (paper Figure 5 / Table II)",
		New: func(uint64) workload.Source {
			return workload.Gaussian(workload.GaussianConfig{N: 250})
		},
	},
	"cholesky": {
		Name:        "cholesky",
		Description: "tiled Cholesky factorisation, 16x16 tiles of 32 (DESIGN.md extension workload)",
		New: func(uint64) workload.Source {
			return workload.Cholesky(workload.CholeskyConfig{Tiles: 16, TileSize: 32})
		},
	},
}

// Workloads returns every registered workload sorted by name.
func Workloads() []WorkloadInfo {
	out := make([]WorkloadInfo, 0, len(workloads))
	for _, w := range workloads {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WorkloadNames returns the sorted registered workload names.
func WorkloadNames() []string {
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// LookupWorkload resolves a workload by name; an unknown name fails with an
// error listing every valid name.
func LookupWorkload(name string) (WorkloadInfo, error) {
	w, ok := workloads[name]
	if !ok {
		return WorkloadInfo{}, fmt.Errorf("backend: unknown workload %q (valid: %s)",
			name, strings.Join(WorkloadNames(), ", "))
	}
	return w, nil
}
