package backend

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"nexuspp/internal/core"
	"nexuspp/internal/depgraph"
	"nexuspp/internal/workload"
)

// TestCrossEngineEquivalenceOnRandomDAGs is the property-based counterpart
// of the golden corpus: for a batch of seeded random DAGs the corpus has
// never seen, every engine must agree with the depgraph oracle on the task
// count, every simulated makespan must be bounded below by the oracle's
// critical path, and every recorded schedule must respect dependency
// order. An engine rejecting a DAG it cannot express (the original Nexus's
// fixed structure limits) is tolerated but must say so via FatalModelError.
func TestCrossEngineEquivalenceOnRandomDAGs(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	seeds := []uint64{1, 7, 42, 99, 1234, 0xdeadbeef, 1 << 40, 987654321}
	for _, seed := range seeds {
		seed := seed
		cfg := workload.RandomDAGConfig{Tasks: 160, FanIn: 3, Window: 24, Seed: seed}
		newSrc := func() workload.Source { return workload.RandomDAG(cfg) }

		g := depgraph.Build(newSrc())
		an := g.Analyze()
		if g.NumTasks() != cfg.Tasks {
			t.Fatalf("seed %d: oracle saw %d tasks, want %d", seed, g.NumTasks(), cfg.Tasks)
		}

		for _, b := range All() {
			b := b
			t.Run(fmt.Sprintf("%s/seed-%d", b.Name(), seed), func(t *testing.T) {
				t.Parallel()
				rep, err := b.Run(context.Background(),
					Config{Workers: 4, ZeroCost: true, RecordSchedule: true}, newSrc())
				if err != nil {
					var fatal core.FatalModelError
					if errors.As(err, &fatal) {
						t.Skipf("seed %d: model limit: %v", seed, err)
					}
					t.Fatalf("seed %d: %v", seed, err)
				}
				if rep.TasksExecuted != uint64(g.NumTasks()) {
					t.Errorf("seed %d: executed %d tasks, oracle has %d",
						seed, rep.TasksExecuted, g.NumTasks())
				}
				if rep.Simulated {
					if int64(rep.Makespan) < int64(an.CriticalPath) {
						t.Errorf("seed %d: makespan %d beats the critical path %d",
							seed, rep.Makespan, an.CriticalPath)
					}
					if sched := scheduleOf(rep); sched != nil {
						if err := g.ValidateSchedule(sched); err != nil {
							t.Errorf("seed %d: recorded schedule violates dependency order: %v",
								seed, err)
						}
					}
				}
			})
		}
	}
}
