package backend

// Golden-file conformance corpus. For a canonical set of (workload, size)
// pairs — the GoldenCases — this file computes a Golden record per case: the
// dependency-graph oracle's observables (task count, edges, critical path,
// total work, poison-propagation count) and every engine's deterministic
// observables (task count, simulated makespan, dependency-order respect,
// poison counters on the executing runtimes). The records are committed as
// JSON under testdata/golden/ and diffed by the conformance test and by
// `nexusbench golden -check`, so any behavioural change to a resolver shows
// up as a readable field-level diff instead of slipping past a handful of
// hand-picked assertions. `nexusbench golden -regen` rewrites the corpus;
// regenerated goldens must ship with an explanation of why the behaviour
// moved (see README).
//
// Only deterministic observables are recorded: simulated makespans are
// bit-stable (the event kernel orders ties by insertion sequence), and the
// executing engines contribute task counts plus the poison counters of a
// gated failure-injection replay — every task is admitted before any body
// runs, so the skipped set is exactly the oracle's descendant set and does
// not depend on scheduling timing. Wall times and hazard counters are
// timing-dependent and deliberately excluded.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"nexuspp/internal/core"
	"nexuspp/internal/depgraph"
	"nexuspp/internal/softrts"
	"nexuspp/internal/starss"
	"nexuspp/internal/workload"
)

// GoldenCase is one canonical (workload, size) pair of the corpus. The
// sizes are deliberately small: the whole corpus must run in seconds so it
// can gate every change in CI.
type GoldenCase struct {
	// Name is the case key and the golden file stem.
	Name string
	// Workload is the registered workload family the case belongs to.
	Workload string
	// Workers and Seed pin the run configuration.
	Workers int
	Seed    uint64
	// New builds the case's source (the golden-sized variant of the
	// family, not the registered full-size default).
	New func(seed uint64) workload.Source
}

// GoldenCases returns the canonical corpus: every workload family in the
// registry at a golden-sized operating point, including the three irregular
// shapes (wait-chain, random DAG, skewed-cost spatial decomposition).
func GoldenCases() []GoldenCase {
	return []GoldenCase{
		{
			Name: "wavefront-12x10", Workload: "wavefront", Workers: 4, Seed: 42,
			New: func(seed uint64) workload.Source {
				return workload.Grid(workload.GridConfig{Pattern: workload.PatternWavefront, Rows: 12, Cols: 10, Seed: seed})
			},
		},
		{
			Name: "independent-8x8", Workload: "independent", Workers: 4, Seed: 42,
			New: func(seed uint64) workload.Source {
				return workload.Grid(workload.GridConfig{Pattern: workload.PatternIndependent, Rows: 8, Cols: 8, Seed: seed})
			},
		},
		{
			Name: "vertical-10x6", Workload: "vertical", Workers: 4, Seed: 42,
			New: func(seed uint64) workload.Source {
				return workload.Grid(workload.GridConfig{Pattern: workload.PatternVertical, Rows: 10, Cols: 6, Seed: seed})
			},
		},
		{
			Name: "gaussian-24", Workload: "gaussian", Workers: 4, Seed: 42,
			New: func(uint64) workload.Source {
				return workload.Gaussian(workload.GaussianConfig{N: 24})
			},
		},
		{
			Name: "cholesky-4x8", Workload: "cholesky", Workers: 4, Seed: 42,
			New: func(uint64) workload.Source {
				return workload.Cholesky(workload.CholeskyConfig{Tiles: 4, TileSize: 8})
			},
		},
		{
			Name: "starpu-deps-8x24x3", Workload: "starpu_deps", Workers: 4, Seed: 42,
			New: func(uint64) workload.Source {
				return workload.StarPUDeps(workload.StarPUDepsConfig{Rows: 8, Cols: 24, Edges: 3})
			},
		},
		{
			Name: "randdag-200", Workload: "randdag", Workers: 4, Seed: 42,
			New: func(seed uint64) workload.Source {
				return workload.RandomDAG(workload.RandomDAGConfig{Tasks: 200, FanIn: 3, Window: 24, Seed: seed})
			},
		},
		{
			Name: "spatial-skew-6x6x4", Workload: "skewed", Workers: 4, Seed: 42,
			New: func(seed uint64) workload.Source {
				return workload.SpatialSkew(workload.SpatialSkewConfig{Rows: 6, Cols: 6, Sweeps: 4, Seed: seed})
			},
		},
	}
}

// LookupGoldenCase resolves a case by name.
func LookupGoldenCase(name string) (GoldenCase, error) {
	var names []string
	for _, c := range GoldenCases() {
		if c.Name == name {
			return c, nil
		}
		names = append(names, c.Name)
	}
	return GoldenCase{}, fmt.Errorf("backend: unknown golden case %q (valid: %v)", name, names)
}

// GoldenOracle is the dependency-graph oracle's section of a golden record.
type GoldenOracle struct {
	Tasks          int   `json:"tasks"`
	Edges          int   `json:"edges"`
	CriticalPathPs int64 `json:"critical_path_ps"`
	TotalWorkPs    int64 `json:"total_work_ps"`
	MaxWidth       int   `json:"max_width"`
	// PoisonIndex is the task whose failure the poison replay injects;
	// PoisonSkipped is the size of its transitive-descendant set — the
	// number of tasks a behaviour-preserving runtime must skip.
	PoisonIndex   int `json:"poison_index"`
	PoisonSkipped int `json:"poison_skipped"`
}

// GoldenEngine is one engine's section of a golden record. Simulated
// engines contribute the makespan and dependency-order validation of their
// recorded schedule; executing engines contribute the poison counters of
// the gated failure-injection replay. An engine that cannot execute the
// workload (the original Nexus's hard structure limits) records the
// rejection message instead.
type GoldenEngine struct {
	Backend    string `json:"backend"`
	Simulated  bool   `json:"simulated,omitempty"`
	Tasks      uint64 `json:"tasks,omitempty"`
	MakespanPs int64  `json:"makespan_ps,omitempty"`
	ScheduleOK bool   `json:"schedule_ok,omitempty"`
	// PoisonFailed/PoisonSkipped are the executing engines' counters after
	// injecting one failure at Oracle.PoisonIndex with admission gated
	// ahead of execution.
	PoisonFailed  uint64 `json:"poison_failed,omitempty"`
	PoisonSkipped uint64 `json:"poison_skipped,omitempty"`
	Rejected      string `json:"rejected,omitempty"`
}

// Golden is one committed conformance record.
type Golden struct {
	Case     string         `json:"case"`
	Workload string         `json:"workload"`
	Workers  int            `json:"workers"`
	Seed     uint64         `json:"seed"`
	Oracle   GoldenOracle   `json:"oracle"`
	Engines  []GoldenEngine `json:"engines"`
}

// errGoldenPoison is the failure injected by the poison replay.
var errGoldenPoison = errors.New("golden: injected failure")

// ComputeGolden runs the oracle and every registered engine on one case and
// returns the resulting record. It is the single source of truth shared by
// -regen, -check and the conformance test.
func ComputeGolden(ctx context.Context, c GoldenCase) (*Golden, error) {
	g := depgraph.Build(c.New(c.Seed))
	an := g.Analyze()
	poisonIdx := g.NumTasks() / 3
	rec := &Golden{
		Case:     c.Name,
		Workload: c.Workload,
		Workers:  c.Workers,
		Seed:     c.Seed,
		Oracle: GoldenOracle{
			Tasks:          g.NumTasks(),
			Edges:          g.NumEdges(),
			CriticalPathPs: int64(an.CriticalPath),
			TotalWorkPs:    int64(an.TotalWork),
			MaxWidth:       an.MaxWidth,
			PoisonIndex:    poisonIdx,
			PoisonSkipped:  descendantCount(g, poisonIdx),
		},
	}
	for _, b := range All() {
		eng := GoldenEngine{Backend: b.Name()}
		rep, err := b.Run(ctx, Config{Workers: c.Workers, RecordSchedule: true, ZeroCost: true}, c.New(c.Seed))
		if err != nil {
			eng.Rejected = err.Error()
			rec.Engines = append(rec.Engines, eng)
			continue
		}
		eng.Simulated = rep.Simulated
		eng.Tasks = rep.TasksExecuted
		if rep.Simulated {
			eng.MakespanPs = int64(rep.Makespan)
			if sched := scheduleOf(rep); sched != nil {
				eng.ScheduleOK = g.ValidateSchedule(sched) == nil
			}
		} else {
			failed, skipped, err := poisonReplay(ctx, c, b.Name() == "maestro", poisonIdx)
			if err != nil {
				return nil, fmt.Errorf("golden %s: poison replay on %s: %w", c.Name, b.Name(), err)
			}
			eng.PoisonFailed = failed
			eng.PoisonSkipped = skipped
		}
		rec.Engines = append(rec.Engines, eng)
	}
	return rec, nil
}

// scheduleOf extracts a recorded schedule from an engine's typed detail.
func scheduleOf(rep *Report) []depgraph.Interval {
	switch d := rep.Detail.(type) {
	case *core.Result:
		return d.Schedule
	case *softrts.Result:
		return d.Schedule
	default:
		return nil
	}
}

// descendantCount returns the number of transitive successors of task idx.
func descendantCount(g *depgraph.Graph, idx int) int {
	if g.NumTasks() == 0 {
		return 0
	}
	seen := make(map[int32]struct{})
	stack := append([]int32(nil), g.Succs(idx)...)
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		stack = append(stack, g.Succs(int(t))...)
	}
	return len(seen)
}

// poisonReplay runs the case on a real executing runtime with every task
// body gated until the full trace is admitted, injects one failure at
// failIdx, and returns the Failed/Skipped counters. Gating makes the
// counters deterministic: because no segment can drain before every task
// has joined it, the poisoned set is exactly the failed task's transitive
// descendants in the oracle graph, independent of worker timing.
func poisonReplay(ctx context.Context, c GoldenCase, maestro bool, failIdx int) (failed, skipped uint64, err error) {
	tr := workload.Collect(c.New(c.Seed))
	cfg := starss.Config{Workers: c.Workers, Window: len(tr.Tasks) + 1}
	var rt starss.TaskRuntime
	if maestro {
		rt = starss.NewMaestro(cfg)
	} else {
		rt = starss.New(cfg)
	}
	gate := make(chan struct{})
	for i := range tr.Tasks {
		t := starss.TaskFromSpec(tr.Tasks[i], starss.ReplayOptions{ZeroCost: true})
		if i == failIdx {
			t.Do = func(ctx context.Context) error {
				<-gate
				return errGoldenPoison
			}
		} else {
			t.Do = func(ctx context.Context) error {
				<-gate
				return ctx.Err()
			}
		}
		if _, err := rt.Submit(ctx, t); err != nil {
			close(gate)
			rt.Close()
			return 0, 0, fmt.Errorf("submit task %d: %w", i, err)
		}
	}
	close(gate)
	if err := rt.Wait(ctx); err != nil && !errors.Is(err, errGoldenPoison) {
		rt.Close()
		return 0, 0, fmt.Errorf("wait: %w", err)
	}
	st := rt.Stats()
	if cerr := rt.Close(); cerr != nil && !errors.Is(cerr, errGoldenPoison) {
		return 0, 0, fmt.Errorf("close: %w", cerr)
	}
	return st.Failed, st.Skipped, nil
}

// Diff compares a committed golden (g) against a recomputed one and returns
// one human-readable line per divergent field — the readable Report diff the
// conformance gate prints. An empty slice means full conformance.
func (g *Golden) Diff(got *Golden) []string {
	var d []string
	line := func(format string, args ...any) { d = append(d, fmt.Sprintf(format, args...)) }
	if g.Case != got.Case || g.Workload != got.Workload || g.Workers != got.Workers || g.Seed != got.Seed {
		line("header: golden (%s %s workers=%d seed=%d) vs got (%s %s workers=%d seed=%d)",
			g.Case, g.Workload, g.Workers, g.Seed, got.Case, got.Workload, got.Workers, got.Seed)
	}
	o, p := g.Oracle, got.Oracle
	diffInt := func(name string, a, b int64) {
		if a != b {
			line("%s: golden %d, got %d", name, a, b)
		}
	}
	diffInt("oracle.tasks", int64(o.Tasks), int64(p.Tasks))
	diffInt("oracle.edges", int64(o.Edges), int64(p.Edges))
	diffInt("oracle.critical_path_ps", o.CriticalPathPs, p.CriticalPathPs)
	diffInt("oracle.total_work_ps", o.TotalWorkPs, p.TotalWorkPs)
	diffInt("oracle.max_width", int64(o.MaxWidth), int64(p.MaxWidth))
	diffInt("oracle.poison_index", int64(o.PoisonIndex), int64(p.PoisonIndex))
	diffInt("oracle.poison_skipped", int64(o.PoisonSkipped), int64(p.PoisonSkipped))
	byName := func(engines []GoldenEngine) map[string]GoldenEngine {
		m := make(map[string]GoldenEngine, len(engines))
		for _, e := range engines {
			m[e.Backend] = e
		}
		return m
	}
	want, have := byName(g.Engines), byName(got.Engines)
	for _, e := range g.Engines {
		h, ok := have[e.Backend]
		if !ok {
			line("engine %s: present in golden, missing from run", e.Backend)
			continue
		}
		pre := "engine " + e.Backend
		if e.Rejected != h.Rejected {
			line("%s.rejected: golden %q, got %q", pre, e.Rejected, h.Rejected)
			continue
		}
		if e.Simulated != h.Simulated {
			line("%s.simulated: golden %v, got %v", pre, e.Simulated, h.Simulated)
		}
		diffInt(pre+".tasks", int64(e.Tasks), int64(h.Tasks))
		diffInt(pre+".makespan_ps", e.MakespanPs, h.MakespanPs)
		if e.ScheduleOK != h.ScheduleOK {
			line("%s.schedule_ok: golden %v, got %v", pre, e.ScheduleOK, h.ScheduleOK)
		}
		diffInt(pre+".poison_failed", int64(e.PoisonFailed), int64(h.PoisonFailed))
		diffInt(pre+".poison_skipped", int64(e.PoisonSkipped), int64(h.PoisonSkipped))
	}
	for _, e := range got.Engines {
		if _, ok := want[e.Backend]; !ok {
			line("engine %s: present in run, missing from golden (regen needed for new engines)", e.Backend)
		}
	}
	return d
}

// GoldenPath returns the golden file path for a case name under dir.
func GoldenPath(dir, caseName string) string {
	return filepath.Join(dir, caseName+".json")
}

// ReadGolden loads one committed golden record.
func ReadGolden(path string) (*Golden, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var g Golden
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("golden %s: %w", path, err)
	}
	return &g, nil
}

// WriteGolden writes one golden record as stable, indented JSON.
func WriteGolden(path string, g *Golden) error {
	data, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
