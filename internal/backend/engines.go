package backend

// The five engine adapters. Three are simulated (they run on the
// discrete-event kernel and report simulated makespans): the Nexus++ model,
// the original-Nexus configuration of the same model, and the software-RTS
// model. Two execute for real (they run synthesized Go closures on worker
// goroutines and report wall time): the sharded runtime and the retained
// single-maestro baseline, both fed through the starss.Replay adapter.

import (
	"context"
	"fmt"

	"nexuspp/internal/core"
	"nexuspp/internal/nexus1"
	"nexuspp/internal/softrts"
	"nexuspp/internal/starss"
	"nexuspp/internal/workload"
)

func init() {
	Register(simBackend{
		name: "nexuspp",
		desc: "Nexus++ hardware task-management simulator (the paper's SSIII model, Table IV defaults)",
		conf: core.DefaultConfig,
	})
	Register(simBackend{
		name: "nexus",
		desc: "original-Nexus simulator (hard 5-param/kick-off limits, no double buffering; may reject workloads)",
		conf: nexus1.Config,
	})
	Register(softrtsBackend{})
	Register(replayBackend{
		name:    "runtime",
		desc:    "executing sharded StarSs runtime replaying the trace with synthesized Go task bodies",
		maestro: false,
	})
	Register(replayBackend{
		name:    "maestro",
		desc:    "executing single-resolver baseline runtime (every submit/finish funnels through one goroutine)",
		maestro: true,
	})
}

// simBackend adapts the shared hardware model (package core) under a
// configuration preset: the Nexus++ defaults or the original-Nexus limits.
type simBackend struct {
	name string
	desc string
	conf func(workers int) core.Config
}

func (b simBackend) Name() string     { return b.name }
func (b simBackend) Describe() string { return b.desc }

func (b simBackend) Run(ctx context.Context, cfg Config, src workload.Source) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ccfg := b.conf(cfg.Workers)
	ccfg.RecordSchedule = cfg.RecordSchedule
	res, err := core.Run(ccfg, src)
	if err != nil {
		return nil, fmt.Errorf("backend %s: %w", b.name, err)
	}
	return &Report{
		Backend:       b.name,
		Workload:      res.Workload,
		Workers:       cfg.Workers,
		Simulated:     true,
		Makespan:      res.Makespan,
		TasksExecuted: res.TasksExecuted,
		Detail:        res,
	}, nil
}

// softrtsBackend adapts the software-RTS model.
type softrtsBackend struct{}

func (softrtsBackend) Name() string { return "softrts" }
func (softrtsBackend) Describe() string {
	return "software StarSs runtime model (per-task master-core costs, no task controllers)"
}

func (b softrtsBackend) Run(ctx context.Context, cfg Config, src workload.Source) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scfg := softrts.DefaultConfig(cfg.Workers)
	scfg.RecordSchedule = cfg.RecordSchedule
	res, err := softrts.Run(scfg, src)
	if err != nil {
		return nil, fmt.Errorf("backend softrts: %w", err)
	}
	return &Report{
		Backend:       b.Name(),
		Workload:      res.Workload,
		Workers:       cfg.Workers,
		Simulated:     true,
		Makespan:      res.Makespan,
		TasksExecuted: res.TasksExecuted,
		Detail:        res,
	}, nil
}

// replayBackend drives a real executing runtime through the replay adapter.
type replayBackend struct {
	name    string
	desc    string
	maestro bool
}

func (b replayBackend) Name() string     { return b.name }
func (b replayBackend) Describe() string { return b.desc }

func (b replayBackend) Run(ctx context.Context, cfg Config, src workload.Source) (*Report, error) {
	cfg = cfg.withDefaults()
	var rt starss.TaskRuntime
	if b.maestro {
		rt = starss.NewMaestro(starss.Config{Workers: cfg.Workers, Window: 4096})
	} else {
		rt = starss.New(starss.Config{Workers: cfg.Workers, Window: 4096, Shards: cfg.Shards})
	}
	res, err := starss.Replay(ctx, rt, src, starss.ReplayOptions{
		ZeroCost:  cfg.ZeroCost,
		TimeScale: cfg.TimeScale,
	})
	cerr := rt.Close()
	if err != nil {
		return nil, fmt.Errorf("backend %s: %w", b.name, err)
	}
	if cerr != nil {
		return nil, fmt.Errorf("backend %s: %w", b.name, cerr)
	}
	if res.Stats.Failed != 0 || res.Stats.Skipped != 0 {
		return nil, fmt.Errorf("backend %s: replay poisoned tasks: %v", b.name, res.Stats)
	}
	return &Report{
		Backend:       b.name,
		Workload:      res.Workload,
		Workers:       cfg.Workers,
		Simulated:     false,
		Wall:          res.Wall,
		TasksExecuted: res.Stats.Executed,
		Detail:        res,
	}, nil
}
