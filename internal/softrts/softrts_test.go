package softrts

import (
	"testing"
	"testing/quick"

	"nexuspp/internal/core"
	"nexuspp/internal/depgraph"
	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

func cfg(workers int) Config {
	c := DefaultConfig(workers)
	c.RecordSchedule = true
	return c
}

func TestCompletesAndValidates(t *testing.T) {
	for _, p := range []workload.Pattern{
		workload.PatternIndependent, workload.PatternWavefront,
		workload.PatternHorizontal, workload.PatternVertical,
	} {
		src := workload.Grid(workload.GridConfig{Pattern: p, Rows: 10, Cols: 8, Seed: 3})
		res, err := Run(cfg(4), src)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.TasksExecuted != 80 {
			t.Fatalf("%v: executed %d", p, res.TasksExecuted)
		}
		g := depgraph.Build(src)
		if err := g.ValidateSchedule(res.Schedule); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

func TestGaussianValidates(t *testing.T) {
	src := workload.Gaussian(workload.GaussianConfig{N: 16})
	res, err := Run(cfg(4), src)
	if err != nil {
		t.Fatal(err)
	}
	g := depgraph.Build(src)
	if err := g.ValidateSchedule(res.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadWorkerCount(t *testing.T) {
	if _, err := Run(Config{Workers: 0}, workload.Independent(1)); err == nil {
		t.Fatal("accepted zero workers")
	}
}

func TestMasterBottleneckCapsScaling(t *testing.T) {
	// With ~5.2us of software cost per ~19us task, speedup must saturate
	// far below the worker count: the paper's motivating observation.
	mk := func() workload.Source {
		return workload.Grid(workload.GridConfig{Pattern: workload.PatternIndependent, Rows: 30, Cols: 20, Seed: 7})
	}
	one, err := Run(DefaultConfig(1), mk())
	if err != nil {
		t.Fatal(err)
	}
	sixteen, err := Run(DefaultConfig(16), mk())
	if err != nil {
		t.Fatal(err)
	}
	sp := float64(one.Makespan) / float64(sixteen.Makespan)
	if sp > 8 {
		t.Fatalf("software RTS speedup at 16 cores = %.1f, expected hard saturation", sp)
	}
	if sixteen.MasterUtilization < 0.8 {
		t.Fatalf("master utilization = %.2f, expected the RTS to be the bottleneck", sixteen.MasterUtilization)
	}
}

func TestHardwareBeatsSoftwareRTS(t *testing.T) {
	// The core comparison motivating the paper: at 16 workers, Nexus++
	// clearly outperforms the software runtime on the same workload.
	mk := func() workload.Source {
		return workload.Grid(workload.GridConfig{Pattern: workload.PatternIndependent, Rows: 30, Cols: 20, Seed: 7})
	}
	sw, err := Run(DefaultConfig(16), mk())
	if err != nil {
		t.Fatal(err)
	}
	hw, err := core.Run(core.DefaultConfig(16), mk())
	if err != nil {
		t.Fatal(err)
	}
	if float64(sw.Makespan) < 2*float64(hw.Makespan) {
		t.Fatalf("hardware (%v) should be >=2x faster than software RTS (%v)", hw.Makespan, sw.Makespan)
	}
}

func TestZeroCostConfigGetsDefaults(t *testing.T) {
	src := workload.Grid(workload.GridConfig{Pattern: workload.PatternIndependent, Rows: 2, Cols: 2, Seed: 1})
	res, err := Run(Config{Workers: 2, Mem: DefaultConfig(2).Mem}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksExecuted != 4 {
		t.Fatal("defaults not applied")
	}
}

// Property: the software runtime executes any random workload correctly.
func TestRandomWorkloadsValidateProperty(t *testing.T) {
	prop := func(seed uint64, wRaw, nRaw uint8) bool {
		rng := sim.NewRand(seed)
		workers := int(wRaw%5) + 1
		n := int(nRaw%30) + 1
		tasks := make([]trace.TaskSpec, n)
		for i := range tasks {
			tasks[i].ID = uint64(i)
			tasks[i].Exec = sim.Time(rng.Intn(3000)+100) * sim.Nanosecond
			tasks[i].MemRead = sim.Time(rng.Intn(400)) * sim.Nanosecond
			tasks[i].MemWrite = sim.Time(rng.Intn(400)) * sim.Nanosecond
			used := map[uint64]bool{}
			for k := 0; k <= rng.Intn(3); k++ {
				a := uint64(rng.Intn(6)+1) * 64
				if used[a] {
					continue
				}
				used[a] = true
				tasks[i].Params = append(tasks[i].Params, trace.Param{
					Addr: a, Size: 64, Mode: trace.AccessMode(rng.Intn(3)),
				})
			}
			if len(tasks[i].Params) == 0 {
				tasks[i].Params = []trace.Param{{Addr: 8, Size: 8, Mode: trace.InOut}}
			}
		}
		src := workload.FromTrace(&trace.Trace{Name: "prop", Tasks: tasks})
		res, err := Run(cfg(workers), src)
		if err != nil {
			return false
		}
		g := depgraph.Build(src)
		return g.ValidateSchedule(res.Schedule) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
