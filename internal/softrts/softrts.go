// Package softrts models the software StarSs runtime system that motivates
// hardware task management: the master core builds the task graph and
// attends to finished tasks in software, and previous work (the Nexus paper
// the Nexus++ paper builds on) showed it "cannot compute task dependencies
// and attend to finished tasks fast enough to keep all worker cores busy".
//
// The model charges a per-task software cost for adding a task to the graph
// and another for retiring it, both executed serially on the master core.
// Workers have no Task Controllers: each task's input fetch, execution and
// write-back are serial. Dependency semantics are identical to the hardware
// model (readers share, writers wait, WAR/WAW enforced without renaming),
// so the same workloads run unchanged.
package softrts

import (
	"fmt"

	"nexuspp/internal/depgraph"
	"nexuspp/internal/mem"
	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

// Config parameterises the software runtime model.
type Config struct {
	// Workers is the number of worker cores.
	Workers int
	// AddTaskCost is the master-side software cost of creating a task and
	// inserting it into the dependency graph (hashing every parameter,
	// allocating nodes). Defaults to 3us, calibrated so that an H.264-like
	// workload saturates around 4 cores as reported for the software RTS.
	AddTaskCost sim.Time
	// FinishCost is the master-side software cost of retiring a finished
	// task and waking its dependents. Defaults to 2.2us.
	FinishCost sim.Time
	// Mem configures the off-chip memory model.
	Mem mem.MemConfig
	// RecordSchedule keeps per-task intervals for oracle validation.
	RecordSchedule bool
}

// DefaultConfig returns the calibrated software-runtime configuration.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:     workers,
		AddTaskCost: 3 * sim.Microsecond,
		FinishCost:  2200 * sim.Nanosecond,
		Mem:         mem.DefaultMemConfig(),
	}
}

// Result reports a software-runtime simulation.
type Result struct {
	Workload      string
	Workers       int
	Makespan      sim.Time
	TasksExecuted uint64
	// MasterUtilization is the fraction of the makespan the master core
	// spent in runtime code — near 1.0 means the RTS is the bottleneck.
	MasterUtilization float64
	CoreUtilization   float64
	Schedule          []depgraph.Interval
}

// runtime state per memory segment, same semantics as the hardware
// Dependence Table but without capacity limits (software tables grow).
type segState struct {
	isOut bool
	rdrs  int
	ww    bool
	ko    []waiter
}

type waiter struct {
	task       int32
	wantsWrite bool
}

type taskState struct {
	spec trace.TaskSpec
	dc   int
}

type simulator struct {
	cfg    Config
	eng    *sim.Engine
	memory *mem.Memory
	src    workload.Source

	segs  map[uint64]*segState
	tasks map[int32]*taskState

	masterBusy    bool
	finishQ       *sim.FIFO[int32]
	readyQ        *sim.FIFO[int32]
	idleWorkers   *sim.FIFO[int]
	pendingSubmit bool

	nextID     int32
	finished   uint64
	total      int
	masterWork sim.Time
	execWork   sim.Time

	record   bool
	schedule []depgraph.Interval
	startAt  map[int32]sim.Time
}

// Run simulates src on the software runtime.
func Run(cfg Config, src workload.Source) (*Result, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("softrts: Workers = %d", cfg.Workers)
	}
	if cfg.AddTaskCost == 0 && cfg.FinishCost == 0 {
		def := DefaultConfig(cfg.Workers)
		cfg.AddTaskCost, cfg.FinishCost = def.AddTaskCost, def.FinishCost
	}
	src.Reset()
	eng := sim.NewEngine()
	s := &simulator{
		cfg:           cfg,
		eng:           eng,
		memory:        mem.NewMemory(eng, cfg.Mem),
		src:           src,
		segs:          make(map[uint64]*segState),
		tasks:         make(map[int32]*taskState),
		finishQ:       sim.NewFIFO[int32]("sw-finish", 1<<20),
		readyQ:        sim.NewFIFO[int32]("sw-ready", 1<<20),
		idleWorkers:   sim.NewFIFO[int]("sw-idle", cfg.Workers),
		total:         src.Total(),
		record:        cfg.RecordSchedule,
		pendingSubmit: true,
	}
	for i := 0; i < cfg.Workers; i++ {
		s.idleWorkers.MustPush(i)
	}
	if s.record {
		s.schedule = make([]depgraph.Interval, s.total)
		s.startAt = make(map[int32]sim.Time)
	}
	s.readyQ.OnData(s.dispatch)
	s.idleWorkers.OnData(s.dispatch)
	s.finishQ.OnData(s.kickMaster)
	eng.After(0, s.kickMaster)
	makespan := eng.Run()
	if s.finished != uint64(s.total) {
		return nil, fmt.Errorf("softrts: deadlock: %d of %d tasks finished", s.finished, s.total)
	}
	if len(s.segs) != 0 {
		return nil, fmt.Errorf("softrts: %d segment states leaked", len(s.segs))
	}
	res := &Result{
		Workload:      src.Name(),
		Workers:       cfg.Workers,
		Makespan:      makespan,
		TasksExecuted: s.finished,
	}
	if makespan > 0 {
		res.MasterUtilization = float64(s.masterWork) / float64(makespan)
		res.CoreUtilization = float64(s.execWork) / (float64(makespan) * float64(cfg.Workers))
	}
	if s.record {
		res.Schedule = s.schedule
	}
	return res, nil
}

// kickMaster runs the master core's runtime loop: retire finished tasks
// first, then add new ones.
func (s *simulator) kickMaster() {
	if s.masterBusy {
		return
	}
	if task, ok := s.finishQ.Pop(); ok {
		s.masterBusy = true
		s.masterWork += s.cfg.FinishCost
		s.eng.After(s.cfg.FinishCost, func() {
			s.retire(task)
			s.masterBusy = false
			s.kickMaster()
		})
		return
	}
	if !s.pendingSubmit {
		return
	}
	spec, ok := s.src.Next()
	if !ok {
		s.pendingSubmit = false
		return
	}
	s.masterBusy = true
	s.masterWork += s.cfg.AddTaskCost
	s.eng.After(s.cfg.AddTaskCost, func() {
		s.addTask(spec)
		s.masterBusy = false
		s.kickMaster()
	})
}

// addTask inserts a task into the graph (Listing 2 semantics).
func (s *simulator) addTask(spec trace.TaskSpec) {
	id := s.nextID
	s.nextID++
	st := &taskState{spec: spec}
	s.tasks[id] = st
	for _, p := range spec.Params {
		seg := s.segs[p.Addr]
		if seg == nil {
			seg = &segState{}
			s.segs[p.Addr] = seg
			if p.Mode.Writes() {
				seg.isOut = true
			} else {
				seg.rdrs = 1
			}
			continue
		}
		if !p.Mode.Writes() {
			if !seg.isOut && !seg.ww {
				seg.rdrs++
			} else {
				seg.ko = append(seg.ko, waiter{task: id})
				st.dc++
			}
			continue
		}
		seg.ko = append(seg.ko, waiter{task: id, wantsWrite: true})
		st.dc++
		if !seg.isOut {
			seg.ww = true
		}
	}
	if st.dc == 0 {
		s.readyQ.MustPush(id)
	}
}

// retire removes a finished task from the graph and wakes dependents.
func (s *simulator) retire(task int32) {
	st := s.tasks[task]
	for _, p := range st.spec.Params {
		seg := s.segs[p.Addr]
		if seg == nil {
			panic(fmt.Sprintf("softrts: finished task %d references unknown segment %#x", task, p.Addr))
		}
		var grants []int32
		if !p.Mode.Writes() {
			seg.rdrs--
			if seg.rdrs > 0 {
				continue
			}
			if !seg.ww {
				delete(s.segs, p.Addr)
				continue
			}
			w := seg.ko[0]
			seg.ko = seg.ko[1:]
			seg.isOut = true
			seg.ww = false
			grants = append(grants, w.task)
		} else {
			seg.isOut = false
			if len(seg.ko) == 0 {
				delete(s.segs, p.Addr)
				continue
			}
			if seg.ko[0].wantsWrite {
				w := seg.ko[0]
				seg.ko = seg.ko[1:]
				seg.isOut = true
				grants = append(grants, w.task)
			} else {
				for len(seg.ko) > 0 && !seg.ko[0].wantsWrite {
					w := seg.ko[0]
					seg.ko = seg.ko[1:]
					seg.rdrs++
					grants = append(grants, w.task)
				}
				if len(seg.ko) > 0 {
					seg.ww = true
				}
			}
		}
		for _, g := range grants {
			gst := s.tasks[g]
			gst.dc--
			if gst.dc == 0 {
				s.readyQ.MustPush(g)
			}
		}
	}
	delete(s.tasks, task)
	s.finished++
}

// dispatch hands ready tasks to idle workers.
func (s *simulator) dispatch() {
	for !s.readyQ.Empty() && !s.idleWorkers.Empty() {
		task, _ := s.readyQ.Pop()
		worker, _ := s.idleWorkers.Pop()
		s.runOn(worker, task)
	}
}

// runOn executes the task on a worker: serial fetch, execute, write back
// (no Task Controller, hence no overlap within the core).
func (s *simulator) runOn(worker int, task int32) {
	st := s.tasks[task]
	if s.record {
		s.startAt[task] = s.eng.Now()
	}
	s.memory.Access(st.spec.MemRead, func() {
		s.eng.After(st.spec.Exec, func() {
			s.execWork += st.spec.Exec
			s.memory.Access(st.spec.MemWrite, func() {
				if s.record {
					id := st.spec.ID
					s.schedule[id] = depgraph.Interval{Start: s.startAt[task], End: s.eng.Now()}
					delete(s.startAt, task)
				}
				s.finishQ.MustPush(task)
				s.idleWorkers.MustPush(worker)
			})
		})
	})
}
