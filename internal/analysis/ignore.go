package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// The suppression convention: a finding may be silenced with a line comment
//
//	//nexusvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the flagged line itself (trailing) or on the line
// directly above it. The reason is mandatory — a bare ignore is itself a
// finding — and so is the analyzer list: blanket suppressions are not
// accepted. An ignore that suppresses nothing is reported too, so stale
// suppressions cannot outlive the code they excused.
const ignorePrefix = "nexusvet:ignore"

// ignoreDirective is one parsed suppression comment.
type ignoreDirective struct {
	pos       token.Pos
	file      string
	line      int
	analyzers []string
	malformed string // non-empty: why the directive is invalid
	used      bool
}

// parseIgnores extracts every nexusvet:ignore directive from the files,
// validating analyzer names against known.
func parseIgnores(fset *token.FileSet, files []*ast.File, known []string) []*ignoreDirective {
	isKnown := func(name string) bool {
		for _, k := range known {
			if k == name {
				return true
			}
		}
		return false
	}
	var dirs []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Like //go: directives, the marker must follow // with no
				// space — "// nexusvet:ignore" is prose, not a directive.
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok || (text != "" && text[0] != ' ' && text[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &ignoreDirective{pos: c.Pos(), file: pos.Filename, line: pos.Line}
				names, reason, _ := strings.Cut(strings.TrimSpace(text), " ")
				switch {
				case names == "":
					d.malformed = "missing analyzer list and reason"
				case strings.TrimSpace(reason) == "":
					d.malformed = "missing reason (a suppression must say why)"
				default:
					for _, n := range strings.Split(names, ",") {
						if !isKnown(n) {
							d.malformed = fmt.Sprintf("unknown analyzer %q", n)
							break
						}
						d.analyzers = append(d.analyzers, n)
					}
				}
				dirs = append(dirs, d)
			}
		}
	}
	return dirs
}

// ApplyIgnores filters diags through the suppression comments found in
// files: a well-formed directive silences matching diagnostics on its own
// line and the line below. Malformed and unused directives are appended as
// diagnostics of the pseudo-analyzer "nexusvet", so the convention enforces
// itself.
func ApplyIgnores(fset *token.FileSet, files []*ast.File, diags []Diagnostic, known []string) []Diagnostic {
	dirs := parseIgnores(fset, files, known)
	if len(dirs) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range dirs {
			if dir.malformed != "" || dir.file != pos.Filename {
				continue
			}
			if pos.Line != dir.line && pos.Line != dir.line+1 {
				continue
			}
			for _, name := range dir.analyzers {
				if name == d.Analyzer {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		switch {
		case dir.malformed != "":
			kept = append(kept, Diagnostic{
				Pos:      dir.pos,
				Message:  "malformed nexusvet:ignore: " + dir.malformed,
				Analyzer: "nexusvet",
			})
		case !dir.used:
			kept = append(kept, Diagnostic{
				Pos:      dir.pos,
				Message:  "nexusvet:ignore suppresses nothing; delete the stale directive",
				Analyzer: "nexusvet",
			})
		}
	}
	return kept
}
