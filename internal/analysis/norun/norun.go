// Package norun retires the legacy Task.Run body. Run (no context, cannot
// fail) predates the handle/error redesign: a Run task cannot observe
// cancellation and can never poison its dependents with a root cause, so
// every Run use is a hole in the failure-propagation story. The field
// survives only for the compatibility adapter in internal/starss (Task.body
// adapts Run to Do), and that package's own tests, which pin the adapter's
// behaviour. Everywhere else, tasks must use Do(ctx) error.
package norun

import (
	"go/ast"

	"nexuspp/internal/analysis"
)

// starssPath is the one package allowed to mention Task.Run: the home of
// the compatibility adapter and of the tests that pin it.
const starssPath = "nexuspp/internal/starss"

// Analyzer flags every assignment to the legacy Task.Run field outside the
// compatibility adapter's package.
var Analyzer = &analysis.Analyzer{
	Name: "norun",
	Doc:  "the legacy Task.Run body is forbidden outside the starss compatibility adapter; use Do(ctx) error",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == starssPath {
		return nil
	}
	isTask := func(e ast.Expr) bool {
		return analysis.IsNamed(pass.TypesInfo.TypeOf(e), starssPath, "Task")
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if !isTask(n) {
					return true
				}
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Run" {
						pass.Reportf(kv.Pos(),
							"legacy Task.Run body outside the compatibility adapter; use Do: func(ctx context.Context) error so the task can observe cancellation and report failure")
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if ok && sel.Sel.Name == "Run" && isTask(sel.X) {
						pass.Reportf(sel.Pos(),
							"legacy Task.Run body outside the compatibility adapter; use Do: func(ctx context.Context) error so the task can observe cancellation and report failure")
					}
				}
			}
			return true
		})
	}
	return nil
}
