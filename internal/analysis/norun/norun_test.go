package norun

import (
	"testing"

	"nexuspp/internal/analysis/analysistest"
)

func TestNoRun(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "norun")
}
