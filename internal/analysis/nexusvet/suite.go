// Package nexusvet assembles the project's analyzer suite — the five
// statically enforced concurrency invariants documented in DESIGN.md
// ("Statically enforced invariants"). The drivers (cmd/nexusvet standalone
// mode and the go vet -vettool unit-checker protocol) both run exactly this
// list, so local runs and CI cannot disagree about what is checked.
package nexusvet

import (
	"nexuspp/internal/analysis"
	"nexuspp/internal/analysis/ctxflow"
	"nexuspp/internal/analysis/handleleak"
	"nexuspp/internal/analysis/lockorder"
	"nexuspp/internal/analysis/norun"
	"nexuspp/internal/analysis/scopedkey"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		handleleak.Analyzer,
		lockorder.Analyzer,
		norun.Analyzer,
		scopedkey.Analyzer,
	}
}
