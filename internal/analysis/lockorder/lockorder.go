// Package lockorder enforces the runtime's deadlock-freedom invariant: the
// lock-striped dependence-table banks may only be acquired in the sorted,
// deduplicated order that lockBanks derives via sortedUnique. In the
// Nexus++ hardware the Dependence Table banks are arbitrated by the memory
// fabric; in software nothing arbitrates two goroutines locking bank i then
// bank j against two locking j then i — except the global ascending
// acquisition order, which this analyzer makes a compile-time property.
//
// Two rules:
//
//  1. A mutex field reached through an index expression (a striped lock,
//     e.g. rt.banks[i].mu.Lock()) may only be locked inside the canonical
//     helpers lockBanks and unlockBanks.
//  2. No function may lock two distinct mutex fields of the same struct
//     type unless it also derives a sorted order (calls sortedUnique or
//     the sort/slices packages) — a helper acquiring two banks ad hoc is
//     exactly the lost-hardware-guarantee this suite exists to restore.
package lockorder

import (
	"go/ast"
	"go/types"

	"nexuspp/internal/analysis"
)

// Analyzer flags bank-striped mutex acquisitions that bypass the canonical
// sorted order.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "bank mutexes must be acquired via lockBanks in sortedUnique order",
	Run:  run,
}

// canonical names a function allowed to lock striped mutexes directly: the
// single helper pair whose loop body IS the sorted acquisition order.
func canonical(name string) bool {
	return name == "lockBanks" || name == "unlockBanks"
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// lockSite is one m.Lock() call on a sync.Mutex/RWMutex struct field.
type lockSite struct {
	pos      ast.Node
	baseText string // source text of the expression owning the mutex
	group    string // owning struct type + field name
	indexed  bool   // mutex reached through an index expression (striped)
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// indexVars tracks locals bound to one striped element,
	// b := &rt.banks[i], so b.mu.Lock() is recognised as an indexed lock.
	indexVars := make(map[types.Object]bool)
	sortsCalled := false
	var sites []lockSite

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
				if id, ok := n.Lhs[0].(*ast.Ident); ok && isIndexExpr(n.Rhs[0]) {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						indexVars[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			if isSortCall(pass, n) {
				sortsCalled = true
			}
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Lock" {
				return true
			}
			mutexField, ok := sel.X.(*ast.SelectorExpr)
			if !ok || !isSyncMutex(pass.TypesInfo.TypeOf(mutexField)) {
				return true
			}
			base := mutexField.X
			indexed := isIndexExpr(base)
			if id, ok := base.(*ast.Ident); ok && indexVars[pass.TypesInfo.Uses[id]] {
				indexed = true
			}
			sites = append(sites, lockSite{
				pos:      n,
				baseText: exprText(base),
				group:    groupKey(pass.TypesInfo.TypeOf(base), mutexField.Sel.Name),
				indexed:  indexed,
			})
		}
		return true
	})

	for _, s := range sites {
		if s.indexed && !canonical(fd.Name.Name) {
			pass.Reportf(s.pos.Pos(),
				"striped bank mutex locked directly in %s; banks may only be acquired through lockBanks, whose sortedUnique order keeps multi-bank locking deadlock-free",
				fd.Name.Name)
		}
	}
	if sortsCalled {
		return
	}
	// Rule 2: two locks on distinct same-typed mutex fields, no sort in
	// sight. Identical source text means a re-acquisition of one mutex
	// (lock/unlock/lock), which is a liveness question, not an ordering one.
	byGroup := make(map[string][]lockSite)
	for _, s := range sites {
		if s.group != "" {
			byGroup[s.group] = append(byGroup[s.group], s)
		}
	}
	for _, group := range byGroup {
		for _, s := range group[1:] {
			if s.baseText != group[0].baseText {
				pass.Reportf(s.pos.Pos(),
					"%s locks two %s mutexes without deriving a sorted order; derive the acquisition order with sortedUnique (or sort) as lockBanks does",
					fd.Name.Name, s.group)
				break
			}
		}
	}
}

// isIndexExpr reports whether e is (possibly &-of, possibly parenthesised)
// an index expression.
func isIndexExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.IndexExpr:
		return true
	case *ast.UnaryExpr:
		return isIndexExpr(e.X)
	case *ast.ParenExpr:
		return isIndexExpr(e.X)
	case *ast.StarExpr:
		return isIndexExpr(e.X)
	}
	return false
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	return analysis.IsNamed(t, "sync", "Mutex") || analysis.IsNamed(t, "sync", "RWMutex")
}

// groupKey names the (owning struct type, mutex field) pair so distinct
// instances of the same striped lock family compare equal.
func groupKey(owner types.Type, field string) string {
	if owner == nil {
		return ""
	}
	if p, ok := owner.(*types.Pointer); ok {
		owner = p.Elem()
	}
	n, ok := types.Unalias(owner).(*types.Named)
	if !ok {
		return ""
	}
	return n.Obj().Name() + "." + field
}

// isSortCall reports whether the call derives an order: sortedUnique, or
// anything from the sort/slices packages.
func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "sortedUnique"
	case *ast.SelectorExpr:
		if fun.Sel.Name == "sortedUnique" {
			return true
		}
		if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
			return obj.Pkg().Path() == "sort" || obj.Pkg().Path() == "slices"
		}
	}
	return false
}

// exprText renders the lock owner expression for same-mutex comparison;
// a conservative printer over the identifier/selector/index shapes locks
// are reached through.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprText(e.X) + "[" + exprText(e.Index) + "]"
	case *ast.UnaryExpr:
		return e.Op.String() + exprText(e.X)
	case *ast.ParenExpr:
		return "(" + exprText(e.X) + ")"
	case *ast.StarExpr:
		return "*" + exprText(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.CallExpr:
		return exprText(e.Fun) + "(…)"
	}
	return "?"
}
