package lockorder

import (
	"testing"

	"nexuspp/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "lockorder")
}
