// Package scopedkey guards the multi-tenant isolation boundary. The
// service layer shares one Runtime between every client session; isolation
// holds only because each session's keys are rewritten into a
// ScopedKey{Scope, Key} namespace by starss.Scope before they reach the
// shared dependence banks — the software analogue of per-master address
// spaces under the one hardware task manager. A single direct
// Runtime.Submit inside internal/service would let one tenant's raw keys
// alias another's, silently coupling their task graphs. This analyzer makes
// the detour through Scope mandatory.
package scopedkey

import (
	"go/ast"
	"strings"

	"nexuspp/internal/analysis"
)

const starssPath = "nexuspp/internal/starss"

// Analyzer forbids key-accepting *starss.Runtime calls inside the service
// layer; client keys must pass through starss.Scope.
var Analyzer = &analysis.Analyzer{
	Name: "scopedkey",
	Doc:  "inside internal/service, client keys must be namespaced via starss.Scope, never submitted raw to the shared Runtime",
	Run:  run,
}

// keyed is the set of Runtime methods that consume dependency keys and are
// therefore tenant-unsafe without scope rewriting. Lifecycle methods
// (Close, Stats, InFlight, …) take no keys and stay allowed.
var keyed = map[string]bool{
	"Submit":     true,
	"SubmitAll":  true,
	"MustSubmit": true,
	"WaitOn":     true,
}

func run(pass *analysis.Pass) error {
	if !strings.Contains(pass.Pkg.Path(), "internal/service") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !keyed[sel.Sel.Name] {
				return true
			}
			if analysis.IsNamed(pass.TypesInfo.TypeOf(sel.X), starssPath, "Runtime") {
				pass.Reportf(call.Pos(),
					"raw client keys reach the shared Runtime via Runtime.%s; in the service layer submit through starss.Scope (Runtime.Scope) so tenant keys are namespaced",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
