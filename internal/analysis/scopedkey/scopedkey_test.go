package scopedkey

import (
	"testing"

	"nexuspp/internal/analysis/analysistest"
)

func TestScopedKey(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "nexuspp/internal/service")
}

// Outside internal/service the same raw calls are fine; the fixture has
// no want comments, so any finding fails the test.
func TestScopedKeySkipsOtherPackages(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "unscoped")
}
