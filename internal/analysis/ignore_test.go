package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// load parses one synthetic file and returns it with its fset.
func load(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// diagAt fabricates a finding of analyzer a on the given 1-based line.
func diagAt(fset *token.FileSet, files []*ast.File, line int, a string) Diagnostic {
	file := fset.File(files[0].Pos())
	return Diagnostic{Pos: file.LineStart(line), Message: "finding", Analyzer: a}
}

var known = []string{"norun", "handleleak"}

func messages(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Analyzer+": "+d.Message)
	}
	return out
}

func TestIgnoreSuppressesSameLineAndLineBelow(t *testing.T) {
	fset, files := load(t, `package p

//nexusvet:ignore norun reasoned suppression on the line above
var a = 1
var b = 2 //nexusvet:ignore norun trailing form
`)
	diags := []Diagnostic{
		diagAt(fset, files, 4, "norun"), // line below the standalone directive
		diagAt(fset, files, 5, "norun"), // same line as the trailing directive
	}
	if got := ApplyIgnores(fset, files, diags, known); len(got) != 0 {
		t.Errorf("want all suppressed, got %v", messages(got))
	}
}

func TestIgnoreOnlyNamedAnalyzer(t *testing.T) {
	fset, files := load(t, `package p

//nexusvet:ignore norun wrong analyzer for this finding
var a = 1
`)
	diags := []Diagnostic{diagAt(fset, files, 4, "handleleak")}
	got := ApplyIgnores(fset, files, diags, known)
	// The handleleak finding survives, and the directive — having
	// suppressed nothing — is reported as stale.
	if len(got) != 2 {
		t.Fatalf("want finding + stale report, got %v", messages(got))
	}
	if got[0].Analyzer != "handleleak" {
		t.Errorf("original finding lost: %v", messages(got))
	}
	if got[1].Analyzer != "nexusvet" || !strings.Contains(got[1].Message, "suppresses nothing") {
		t.Errorf("stale directive not reported: %v", messages(got))
	}
}

func TestIgnoreAnalyzerList(t *testing.T) {
	fset, files := load(t, `package p

//nexusvet:ignore norun,handleleak one reason covering both findings
var a = 1
`)
	diags := []Diagnostic{diagAt(fset, files, 4, "norun"), diagAt(fset, files, 4, "handleleak")}
	if got := ApplyIgnores(fset, files, diags, known); len(got) != 0 {
		t.Errorf("want both suppressed, got %v", messages(got))
	}
}

func TestIgnoreRequiresReason(t *testing.T) {
	fset, files := load(t, `package p

//nexusvet:ignore norun
var a = 1
`)
	got := ApplyIgnores(fset, files, []Diagnostic{diagAt(fset, files, 4, "norun")}, known)
	// A reasonless directive suppresses nothing and is itself reported.
	if len(got) != 2 {
		t.Fatalf("want finding + malformed report, got %v", messages(got))
	}
	if got[1].Analyzer != "nexusvet" || !strings.Contains(got[1].Message, "missing reason") {
		t.Errorf("malformed directive not reported: %v", messages(got))
	}
}

func TestIgnoreRequiresKnownAnalyzer(t *testing.T) {
	fset, files := load(t, `package p

//nexusvet:ignore speling this analyzer does not exist
var a = 1
`)
	got := ApplyIgnores(fset, files, nil, known)
	if len(got) != 1 || !strings.Contains(got[0].Message, `unknown analyzer "speling"`) {
		t.Errorf("unknown analyzer not reported: %v", messages(got))
	}
}

func TestIgnoreRequiresAnalyzerList(t *testing.T) {
	fset, files := load(t, `package p

//nexusvet:ignore
var a = 1
`)
	got := ApplyIgnores(fset, files, nil, known)
	if len(got) != 1 || !strings.Contains(got[0].Message, "missing analyzer list") {
		t.Errorf("bare directive not reported: %v", messages(got))
	}
}

func TestIgnoreStaleDirectiveReported(t *testing.T) {
	fset, files := load(t, `package p

//nexusvet:ignore norun the code this excused is long gone
var a = 1
`)
	got := ApplyIgnores(fset, files, nil, known)
	if len(got) != 1 || !strings.Contains(got[0].Message, "suppresses nothing") {
		t.Errorf("stale directive not reported: %v", messages(got))
	}
}

func TestIgnoreProseIsNotADirective(t *testing.T) {
	fset, files := load(t, `package p

// nexusvet:ignore norun prose mention with a space is documentation
// Doc comments that merely discuss the nexusvet:ignore convention are
// not directives either.
var a = 1
`)
	diags := []Diagnostic{diagAt(fset, files, 6, "norun")}
	got := ApplyIgnores(fset, files, diags, known)
	if len(got) != 1 || got[0].Analyzer != "norun" {
		t.Errorf("prose comment treated as directive: %v", messages(got))
	}
}

func TestIgnoreDoesNotReachFurtherLines(t *testing.T) {
	fset, files := load(t, `package p

//nexusvet:ignore norun only covers the next line
var a = 1
var b = 2
`)
	diags := []Diagnostic{
		diagAt(fset, files, 4, "norun"),
		diagAt(fset, files, 5, "norun"), // two lines below: out of the directive's reach
	}
	got := ApplyIgnores(fset, files, diags, known)
	if len(got) != 1 || fset.Position(got[0].Pos).Line != 5 {
		t.Errorf("directive reach wrong: %v", messages(got))
	}
}
