// Package analysis is the dependency-free core of nexusvet, the project's
// static checker for the concurrency invariants the runtime relies on by
// convention: sorted bank-lock acquisition, handle-error consumption,
// context threading, scoped service keys, and the retirement of the legacy
// Task.Run body.
//
// It deliberately mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the analyzers read like standard vet
// checks, but it is implemented entirely on the standard library's go/ast,
// go/types and go/importer: the repository builds hermetically, with no
// module downloads, and the checker must too. cmd/nexusvet provides both a
// standalone driver and the `go vet -vettool=` unit-checker protocol on top
// of this package.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// nexusvet:ignore suppression comments. It must be a single
	// lower-case word.
	Name string
	// Doc is the one-line invariant statement shown by `nexusvet help`.
	Doc string
	// Run inspects one type-checked package and reports findings through
	// the pass. A returned error aborts the whole run (it signals a broken
	// analyzer, not a finding).
	Run func(*Pass) error
}

// Diagnostic is one finding, attributed to the analyzer that raised it.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}

// Package bundles one loaded, type-checked package for the drivers.
type Package struct {
	// Path is the package's import path with any test-variant annotation
	// ("pkg [pkg.test]") stripped; analyzers scope themselves by it.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info populated with every map the analyzers use.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Run executes the analyzers over one package, applies the
// nexusvet:ignore suppression convention, and returns the surviving
// diagnostics in position order.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	known := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		known = append(known, a.Name)
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = ApplyIgnores(pkg.Fset, pkg.Files, diags, known)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// IsNamed reports whether t (after stripping pointers and aliases) is the
// named type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
