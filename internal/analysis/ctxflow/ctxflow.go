// Package ctxflow enforces context threading on the runtime's blocking
// API. A function that receives a context.Context and then calls
// Submit/SubmitAll/Wait/WaitOn with context.Background() or context.TODO()
// has disconnected its caller's cancellation from the very operations that
// block on the in-flight window — the exact path PR 2 wired cancellation
// through. The fix is always the same: thread the parameter.
package ctxflow

import (
	"go/ast"
	"go/types"

	"nexuspp/internal/analysis"
)

// Analyzer flags runtime calls that replace an in-scope context parameter
// with context.Background or context.TODO.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "functions receiving a ctx must thread it into Submit/SubmitAll/Wait/WaitOn, not substitute context.Background/TODO",
	Run:  run,
}

// blocking is the set of runtime entry points whose context governs both
// admission blocking and task-body cancellation.
var blocking = map[string]bool{
	"Submit":    true,
	"SubmitAll": true,
	"Wait":      true,
	"WaitOn":    true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					if name, ok := ctxParam(pass, fn.Type); ok {
						checkScope(pass, fn.Body, name)
					}
				}
			case *ast.FuncLit:
				if name, ok := ctxParam(pass, fn.Type); ok {
					checkScope(pass, fn.Body, name)
				}
			}
			return true
		})
	}
	return nil
}

// ctxParam returns the name of the function's context.Context parameter.
func ctxParam(pass *analysis.Pass, ft *ast.FuncType) (string, bool) {
	if ft.Params == nil {
		return "", false
	}
	for _, field := range ft.Params.List {
		if !isContext(pass.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		if len(field.Names) == 0 || field.Names[0].Name == "_" {
			continue // unusable parameter; nothing to thread
		}
		return field.Names[0].Name, true
	}
	return "", false
}

func isContext(t types.Type) bool {
	return analysis.IsNamed(t, "context", "Context")
}

// checkScope walks one function body that has a usable ctx parameter.
// Nested function literals that declare their own context parameter are
// their own scope (the walk in run handles them); literals without one
// still see the outer parameter and stay part of this scope.
func checkScope(pass *analysis.Pass, body *ast.BlockStmt, ctxName string) {
	// freshVars tracks locals assigned from Background/TODO inside this
	// scope, so `ctx := context.Background(); rt.Submit(ctx, …)` is caught
	// the same as the inline form.
	freshVars := make(map[types.Object]string)
	skip := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if skip[n] {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if _, ok := ctxParam(pass, n.Type); ok {
				skip[n.Body] = true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				src, ok := backgroundCall(pass, rhs)
				if !ok {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						freshVars[obj] = src
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !blocking[sel.Sel.Name] {
				return true
			}
			for _, arg := range n.Args {
				if src, ok := backgroundCall(pass, arg); ok {
					pass.Reportf(arg.Pos(),
						"%s called with context.%s although the enclosing function receives a context parameter %q; thread %q so cancellation reaches the runtime",
						sel.Sel.Name, src, ctxName, ctxName)
					continue
				}
				if id, ok := arg.(*ast.Ident); ok {
					if src, ok := freshVars[pass.TypesInfo.Uses[id]]; ok {
						pass.Reportf(arg.Pos(),
							"%s called with a context derived from context.%s although the enclosing function receives a context parameter %q; thread %q so cancellation reaches the runtime",
							sel.Sel.Name, src, ctxName, ctxName)
					}
				}
			}
		}
		return true
	})
}

// backgroundCall reports whether e is a direct context.Background() or
// context.TODO() call, returning which.
func backgroundCall(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Background" && name != "TODO" {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	return name + "()", true
}
