package ctxflow

import (
	"testing"

	"nexuspp/internal/analysis/analysistest"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "ctxflow")
}
