// Package handleleak finds silently swallowed task failures. Every
// submission returns a *Handle — the software analogue of the hardware
// task ID — and the runtime's error story assumes each failure is observed
// somewhere: on the handle itself (Err/Done/Wait) or collectively at a
// barrier (Runtime.Wait, Close, WaitOn all return the first root-cause
// failure). A handle that is dropped in a function that never consults any
// of those sinks is a task whose poison vanishes; an ignored Close() error
// discards the one failure the whole run recorded.
//
// The analyzer reports, per function (including its nested literals):
//
//   - Submit/SubmitAll/MustSubmit results dropped outright or bound to the
//     blank identifier, unless the function consults a barrier-level error
//     (Wait/WaitOn/Close/Err used as a value) or hands the runtime itself
//     to another function (delegated shutdown);
//   - a named handle variable whose Err/Done/Wait is never consulted and
//     which escapes no further;
//   - a bare or deferred x.Close() statement on one of this module's
//     error-returning Close methods, unless the function consults a
//     barrier-level error elsewhere (then the dropped Close is shutdown,
//     not swallowing). Discarding is still possible, but must be
//     explicit: _ = x.Close().
package handleleak

import (
	"go/ast"
	"go/types"
	"strings"

	"nexuspp/internal/analysis"
)

const (
	starssPath = "nexuspp/internal/starss"
	modulePath = "nexuspp"
)

// Analyzer flags dropped task handles and ignored runtime Close errors.
var Analyzer = &analysis.Analyzer{
	Name: "handleleak",
	Doc:  "task handles must be consulted (Err/Done/Wait) or their failures observed via Wait/Close; Close errors must not be silently dropped",
	Run:  run,
}

// submitters are the methods returning handles; consulters are the Handle
// methods that observe an outcome; sinks are the barrier-level calls whose
// error carries the first task failure.
var (
	submitters = map[string]bool{"Submit": true, "SubmitAll": true, "MustSubmit": true}
	consulters = map[string]bool{"Err": true, "Done": true, "Wait": true}
	sinks      = map[string]bool{"Wait": true, "WaitOn": true, "Close": true}
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// checkFunc analyses one top-level function together with every function
// literal nested in it: handles submitted in a closure are routinely
// awaited (or Closed) by the enclosing function, so the function is the
// smallest honest scope.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	parents := buildParents(fd)

	// Pass 1: function-wide facts.
	hasSink := false                   // a barrier-level error is consulted somewhere
	escaped := map[types.Object]bool{} // idents passed to other functions
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					escaped[obj] = true
				}
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sinks[sel.Sel.Name] && valueUsed(parents, call) {
			hasSink = true
		}
		return true
	})

	// Pass 2: submission sites and Close statements.
	tracked := map[types.Object]ast.Node{} // handle var -> def site
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isModuleClose(pass, call, sel) && !valueUsed(parents, call) {
			// A function that already consults a barrier-level error
			// (Wait/WaitOn/another checked Close) has observed the run's
			// failure; its dropped Close is shutdown, not swallowing.
			if _, blanked := blankAssigned(parents, call); !blanked && !hasSink {
				pass.Reportf(call.Pos(),
					"%s.Close error dropped; Close reports the first task failure of the whole run — check it, or discard explicitly with _ = %s.Close()",
					exprText(sel.X), exprText(sel.X))
			}
			return true
		}
		if !submitters[sel.Sel.Name] || !returnsHandle(pass, call) {
			return true
		}
		excused := hasSink || receiverDelegated(pass, sel.X, escaped)
		switch parent := parents[call].(type) {
		case *ast.ExprStmt:
			if !excused {
				pass.Reportf(call.Pos(),
					"task handle from %s dropped and no task failure is observed in this function; consult the handle (Err/Done/Wait) or check the error of Runtime.Wait/Close",
					sel.Sel.Name)
			}
		case *ast.AssignStmt:
			target := assignTarget(parent, call)
			switch t := target.(type) {
			case *ast.Ident:
				if t.Name == "_" {
					if !excused {
						pass.Reportf(call.Pos(),
							"task handle from %s discarded as _ and no task failure is observed in this function; consult the handle or check the error of Runtime.Wait/Close",
							sel.Sel.Name)
					}
				} else if obj := pass.TypesInfo.Defs[t]; obj != nil && !excused {
					tracked[obj] = call
				}
			}
		}
		return true
	})

	// Pass 3: do tracked handle variables ever get consulted or escape?
	for len(tracked) > 0 {
		derived := map[types.Object]ast.Node{}
		verdict := map[types.Object]string{} // "" = leak
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			site, isTracked := tracked[obj]
			if !isTracked {
				return true
			}
			switch use := useKind(pass, parents, id); use {
			case useConsulted, useEscaped:
				verdict[obj] = "ok"
			case useRanged:
				// range h { … }: the element variable inherits the
				// obligation — a loop that only reads Name() still leaks.
				if rng, ok := climb(parents, id).(*ast.RangeStmt); ok {
					if v, ok := rng.Value.(*ast.Ident); ok && v.Name != "_" {
						if vobj := pass.TypesInfo.Defs[v]; vobj != nil {
							derived[vobj] = site
							verdict[obj] = "ok" // obligation moves to the element var
						}
					} else {
						verdict[obj] = "ok" // range with discarded element: indexing style; assume consulted
					}
				}
			}
			return true
		})
		for obj, site := range tracked {
			if verdict[obj] == "" {
				pass.Reportf(site.Pos(),
					"handle %q is never consulted (Err/Done/Wait) and does not escape; its task's failure would be silently swallowed",
					obj.Name())
			}
		}
		tracked = derived
	}
}

// useKind classifies one use of a tracked identifier.
type kind int

const (
	useNeutral kind = iota
	useConsulted
	useEscaped
	useRanged
)

func useKind(pass *analysis.Pass, parents map[ast.Node]ast.Node, id *ast.Ident) kind {
	var cur ast.Node = id
	for {
		parent := parents[cur]
		switch p := parent.(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.IndexExpr:
			if p.X == cur {
				cur = p
				continue
			}
			return useNeutral
		case *ast.SelectorExpr:
			if p.X == cur && consulters[p.Sel.Name] {
				return useConsulted
			}
			return useNeutral
		case *ast.RangeStmt:
			if p.X == cur {
				return useRanged
			}
			return useNeutral
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg == cur {
					return useEscaped
				}
			}
			return useNeutral
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			return useEscaped
		case *ast.UnaryExpr:
			if p.Op.String() == "&" {
				return useEscaped
			}
			return useNeutral
		case *ast.AssignStmt:
			for _, rhs := range p.Rhs {
				if rhs == cur {
					return useEscaped // stored somewhere else; stop tracking
				}
			}
			return useNeutral
		default:
			return useNeutral
		}
	}
}

// climb returns the nearest non-expression ancestor of id.
func climb(parents map[ast.Node]ast.Node, id *ast.Ident) ast.Node {
	cur := parents[id]
	for {
		if _, ok := cur.(ast.Stmt); ok {
			return cur
		}
		next := parents[cur]
		if next == nil {
			return cur
		}
		cur = next
	}
}

// buildParents records each node's parent within the function.
func buildParents(fd *ast.FuncDecl) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// valueUsed reports whether the call's results are consumed: anything but a
// statement position or an all-blank assignment.
func valueUsed(parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	switch parent := parents[call].(type) {
	case *ast.ExprStmt:
		return false
	case *ast.DeferStmt, *ast.GoStmt:
		return false
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
				return true
			}
		}
		return false
	}
	return true
}

// blankAssigned reports whether the call sits in an assignment whose
// targets are all blank — the explicit-discard form.
func blankAssigned(parents map[ast.Node]ast.Node, call *ast.CallExpr) (*ast.AssignStmt, bool) {
	parent, ok := parents[call].(*ast.AssignStmt)
	if !ok {
		return nil, false
	}
	for _, lhs := range parent.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return parent, false
		}
	}
	return parent, true
}

// assignTarget returns the LHS expression bound to the call's first result
// (the handle position of Submit/SubmitAll, the only result of MustSubmit).
func assignTarget(assign *ast.AssignStmt, call *ast.CallExpr) ast.Expr {
	if len(assign.Rhs) == 1 {
		if len(assign.Lhs) > 0 && assign.Rhs[0] == call {
			return assign.Lhs[0]
		}
		return nil
	}
	for i, rhs := range assign.Rhs {
		if rhs == call && i < len(assign.Lhs) {
			return assign.Lhs[i]
		}
	}
	return nil
}

// returnsHandle reports whether the call's result type involves
// *starss.Handle (directly, in a slice, or as the first element of a
// tuple).
func returnsHandle(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	if tup, ok := t.(*types.Tuple); ok && tup.Len() > 0 {
		t = tup.At(0).Type()
	}
	if s, ok := t.(*types.Slice); ok {
		t = s.Elem()
	}
	return analysis.IsNamed(t, starssPath, "Handle")
}

// isModuleClose reports whether the call is x.Close() on an error-returning
// Close method declared in this module.
func isModuleClose(pass *analysis.Pass, call *ast.CallExpr, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "Close" {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if path != modulePath && !strings.HasPrefix(path, modulePath+"/") {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	return types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type())
}

// receiverDelegated reports whether the submit receiver is handed to some
// other function in this scope — shutdown helpers (mustClose(t, rt)) carry
// the error-observation duty with them. A non-identifier receiver (s.rt)
// is conservatively treated as delegated.
func receiverDelegated(pass *analysis.Pass, recv ast.Expr, escaped map[types.Object]bool) bool {
	id, ok := recv.(*ast.Ident)
	if !ok {
		return true
	}
	obj := pass.TypesInfo.Uses[id]
	return obj == nil || escaped[obj]
}

// exprText renders a receiver expression for diagnostics.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprText(e.Fun) + "()"
	case *ast.IndexExpr:
		return exprText(e.X) + "[…]"
	}
	return "x"
}
