package handleleak

import (
	"testing"

	"nexuspp/internal/analysis/analysistest"
)

func TestHandleLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer, "handleleak")
}
