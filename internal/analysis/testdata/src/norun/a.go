// Fixture for the norun analyzer: the legacy Task.Run body is forbidden
// outside the starss compatibility adapter. Also exercises the
// nexusvet:ignore convention end to end: the suppressed site below must
// stay silent, and the directive must not be reported as stale.
package norun

import (
	"context"

	"nexuspp/internal/starss"
)

func modern(rt *starss.Runtime) *starss.Handle {
	return rt.MustSubmit(starss.Task{
		Do: func(context.Context) error { return nil },
	})
}

func literal(rt *starss.Runtime) *starss.Handle {
	return rt.MustSubmit(starss.Task{
		Run: func() {}, // want "legacy Task.Run body outside the compatibility adapter"
	})
}

func assigned() starss.Task {
	var t starss.Task
	t.Run = func() {} // want "legacy Task.Run body outside the compatibility adapter"
	return t
}

// A reasoned suppression silences the finding without a want here; if
// suppression broke, the diagnostic would surface as unexpected, and if
// the directive went stale, the stale report would surface instead.
func suppressed(rt *starss.Runtime) *starss.Handle {
	//nexusvet:ignore norun pinned legacy form: this fixture asserts the suppression convention works
	return rt.MustSubmit(starss.Task{Run: func() {}})
}

// A func-typed field that is not starss.Task stays out of scope.
type job struct{ Run func() }

func unrelated() job {
	return job{Run: func() {}}
}
