// Fixture for the ctxflow analyzer: a function holding a context
// parameter must thread it into the runtime's blocking calls instead of
// substituting context.Background/TODO.
package ctxflow

import (
	"context"

	"nexuspp/internal/starss"
)

func bad(ctx context.Context, rt *starss.Runtime) {
	rt.Wait(context.Background()) // want "Wait called with context.Background"
}

func badTODO(ctx context.Context, rt *starss.Runtime) {
	rt.WaitOn(context.TODO(), "k") // want "WaitOn called with context.TODO"
}

// A local derived from Background is caught like the inline form.
func badFresh(ctx context.Context, rt *starss.Runtime) error {
	c := context.Background()
	_, err := rt.Submit(c, starss.Task{}) // want "Submit called with a context derived from context.Background"
	return err
}

func good(ctx context.Context, rt *starss.Runtime) error {
	return rt.Wait(ctx)
}

// No context parameter in scope: Background is the only honest choice.
func noParam(rt *starss.Runtime) {
	rt.Wait(context.Background())
}

// A nested literal with its own context parameter is its own scope...
func nested(ctx context.Context, rt *starss.Runtime) func(context.Context) error {
	return func(inner context.Context) error {
		return rt.Wait(context.Background()) // want "Wait called with context.Background"
	}
}

// ...but a literal without one still sees the outer parameter.
func nestedInherits(ctx context.Context, rt *starss.Runtime) func() error {
	return func() error {
		return rt.Wait(context.Background()) // want "Wait called with context.Background"
	}
}
