// Package sort is a fixture stub shadowing the standard library for
// analyzer tests.
package sort

func Ints(x []int) {}
