// Package context is a fixture stub shadowing the standard library for
// analyzer tests.
package context

type Context interface {
	Done() <-chan struct{}
	Err() error
}

func Background() Context { return nil }
func TODO() Context       { return nil }
