// Fixture for the scopedkey analyzer, placed at the real service path so
// the analyzer's package-path scoping applies: raw client keys must pass
// through starss.Scope before reaching the shared Runtime.
package service

import (
	"context"

	"nexuspp/internal/starss"
)

type server struct {
	rt    *starss.Runtime
	scope *starss.Scope
}

func (s *server) submitRaw(ctx context.Context, t starss.Task) error {
	_, err := s.rt.Submit(ctx, t) // want "raw client keys reach the shared Runtime via Runtime.Submit"
	return err
}

func (s *server) submitBatchRaw(ctx context.Context, ts []starss.Task) error {
	_, err := s.rt.SubmitAll(ctx, ts) // want "raw client keys reach the shared Runtime via Runtime.SubmitAll"
	return err
}

func (s *server) waitRaw(ctx context.Context, k starss.Key) error {
	return s.rt.WaitOn(ctx, k) // want "raw client keys reach the shared Runtime via Runtime.WaitOn"
}

// The sanctioned detour: keys are namespaced by the session's scope.
func (s *server) submitScoped(ctx context.Context, t starss.Task) error {
	_, err := s.scope.Submit(ctx, t)
	return err
}

func (s *server) waitScoped(ctx context.Context, k starss.Key) error {
	return s.scope.WaitOn(ctx, k)
}

// Keyless lifecycle methods never carry tenant keys and stay allowed.
func (s *server) shutdown(ctx context.Context) error {
	if err := s.rt.Wait(ctx); err != nil {
		return err
	}
	return s.rt.Close()
}
