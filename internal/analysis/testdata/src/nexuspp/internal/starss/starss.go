// Package starss is a type-level stub of the real runtime for analyzer
// fixtures: package path, type names, method sets and signatures match
// nexuspp/internal/starss (the analyzers dispatch on all four), bodies
// are empty.
package starss

import (
	"context"

	"nexuspp/internal/obs"
)

type Key = any

type Mode int

type Dep struct {
	Key  Key
	Mode Mode
}

func In(k Key) Dep    { return Dep{Key: k} }
func Out(k Key) Dep   { return Dep{Key: k} }
func InOut(k Key) Dep { return Dep{Key: k} }

type Task struct {
	Name string
	Deps []Dep
	Do   func(context.Context) error
	Run  func()
}

type Handle struct{ name string }

func (h *Handle) Name() string                   { return h.name }
func (h *Handle) Err() error                     { return nil }
func (h *Handle) Done() <-chan struct{}          { return nil }
func (h *Handle) Wait(ctx context.Context) error { return nil }

type Config struct{ Workers int }

type Runtime struct{ closed bool }

func New(cfg Config) *Runtime { return &Runtime{} }

func (rt *Runtime) Submit(ctx context.Context, t Task) (*Handle, error)            { return nil, nil }
func (rt *Runtime) SubmitAll(ctx context.Context, tasks []Task) ([]*Handle, error) { return nil, nil }
func (rt *Runtime) MustSubmit(t Task) *Handle                                      { return nil }
func (rt *Runtime) Wait(ctx context.Context) error                                 { return nil }
func (rt *Runtime) WaitOn(ctx context.Context, keys ...Key) error                  { return nil }
func (rt *Runtime) Close() error                                                   { return nil }
func (rt *Runtime) Scope(name string) *Scope                                       { return nil }
func (rt *Runtime) Events() *obs.Recorder                                          { return nil }

type Scope struct{ rt *Runtime }

func (s *Scope) Submit(ctx context.Context, t Task) (*Handle, error)            { return nil, nil }
func (s *Scope) SubmitAll(ctx context.Context, tasks []Task) ([]*Handle, error) { return nil, nil }
func (s *Scope) WaitOn(ctx context.Context, keys ...Key) error                  { return nil }
