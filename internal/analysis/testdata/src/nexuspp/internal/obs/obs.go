// Package obs is a type-level stub of the real observability layer for
// analyzer fixtures: the Recorder's drain API deliberately has no
// error-returning Close, so handleleak fixtures can pin that draining the
// event stream carries no handle- or Close-style obligation.
package obs

type Kind uint8

type Event struct {
	Kind   Kind
	Task   uint64
	Keys   int
	Bank   int
	Worker int
	TS     int64
}

type Recorder struct{}

func (r *Recorder) Drain() []Event    { return nil }
func (r *Recorder) Dropped() uint64   { return 0 }
func (r *Recorder) Lanes() int        { return 0 }
func (r *Recorder) ExternalLane() int { return 0 }
