// Negative fixture for the scopedkey analyzer: identical raw Runtime
// calls outside internal/service are legitimate (examples, benchmarks,
// the facade) and must produce no findings — this file carries no want
// comments on purpose.
package unscoped

import (
	"context"

	"nexuspp/internal/starss"
)

func direct(ctx context.Context, rt *starss.Runtime, t starss.Task) error {
	if _, err := rt.Submit(ctx, t); err != nil {
		return err
	}
	return rt.WaitOn(ctx, "raw-key")
}
