// Fixture for the lockorder analyzer: striped bank mutexes may only be
// locked inside lockBanks/unlockBanks, and no function may lock two
// same-family mutexes without deriving a sorted order first.
package lockorder

import (
	"sort"
	"sync"
)

type bank struct {
	mu   sync.Mutex
	segs map[int]int
}

type runtime struct {
	banks []bank
}

// Rule 1: a striped lock outside the canonical helpers.
func (rt *runtime) bad(i int) {
	rt.banks[i].mu.Lock() // want "striped bank mutex locked directly in bad"
	rt.banks[i].mu.Unlock()
}

// A local alias of a striped element is still a striped lock.
func (rt *runtime) badAlias(i int) {
	b := &rt.banks[i]
	b.mu.Lock() // want "striped bank mutex locked directly in badAlias"
	b.mu.Unlock()
}

// The canonical helper pair is the one place striped locking is allowed.
func (rt *runtime) lockBanks(idx []int) {
	for _, i := range idx {
		rt.banks[i].mu.Lock()
	}
}

func (rt *runtime) unlockBanks(idx []int) {
	for _, i := range idx {
		rt.banks[i].mu.Unlock()
	}
}

type account struct {
	mu      sync.Mutex
	balance int
}

// Rule 2: two distinct mutexes of one struct family, no order derived —
// the classic transfer deadlock.
func transferBad(a, b *account) {
	a.mu.Lock()
	b.mu.Lock() // want "locks two account.mu mutexes without deriving a sorted order"
	b.balance += a.balance
	a.balance = 0
	b.mu.Unlock()
	a.mu.Unlock()
}

// Deriving an order with the sort package satisfies rule 2.
func transferSorted(a, b *account, order []int) {
	sort.Ints(order)
	a.mu.Lock()
	b.mu.Lock()
	b.balance += a.balance
	a.balance = 0
	b.mu.Unlock()
	a.mu.Unlock()
}

// Re-acquiring the same mutex is a liveness question, not an ordering one.
func reacquire(a *account) {
	a.mu.Lock()
	a.balance++
	a.mu.Unlock()
	a.mu.Lock()
	a.balance--
	a.mu.Unlock()
}
