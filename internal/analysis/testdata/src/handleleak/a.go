// Fixture for the handleleak analyzer: every submission's failure must
// be observable — on the handle, at a barrier, or via a delegated
// shutdown — and module Close errors must not be silently dropped.
package handleleak

import (
	"context"

	"nexuspp/internal/starss"
)

// A handle dropped in a function that observes no failure anywhere.
func dropped(rt *starss.Runtime) {
	rt.MustSubmit(starss.Task{}) // want "task handle from MustSubmit dropped"
}

// Discarding as _ is the same leak, spelled louder.
func blankDiscard(ctx context.Context, rt *starss.Runtime) {
	_, _ = rt.Submit(ctx, starss.Task{}) // want "task handle from Submit discarded as _"
}

// A named handle that is only used neutrally never observes its task.
func neverConsulted(rt *starss.Runtime) {
	h := rt.MustSubmit(starss.Task{}) // want "handle \"h\" is never consulted"
	println(h.Name())
}

// Consulting the handle discharges the obligation.
func consulted(rt *starss.Runtime) error {
	h := rt.MustSubmit(starss.Task{})
	return h.Err()
}

// So does escaping: the caller inherits the handle.
func escapes(rt *starss.Runtime) *starss.Handle {
	return rt.MustSubmit(starss.Task{})
}

// A checked barrier observes every task failure in the function.
func barrier(ctx context.Context, rt *starss.Runtime) error {
	rt.MustSubmit(starss.Task{})
	return rt.Wait(ctx)
}

// Handing the runtime to a helper delegates the observation duty.
func delegated(rt *starss.Runtime) {
	defer shutdown(rt)
	rt.MustSubmit(starss.Task{})
}

func shutdown(rt *starss.Runtime) {
	_ = rt.Close()
}

// Ranging over a batch moves the obligation to the element variable.
func batchLeaks(ctx context.Context, rt *starss.Runtime) {
	hs, err := rt.SubmitAll(ctx, nil) // want "handle \"h\" is never consulted"
	if err != nil {
		return
	}
	for _, h := range hs {
		println(h.Name())
	}
}

func batchConsulted(ctx context.Context, rt *starss.Runtime) error {
	hs, err := rt.SubmitAll(ctx, nil)
	if err != nil {
		return err
	}
	for _, h := range hs {
		if err := h.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close is the run's last barrier; dropping its error swallows the one
// failure the whole run recorded.
func closeDropped(rt *starss.Runtime) {
	rt.Close() // want "rt.Close error dropped"
}

func closeDeferred(rt *starss.Runtime) {
	defer rt.Close() // want "rt.Close error dropped"
}

// Discarding explicitly is allowed — the reader sees the decision.
func closeExplicit(rt *starss.Runtime) {
	_ = rt.Close()
}

// A dropped Close after a checked barrier is shutdown, not swallowing.
func closeAfterBarrier(ctx context.Context, rt *starss.Runtime) error {
	defer rt.Close()
	return rt.Wait(ctx)
}

// The event stream carries no obligation: Recorder.Drain returns data, not
// an error, and the recorder has no Close — draining (or not draining) must
// never be flagged. The handle duty is unchanged and discharged here by the
// checked barrier.
func drainEvents(ctx context.Context, rt *starss.Runtime) error {
	rt.MustSubmit(starss.Task{})
	if err := rt.Wait(ctx); err != nil {
		return err
	}
	events := rt.Events().Drain()
	_ = rt.Events().Dropped()
	_ = events
	return nil
}

// Dropping the drained slice outright is equally fine — events are
// diagnostics, not completion state.
func drainDiscarded(rt *starss.Runtime) {
	defer shutdown(rt)
	rt.MustSubmit(starss.Task{})
	rt.Events().Drain()
}
