// Package sync is a fixture stub shadowing the standard library for
// analyzer tests: same type and method names, empty bodies.
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()   {}
func (m *Mutex) Unlock() {}

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}
