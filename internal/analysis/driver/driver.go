// Package driver loads and type-checks packages for the nexusvet analyzer
// suite using only the standard library and the go command.
//
// The standalone loader shells out to `go list -test -export -deps -json`,
// which compiles dependencies and hands back gc export data for every
// import; each target package is then parsed from source and type-checked
// with go/importer's lookup-based gc importer. No network, no module
// downloads, no golang.org/x/tools — the same hermetic constraint as the
// rest of the repository.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"nexuspp/internal/analysis"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	ForTest    string
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// cleanPath strips the test-variant annotation: "p [p.test]" -> "p".
func cleanPath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// goList runs the go command and decodes the package stream.
func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-test", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,ForTest,DepOnly,GoFiles,ImportMap,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Run executes the analyzers over the packages matched by patterns,
// printing diagnostics to out. It returns 0 when clean, 2 when findings
// were reported, 1 on load or type-check failure.
func Run(out io.Writer, analyzers []*analysis.Analyzer, patterns []string) int {
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintln(out, err)
		return 1
	}
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	// Pick one entry per import path: the test variant when it exists
	// (its GoFiles include the in-package _test.go files), else the base.
	targets := make(map[string]*listPackage)
	for _, p := range pkgs {
		if p.Module == nil || p.Error != nil || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		base := cleanPath(p.ImportPath)
		if cur, ok := targets[base]; !ok || (p.ForTest != "" && cur.ForTest == "") {
			targets[base] = p
		}
	}
	order := make([]string, 0, len(targets))
	for path := range targets {
		order = append(order, path)
	}
	sort.Strings(order) // deterministic output order
	exit := 0
	for _, path := range order {
		p := targets[path]
		lookup := func(importPath string) (io.ReadCloser, error) {
			resolved := importPath
			if mapped, ok := p.ImportMap[importPath]; ok {
				resolved = mapped
			}
			file, ok := exports[resolved]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", resolved)
			}
			return os.Open(file)
		}
		diags, err := checkPackage(path, p.Dir, p.GoFiles, lookup, analyzers, "")
		if err != nil {
			fmt.Fprintf(out, "%s: %v\n", path, err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
		if len(diags) > 0 && exit == 0 {
			exit = 2
		}
	}
	return exit
}

// checkPackage parses and type-checks one package from source, resolving
// imports through lookup, and runs the analyzers. goVersion, when
// non-empty, pins the language version (the vet protocol supplies it).
// Returned diagnostics are fully rendered "file:line:col: message [name]"
// strings.
func checkPackage(path, dir string, goFiles []string, lookup func(string) (io.ReadCloser, error),
	analyzers []*analysis.Analyzer, goVersion string) ([]string, error) {

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		if !filepath.IsAbs(name) && dir != "" {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	var typeErr error
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: goVersion,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	info := analysis.NewInfo()
	tpkg, _ := conf.Check(path, fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("type-checking failed: %v", typeErr)
	}
	pkg := &analysis.Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := analysis.Run(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	rendered := make([]string, len(diags))
	for i, d := range diags {
		rendered[i] = fmt.Sprintf("%s: %s [%s]", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	return rendered, nil
}
