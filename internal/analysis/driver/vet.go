package driver

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"nexuspp/internal/analysis"
)

// The `go vet -vettool=` unit-checker protocol, reimplemented on the
// standard library. cmd/go drives the tool in three ways:
//
//	tool -V=full        print an identification line (build cache key)
//	tool -flags         print the tool's analyzer flags as JSON
//	tool <file>.cfg     analyze one package described by the JSON config
//
// The config carries the file set of exactly one package plus the export
// data of everything it imports (PackageFile/ImportMap), so a unit check
// needs no go/packages machinery at all. Facts (vetx files) exist in the
// protocol for analyzers that exchange information across packages; this
// suite is fact-free, so the tool writes an empty vetx and skips
// VetxOnly (dependency-prepass) invocations entirely.

// vetConfig mirrors the JSON written by cmd/go for a vet tool run.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point shared by both driver modes; cmd/nexusvet calls
// it with the full suite. It returns the process exit code.
func Main(args []string, stdout, stderr io.Writer, analyzers []*analysis.Analyzer) int {
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "-V":
			// cmd/go hashes this line into the build cache key; bump the
			// version when analyzer behaviour changes to invalidate cached
			// vet results.
			fmt.Fprintln(stdout, "nexusvet version v1.0.0")
			return 0
		case "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case "help", "-help", "--help":
			printHelp(stdout, analyzers)
			return 0
		}
		if len(args[0]) > 4 && args[0][len(args[0])-4:] == ".cfg" {
			return vetUnit(args[0], stderr, analyzers)
		}
	}
	if len(args) == 0 {
		printHelp(stderr, analyzers)
		return 1
	}
	return Run(stderr, analyzers, args)
}

func printHelp(w io.Writer, analyzers []*analysis.Analyzer) {
	fmt.Fprintln(w, "nexusvet statically enforces the runtime's concurrency invariants.")
	fmt.Fprintln(w, "\nusage:")
	fmt.Fprintln(w, "  nexusvet ./...                     standalone run over packages")
	fmt.Fprintln(w, "  go vet -vettool=$(which nexusvet) ./...   as a vet tool (CI gate)")
	fmt.Fprintln(w, "\nanalyzers:")
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintln(w, "\nsuppression (reason mandatory, same line or the line above):")
	fmt.Fprintln(w, "  //nexusvet:ignore <analyzer>[,<analyzer>] <reason>")
}

// vetUnit analyzes the single package described by a cmd/go vet config.
func vetUnit(cfgPath string, stderr io.Writer, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "nexusvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "nexusvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The vetx file must exist even when empty: cmd/go caches it as the
	// package's facts output.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}
	lookup := func(importPath string) (io.ReadCloser, error) {
		resolved := importPath
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			resolved = mapped
		}
		file, ok := cfg.PackageFile[resolved]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", resolved)
		}
		return os.Open(file)
	}
	diags, err := checkPackage(cleanPath(cfg.ImportPath), cfg.Dir, cfg.GoFiles, lookup, analyzers, cfg.GoVersion)
	writeVetx()
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "nexusvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
