// Package analysistest runs one analyzer over a fixture package under
// testdata/src and checks its diagnostics against `// want "regex"`
// comments in the fixture sources — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the standard
// library so the checker's tests are as hermetic as the checker.
//
// Every import in a fixture resolves from testdata/src too, including
// "sync" and "context": the stubs there shadow the real standard library.
// That keeps fixtures self-contained and lets them live at the real
// package paths the analyzers scope themselves by (nexuspp/internal/...).
//
// The want contract doubles as the negative control the suite requires:
// a fixture line carrying `// want` fails the test when the analyzer is
// disabled or broken, because the expected diagnostic never arrives.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"nexuspp/internal/analysis"
)

// TestData returns the shared fixture root, internal/analysis/testdata,
// resolved relative to the calling analyzer package's directory.
func TestData() string {
	return filepath.Join("..", "testdata")
}

// Run loads testdata/src/<path>, applies exactly one analyzer, and
// reports any divergence between its diagnostics and the fixture's
// `// want` expectations as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		root: filepath.Join(testdata, "src"),
		fset: fset,
		pkgs: make(map[string]*types.Package),
	}
	files, err := parseDir(fset, filepath.Join(imp.root, filepath.FromSlash(path)))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", path, err)
	}
	diags, err := analysis.Run(&analysis.Package{
		Path: path, Fset: fset, Files: files, Types: tpkg, Info: info,
	}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		if !wants.match(k, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	wants.reportUnmatched(t)
}

type key struct {
	file string
	line int
}

type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

type wantSet map[key][]*want

// match consumes one expectation at k whose regexp matches msg.
func (ws wantSet) match(k key, msg string) bool {
	for _, w := range ws[k] {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	var misses []*want
	for _, list := range ws {
		for _, w := range list {
			if !w.matched {
				misses = append(misses, w)
			}
		}
	}
	sort.Slice(misses, func(i, j int) bool {
		a, b := misses[i].pos, misses[j].pos
		return a.Filename < b.Filename || (a.Filename == b.Filename && a.Line < b.Line)
	})
	for _, w := range misses {
		t.Errorf("%s: expected diagnostic matching %q was not reported", w.pos, w.re)
	}
}

// wantRx extracts the Go-quoted regexp operands of a want comment.
var wantRx = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants parses every `// want "rx" ["rx"...]` comment. The
// expectation applies to the comment's own line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) wantSet {
	t.Helper()
	ws := make(wantSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text, ok = strings.CutPrefix(strings.TrimSpace(text), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantRx.FindAllString(text, -1)
				if len(quoted) == 0 {
					t.Errorf("%s: malformed want comment: no quoted regexp", pos)
					continue
				}
				for _, q := range quoted {
					s, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: malformed want operand %s: %v", pos, q, err)
						continue
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, s, err)
						continue
					}
					k := key{pos.Filename, pos.Line}
					ws[k] = append(ws[k], &want{pos: pos, re: re})
				}
			}
		}
	}
	return ws
}

// fixtureImporter type-checks fixture dependencies recursively from the
// testdata/src tree. It never consults the real build environment.
type fixtureImporter struct {
	root    string
	fset    *token.FileSet
	pkgs    map[string]*types.Package
	loading []string
}

func (imp *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := imp.pkgs[path]; ok {
		return pkg, nil
	}
	for _, p := range imp.loading {
		if p == path {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
	}
	imp.loading = append(imp.loading, path)
	defer func() { imp.loading = imp.loading[:len(imp.loading)-1] }()

	files, err := parseDir(imp.fset, filepath.Join(imp.root, filepath.FromSlash(path)))
	if err != nil {
		return nil, fmt.Errorf("fixture dependency %q: %w", path, err)
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, imp.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("fixture dependency %q: %w", path, err)
	}
	imp.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every .go file directly inside dir, in name order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return files, nil
}
