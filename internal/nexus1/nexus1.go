// Package nexus1 models the original Nexus hardware task manager
// (Meenderinck & Juurlink, DSD 2010) that Nexus++ improves upon — the
// comparison baseline of the paper's SSI and SSIII.
//
// The paper characterises Nexus by four limitations, all reproduced here as
// a configuration of the shared hardware model:
//
//  1. A fixed, limited number of inputs/outputs per task (up to 5): tasks
//     with more parameters cannot be executed at all (HardParamLimit).
//  2. A fixed, limited number of tasks that may depend on one memory
//     segment: kick-off lists cannot chain dummy entries, so dependency
//     patterns with wide fan-out (Gaussian elimination) are rejected
//     (HardKickOffLimit).
//  3. No double buffering: Nexus proposed Task Controllers but did not
//     implement them, so tasks are fetched, executed and written back
//     serially (BufferingDepth = 1).
//  4. Less efficient dependency resolution: Nexus keeps three tables
//     (including two kick-off lists) "accessed always for all kinds of
//     scenarios", and its master communicates off-chip, so per-access and
//     submission costs are higher.
package nexus1

import (
	"fmt"

	"nexuspp/internal/core"
	"nexuspp/internal/workload"
)

// MaxParams is Nexus's fixed input/output limit per task.
const MaxParams = 5

// Config returns the original-Nexus configuration for the given number of
// worker cores, derived from the paper's description of Nexus's design.
func Config(workers int) core.Config {
	cfg := core.DefaultConfig(workers)
	// Limitation 1+2: hard structure limits, no dummy mechanisms.
	cfg.MaxParamsPerTD = MaxParams
	cfg.HardParamLimit = true
	cfg.HardKickOffLimit = true
	// Limitation 3: no task controllers, hence no buffering overlap.
	cfg.BufferingDepth = 1
	// Limitation 4: three tables with two kick-off lists, always accessed:
	// triple the table traffic per dependency operation.
	cfg.Costs.CheckDepsPerAccess = 3 * core.DefaultCosts().CheckDepsPerAccess
	cfg.Costs.HandleFinPerAccess = 3 * core.DefaultCosts().HandleFinPerAccess
	// Nexus's master communicates with the task manager off-chip, "one of
	// the scalability limiting factors of Nexus": add an off-chip hop
	// (6 cycles = 12ns, the Table IV off-chip access time) to every
	// submission handshake.
	cfg.Bus.HandshakeCycles = 5 + 6
	return cfg
}

// Run simulates the workload on an original-Nexus system. Workloads that
// exceed Nexus's fixed limits fail with a core.FatalModelError.
func Run(workers int, src workload.Source) (*core.Result, error) {
	return core.Run(Config(workers), src)
}

// Supports reports whether Nexus can execute the workload at all, by
// checking the static parameter-count limit (the dynamic kick-off limit
// can only be discovered by running).
func Supports(src workload.Source) (bool, string) {
	src.Reset()
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		if len(t.Params) > MaxParams {
			return false, fmt.Sprintf("task %d has %d parameters, above Nexus's fixed limit of %d",
				t.ID, len(t.Params), MaxParams)
		}
	}
	return true, ""
}
