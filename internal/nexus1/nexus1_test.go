package nexus1

import (
	"errors"
	"strings"
	"testing"

	"nexuspp/internal/core"
	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

func TestConfigEncodesLimitations(t *testing.T) {
	cfg := Config(8)
	if cfg.MaxParamsPerTD != 5 || !cfg.HardParamLimit || !cfg.HardKickOffLimit {
		t.Errorf("limits not configured: %+v", cfg)
	}
	if cfg.BufferingDepth != 1 {
		t.Errorf("Nexus must not double-buffer, depth = %d", cfg.BufferingDepth)
	}
	if cfg.Costs.CheckDepsPerAccess <= core.DefaultCosts().CheckDepsPerAccess {
		t.Error("three-table access cost not applied")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("invalid config: %v", err)
	}
}

func TestNexusRunsSimpleWorkloads(t *testing.T) {
	res, err := Run(4, workload.Grid(workload.GridConfig{
		Pattern: workload.PatternWavefront, Rows: 10, Cols: 10, Seed: 1,
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.TasksExecuted != 100 {
		t.Fatalf("executed %d", res.TasksExecuted)
	}
}

func TestNexusRejectsWideTasks(t *testing.T) {
	wide := trace.TaskSpec{ID: 0, Exec: sim.Microsecond}
	for i := 0; i < 6; i++ { // 6 params > Nexus's 5
		wide.Params = append(wide.Params, trace.Param{Addr: uint64(i+1) * 64, Size: 64, Mode: trace.In})
	}
	src := workload.FromTrace(&trace.Trace{Name: "wide", Tasks: []trace.TaskSpec{wide}})
	if ok, reason := Supports(src); ok || !strings.Contains(reason, "fixed limit") {
		t.Fatalf("Supports = %v %q, want rejection", ok, reason)
	}
	_, err := Run(2, src)
	var fatal core.FatalModelError
	if !errors.As(err, &fatal) {
		t.Fatalf("err = %v, want FatalModelError", err)
	}
}

func TestNexusFailsOnWideFanOut(t *testing.T) {
	// One long-running writer and 30 dependent readers overflow the fixed
	// kick-off list: this is the class of dependency pattern the paper says
	// Nexus cannot handle (and Gaussian elimination exhibits).
	tasks := []trace.TaskSpec{{
		ID:     0,
		Params: []trace.Param{{Addr: 0xAAAA, Size: 4, Mode: trace.Out}},
		Exec:   500 * sim.Microsecond,
	}}
	for i := 1; i <= 30; i++ {
		tasks = append(tasks, trace.TaskSpec{
			ID:     uint64(i),
			Params: []trace.Param{{Addr: 0xAAAA, Size: 4, Mode: trace.In}},
			Exec:   sim.Microsecond,
		})
	}
	src := workload.FromTrace(&trace.Trace{Name: "fanout", Tasks: tasks})
	_, err := Run(4, src)
	var fatal core.FatalModelError
	if !errors.As(err, &fatal) {
		t.Fatalf("err = %v, want kick-off overflow", err)
	}
	if !strings.Contains(err.Error(), "kick-off") {
		t.Fatalf("err = %v, want kick-off overflow reason", err)
	}
	// Nexus++ executes the same workload (core default config).
	if _, err := core.Run(core.DefaultConfig(4), workload.FromTrace(&trace.Trace{Name: "fanout", Tasks: tasks})); err != nil {
		t.Fatalf("Nexus++ should handle the fan-out: %v", err)
	}
}

func TestNexusSupportsChainedGaussianButSlower(t *testing.T) {
	// The chained Gaussian stays within Nexus's parameter limit, but no
	// double buffering plus costlier lookups make it slower than Nexus++.
	mk := func() workload.Source { return workload.Gaussian(workload.GaussianConfig{N: 16}) }
	if ok, reason := Supports(mk()); !ok {
		t.Fatalf("chained Gaussian should fit Nexus's parameter limit: %s", reason)
	}
	nexus, err := Run(4, mk())
	if err != nil {
		// Acceptable: the kick-off fan-out may still overflow dynamically.
		var fatal core.FatalModelError
		if !errors.As(err, &fatal) {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	plus, err := core.Run(core.DefaultConfig(4), mk())
	if err != nil {
		t.Fatalf("Nexus++: %v", err)
	}
	if plus.Makespan >= nexus.Makespan {
		t.Fatalf("Nexus++ (%v) should beat Nexus (%v)", plus.Makespan, nexus.Makespan)
	}
}

func TestNexusRejectsFullPivotGaussian(t *testing.T) {
	src := workload.Gaussian(workload.GaussianConfig{N: 32, PivotObservesAll: true})
	ok, reason := Supports(src)
	if ok {
		t.Fatal("full-pivot Gaussian should exceed Nexus's parameter limit")
	}
	if !strings.Contains(reason, "parameters") {
		t.Fatalf("reason = %q", reason)
	}
}
