package starss

// This file is the body-execution engine shared by the sharded Runtime and
// the maestro baseline: one attempt loop per released task, applying — in
// order — injected faults (internal/faults), the per-task deadline, and the
// per-task retry policy. The paper's hardware never re-runs a task: a
// worker core either completes it or the whole chip has failed. In the
// software service a body failing is an ordinary event, so Task gains the
// recovery policy the hardware never needed: MaxRetries re-arms the task on
// the worker — before resolveFinished runs, so a recovered attempt never
// poisons dependents — with capped exponential backoff and full jitter
// between attempts.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"nexuspp/internal/faults"
)

// ErrTaskTimeout marks a task body that exceeded its Task.Timeout; the
// wrapping error names the task and the deadline. Dependents are poisoned
// exactly as for any other failure.
var ErrTaskTimeout = errors.New("starss: task deadline exceeded")

// executor runs task bodies with fault injection, per-task deadlines and
// the retry policy. Both runtimes embed one; the callbacks let the sharded
// runtime emit lifecycle events and count retries without the executor
// knowing about either.
type executor struct {
	// faults injects task-level faults; nil (the default) disables
	// injection at the cost of one branch per task.
	faults *faults.Injector
	// onRetry observes each re-arm: the task failed attempt `attempt` and
	// will run again. May be nil.
	onRetry func(node *taskNode, worker, attempt int)
	// onFault observes each injected task fault. May be nil.
	onFault func(node *taskNode, worker int)
}

// runNode executes one released node's lifecycle up to (not including) the
// handle-finished path, recording the outcome on the node: skipped when a
// transitive dependency poisoned it, failed when its context was cancelled
// before it started, and otherwise the final attempt's result — panics
// (from the body or WriteBack) recovered into ErrTaskPanicked, deadline
// overruns surfaced as ErrTaskTimeout, and failures re-armed up to
// Task.MaxRetries times before they stick and poison dependents.
func (e *executor) runNode(node *taskNode, worker int) {
	if p := node.poison.Load(); p != nil {
		node.wasSkipped = true
		node.err = fmt.Errorf("%w: task %q skipped: %w", ErrDependencyFailed, node.handle.name, p.err)
		return
	}
	if node.prefetchErr != nil {
		node.err = node.prefetchErr
		return
	}
	if err := node.ctx.Err(); err != nil {
		node.err = fmt.Errorf("starss: task %q cancelled before start: %w", node.handle.name, err)
		return
	}
	attempts := 1 + node.task.MaxRetries
	for attempt := 0; ; attempt++ {
		node.err = e.runAttempt(node, attempt, worker)
		if node.err == nil || attempt+1 >= attempts || !retryable(node) {
			return
		}
		if e.onRetry != nil {
			e.onRetry(node, worker, attempt)
		}
		if !sleepBackoff(node.ctx, &node.task, attempt) {
			// The submission context died during the backoff; the recorded
			// error of the last attempt stands and poisons dependents.
			return
		}
	}
}

// runAttempt executes one attempt of the task body: injected faults first,
// then the body under the per-task deadline, then WriteBack. Panics from
// the body or WriteBack are recovered into ErrTaskPanicked.
func (e *executor) runAttempt(node *taskNode, attempt, worker int) (err error) {
	ctx := node.ctx
	deadline := node.task.Timeout
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadlineCause(ctx, time.Now().Add(deadline),
			fmt.Errorf("%w: task %q after %v", ErrTaskTimeout, node.handle.name, deadline))
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: task %q: %v", ErrTaskPanicked, node.handle.name, r)
		}
	}()
	if f := e.faults; f != nil {
		k := faults.TaskKey(node.handle.index, attempt)
		switch {
		case f.Should(faults.SiteTaskError, k):
			e.noteFault(node, worker)
			return fmt.Errorf("%w: task %q body error", faults.ErrInjected, node.handle.name)
		case f.Should(faults.SiteTaskPanic, k):
			e.noteFault(node, worker)
			panic(fmt.Sprintf("%v: injected panic in task %q", faults.ErrInjected, node.handle.name))
		case f.Should(faults.SiteTaskHang, k):
			// A hang can only end when the context does — the stuck-worker
			// case Task.Timeout exists to bound.
			e.noteFault(node, worker)
			<-ctx.Done()
			return timeoutCause(ctx, deadline, context.Cause(ctx))
		}
	}
	if err := node.do(ctx); err != nil {
		return timeoutCause(ctx, deadline, err)
	}
	if node.task.WriteBack != nil {
		node.task.WriteBack()
	}
	return nil
}

func (e *executor) noteFault(node *taskNode, worker int) {
	if e.onFault != nil {
		e.onFault(node, worker)
	}
}

// timeoutCause rewrites a bare context.DeadlineExceeded coming out of a
// body into the attempt's ErrTaskTimeout cause, so handle errors name the
// task and the budget instead of the anonymous stdlib sentinel. Deadlines
// inherited from the submission context are left untouched.
func timeoutCause(ctx context.Context, deadline time.Duration, err error) error {
	if deadline <= 0 || err == nil || !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if cause := context.Cause(ctx); errors.Is(cause, ErrTaskTimeout) {
		return cause
	}
	return err
}

// retryable reports whether the node's recorded failure may be re-armed: a
// dead submission context (cancellation, session drain, shutdown) is final,
// everything else — body errors, panics, per-attempt deadline overruns,
// injected faults — earns another attempt.
func retryable(node *taskNode) bool {
	return node.ctx.Err() == nil
}

// sleepBackoff blocks between attempts: capped exponential backoff with
// full jitter (AWS-style — the delay is uniform in [0, min(cap, base<<n)],
// which decorrelates retry herds better than jittering around the full
// backoff). Returns false when the submission context died during the
// sleep. Defaults: base 1ms, cap 250ms.
func sleepBackoff(ctx context.Context, t *Task, attempt int) bool {
	base := t.RetryBackoff
	if base <= 0 {
		base = time.Millisecond
	}
	max := t.RetryMaxBackoff
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := base
	// Cap the shift so the doubling cannot overflow time.Duration.
	if attempt > 30 {
		attempt = 30
	}
	if d <<= attempt; d <= 0 || d > max {
		d = max
	}
	// Full jitter: uniform in [0, d]. Timing is intentionally not seeded —
	// fault *schedules* are deterministic per seed; backoff spacing is pure
	// timing and never affects which tasks fail.
	d = rand.N(d + 1)
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
