package starss

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// Tests for Scope: session-scoped key namespacing and per-scope stats on a
// shared runtime — the multi-master isolation contract the service layer
// builds on.

// TestScopeIsolationIdenticalKeys pins the core multi-tenant invariant:
// two scopes submitting writers on the *same* user key must never order
// against each other. Scope A's writer is gated on a channel; if scope B's
// writer on the identical key were queued behind it, B could not complete
// until the gate opens and the test would time out.
func TestScopeIsolationIdenticalKeys(t *testing.T) {
	// BufferingDepth 1: a ready task must never sit in a busy worker's
	// prefetch buffer behind the gated task, which would stall the test
	// for reasons unrelated to scoping.
	rt := New(Config{Workers: 2, Window: 16, BufferingDepth: 1})
	defer rt.Close()
	a := rt.Scope("tenant-a")
	b := rt.Scope("tenant-b")

	gate := make(chan struct{})
	openGate := sync.OnceFunc(func() { close(gate) })
	defer openGate() // a test failure must not wedge the deferred Close
	ha, err := a.Submit(context.Background(), Task{
		Deps: []Dep{InOut("matrix")},
		Do: func(ctx context.Context) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Submit(context.Background(), Task{
		Deps: []Dep{InOut("matrix")},
		Do:   func(context.Context) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hb.Wait(ctx); err != nil {
		t.Fatalf("scope B's writer did not complete while scope A held the same user key: %v", err)
	}
	select {
	case <-ha.Done():
		t.Fatal("scope A's gated writer completed early")
	default:
	}
	openGate()
	if err := ha.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.Executed != 1 || st.Submitted != 1 {
		t.Errorf("scope A stats = %s, want 1 submitted / 1 executed", st)
	}
	if st := b.Stats(); st.Executed != 1 || st.Submitted != 1 {
		t.Errorf("scope B stats = %s, want 1 submitted / 1 executed", st)
	}
}

// TestScopeOrderingWithinScope proves namespacing does not weaken the
// intra-scope StarSs contract: two writers on one key inside one scope
// still serialize.
func TestScopeOrderingWithinScope(t *testing.T) {
	rt := New(Config{Workers: 4, Window: 16, BufferingDepth: 1})
	defer rt.Close()
	s := rt.Scope("tenant")

	gate := make(chan struct{})
	openGate := sync.OnceFunc(func() { close(gate) })
	defer openGate()
	first, err := s.Submit(context.Background(), Task{
		Deps: []Dep{InOut("k")},
		Do: func(ctx context.Context) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Submit(context.Background(), Task{
		Deps: []Dep{InOut("k")},
		Do:   func(context.Context) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	// The second writer must be a hazard: give the runtime a moment, then
	// check it has not completed before the gate opens.
	select {
	case <-second.Done():
		t.Fatal("second writer in the same scope ran before the first finished")
	case <-time.After(20 * time.Millisecond):
	}
	openGate()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := first.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if err := second.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestScopeStatsClassification pins the per-scope executed/failed/skipped
// split and that a failure in one scope cannot poison another scope's
// tasks on the same user key.
func TestScopeStatsClassification(t *testing.T) {
	rt := New(Config{Workers: 2, Window: 16})
	defer rt.Close()
	bad := rt.Scope("bad")
	good := rt.Scope("good")

	hFail, err := bad.Submit(context.Background(), Task{
		Deps: []Dep{InOut("shared")},
		Do:   func(context.Context) error { return errBoom },
	})
	if err != nil {
		t.Fatal(err)
	}
	hSkip, err := bad.Submit(context.Background(), Task{
		Deps: []Dep{InOut("shared")},
		Do:   func(context.Context) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hFail.Wait(ctx); !errors.Is(err, errBoom) {
		t.Fatalf("failed task err = %v", err)
	}
	if err := hSkip.Wait(ctx); !errors.Is(err, ErrDependencyFailed) {
		t.Fatalf("dependent err = %v, want ErrDependencyFailed", err)
	}

	// The other scope's task on the same user key is untouched by the
	// poisoned segment — it lives in a different namespace.
	hOK, err := good.Submit(context.Background(), Task{
		Deps: []Dep{InOut("shared")},
		Do:   func(context.Context) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := hOK.Wait(ctx); err != nil {
		t.Fatalf("clean scope's task poisoned across scopes: %v", err)
	}

	if st := bad.Stats(); st.Failed != 1 || st.Skipped != 1 || st.Executed != 0 {
		t.Errorf("bad scope stats = %s, want failed=1 skipped=1", st)
	}
	if st := good.Stats(); st.Executed != 1 || st.Failed != 0 || st.Skipped != 0 {
		t.Errorf("good scope stats = %s, want executed=1", st)
	}
}

// TestScopeSubmitAllAndOnDone covers batch admission through a scope and
// the completion hook the service layer uses for window accounting.
func TestScopeSubmitAllAndOnDone(t *testing.T) {
	rt := New(Config{Workers: 4, Window: 64})
	defer rt.Close()
	s := rt.Scope("tenant")
	doneCh := make(chan error, 32)
	s.SetOnDone(func(err error) { doneCh <- err })

	tasks := make([]Task, 20)
	for i := range tasks {
		tasks[i] = Task{
			Deps: []Dep{InOut(i % 4)},
			Do:   func(context.Context) error { return nil },
		}
	}
	handles, err := s.SubmitAll(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != len(tasks) {
		t.Fatalf("admitted %d of %d", len(handles), len(tasks))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, h := range handles {
		if err := h.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(tasks); i++ {
		select {
		case err := <-doneCh:
			if err != nil {
				t.Errorf("onDone got %v", err)
			}
		case <-ctx.Done():
			t.Fatalf("onDone fired %d of %d times", i, len(tasks))
		}
	}
	if st := s.Stats(); st.Submitted != 20 || st.Executed != 20 {
		t.Errorf("scope stats = %s, want 20/20", st)
	}
	if got := s.InFlight(); got != 0 {
		t.Errorf("scope in-flight after drain = %d", got)
	}
}

// TestScopeWaitOn checks that a scope's WaitOn namespaces its keys: it
// returns once the scope's own accesses drain, regardless of another
// scope holding the same user key.
func TestScopeWaitOn(t *testing.T) {
	rt := New(Config{Workers: 2, Window: 16, BufferingDepth: 1})
	defer rt.Close()
	a := rt.Scope("a")
	b := rt.Scope("b")

	gate := make(chan struct{})
	defer close(gate)
	if _, err := a.Submit(context.Background(), Task{
		Deps: []Dep{InOut("k")},
		Do: func(ctx context.Context) error {
			select {
			case <-gate:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	}); err != nil {
		t.Fatal(err)
	}
	h, err := b.Submit(context.Background(), Task{
		Deps: []Dep{InOut("k")},
		Do:   func(context.Context) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// Scope B's key space is quiet even though scope A still holds "k".
	if err := b.WaitOn(ctx, "k"); err != nil {
		t.Fatalf("scoped WaitOn blocked on another scope's segment: %v", err)
	}
}
