package starss

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nexuspp/internal/sim"
)

// Tests for the sharded dependency-resolution banks and the batch
// submission API.

func TestShardsRoundedToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {100, 128},
	} {
		rt := New(Config{Workers: 1, Shards: tc.in})
		if got := len(rt.banks); got != tc.want {
			t.Errorf("Shards %d rounded to %d banks, want %d", tc.in, got, tc.want)
		}
		mustClose(t, rt)
	}
	rt := New(Config{Workers: 4})
	if got := len(rt.banks); got != nextPow2(defaultShards(4)) {
		t.Errorf("default shards = %d", got)
	}
	mustClose(t, rt)
}

func TestSingleShardPreservesSemantics(t *testing.T) {
	// Shards=1 is the single-resolver baseline; the full ordering
	// semantics must hold there too.
	rt := New(Config{Workers: 8, Shards: 1})
	var order []int
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		i := i
		rt.MustSubmit(Task{
			Deps: []Dep{InOut("chain")},
			Run: func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			},
		})
	}
	mustClose(t, rt)
	for i, v := range order {
		if v != i {
			t.Fatalf("chain order broken at %d: %v", i, order[:i+1])
		}
	}
}

// TestMultiKeyTasksAcrossBanks stresses tasks whose keys hash to several
// banks at once: the sorted bank-acquisition order must neither deadlock
// nor break hazard exclusion. Two shards with many keys guarantees
// cross-bank key sets.
func TestMultiKeyTasksAcrossBanks(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		rt := New(Config{Workers: 8, Shards: shards, Window: 128})
		h := newHazardChecker()
		rng := sim.NewRand(11)
		for i := 0; i < 400; i++ {
			var deps []Dep
			used := map[int]bool{}
			for k := 0; k <= 2+rng.Intn(3); k++ { // 3..5 keys per task
				key := rng.Intn(16)
				if used[key] {
					continue
				}
				used[key] = true
				deps = append(deps, Dep{Key: key, Mode: Mode(rng.Intn(3))})
			}
			norm, _ := normalizeDeps(deps)
			rt.MustSubmit(Task{
				Deps: deps,
				Run: func() {
					h.enter(norm)
					defer h.exit(norm)
					spin(100)
				},
			})
		}
		mustClose(t, rt)
		if len(h.bad) > 0 {
			t.Fatalf("shards=%d: hazard violations: %v", shards, h.bad[:min(5, len(h.bad))])
		}
		if rt.Stats().Executed != 400 {
			t.Fatalf("shards=%d: executed = %d", shards, rt.Stats().Executed)
		}
	}
}

// TestConcurrentSubmitters drives Submit from many goroutines on disjoint
// key ranges — the workload sharding exists for — under the race detector.
func TestConcurrentSubmitters(t *testing.T) {
	rt := New(Config{Workers: 8, Window: 256})
	var executed atomic.Int64
	var wg sync.WaitGroup
	const goroutines, perG = 8, 200
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rt.MustSubmit(Task{
					Deps: []Dep{InOut([2]int{g, i}), In([2]int{g, (i + 1) % perG})},
					Run:  func() { executed.Add(1) },
				})
			}
		}()
	}
	wg.Wait()
	mustClose(t, rt)
	if executed.Load() != goroutines*perG {
		t.Fatalf("executed %d of %d", executed.Load(), goroutines*perG)
	}
	if st := rt.Stats(); st.Submitted != goroutines*perG || st.Executed != goroutines*perG {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubmitAllOrdering(t *testing.T) {
	// A batch must be admitted in slice order: an InOut chain inside one
	// SubmitAll call executes sequentially in that order.
	rt := New(Config{Workers: 8})
	var order []int
	var mu sync.Mutex
	tasks := make([]Task, 64)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Deps: []Dep{InOut("chain"), In(i % 7)},
			Run: func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			},
		}
	}
	if _, err := rt.SubmitAll(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	mustClose(t, rt)
	if len(order) != len(tasks) {
		t.Fatalf("ran %d of %d", len(order), len(tasks))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("batch order broken at %d: %v", i, order[:i+1])
		}
	}
}

func TestSubmitAllLargerThanWindow(t *testing.T) {
	// Batches larger than the window are chunked, not deadlocked.
	rt := New(Config{Workers: 2, Window: 8})
	var n atomic.Int64
	tasks := make([]Task, 100)
	for i := range tasks {
		i := i
		tasks[i] = Task{Deps: []Dep{Out(i)}, Run: func() { n.Add(1) }}
	}
	if _, err := rt.SubmitAll(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	mustClose(t, rt)
	if n.Load() != 100 {
		t.Fatalf("executed %d of 100", n.Load())
	}
	if got := rt.Stats().MaxInFlight; got > 8 {
		t.Fatalf("in-flight %d exceeded window 8", got)
	}
}

func TestSubmitAllValidation(t *testing.T) {
	rt := New(Config{Workers: 1})
	_, err := rt.SubmitAll(context.Background(), []Task{
		{Run: func() {}},
		{}, // no Run
	})
	if err == nil {
		t.Fatal("batch with an invalid task accepted")
	}
	// Validation happens before admission: nothing ran.
	rt.Wait(context.Background())
	if st := rt.Stats(); st.Submitted != 0 {
		t.Fatalf("invalid batch partially admitted: %+v", st)
	}
	if _, err := rt.SubmitAll(context.Background(), nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	mustClose(t, rt)
	if _, err := rt.SubmitAll(context.Background(), []Task{{Run: func() {}}}); err != ErrStopped {
		t.Fatalf("SubmitAll after Close = %v, want ErrStopped", err)
	}
}

func TestSubmitAllRAWAcrossBatches(t *testing.T) {
	// Dependencies straddling two SubmitAll calls and plain Submits are
	// still honoured.
	rt := New(Config{Workers: 4})
	data := make([]int, 8)
	writers := make([]Task, len(data))
	for i := range writers {
		i := i
		writers[i] = Task{Deps: []Dep{Out(i)}, Run: func() { data[i] = i + 1 }}
	}
	if _, err := rt.SubmitAll(context.Background(), writers); err != nil {
		t.Fatal(err)
	}
	sum := 0
	deps := make([]Dep, len(data))
	for i := range deps {
		deps[i] = In(i)
	}
	rt.MustSubmit(Task{Deps: deps, Run: func() {
		for _, v := range data {
			sum += v
		}
	}})
	mustClose(t, rt)
	want := 0
	for i := range data {
		want += i + 1
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d (RAW across batch broken)", sum, want)
	}
}

func TestBankIndexStable(t *testing.T) {
	rt := New(Config{Workers: 1, Shards: 16})
	defer mustClose(t, rt)
	for _, k := range []Key{"a", 7, [2]int{1, 2}, 3.5} {
		i, j := rt.bankIndex(k), rt.bankIndex(k)
		if i != j {
			t.Fatalf("bankIndex(%v) unstable: %d vs %d", k, i, j)
		}
		if i < 0 || i >= 16 {
			t.Fatalf("bankIndex(%v) = %d out of range", k, i)
		}
	}
}

// TestMaestroBaselineSemantics keeps the retained single-maestro baseline
// honest: it must execute the same chains with the same ordering and
// counters as the sharded runtime it is benchmarked against.
func TestMaestroBaselineSemantics(t *testing.T) {
	var rt TaskRuntime = NewMaestro(Config{Workers: 4, Window: 32})
	var order []int
	var mu sync.Mutex
	for i := 0; i < 40; i++ {
		i := i
		rt.MustSubmit(Task{
			Deps: []Dep{InOut("chain"), In(i % 3)},
			Run: func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			},
		})
	}
	rt.Wait(context.Background())
	mustClose(t, rt)
	for i, v := range order {
		if v != i {
			t.Fatalf("maestro chain order broken at %d: %v", i, order[:i+1])
		}
	}
	st := rt.Stats()
	if st.Submitted != 40 || st.Executed != 40 {
		t.Fatalf("maestro stats = %+v", st)
	}
	if _, err := rt.Submit(context.Background(), Task{Run: func() {}}); err != ErrStopped {
		t.Fatalf("maestro Submit after Close = %v, want ErrStopped", err)
	}
}

// TestConcurrentSubmitAll pins the all-or-nothing window acquisition:
// several batches whose combined demand exceeds the window must not each
// grab a fraction of the tokens and deadlock.
func TestConcurrentSubmitAll(t *testing.T) {
	rt := New(Config{Workers: 2, Window: 16})
	var executed atomic.Int64
	var wg sync.WaitGroup
	const batches, perBatch = 4, 64 // 4×64 tasks through a 16-slot window
	for b := 0; b < batches; b++ {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			tasks := make([]Task, perBatch)
			for i := range tasks {
				tasks[i] = Task{
					Deps: []Dep{InOut([2]int{b, i % 8})},
					Run:  func() { executed.Add(1) },
				}
			}
			if _, err := rt.SubmitAll(context.Background(), tasks); err != nil {
				t.Error(err)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent SubmitAll deadlocked on window tokens")
	}
	mustClose(t, rt)
	if executed.Load() != batches*perBatch {
		t.Fatalf("executed %d of %d", executed.Load(), batches*perBatch)
	}
}
