// Package starss is a real, executing StarSs-style task-dataflow runtime
// for Go whose scheduler is the Nexus++ dependency-resolution algorithm.
//
// Tasks are Go closures annotated with the data they read and write
// (In/Out/InOut dependencies on user-chosen keys, the analogue of the
// paper's base addresses). The runtime discovers RAW dependencies and
// enforces WAR/WAW hazards without renaming — exactly the semantics of the
// paper's Dependence Table: concurrent readers share a segment, a writer
// waits for all previous readers ("a writer waits" flag), and waiters queue
// in per-segment kick-off lists released by the handle-finished path.
//
// Dependency state is sharded into lock-striped banks hashed by key — the
// software analogue of the multiple Dependence Table banks of the Nexus++
// hardware — so independent keys resolve concurrently on both the Submit
// and the handle-finished path instead of funnelling through a single
// resolver goroutine. Multi-key tasks acquire their banks in sorted index
// order, which keeps the runtime deadlock-free. SubmitAll admits a batch of
// tasks under one bank acquisition, amortising the locking.
//
// Per-worker double buffering is provided through the optional
// Task.Prefetch hook: while a worker executes one task, its controller
// goroutine prefetches the next task's inputs, mirroring the paper's Task
// Controllers (Get Inputs overlapping Run Task).
//
// The paper's conclusion notes that parts of Nexus++ "can be reused for
// other programming models"; this package is that reuse, in library form.
package starss

import (
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Mode is a dependency direction.
type Mode uint8

const (
	// ModeIn marks data the task only reads.
	ModeIn Mode = iota
	// ModeOut marks data the task only writes.
	ModeOut
	// ModeInOut marks data the task reads and writes.
	ModeInOut
)

// String returns the pragma spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Key identifies a piece of data. Keys are compared with ==; any comparable
// value works (strings, ints, pointers, small structs).
type Key interface{}

// Dep declares one data access of a task.
type Dep struct {
	Key  Key
	Mode Mode
}

// In declares a read-only dependency.
func In(k Key) Dep { return Dep{Key: k, Mode: ModeIn} }

// Out declares a write-only dependency.
func Out(k Key) Dep { return Dep{Key: k, Mode: ModeOut} }

// InOut declares a read-write dependency.
func InOut(k Key) Dep { return Dep{Key: k, Mode: ModeInOut} }

// Task is a unit of work with declared dependencies.
type Task struct {
	// Name is optional and used in diagnostics.
	Name string
	// Deps declares the data the task accesses. Duplicate keys are merged
	// (read + write on the same key becomes inout).
	Deps []Dep
	// Run executes the task. Required.
	Run func()
	// Prefetch, when set, runs on the worker's controller before Run may
	// start, overlapping the previous task's execution (double buffering).
	// It must only touch the task's declared In/InOut data.
	Prefetch func()
	// WriteBack, when set, runs after Run on the worker (the Put Outputs
	// phase). The task's outputs are only visible to dependents after it.
	WriteBack func()
}

// Config parameterises a Runtime.
type Config struct {
	// Workers is the number of worker goroutines; 0 selects GOMAXPROCS.
	Workers int
	// BufferingDepth is the per-worker task buffer: 1 disables the
	// prefetch overlap, 2 (the default) is double buffering.
	BufferingDepth int
	// Window bounds the number of in-flight (submitted, unfinished) tasks,
	// the analogue of the Task Pool size; Submit blocks when it is full.
	// 0 selects 1024.
	Window int
	// Shards is the number of dependency-table banks the key space is
	// hashed across — the software analogue of the Nexus++ Dependence
	// Table banks. Tasks on keys in different banks resolve concurrently;
	// 1 reproduces the old single-resolver serialization. Values are
	// rounded up to a power of two; 0 selects a default scaled to
	// Workers.
	Shards int
	// RecordGraph keeps the discovered task graph (names and dependency
	// edges) for Graph/ExportDOT. Memory grows with the task count.
	RecordGraph bool
}

// Stats reports runtime counters.
type Stats struct {
	Submitted uint64
	Executed  uint64
	// MaxInFlight is the high-water mark of submitted-but-unfinished tasks.
	MaxInFlight int
	// Hazards counts tasks that had to wait at least once (DC > 0).
	Hazards uint64
}

// bank is one lock-striped slice of the dependence table. The pad brings
// the struct to 64 bytes so adjacent hot bank locks sit on separate cache
// lines.
type bank struct {
	mu   sync.Mutex
	segs map[Key]*segState
	_    [48]byte
}

// Runtime schedules and executes tasks.
type Runtime struct {
	cfg      Config
	banks    []bank
	mask     uint64
	seed     maphash.Seed
	window   chan struct{}
	readyCh  chan *taskNode
	stopOnce sync.Once
	stopped  chan struct{}
	workerWG sync.WaitGroup

	// subMu fences admission against Shutdown: submitters hold it shared
	// while they admit and resolve; Shutdown takes it exclusively to close
	// stopped, so no submitter can be left mid-admission with a send to
	// readyCh pending when the channel is closed.
	subMu sync.RWMutex
	// batchMu serialises SubmitAll's multi-token window acquisition: a
	// chunk takes its tokens one at a time, and two batches each holding a
	// fraction of the window would deadlock without it. Plain Submit takes
	// a single token and needs no serialisation.
	batchMu sync.Mutex

	submitted   atomic.Uint64
	executed    atomic.Uint64
	hazards     atomic.Uint64
	inFlight    atomic.Int64
	maxInFlight atomic.Int64

	// coord serialises barrier and WaitOn bookkeeping; it is only taken on
	// the finish path when a waiter is registered or in-flight hits zero,
	// so it stays off the steady-state hot path.
	coord       sync.Mutex
	barriers    []chan struct{}
	waiters     []waitReq
	waiterCount atomic.Int32

	recorder *graphRecorder
}

type taskNode struct {
	task Task
	deps []Dep // normalised
	// bankOf[i] is the bank index of deps[i]; banks is the sorted,
	// deduplicated set — the per-task acquisition order.
	bankOf []int
	banks  []int
	dc     atomic.Int32
}

type segState struct {
	isOut bool
	rdrs  int
	ww    bool
	ko    []segWaiter
}

type segWaiter struct {
	node       *taskNode
	wantsWrite bool
}

// ErrStopped is returned by Submit after Shutdown.
var ErrStopped = errors.New("starss: runtime is shut down")

// defaultShards picks a bank count that gives low collision probability at
// full worker concurrency.
func defaultShards(workers int) int {
	n := 4 * workers
	if n < 8 {
		n = 8
	}
	if n > 512 {
		n = 512
	}
	return n
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New starts a runtime with the given configuration.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BufferingDepth <= 0 {
		cfg.BufferingDepth = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards(cfg.Workers)
	}
	cfg.Shards = nextPow2(cfg.Shards)
	rt := &Runtime{
		cfg:     cfg,
		banks:   make([]bank, cfg.Shards),
		mask:    uint64(cfg.Shards - 1),
		seed:    maphash.MakeSeed(),
		window:  make(chan struct{}, cfg.Window),
		readyCh: make(chan *taskNode, cfg.Window),
		stopped: make(chan struct{}),
	}
	for i := range rt.banks {
		rt.banks[i].segs = make(map[Key]*segState)
	}
	if cfg.RecordGraph {
		rt.recorder = newGraphRecorder()
	}
	rt.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go rt.worker()
	}
	return rt
}

// bankIndex hashes a key to its bank. Like map insertion, it panics for
// keys that are not comparable.
func (rt *Runtime) bankIndex(k Key) int {
	if rt.mask == 0 {
		return 0
	}
	return int(maphash.Comparable(rt.seed, k) & rt.mask)
}

// prepare computes the node's bank mapping and sorted acquisition order.
func (rt *Runtime) prepare(node *taskNode) {
	if len(node.deps) == 0 {
		return
	}
	node.bankOf = make([]int, len(node.deps))
	for i, d := range node.deps {
		node.bankOf[i] = rt.bankIndex(d.Key)
	}
	node.banks = append([]int(nil), node.bankOf...)
	sort.Ints(node.banks)
	uniq := node.banks[:1]
	for _, b := range node.banks[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	node.banks = uniq
}

// lockBanks acquires the given sorted bank set; the global ascending order
// makes multi-bank acquisition deadlock-free.
func (rt *Runtime) lockBanks(banks []int) {
	for _, i := range banks {
		rt.banks[i].mu.Lock()
	}
}

func (rt *Runtime) unlockBanks(banks []int) {
	for _, i := range banks {
		rt.banks[i].mu.Unlock()
	}
}

// Submit enqueues a task. It blocks while the in-flight window is full and
// returns an error for invalid tasks or after Shutdown.
//
// Dependency resolution happens synchronously in the caller: tasks
// submitted from one goroutine acquire segments in exact program order
// (the StarSs sequential-semantics contract). Tasks submitted concurrently
// from several goroutines are ordered by bank acquisition.
func (rt *Runtime) Submit(t Task) error {
	node, err := makeNode(t)
	if err != nil {
		return err
	}
	select {
	case <-rt.stopped:
		return ErrStopped
	case rt.window <- struct{}{}:
	}
	rt.subMu.RLock()
	select {
	case <-rt.stopped:
		rt.subMu.RUnlock()
		<-rt.window
		return ErrStopped
	default:
	}
	rt.prepare(node)
	rt.admit(node)
	rt.resolveNew(node)
	rt.subMu.RUnlock()
	return nil
}

// SubmitAll enqueues a batch of tasks in order, amortising bank locking:
// each chunk of the batch is admitted under a single acquisition of the
// banks it touches. It blocks while the window is full and returns the
// first validation error (before admitting anything) or ErrStopped; on
// ErrStopped, earlier chunks of the batch may already have been admitted.
func (rt *Runtime) SubmitAll(tasks []Task) error {
	nodes := make([]*taskNode, len(tasks))
	for i, t := range tasks {
		node, err := makeNode(t)
		if err != nil {
			return fmt.Errorf("task %d: %w", i, err)
		}
		nodes[i] = node
	}
	// Chunk so one batch can never hold more window tokens than exist, and
	// so bank locks are not held for unboundedly long.
	chunkMax := rt.cfg.Window
	if chunkMax > 256 {
		chunkMax = 256
	}
	for len(nodes) > 0 {
		n := len(nodes)
		if n > chunkMax {
			n = chunkMax
		}
		if err := rt.submitChunk(nodes[:n]); err != nil {
			return err
		}
		nodes = nodes[n:]
	}
	return nil
}

func (rt *Runtime) submitChunk(nodes []*taskNode) error {
	// Chunks take their window tokens one at a time; batchMu makes that
	// acquisition all-or-nothing across batches, so two concurrent
	// SubmitAll calls cannot each hold a fraction of the window and wait
	// forever for the rest.
	rt.batchMu.Lock()
	for taken := 0; taken < len(nodes); taken++ {
		select {
		case <-rt.stopped:
			for ; taken > 0; taken-- {
				<-rt.window
			}
			rt.batchMu.Unlock()
			return ErrStopped
		case rt.window <- struct{}{}:
		}
	}
	rt.batchMu.Unlock()
	rt.subMu.RLock()
	select {
	case <-rt.stopped:
		rt.subMu.RUnlock()
		for range nodes {
			<-rt.window
		}
		return ErrStopped
	default:
	}
	var banks []int
	for _, node := range nodes {
		rt.prepare(node)
		banks = append(banks, node.banks...)
	}
	sort.Ints(banks)
	uniq := banks[:0]
	for _, b := range banks {
		if len(uniq) == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	for _, node := range nodes {
		rt.admit(node)
	}
	ready := make([]*taskNode, 0, len(nodes))
	rt.lockBanks(uniq)
	for _, node := range nodes {
		if rt.checkDeps(node) == 0 {
			ready = append(ready, node)
		} else {
			rt.hazards.Add(1)
		}
	}
	rt.unlockBanks(uniq)
	for _, node := range ready {
		rt.readyCh <- node
	}
	rt.subMu.RUnlock()
	return nil
}

// makeNode validates and normalises one task.
func makeNode(t Task) (*taskNode, error) {
	if t.Run == nil {
		return nil, errors.New("starss: task has no Run function")
	}
	deps, err := normalizeDeps(t.Deps)
	if err != nil {
		return nil, err
	}
	return &taskNode{task: t, deps: deps}, nil
}

// admit updates the submission counters and graph recorder. The caller
// must already hold a window token.
func (rt *Runtime) admit(node *taskNode) {
	rt.submitted.Add(1)
	n := rt.inFlight.Add(1)
	for {
		max := rt.maxInFlight.Load()
		if n <= max || rt.maxInFlight.CompareAndSwap(max, n) {
			break
		}
	}
	if rt.recorder != nil {
		rt.recorder.record(node)
	}
}

// resolveNew runs Check Deps (Listing 2) for one task against its banks.
func (rt *Runtime) resolveNew(node *taskNode) {
	rt.lockBanks(node.banks)
	dc := rt.checkDeps(node)
	rt.unlockBanks(node.banks)
	if dc == 0 {
		rt.readyCh <- node
	} else {
		rt.hazards.Add(1)
	}
}

// checkDeps acquires or queues on every segment of the node and returns the
// resulting dependence count. The caller holds all of node.banks.
func (rt *Runtime) checkDeps(node *taskNode) int {
	dc := 0
	for i, d := range node.deps {
		b := &rt.banks[node.bankOf[i]]
		seg := b.segs[d.Key]
		wantsWrite := d.Mode != ModeIn
		if seg == nil {
			seg = &segState{}
			b.segs[d.Key] = seg
			if wantsWrite {
				seg.isOut = true
			} else {
				seg.rdrs = 1
			}
			continue
		}
		if !wantsWrite {
			if !seg.isOut && !seg.ww {
				seg.rdrs++
			} else {
				seg.ko = append(seg.ko, segWaiter{node: node})
				dc++
			}
			continue
		}
		seg.ko = append(seg.ko, segWaiter{node: node, wantsWrite: true})
		dc++
		if !seg.isOut {
			seg.ww = true
		}
	}
	// The count must be published before the banks are released: a
	// finisher may pop this node from a kick-off list the moment the
	// bank unlocks.
	node.dc.Store(int32(dc))
	return dc
}

// resolveFinished runs the Handle Finished path (SSIII-B) for one task:
// releases its segments, pops kick-off lists and dispatches any task whose
// dependence count reaches zero.
func (rt *Runtime) resolveFinished(node *taskNode) {
	var released []*taskNode
	release := func(n *taskNode) {
		if n.dc.Add(-1) == 0 {
			released = append(released, n)
		}
	}
	rt.lockBanks(node.banks)
	for i, d := range node.deps {
		b := &rt.banks[node.bankOf[i]]
		seg := b.segs[d.Key]
		if seg == nil {
			panic(fmt.Sprintf("starss: finished task %q references unknown key %v", node.task.Name, d.Key))
		}
		if d.Mode == ModeIn {
			seg.rdrs--
			if seg.rdrs > 0 {
				continue
			}
			if !seg.ww {
				delete(b.segs, d.Key)
				continue
			}
			w := seg.ko[0]
			seg.ko = seg.ko[1:]
			seg.isOut = true
			seg.ww = false
			release(w.node)
			continue
		}
		seg.isOut = false
		if len(seg.ko) == 0 {
			delete(b.segs, d.Key)
			continue
		}
		if seg.ko[0].wantsWrite {
			w := seg.ko[0]
			seg.ko = seg.ko[1:]
			seg.isOut = true
			release(w.node)
			continue
		}
		for len(seg.ko) > 0 && !seg.ko[0].wantsWrite {
			w := seg.ko[0]
			seg.ko = seg.ko[1:]
			seg.rdrs++
			release(w.node)
		}
		if len(seg.ko) > 0 {
			seg.ww = true
		}
	}
	rt.unlockBanks(node.banks)
	for _, n := range released {
		rt.readyCh <- n
	}
	rt.executed.Add(1)
	<-rt.window
	n := rt.inFlight.Add(-1)
	if n == 0 || rt.waiterCount.Load() > 0 {
		rt.coord.Lock()
		// Re-read under coord: the pre-lock n may be stale — a task
		// submitted (and a barrier registered for it) after the decrement
		// must not be signalled past.
		if rt.inFlight.Load() == 0 {
			for _, b := range rt.barriers {
				close(b)
			}
			rt.barriers = rt.barriers[:0]
		}
		rt.checkWaitersLocked()
		rt.coord.Unlock()
	}
}

// MustSubmit is Submit that panics on error, for straight-line example code.
func (rt *Runtime) MustSubmit(t Task) {
	if err := rt.Submit(t); err != nil {
		panic(err)
	}
}

// Barrier blocks until every task submitted before the call has completed —
// the css barrier pragma.
func (rt *Runtime) Barrier() {
	select {
	case <-rt.stopped:
		return
	default:
	}
	rt.waitIdle()
}

// waitIdle blocks until the in-flight count reaches zero. Unlike Barrier
// it works after stopped is closed, which Shutdown needs to drain
// last-moment admissions before closing readyCh.
func (rt *Runtime) waitIdle() {
	rt.coord.Lock()
	if rt.inFlight.Load() == 0 {
		rt.coord.Unlock()
		return
	}
	reply := make(chan struct{})
	rt.barriers = append(rt.barriers, reply)
	rt.coord.Unlock()
	<-reply
}

// quiet reports whether none of the keys has a live segment. Keys are
// inspected one bank at a time; a key observed quiet has completed every
// access submitted before the observation.
func (rt *Runtime) quiet(keys []Key) bool {
	for _, k := range keys {
		b := &rt.banks[rt.bankIndex(k)]
		b.mu.Lock()
		_, busy := b.segs[k]
		b.mu.Unlock()
		if busy {
			return false
		}
	}
	return true
}

// checkWaitersLocked wakes WaitOn callers whose keys have gone quiet. The
// caller holds coord.
func (rt *Runtime) checkWaitersLocked() {
	if len(rt.waiters) == 0 {
		return
	}
	kept := rt.waiters[:0]
	for _, w := range rt.waiters {
		if rt.quiet(w.keys) {
			close(w.reply)
			rt.waiterCount.Add(-1)
		} else {
			kept = append(kept, w)
		}
	}
	rt.waiters = kept
}

// Stats returns a snapshot of the runtime counters. After Shutdown it
// returns the final counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Submitted:   rt.submitted.Load(),
		Executed:    rt.executed.Load(),
		MaxInFlight: int(rt.maxInFlight.Load()),
		Hazards:     rt.hazards.Load(),
	}
}

// Shutdown waits for all submitted tasks and stops the workers. The runtime
// cannot be reused afterwards.
func (rt *Runtime) Shutdown() {
	rt.Barrier()
	rt.stopOnce.Do(func() {
		// Closing stopped under the exclusive fence guarantees no
		// submitter is mid-admission; any Submit that raced past Barrier
		// has either fully admitted (drained by waitIdle below) or will
		// observe stopped under its shared lock and back out. Only then is
		// readyCh safe to close.
		rt.subMu.Lock()
		close(rt.stopped)
		rt.subMu.Unlock()
		rt.waitIdle()
		close(rt.readyCh)
	})
	rt.workerWG.Wait()
}

// normalizeDeps merges duplicate keys: any read + any write on the same key
// becomes inout, duplicate same-mode entries collapse.
func normalizeDeps(deps []Dep) ([]Dep, error) {
	if len(deps) <= 1 {
		return deps, nil
	}
	out := make([]Dep, 0, len(deps))
	index := make(map[Key]int, len(deps))
	for _, d := range deps {
		i, seen := index[d.Key]
		if !seen {
			index[d.Key] = len(out)
			out = append(out, d)
			continue
		}
		a, b := out[i].Mode, d.Mode
		switch {
		case a == b:
		case a == ModeInOut:
		default:
			out[i].Mode = ModeInOut
		}
	}
	return out, nil
}

// worker is one worker core plus its Task Controller: a small pipeline that
// prefetches the inputs of up to BufferingDepth-1 upcoming tasks while the
// current one executes.
func (rt *Runtime) worker() {
	defer rt.workerWG.Done()
	depth := rt.cfg.BufferingDepth
	if depth <= 1 {
		// No buffering: fetch, run and write back serially.
		for node := range rt.readyCh {
			rt.execute(node)
		}
		return
	}
	// The controller goroutine prefetches into a bounded local buffer; this
	// goroutine executes. Buffer capacity depth-1 means up to depth tasks
	// are resident per worker (one executing, depth-1 prefetched).
	local := make(chan *taskNode, depth-1)
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		defer close(local)
		for node := range rt.readyCh {
			if node.task.Prefetch != nil {
				node.task.Prefetch()
			}
			local <- node
		}
	}()
	for node := range local {
		rt.runBody(node)
	}
	ctlWG.Wait()
}

// execute performs the full unbuffered task lifecycle.
func (rt *Runtime) execute(node *taskNode) {
	if node.task.Prefetch != nil {
		node.task.Prefetch()
	}
	rt.runBody(node)
}

func (rt *Runtime) runBody(node *taskNode) {
	node.task.Run()
	if node.task.WriteBack != nil {
		node.task.WriteBack()
	}
	rt.resolveFinished(node)
}
