// Package starss is a real, executing StarSs-style task-dataflow runtime
// for Go whose scheduler is the Nexus++ dependency-resolution algorithm.
//
// Tasks are Go closures annotated with the data they read and write
// (In/Out/InOut dependencies on user-chosen keys, the analogue of the
// paper's base addresses). The runtime discovers RAW dependencies and
// enforces WAR/WAW hazards without renaming — exactly the semantics of the
// paper's Dependence Table: concurrent readers share a segment, a writer
// waits for all previous readers ("a writer waits" flag), and waiters queue
// in per-segment kick-off lists released by the handle-finished path.
//
// Every submission returns a *Handle — the software analogue of the task ID
// Nexus++ assigns in hardware and tracks from Check Deps through Handle
// Finished. A handle exposes the task's completion channel, its final error,
// and its resolved name and submission index. Task bodies are
// context-aware functions that may fail: a task that returns an error,
// panics, or is cancelled poisons its transitive dependents — they are
// skipped (never run), their handles report ErrDependencyFailed wrapping the
// root cause, and the kick-off lists still drain, so a failure never wedges
// the in-flight window.
//
// Dependency state is sharded into lock-striped banks hashed by key — the
// software analogue of the multiple Dependence Table banks of the Nexus++
// hardware — so independent keys resolve concurrently on both the Submit
// and the handle-finished path instead of funnelling through a single
// resolver goroutine. Multi-key tasks acquire their banks in sorted index
// order, which keeps the runtime deadlock-free. SubmitAll admits a batch of
// tasks under one bank acquisition, amortising the locking.
//
// Per-worker double buffering is provided through the optional
// Task.Prefetch hook: while a worker executes one task, its controller
// goroutine prefetches the next task's inputs, mirroring the paper's Task
// Controllers (Get Inputs overlapping Run Task).
//
// The paper's conclusion notes that parts of Nexus++ "can be reused for
// other programming models"; this package is that reuse, in library form.
package starss

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nexuspp/internal/faults"
	"nexuspp/internal/obs"
)

// Mode is a dependency direction.
type Mode uint8

const (
	// ModeIn marks data the task only reads.
	ModeIn Mode = iota
	// ModeOut marks data the task only writes.
	ModeOut
	// ModeInOut marks data the task reads and writes.
	ModeInOut
)

// String returns the pragma spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Key identifies a piece of data. Keys are compared with ==; any comparable
// value works (strings, ints, pointers, small structs).
type Key = any

// Dep declares one data access of a task.
type Dep struct {
	Key  Key
	Mode Mode
}

// In declares a read-only dependency.
func In(k Key) Dep { return Dep{Key: k, Mode: ModeIn} }

// Out declares a write-only dependency.
func Out(k Key) Dep { return Dep{Key: k, Mode: ModeOut} }

// InOut declares a read-write dependency.
func InOut(k Key) Dep { return Dep{Key: k, Mode: ModeInOut} }

// Task is a unit of work with declared dependencies.
type Task struct {
	// Name is optional and used in diagnostics and Handle.Name.
	Name string
	// Deps declares the data the task accesses. Duplicate keys are merged
	// (read + write on the same key becomes inout).
	Deps []Dep
	// Do executes the task. The context is the one the task was submitted
	// with; bodies should honour its cancellation. A non-nil error marks
	// the task failed and poisons its transitive dependents. Exactly one
	// of Do and Run must be set.
	Do func(ctx context.Context) error
	// Run is the legacy task body: no context, cannot fail. It is adapted
	// to Do during migration; new code should use Do.
	Run func()
	// Prefetch, when set, runs on the worker's controller before the task
	// body may start, overlapping the previous task's execution (double
	// buffering). It must only touch the task's declared In/InOut data.
	// It does not run for skipped or cancelled tasks.
	Prefetch func()
	// WriteBack, when set, runs after a successful task body on the worker
	// (the Put Outputs phase). The task's outputs are only visible to
	// dependents after it. It does not run when the body fails.
	WriteBack func()
	// MaxRetries re-arms a failed attempt (body error, panic, or Timeout
	// overrun) up to this many extra times before the failure sticks and
	// poisons dependents. The re-arm happens on the worker before the
	// handle-finished path runs, so a recovered task never taints its
	// dependents. A dead submission context is final and never retried.
	MaxRetries int
	// RetryBackoff is the base delay between attempts; backoff grows
	// exponentially per attempt with full jitter, capped by
	// RetryMaxBackoff. 0 selects 1ms.
	RetryBackoff time.Duration
	// RetryMaxBackoff caps the per-attempt backoff. 0 selects 250ms.
	RetryMaxBackoff time.Duration
	// Timeout bounds each execution attempt of the body: the attempt's
	// context expires after this budget and the failure surfaces as an
	// error wrapping ErrTaskTimeout (retryable — each attempt gets a fresh
	// budget). 0 means no per-task deadline.
	Timeout time.Duration
	// onDone, when set, is invoked exactly once with the task's final error
	// after its handle completes (executed, failed, or skipped). It is
	// unexported: only this package wires it (Scope uses it for per-session
	// accounting), so user code cannot observe half-published state.
	onDone func(err error)
}

// body resolves the task's executable: Do, or the legacy Run adapted.
func (t *Task) body() (func(context.Context) error, error) {
	switch {
	case t.Do != nil && t.Run != nil:
		return nil, errors.New("starss: task sets both Do and Run")
	case t.Do != nil:
		return t.Do, nil
	case t.Run != nil:
		run := t.Run
		return func(context.Context) error { run(); return nil }, nil
	default:
		return nil, errors.New("starss: task has no Do or Run function")
	}
}

// Config parameterises a Runtime.
type Config struct {
	// Workers is the number of worker goroutines; 0 selects GOMAXPROCS.
	Workers int
	// BufferingDepth is the per-worker task buffer: 1 disables the
	// prefetch overlap, 2 (the default) is double buffering.
	BufferingDepth int
	// Window bounds the number of in-flight (submitted, unfinished) tasks,
	// the analogue of the Task Pool size; Submit blocks when it is full.
	// 0 selects 1024.
	Window int
	// Shards is the number of dependency-table banks the key space is
	// hashed across — the software analogue of the Nexus++ Dependence
	// Table banks. Tasks on keys in different banks resolve concurrently;
	// 1 reproduces the old single-resolver serialization. Values are
	// rounded up to a power of two; 0 selects a default scaled to
	// Workers.
	Shards int
	// RecordGraph keeps the discovered task graph (names and dependency
	// edges) for Graph/ExportDOT. Memory grows with the task count.
	RecordGraph bool
	// EventBuffer enables the lifecycle event stream (submit/ready/run/
	// finish/poison) and sets the per-lane ring capacity; 0 (the default)
	// disables it, leaving a single nil check on every emission point.
	// Drain the stream via Events.
	EventBuffer int
	// BankCounters enables per-bank lock instrumentation (acquisitions,
	// contended acquisitions, max kick-off queue depth), surfaced through
	// Stats. Off by default: the counting replaces the plain bank Lock with
	// a TryLock-then-Lock pair on every acquisition.
	BankCounters bool
	// Faults injects deterministic, seeded faults into task execution and
	// dispatch (see internal/faults): task_error/task_panic/task_hang on
	// bodies, kickoff_delay on the ready→run path. Nil (the default)
	// disables injection; the hot path then pays one nil check, the same
	// discipline as the event stream.
	Faults *faults.Injector
}

// Stats reports runtime counters.
type Stats struct {
	Submitted uint64
	// Executed counts tasks whose body ran to completion successfully.
	Executed uint64
	// Failed counts tasks whose body returned an error, panicked, or was
	// cancelled before running — the root causes of poisoning.
	Failed uint64
	// Skipped counts tasks that never ran because a transitive dependency
	// failed; their handles report ErrDependencyFailed.
	Skipped uint64
	// Retried counts re-armed execution attempts: a task with MaxRetries
	// whose attempt failed and ran again. A task retried twice counts 2.
	Retried uint64
	// MaxInFlight is the high-water mark of submitted-but-unfinished tasks.
	MaxInFlight int
	// Hazards counts tasks that had to wait at least once (DC > 0).
	Hazards uint64
	// BankAcquisitions counts dependence-bank lock acquisitions; zero
	// unless Config.BankCounters is set.
	BankAcquisitions uint64
	// BankContended counts the subset of BankAcquisitions that had to
	// block because another goroutine held the bank.
	BankContended uint64
	// BankMaxQueue is the high-water mark of any single segment's kick-off
	// list — the deepest dependence queue observed on any bank.
	BankMaxQueue uint64
}

// String renders the counters in one line, for reports and logs.
func (s Stats) String() string {
	return fmt.Sprintf(
		"submitted=%d executed=%d failed=%d skipped=%d retried=%d hazards=%d max-in-flight=%d",
		s.Submitted, s.Executed, s.Failed, s.Skipped, s.Retried, s.Hazards, s.MaxInFlight)
}

// Handle tracks one submitted task — the software analogue of the task ID
// the Nexus++ hardware assigns at submission and tracks through Handle
// Finished. Handles are returned by Submit/SubmitAll and stay valid after
// the runtime is closed.
type Handle struct {
	name   string
	index  uint64
	done   chan struct{}
	err    error // written before done is closed
	onDone func(err error)
}

// Done returns a channel closed when the task completes: executed, failed,
// or skipped because a dependency failed.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Err returns the task's final status: nil while the task is still pending
// or after success; the body's error (or panic, or cancellation cause) on
// failure; an error wrapping ErrDependencyFailed and the root cause when
// the task was skipped.
func (h *Handle) Err() error {
	select {
	case <-h.done:
		return h.err
	default:
		return nil
	}
}

// Index is the task's submission index, assigned in admission order — the
// task-ID analogue.
func (h *Handle) Index() uint64 { return h.index }

// Name is the task's resolved name: Task.Name, or "task<index>" when the
// task was submitted nameless.
func (h *Handle) Name() string { return h.name }

// Wait blocks until the task completes or ctx is cancelled, returning the
// task's final error or ctx.Err().
func (h *Handle) Wait(ctx context.Context) error {
	select {
	case <-h.done:
		return h.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// complete publishes the task's outcome; err is visible to any Handle
// reader ordered after the close. The onDone hook fires after the close,
// so callbacks observe a completed handle.
func (h *Handle) complete(err error) {
	h.err = err
	close(h.done)
	if h.onDone != nil {
		h.onDone(err)
	}
}

// bank is one lock-striped slice of the dependence table. The pad brings
// the struct to 64 bytes so adjacent hot bank locks sit on separate cache
// lines. The counters are only written when Config.BankCounters is set
// (acquisitions/contended under TryLock knowledge, maxQueue under the bank
// lock) but are always read atomically by Stats.
type bank struct {
	mu           sync.Mutex
	segs         map[Key]*segState
	acquisitions atomic.Uint64
	contended    atomic.Uint64
	maxQueue     atomic.Uint64
	_            [24]byte
}

// Runtime schedules and executes tasks.
type Runtime struct {
	cfg      Config
	banks    []bank
	mask     uint64
	seed     maphash.Seed
	window   chan struct{}
	readyCh  chan *taskNode
	stopOnce sync.Once
	stopped  chan struct{}
	workerWG sync.WaitGroup

	// subMu fences admission against Close: submitters hold it shared
	// while they admit and resolve; Close takes it exclusively to close
	// stopped, so no submitter can be left mid-admission with a send to
	// readyCh pending when the channel is closed.
	subMu sync.RWMutex
	// batchMu serialises SubmitAll's multi-token window acquisition: a
	// chunk takes its tokens one at a time, and two batches each holding a
	// fraction of the window would deadlock without it. Plain Submit takes
	// a single token and needs no serialisation.
	batchMu sync.Mutex

	submitted   atomic.Uint64
	executed    atomic.Uint64
	failed      atomic.Uint64
	skipped     atomic.Uint64
	retried     atomic.Uint64
	hazards     atomic.Uint64
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
	firstErr    atomic.Pointer[taskFailure]

	// coord serialises barrier and WaitOn bookkeeping; it is only taken on
	// the finish path when a waiter is registered or in-flight hits zero,
	// so it stays off the steady-state hot path.
	coord       sync.Mutex
	barriers    []chan struct{}
	waiters     []waitReq
	waiterCount atomic.Int32

	recorder *graphRecorder

	// rec is the lifecycle event stream (nil unless Config.EventBuffer is
	// set); bankStats gates the per-bank lock counters. Both are fixed at
	// construction, so emission points pay one predictable branch.
	rec       *obs.Recorder
	bankStats bool

	// exec runs task bodies: fault injection, per-task deadlines, retry
	// policy. Fixed at construction; with Config.Faults nil the execution
	// path pays one nil check.
	exec executor
}

// taskFailure is the boxed root-cause record behind firstErr.
type taskFailure struct {
	err error
}

type taskNode struct {
	task   Task
	do     func(context.Context) error
	ctx    context.Context
	handle *Handle
	deps   []Dep // normalised
	// bankOf[i] is the bank index of deps[i]; banks is the sorted,
	// deduplicated set — the per-task acquisition order.
	bankOf []int
	banks  []int
	dc     atomic.Int32
	// poison carries the root-cause error of a failed transitive
	// dependency. Set (first failure wins) by the finish path of a
	// poisoned predecessor — or by checkDeps when the task joins a
	// still-poisoned segment — before this node can reach a worker.
	poison atomic.Pointer[taskFailure]
	// prefetchErr records a panic recovered from Task.Prefetch on the
	// controller goroutine; the worker converts it into the task's
	// failure instead of running the body.
	prefetchErr error
	// err and wasSkipped are the node's outcome, written by its worker
	// before resolveFinished and published through the handle.
	err        error
	wasSkipped bool
}

type segState struct {
	isOut bool
	rdrs  int
	ww    bool
	ko    []segWaiter
	// poison records that a task ordered in this segment's history failed;
	// every waiter popped afterwards is a transitive dependent and is
	// skipped. It dies with the segment: once the key drains and the
	// segment is deleted, later submissions start clean.
	poison error
}

type segWaiter struct {
	node       *taskNode
	wantsWrite bool
}

// ErrStopped is returned by Submit, Wait and WaitOn after Close.
var ErrStopped = errors.New("starss: runtime is shut down")

// ErrDependencyFailed marks a task skipped because a transitive dependency
// failed; Handle.Err wraps it together with the root cause.
var ErrDependencyFailed = errors.New("starss: dependency failed")

// ErrTaskPanicked marks a task whose body panicked; the recovered value is
// in the wrapping error, and dependents are poisoned as for any failure.
var ErrTaskPanicked = errors.New("starss: task panicked")

// defaultShards picks a bank count that gives low collision probability at
// full worker concurrency.
func defaultShards(workers int) int {
	n := 4 * workers
	if n < 8 {
		n = 8
	}
	if n > 512 {
		n = 512
	}
	return n
}

// nextPow2 rounds n up to a power of two.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New starts a runtime with the given configuration.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BufferingDepth <= 0 {
		cfg.BufferingDepth = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	if cfg.Shards <= 0 {
		cfg.Shards = defaultShards(cfg.Workers)
	}
	cfg.Shards = nextPow2(cfg.Shards)
	rt := &Runtime{
		cfg:     cfg,
		banks:   make([]bank, cfg.Shards),
		mask:    uint64(cfg.Shards - 1),
		seed:    maphash.MakeSeed(),
		window:  make(chan struct{}, cfg.Window),
		readyCh: make(chan *taskNode, cfg.Window),
		stopped: make(chan struct{}),
	}
	for i := range rt.banks {
		rt.banks[i].segs = make(map[Key]*segState)
	}
	if cfg.RecordGraph {
		rt.recorder = newGraphRecorder()
	}
	if cfg.EventBuffer > 0 {
		rt.rec = obs.NewRecorder(cfg.Workers, cfg.EventBuffer)
	}
	rt.bankStats = cfg.BankCounters
	rt.exec = executor{
		faults: cfg.Faults,
		onRetry: func(node *taskNode, worker, _ int) {
			rt.retried.Add(1)
			rt.emit(worker, obs.KindRetry, node, worker)
		},
		onFault: func(node *taskNode, worker int) {
			rt.emit(worker, obs.KindFault, node, worker)
		},
	}
	rt.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go rt.worker(i)
	}
	return rt
}

// Events returns the lifecycle event recorder, or nil when
// Config.EventBuffer was zero. Drain it while the runtime is idle (or
// after Close) for a complete, ordered log; draining mid-run is safe but
// may split a task's run/finish pair across drains.
func (rt *Runtime) Events() *obs.Recorder { return rt.rec }

// firstBank is the first dependence bank in the node's sorted acquisition
// order, or -1 for tasks with no dependencies — the bank identity recorded
// on the node's lifecycle events.
func (node *taskNode) firstBank() int {
	if len(node.banks) == 0 {
		return -1
	}
	return node.banks[0]
}

// emit records one lifecycle transition for node when the event stream is
// on. lane -1 selects the submit-side lane.
func (rt *Runtime) emit(lane int, kind obs.Kind, node *taskNode, worker int) {
	if rt.rec == nil {
		return
	}
	rt.rec.Emit(lane, kind, node.handle.index, len(node.deps), node.firstBank(), worker)
}

// bankIndex hashes a key to its bank. Like map insertion, it panics for
// keys that are not comparable.
func (rt *Runtime) bankIndex(k Key) int {
	if rt.mask == 0 {
		return 0
	}
	return int(maphash.Comparable(rt.seed, k) & rt.mask)
}

// prepare computes the node's bank mapping and sorted acquisition order.
func (rt *Runtime) prepare(node *taskNode) {
	if len(node.deps) == 0 {
		return
	}
	node.bankOf = make([]int, len(node.deps))
	for i, d := range node.deps {
		node.bankOf[i] = rt.bankIndex(d.Key)
	}
	node.banks = sortedUnique(append([]int(nil), node.bankOf...))
}

// sortedUnique sorts ints in place and drops duplicates — the canonical
// bank-acquisition order shared by Submit and SubmitAll, whose global
// ascending total order is what keeps multi-bank locking deadlock-free.
func sortedUnique(ints []int) []int {
	if len(ints) == 0 {
		return ints
	}
	sort.Ints(ints)
	uniq := ints[:1]
	for _, v := range ints[1:] {
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}

// lockBanks acquires the given sorted bank set; the global ascending order
// makes multi-bank acquisition deadlock-free. With BankCounters on, each
// acquisition first tries the uncontended fast path so blocked acquisitions
// can be counted separately; the acquisition order is identical.
func (rt *Runtime) lockBanks(banks []int) {
	if rt.bankStats {
		for _, i := range banks {
			b := &rt.banks[i]
			b.acquisitions.Add(1)
			if b.mu.TryLock() {
				continue
			}
			b.contended.Add(1)
			b.mu.Lock()
		}
		return
	}
	for _, i := range banks {
		b := &rt.banks[i]
		b.mu.Lock()
	}
}

func (rt *Runtime) unlockBanks(banks []int) {
	for _, i := range banks {
		rt.banks[i].mu.Unlock()
	}
}

// Submit enqueues a task and returns its handle. It blocks while the
// in-flight window is full — cancelling ctx unblocks it — and returns an
// error for invalid tasks, a cancelled context, or after Close. The ctx is
// also the context the task body receives: cancelling it after admission
// fails the task (and poisons its dependents) if it has not started yet,
// and is observable from inside Do once it has. A nil ctx means
// context.Background().
//
// Dependency resolution happens synchronously in the caller: tasks
// submitted from one goroutine acquire segments in exact program order
// (the StarSs sequential-semantics contract). Tasks submitted concurrently
// from several goroutines are ordered by bank acquisition.
func (rt *Runtime) Submit(ctx context.Context, t Task) (*Handle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	node, err := makeNode(ctx, t)
	if err != nil {
		return nil, err
	}
	// Check cancellation before racing the window send, so a dead context
	// is rejected deterministically rather than sometimes admitted.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case <-rt.stopped:
		return nil, ErrStopped
	case <-ctx.Done():
		return nil, ctx.Err()
	case rt.window <- struct{}{}:
	}
	rt.subMu.RLock()
	select {
	case <-rt.stopped:
		rt.subMu.RUnlock()
		<-rt.window
		return nil, ErrStopped
	default:
	}
	rt.prepare(node)
	rt.admit(node)
	rt.resolveNew(node)
	rt.subMu.RUnlock()
	return node.handle, nil
}

// SubmitAll enqueues a batch of tasks in order, amortising bank locking:
// each chunk of the batch is admitted under a single acquisition of the
// banks it touches. It blocks while the window is full (cancelling ctx
// unblocks it) and returns the first validation error before admitting
// anything, or ErrStopped/ctx.Err() mid-batch; the returned handles cover
// the prefix that was admitted (all tasks on success).
func (rt *Runtime) SubmitAll(ctx context.Context, tasks []Task) ([]*Handle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	nodes := make([]*taskNode, len(tasks))
	for i, t := range tasks {
		node, err := makeNode(ctx, t)
		if err != nil {
			return nil, fmt.Errorf("task %d: %w", i, err)
		}
		nodes[i] = node
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// After Close every admission path must uniformly report ErrStopped —
	// including a zero-length batch, which would otherwise skip the chunk
	// loop (where submitChunk performs this check) and return success.
	select {
	case <-rt.stopped:
		return nil, ErrStopped
	default:
	}
	// Chunk so one batch can never hold more window tokens than exist, and
	// so bank locks are not held for unboundedly long.
	chunkMax := rt.cfg.Window
	if chunkMax > 256 {
		chunkMax = 256
	}
	handles := make([]*Handle, 0, len(nodes))
	for len(nodes) > 0 {
		n := len(nodes)
		if n > chunkMax {
			n = chunkMax
		}
		if err := rt.submitChunk(ctx, nodes[:n]); err != nil {
			return handles, err
		}
		for _, node := range nodes[:n] {
			handles = append(handles, node.handle)
		}
		nodes = nodes[n:]
	}
	return handles, nil
}

func (rt *Runtime) submitChunk(ctx context.Context, nodes []*taskNode) error {
	// Chunks take their window tokens one at a time; batchMu makes that
	// acquisition all-or-nothing across batches, so two concurrent
	// SubmitAll calls cannot each hold a fraction of the window and wait
	// forever for the rest.
	rt.batchMu.Lock()
	for taken := 0; taken < len(nodes); taken++ {
		var err error
		select {
		case <-rt.stopped:
			err = ErrStopped
		case <-ctx.Done():
			err = ctx.Err()
		case rt.window <- struct{}{}:
			continue
		}
		for ; taken > 0; taken-- {
			<-rt.window
		}
		rt.batchMu.Unlock()
		return err
	}
	rt.batchMu.Unlock()
	rt.subMu.RLock()
	select {
	case <-rt.stopped:
		rt.subMu.RUnlock()
		for range nodes {
			<-rt.window
		}
		return ErrStopped
	default:
	}
	var banks []int
	for _, node := range nodes {
		rt.prepare(node)
		banks = append(banks, node.banks...)
	}
	uniq := sortedUnique(banks)
	for _, node := range nodes {
		rt.admit(node)
	}
	ready := make([]*taskNode, 0, len(nodes))
	rt.lockBanks(uniq)
	for _, node := range nodes {
		if rt.checkDeps(node) == 0 {
			ready = append(ready, node)
		} else {
			rt.hazards.Add(1)
		}
	}
	rt.unlockBanks(uniq)
	for _, node := range ready {
		rt.emit(-1, obs.KindReady, node, -1)
		rt.readyCh <- node
	}
	rt.subMu.RUnlock()
	return nil
}

// makeNode validates and normalises one task.
func makeNode(ctx context.Context, t Task) (*taskNode, error) {
	do, err := t.body()
	if err != nil {
		return nil, err
	}
	deps, err := normalizeDeps(t.Deps)
	if err != nil {
		return nil, err
	}
	return &taskNode{task: t, do: do, ctx: ctx, deps: deps}, nil
}

// admit assigns the task its ID (submission index), creates the handle and
// updates the graph recorder. The caller must already hold a window token.
func (rt *Runtime) admit(node *taskNode) {
	idx := rt.submitted.Add(1) - 1
	name := node.task.Name
	if name == "" {
		name = fmt.Sprintf("task%d", idx)
	}
	node.handle = &Handle{name: name, index: idx, done: make(chan struct{}), onDone: node.task.onDone}
	n := rt.inFlight.Add(1)
	for {
		max := rt.maxInFlight.Load()
		if n <= max || rt.maxInFlight.CompareAndSwap(max, n) {
			break
		}
	}
	if rt.recorder != nil {
		rt.recorder.record(node)
	}
	rt.emit(-1, obs.KindSubmit, node, -1)
}

// resolveNew runs Check Deps (Listing 2) for one task against its banks.
func (rt *Runtime) resolveNew(node *taskNode) {
	rt.lockBanks(node.banks)
	dc := rt.checkDeps(node)
	rt.unlockBanks(node.banks)
	if dc == 0 {
		rt.emit(-1, obs.KindReady, node, -1)
		rt.readyCh <- node
	} else {
		rt.hazards.Add(1)
	}
}

// noteQueueDepth raises the bank's kick-off high-water mark. The caller
// holds the bank lock, so the load/store pair has a single writer; the
// atomic lets Stats read it without the lock.
func (rt *Runtime) noteQueueDepth(b *bank, depth int) {
	if !rt.bankStats {
		return
	}
	if d := uint64(depth); d > b.maxQueue.Load() {
		b.maxQueue.Store(d)
	}
}

// checkDeps acquires or queues on every segment of the node and returns the
// resulting dependence count. The caller holds all of node.banks.
func (rt *Runtime) checkDeps(node *taskNode) int {
	dc := 0
	for i, d := range node.deps {
		b := &rt.banks[node.bankOf[i]]
		seg := b.segs[d.Key]
		wantsWrite := d.Mode != ModeIn
		if seg == nil {
			seg = &segState{}
			b.segs[d.Key] = seg
			if wantsWrite {
				seg.isOut = true
			} else {
				seg.rdrs = 1
			}
			continue
		}
		// A still-live poisoned segment taints every task that joins it —
		// reader or writer, queued or not — until the key drains and the
		// segment is deleted. Without this a reader sharing the segment
		// with already-skipped readers would run against data its failed
		// producer never wrote.
		if seg.poison != nil {
			node.poison.CompareAndSwap(nil, &taskFailure{err: seg.poison})
		}
		if !wantsWrite {
			if !seg.isOut && !seg.ww {
				seg.rdrs++
			} else {
				seg.ko = append(seg.ko, segWaiter{node: node})
				dc++
				rt.noteQueueDepth(b, len(seg.ko))
			}
			continue
		}
		seg.ko = append(seg.ko, segWaiter{node: node, wantsWrite: true})
		dc++
		rt.noteQueueDepth(b, len(seg.ko))
		if !seg.isOut {
			seg.ww = true
		}
	}
	// The count must be published before the banks are released: a
	// finisher may pop this node from a kick-off list the moment the
	// bank unlocks.
	node.dc.Store(int32(dc))
	return dc
}

// rootCause is the error a finished node propagates to its dependents: its
// own failure, or — when the node itself was skipped — the original root
// cause it was poisoned with, so chains report the first failure, not a
// nest of skip wrappers.
func (node *taskNode) rootCause() error {
	if node.err == nil {
		return nil
	}
	if p := node.poison.Load(); p != nil {
		return p.err
	}
	return node.err
}

// resolveFinished runs the Handle Finished path (SSIII-B) for one task:
// releases its segments, pops kick-off lists and dispatches any task whose
// dependence count reaches zero. A failed (or skipped) finisher poisons the
// segments it releases, so every waiter popped behind it — now or by a
// later finisher — is skipped as a transitive dependent while the kick-off
// lists drain normally. worker is the finishing worker's index, for the
// event stream.
func (rt *Runtime) resolveFinished(node *taskNode, worker int) {
	root := node.rootCause()
	var released []*taskNode
	release := func(n *taskNode) {
		if n.dc.Add(-1) == 0 {
			released = append(released, n)
		}
	}
	pop := func(seg *segState) segWaiter {
		w := seg.ko[0]
		seg.ko = seg.ko[1:]
		if seg.poison != nil {
			w.node.poison.CompareAndSwap(nil, &taskFailure{err: seg.poison})
		}
		return w
	}
	rt.lockBanks(node.banks)
	for i, d := range node.deps {
		b := &rt.banks[node.bankOf[i]]
		seg := b.segs[d.Key]
		if seg == nil {
			panic(fmt.Sprintf("starss: finished task %q references unknown key %v", node.handle.name, d.Key))
		}
		if root != nil && seg.poison == nil {
			seg.poison = root
		}
		if d.Mode == ModeIn {
			seg.rdrs--
			if seg.rdrs > 0 {
				continue
			}
			if !seg.ww {
				delete(b.segs, d.Key)
				continue
			}
			w := pop(seg)
			seg.isOut = true
			seg.ww = false
			release(w.node)
			continue
		}
		seg.isOut = false
		if len(seg.ko) == 0 {
			delete(b.segs, d.Key)
			continue
		}
		if seg.ko[0].wantsWrite {
			w := pop(seg)
			seg.isOut = true
			release(w.node)
			continue
		}
		for len(seg.ko) > 0 && !seg.ko[0].wantsWrite {
			w := pop(seg)
			seg.rdrs++
			release(w.node)
		}
		if len(seg.ko) > 0 {
			seg.ww = true
		}
	}
	rt.unlockBanks(node.banks)
	for _, n := range released {
		rt.emit(worker, obs.KindReady, n, worker)
		rt.readyCh <- n
	}
	switch {
	case node.wasSkipped:
		rt.skipped.Add(1)
	case node.err != nil:
		rt.failed.Add(1)
		rt.firstErr.CompareAndSwap(nil, &taskFailure{err: node.err})
	default:
		rt.executed.Add(1)
	}
	node.handle.complete(node.err)
	<-rt.window
	n := rt.inFlight.Add(-1)
	if n == 0 || rt.waiterCount.Load() > 0 {
		rt.coord.Lock()
		// Re-read under coord: the pre-lock n may be stale — a task
		// submitted (and a barrier registered for it) after the decrement
		// must not be signalled past.
		if rt.inFlight.Load() == 0 {
			for _, b := range rt.barriers {
				close(b)
			}
			rt.barriers = rt.barriers[:0]
		}
		rt.checkWaitersLocked()
		rt.coord.Unlock()
	}
}

// MustSubmit is Submit with a background context that panics on submission
// error, for straight-line example code.
func (rt *Runtime) MustSubmit(t Task) *Handle {
	h, err := rt.Submit(context.Background(), t)
	if err != nil {
		panic(err)
	}
	return h
}

// Wait blocks until every task submitted before the call has completed —
// the css barrier pragma — and returns the first task failure recorded so
// far (the root cause, not a skip wrapper), nil when all tasks succeeded,
// ctx.Err() if the context is cancelled first, or ErrStopped when the
// runtime is already closed.
func (rt *Runtime) Wait(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-rt.stopped:
		return ErrStopped
	default:
	}
	rt.coord.Lock()
	if rt.inFlight.Load() == 0 {
		rt.coord.Unlock()
		return rt.failure()
	}
	reply := make(chan struct{})
	rt.barriers = append(rt.barriers, reply)
	rt.coord.Unlock()
	select {
	case <-reply:
		return rt.failure()
	case <-ctx.Done():
		// The abandoned reply channel is closed and dropped by the next
		// idle transition; nothing leaks beyond it.
		return ctx.Err()
	}
}

// failure returns the first recorded root-cause task failure, or nil.
func (rt *Runtime) failure() error {
	if f := rt.firstErr.Load(); f != nil {
		return f.err
	}
	return nil
}

// waitIdle blocks until the in-flight count reaches zero. Unlike Wait it
// works after stopped is closed, which Close needs to drain last-moment
// admissions before closing readyCh.
func (rt *Runtime) waitIdle() {
	rt.coord.Lock()
	if rt.inFlight.Load() == 0 {
		rt.coord.Unlock()
		return
	}
	reply := make(chan struct{})
	rt.barriers = append(rt.barriers, reply)
	rt.coord.Unlock()
	<-reply
}

// quiet reports whether none of the keys has a live segment. Keys are
// inspected one bank at a time; a key observed quiet has completed every
// access submitted before the observation.
func (rt *Runtime) quiet(keys []Key) bool {
	for _, k := range keys {
		b := &rt.banks[rt.bankIndex(k)]
		//nexusvet:ignore lockorder single-bank probe: one mutex held at a time, released before the next key, so no acquisition order exists to violate
		b.mu.Lock()
		_, busy := b.segs[k]
		b.mu.Unlock()
		if busy {
			return false
		}
	}
	return true
}

// checkWaitersLocked wakes WaitOn callers whose keys have gone quiet. The
// caller holds coord.
func (rt *Runtime) checkWaitersLocked() {
	if len(rt.waiters) == 0 {
		return
	}
	kept := rt.waiters[:0]
	for _, w := range rt.waiters {
		if rt.quiet(w.keys) {
			close(w.reply)
			rt.waiterCount.Add(-1)
		} else {
			kept = append(kept, w)
		}
	}
	rt.waiters = kept
}

// InFlight returns the current number of submitted-but-unfinished tasks —
// the live window occupancy, for service /debug endpoints.
func (rt *Runtime) InFlight() int { return int(rt.inFlight.Load()) }

// QueueDepth returns the number of ready tasks currently queued for a
// worker (dependence count zero, body not yet started).
func (rt *Runtime) QueueDepth() int { return len(rt.readyCh) }

// WindowSize returns the configured in-flight window capacity.
func (rt *Runtime) WindowSize() int { return rt.cfg.Window }

// Stats returns a snapshot of the runtime counters. After Close it returns
// the final counters. The Bank* fields stay zero unless Config.BankCounters
// was set.
func (rt *Runtime) Stats() Stats {
	s := Stats{
		Submitted:   rt.submitted.Load(),
		Executed:    rt.executed.Load(),
		Failed:      rt.failed.Load(),
		Skipped:     rt.skipped.Load(),
		Retried:     rt.retried.Load(),
		MaxInFlight: int(rt.maxInFlight.Load()),
		Hazards:     rt.hazards.Load(),
	}
	for i := range rt.banks {
		b := &rt.banks[i]
		s.BankAcquisitions += b.acquisitions.Load()
		s.BankContended += b.contended.Load()
		if q := b.maxQueue.Load(); q > s.BankMaxQueue {
			s.BankMaxQueue = q
		}
	}
	return s
}

// Close waits for all submitted tasks, stops the workers and returns the
// first task failure (nil when every task succeeded). The runtime cannot
// be reused afterwards; further Submit/Wait/WaitOn calls return ErrStopped
// and further Close calls return the same failure.
func (rt *Runtime) Close() error {
	rt.waitIdle()
	rt.stopOnce.Do(func() {
		// Closing stopped under the exclusive fence guarantees no
		// submitter is mid-admission; any Submit that raced past the drain
		// above has either fully admitted (drained by waitIdle below) or
		// will observe stopped under its shared lock and back out. Only
		// then is readyCh safe to close.
		rt.subMu.Lock()
		close(rt.stopped)
		rt.subMu.Unlock()
		rt.waitIdle()
		close(rt.readyCh)
	})
	rt.workerWG.Wait()
	return rt.failure()
}

// normalizeDeps merges duplicate keys: any read + any write on the same key
// becomes inout, duplicate same-mode entries collapse.
func normalizeDeps(deps []Dep) ([]Dep, error) {
	if len(deps) <= 1 {
		return deps, nil
	}
	out := make([]Dep, 0, len(deps))
	index := make(map[Key]int, len(deps))
	for _, d := range deps {
		i, seen := index[d.Key]
		if !seen {
			index[d.Key] = len(out)
			out = append(out, d)
			continue
		}
		a, b := out[i].Mode, d.Mode
		switch {
		case a == b:
		case a == ModeInOut:
		default:
			out[i].Mode = ModeInOut
		}
	}
	return out, nil
}

// worker is one worker core plus its Task Controller: a small pipeline that
// prefetches the inputs of up to BufferingDepth-1 upcoming tasks while the
// current one executes. id is the worker's index — its event-stream lane.
func (rt *Runtime) worker(id int) {
	defer rt.workerWG.Done()
	depth := rt.cfg.BufferingDepth
	if depth <= 1 {
		// No buffering: fetch, run and write back serially.
		for node := range rt.readyCh {
			prefetchNode(node)
			rt.runBody(node, id)
		}
		return
	}
	// The controller goroutine prefetches into a bounded local buffer; this
	// goroutine executes. Buffer capacity depth-1 means up to depth tasks
	// are resident per worker (one executing, depth-1 prefetched).
	local := make(chan *taskNode, depth-1)
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		defer close(local)
		for node := range rt.readyCh {
			prefetchNode(node)
			local <- node
		}
	}()
	for node := range local {
		rt.runBody(node, id)
	}
	ctlWG.Wait()
}

// prefetchNode runs the Get Inputs phase unless the task will not run. A
// panicking Prefetch is recorded on the node and fails the task when the
// worker picks it up, instead of killing the controller goroutine.
func prefetchNode(node *taskNode) {
	if node.task.Prefetch == nil {
		return
	}
	if node.poison.Load() != nil || node.ctx.Err() != nil {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			node.prefetchErr = fmt.Errorf("%w: task %q (in Prefetch): %v", ErrTaskPanicked, node.handle.name, r)
		}
	}()
	node.task.Prefetch()
}

// runBody executes one node on worker id and resolves its completion,
// bracketing the body with run and finish (or poison, for skipped tasks)
// events on the worker's own lane — the per-worker ordering the Chrome
// exporter's timeline nesting relies on. Execution itself (fault injection,
// deadlines, retries) lives in executor.runNode (exec.go).
func (rt *Runtime) runBody(node *taskNode, id int) {
	if rt.exec.faults != nil {
		// A slow bank: the task is ready but its kick-off is delayed.
		if d := rt.exec.faults.Delay(faults.SiteKickoffDelay, node.handle.index); d > 0 {
			time.Sleep(d)
		}
	}
	rt.emit(id, obs.KindRun, node, id)
	rt.exec.runNode(node, id)
	if node.wasSkipped {
		rt.emit(id, obs.KindPoison, node, id)
	} else {
		rt.emit(id, obs.KindFinish, node, id)
	}
	rt.resolveFinished(node, id)
}
