// Package starss is a real, executing StarSs-style task-dataflow runtime
// for Go whose scheduler is the Nexus++ dependency-resolution algorithm.
//
// Tasks are Go closures annotated with the data they read and write
// (In/Out/InOut dependencies on user-chosen keys, the analogue of the
// paper's base addresses). The runtime discovers RAW dependencies and
// enforces WAR/WAW hazards without renaming — exactly the semantics of the
// paper's Dependence Table: concurrent readers share a segment, a writer
// waits for all previous readers ("a writer waits" flag), and waiters queue
// in per-segment kick-off lists released by the handle-finished path.
//
// Per-worker double buffering is provided through the optional
// Task.Prefetch hook: while a worker executes one task, its controller
// goroutine prefetches the next task's inputs, mirroring the paper's Task
// Controllers (Get Inputs overlapping Run Task).
//
// The paper's conclusion notes that parts of Nexus++ "can be reused for
// other programming models"; this package is that reuse, in library form.
package starss

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Mode is a dependency direction.
type Mode uint8

const (
	// ModeIn marks data the task only reads.
	ModeIn Mode = iota
	// ModeOut marks data the task only writes.
	ModeOut
	// ModeInOut marks data the task reads and writes.
	ModeInOut
)

// String returns the pragma spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// Key identifies a piece of data. Keys are compared with ==; any comparable
// value works (strings, ints, pointers, small structs).
type Key interface{}

// Dep declares one data access of a task.
type Dep struct {
	Key  Key
	Mode Mode
}

// In declares a read-only dependency.
func In(k Key) Dep { return Dep{Key: k, Mode: ModeIn} }

// Out declares a write-only dependency.
func Out(k Key) Dep { return Dep{Key: k, Mode: ModeOut} }

// InOut declares a read-write dependency.
func InOut(k Key) Dep { return Dep{Key: k, Mode: ModeInOut} }

// Task is a unit of work with declared dependencies.
type Task struct {
	// Name is optional and used in diagnostics.
	Name string
	// Deps declares the data the task accesses. Duplicate keys are merged
	// (read + write on the same key becomes inout).
	Deps []Dep
	// Run executes the task. Required.
	Run func()
	// Prefetch, when set, runs on the worker's controller before Run may
	// start, overlapping the previous task's execution (double buffering).
	// It must only touch the task's declared In/InOut data.
	Prefetch func()
	// WriteBack, when set, runs after Run on the worker (the Put Outputs
	// phase). The task's outputs are only visible to dependents after it.
	WriteBack func()
}

// Config parameterises a Runtime.
type Config struct {
	// Workers is the number of worker goroutines; 0 selects GOMAXPROCS.
	Workers int
	// BufferingDepth is the per-worker task buffer: 1 disables the
	// prefetch overlap, 2 (the default) is double buffering.
	BufferingDepth int
	// Window bounds the number of in-flight (submitted, unfinished) tasks,
	// the analogue of the Task Pool size; Submit blocks when it is full.
	// 0 selects 1024.
	Window int
	// RecordGraph keeps the discovered task graph (names and dependency
	// edges) for Graph/ExportDOT. Memory grows with the task count.
	RecordGraph bool
}

// Stats reports runtime counters.
type Stats struct {
	Submitted uint64
	Executed  uint64
	// MaxInFlight is the high-water mark of submitted-but-unfinished tasks.
	MaxInFlight int
	// Hazards counts tasks that had to wait at least once (DC > 0).
	Hazards uint64
}

// Runtime schedules and executes tasks.
type Runtime struct {
	cfg        Config
	submitCh   chan *taskNode
	doneCh     chan *taskNode
	barrier    chan chan struct{}
	statsCh    chan chan Stats
	waitCh     chan waitReq
	graphCh    chan chan graphSnapshot
	window     chan struct{}
	readyCh    chan *taskNode
	stopOnce   sync.Once
	stopped    chan struct{}
	final      Stats         // snapshot taken by Shutdown, readable afterwards
	finalGraph graphSnapshot // graph snapshot taken by Shutdown
	workerWG   sync.WaitGroup
	maestroW   sync.WaitGroup
}

type taskNode struct {
	task Task
	deps []Dep // normalised
	dc   int
}

type segState struct {
	isOut bool
	rdrs  int
	ww    bool
	ko    []segWaiter
}

type segWaiter struct {
	node       *taskNode
	wantsWrite bool
}

// ErrStopped is returned by Submit after Shutdown.
var ErrStopped = errors.New("starss: runtime is shut down")

// New starts a runtime with the given configuration.
func New(cfg Config) *Runtime {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.BufferingDepth <= 0 {
		cfg.BufferingDepth = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	rt := &Runtime{
		cfg:      cfg,
		submitCh: make(chan *taskNode),
		doneCh:   make(chan *taskNode, cfg.Workers),
		barrier:  make(chan chan struct{}),
		statsCh:  make(chan chan Stats),
		waitCh:   make(chan waitReq),
		graphCh:  make(chan chan graphSnapshot),
		window:   make(chan struct{}, cfg.Window),
		readyCh:  make(chan *taskNode, cfg.Window),
		stopped:  make(chan struct{}),
	}
	rt.maestroW.Add(1)
	go rt.maestro()
	rt.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go rt.worker()
	}
	return rt
}

// Submit enqueues a task. It blocks while the in-flight window is full and
// returns an error for invalid tasks or after Shutdown.
func (rt *Runtime) Submit(t Task) error {
	if t.Run == nil {
		return errors.New("starss: task has no Run function")
	}
	deps, err := normalizeDeps(t.Deps)
	if err != nil {
		return err
	}
	select {
	case <-rt.stopped:
		return ErrStopped
	case rt.window <- struct{}{}:
	}
	node := &taskNode{task: t, deps: deps}
	select {
	case <-rt.stopped:
		<-rt.window
		return ErrStopped
	case rt.submitCh <- node:
		return nil
	}
}

// MustSubmit is Submit that panics on error, for straight-line example code.
func (rt *Runtime) MustSubmit(t Task) {
	if err := rt.Submit(t); err != nil {
		panic(err)
	}
}

// Barrier blocks until every task submitted before the call has completed —
// the css barrier pragma.
func (rt *Runtime) Barrier() {
	reply := make(chan struct{})
	select {
	case <-rt.stopped:
		return
	case rt.barrier <- reply:
		<-reply
	}
}

// Stats returns a snapshot of the runtime counters. After Shutdown it
// returns the final counters.
func (rt *Runtime) Stats() Stats {
	reply := make(chan Stats, 1)
	select {
	case <-rt.stopped:
		return rt.final
	case rt.statsCh <- reply:
		return <-reply
	}
}

// Shutdown waits for all submitted tasks and stops the workers. The runtime
// cannot be reused afterwards.
func (rt *Runtime) Shutdown() {
	rt.Barrier()
	rt.stopOnce.Do(func() {
		rt.final = rt.Stats()
		names, edges := rt.Graph()
		rt.finalGraph = graphSnapshot{names: names, edges: edges}
		close(rt.stopped)
		close(rt.readyCh)
	})
	rt.workerWG.Wait()
	rt.maestroW.Wait()
}

// normalizeDeps merges duplicate keys: any read + any write on the same key
// becomes inout, duplicate same-mode entries collapse.
func normalizeDeps(deps []Dep) ([]Dep, error) {
	if len(deps) <= 1 {
		return deps, nil
	}
	out := make([]Dep, 0, len(deps))
	index := make(map[Key]int, len(deps))
	for _, d := range deps {
		i, seen := index[d.Key]
		if !seen {
			index[d.Key] = len(out)
			out = append(out, d)
			continue
		}
		a, b := out[i].Mode, d.Mode
		switch {
		case a == b:
		case a == ModeInOut:
		default:
			out[i].Mode = ModeInOut
		}
	}
	return out, nil
}

// maestro owns all dependency state; it is the software Task Maestro.
func (rt *Runtime) maestro() {
	defer rt.maestroW.Done()
	segs := make(map[Key]*segState)
	var (
		stats    Stats
		inFlight int
		barriers []chan struct{}
		waiters  []waitReq
		recorder *graphRecorder
	)
	if rt.cfg.RecordGraph {
		recorder = newGraphRecorder()
	}
	quiet := func(keys []Key) bool {
		for _, k := range keys {
			if _, busy := segs[k]; busy {
				return false
			}
		}
		return true
	}
	checkWaiters := func() {
		kept := waiters[:0]
		for _, w := range waiters {
			if quiet(w.keys) {
				close(w.reply)
			} else {
				kept = append(kept, w)
			}
		}
		waiters = kept
	}
	release := func(node *taskNode) {
		node.dc--
		if node.dc == 0 {
			rt.readyCh <- node
		}
	}
	for {
		select {
		case <-rt.stopped:
			return
		case reply := <-rt.statsCh:
			reply <- stats
		case reply := <-rt.graphCh:
			var snap graphSnapshot
			if recorder != nil {
				snap.names = append([]string(nil), recorder.names...)
				snap.edges = append([]GraphEdge(nil), recorder.edges...)
			}
			reply <- snap
		case w := <-rt.waitCh:
			if quiet(w.keys) {
				close(w.reply)
			} else {
				waiters = append(waiters, w)
			}
		case reply := <-rt.barrier:
			if inFlight == 0 {
				close(reply)
			} else {
				barriers = append(barriers, reply)
			}
		case node := <-rt.submitCh:
			stats.Submitted++
			inFlight++
			if inFlight > stats.MaxInFlight {
				stats.MaxInFlight = inFlight
			}
			if recorder != nil {
				recorder.record(node)
			}
			for _, d := range node.deps {
				seg := segs[d.Key]
				wantsWrite := d.Mode != ModeIn
				if seg == nil {
					seg = &segState{}
					segs[d.Key] = seg
					if wantsWrite {
						seg.isOut = true
					} else {
						seg.rdrs = 1
					}
					continue
				}
				if !wantsWrite {
					if !seg.isOut && !seg.ww {
						seg.rdrs++
					} else {
						seg.ko = append(seg.ko, segWaiter{node: node})
						node.dc++
					}
					continue
				}
				seg.ko = append(seg.ko, segWaiter{node: node, wantsWrite: true})
				node.dc++
				if !seg.isOut {
					seg.ww = true
				}
			}
			if node.dc == 0 {
				rt.readyCh <- node
			} else {
				stats.Hazards++
			}
		case node := <-rt.doneCh:
			stats.Executed++
			inFlight--
			for _, d := range node.deps {
				seg := segs[d.Key]
				if seg == nil {
					panic(fmt.Sprintf("starss: finished task %q references unknown key %v", node.task.Name, d.Key))
				}
				if d.Mode == ModeIn {
					seg.rdrs--
					if seg.rdrs > 0 {
						continue
					}
					if !seg.ww {
						delete(segs, d.Key)
						continue
					}
					w := seg.ko[0]
					seg.ko = seg.ko[1:]
					seg.isOut = true
					seg.ww = false
					release(w.node)
					continue
				}
				seg.isOut = false
				if len(seg.ko) == 0 {
					delete(segs, d.Key)
					continue
				}
				if seg.ko[0].wantsWrite {
					w := seg.ko[0]
					seg.ko = seg.ko[1:]
					seg.isOut = true
					release(w.node)
					continue
				}
				for len(seg.ko) > 0 && !seg.ko[0].wantsWrite {
					w := seg.ko[0]
					seg.ko = seg.ko[1:]
					seg.rdrs++
					release(w.node)
				}
				if len(seg.ko) > 0 {
					seg.ww = true
				}
			}
			<-rt.window
			if len(waiters) > 0 {
				checkWaiters()
			}
			if inFlight == 0 {
				for _, b := range barriers {
					close(b)
				}
				barriers = barriers[:0]
			}
		}
	}
}

// worker is one worker core plus its Task Controller: a small pipeline that
// prefetches the inputs of up to BufferingDepth-1 upcoming tasks while the
// current one executes.
func (rt *Runtime) worker() {
	defer rt.workerWG.Done()
	depth := rt.cfg.BufferingDepth
	if depth <= 1 {
		// No buffering: fetch, run and write back serially.
		for node := range rt.readyCh {
			rt.execute(node)
		}
		return
	}
	// The controller goroutine prefetches into a bounded local buffer; this
	// goroutine executes. Buffer capacity depth-1 means up to depth tasks
	// are resident per worker (one executing, depth-1 prefetched).
	local := make(chan *taskNode, depth-1)
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		defer close(local)
		for node := range rt.readyCh {
			if node.task.Prefetch != nil {
				node.task.Prefetch()
			}
			local <- node
		}
	}()
	for node := range local {
		rt.runBody(node)
	}
	ctlWG.Wait()
}

// execute performs the full unbuffered task lifecycle.
func (rt *Runtime) execute(node *taskNode) {
	if node.task.Prefetch != nil {
		node.task.Prefetch()
	}
	rt.runBody(node)
}

func (rt *Runtime) runBody(node *taskNode) {
	node.task.Run()
	if node.task.WriteBack != nil {
		node.task.WriteBack()
	}
	rt.doneCh <- node
}
