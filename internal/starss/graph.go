package starss

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Task-graph recording and the "wait on" synchronisation pragma.

// WaitOn blocks until every previously submitted task that accesses any of
// the given keys has completed — StarSs's "wait on" pragma, a targeted
// alternative to the full Wait. Like Wait, it observes every Submit that
// returned before the call, returns ctx.Err() if the context is cancelled
// first, and returns ErrStopped when the runtime is already closed instead
// of silently succeeding. An empty key set is a no-op. A nil ctx means
// context.Background().
func (rt *Runtime) WaitOn(ctx context.Context, keys ...Key) error {
	if len(keys) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-rt.stopped:
		return ErrStopped
	default:
	}
	// Register before probing: the finish path only takes coord when it
	// sees a positive waiter count, so the count must be visible before
	// the segments this waiter saw busy can drain.
	reply := make(chan struct{})
	rt.coord.Lock()
	rt.waiterCount.Add(1)
	if rt.quiet(keys) {
		rt.waiterCount.Add(-1)
		rt.coord.Unlock()
		return nil
	}
	rt.waiters = append(rt.waiters, waitReq{keys: keys, reply: reply})
	rt.coord.Unlock()
	select {
	case <-reply:
		return nil
	case <-ctx.Done():
	}
	// Deregister, unless a finisher signalled us concurrently — then the
	// wait in fact completed and the cancellation lost the race.
	rt.coord.Lock()
	for i := range rt.waiters {
		if rt.waiters[i].reply == reply {
			rt.waiters = append(rt.waiters[:i], rt.waiters[i+1:]...)
			rt.waiterCount.Add(-1)
			rt.coord.Unlock()
			return ctx.Err()
		}
	}
	rt.coord.Unlock()
	return nil
}

type waitReq struct {
	keys  []Key
	reply chan struct{}
}

// GraphEdge is one recorded dependency: the task To had to wait for (or
// read the output of) the task From. Indices are submission order.
type GraphEdge struct {
	From, To int
}

// Graph returns the recorded task graph: per-task names and the dependency
// edges, in submission order. Recording must have been enabled with
// Config.RecordGraph; otherwise both slices are empty. Call after Wait or
// Close for a complete graph.
func (rt *Runtime) Graph() (names []string, edges []GraphEdge) {
	if rt.recorder == nil {
		return nil, nil
	}
	rt.recorder.mu.Lock()
	defer rt.recorder.mu.Unlock()
	names = append([]string(nil), rt.recorder.names...)
	edges = append([]GraphEdge(nil), rt.recorder.edges...)
	return names, edges
}

// ExportDOT writes the recorded task graph in Graphviz DOT format.
func (rt *Runtime) ExportDOT(w io.Writer) error {
	names, edges := rt.Graph()
	if _, err := fmt.Fprintln(w, "digraph starss {"); err != nil {
		return err
	}
	for i, n := range names {
		label := n
		if label == "" {
			label = fmt.Sprintf("task%d", i)
		}
		if _, err := fmt.Fprintf(w, "  t%d [label=%q];\n", i, label); err != nil {
			return err
		}
	}
	sorted := append([]GraphEdge(nil), edges...)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].From != sorted[b].From {
			return sorted[a].From < sorted[b].From
		}
		return sorted[a].To < sorted[b].To
	})
	for _, e := range sorted {
		if _, err := fmt.Fprintf(w, "  t%d -> t%d;\n", e.From, e.To); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// graphRecorder tracks dependency edges during submission, mirroring the
// sequential-replay oracle: a reader depends on the last writer of each
// key; a writer additionally depends on every reader since. With several
// goroutines submitting concurrently, the recorded order is the order in
// which submissions reach the recorder.
type graphRecorder struct {
	mu           sync.Mutex
	names        []string
	edges        []GraphEdge
	lastWriter   map[Key]int
	readersSince map[Key][]int
}

func newGraphRecorder() *graphRecorder {
	return &graphRecorder{
		lastWriter:   make(map[Key]int),
		readersSince: make(map[Key][]int),
	}
}

func (g *graphRecorder) record(node *taskNode) {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := len(g.names)
	g.names = append(g.names, node.task.Name)
	seen := make(map[int]bool)
	addEdge := func(from int) {
		if from == id || seen[from] {
			return
		}
		seen[from] = true
		g.edges = append(g.edges, GraphEdge{From: from, To: id})
	}
	for _, d := range node.deps {
		if d.Mode != ModeOut {
			if w, ok := g.lastWriter[d.Key]; ok {
				addEdge(w)
			}
		}
		if d.Mode != ModeIn {
			if w, ok := g.lastWriter[d.Key]; ok {
				addEdge(w)
			}
			for _, r := range g.readersSince[d.Key] {
				addEdge(r)
			}
			g.lastWriter[d.Key] = id
			g.readersSince[d.Key] = g.readersSince[d.Key][:0]
		} else {
			g.readersSince[d.Key] = append(g.readersSince[d.Key], id)
		}
	}
}
