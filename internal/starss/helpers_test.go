package starss

import "testing"

// mustClose shuts the runtime down and fails the test if Close reports a
// task failure. Close is the run's last error barrier (it returns the
// first root-cause failure), so tests that are not exercising the error
// path must not drop its result — nexusvet's handleleak analyzer enforces
// exactly that. Tests that expect failures check Close inline instead.
func mustClose(t testing.TB, rt interface{ Close() error }) {
	t.Helper()
	if err := rt.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
