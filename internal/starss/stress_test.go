package starss

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardedRuntimeStress hammers the lock-striped runtime from many
// submitters sharing one small key pool, under -race: mixed Submit and
// SubmitAll batches, bodies that fail, submitters whose context is
// cancelled mid-flight, all on a window far smaller than the task count.
// After Close, the counters must account for every admitted task
// (Submitted == Executed + Failed + Skipped — the drained-window
// invariant) and every returned handle must be complete.
func TestShardedRuntimeStress(t *testing.T) {
	const (
		submitters        = 8
		tasksPerSubmitter = 300
		keyPool           = 24
	)
	rt := New(Config{Workers: 8, Window: 64, Shards: 4})

	var (
		mu      sync.Mutex
		handles []*Handle
		bodyRan atomic.Uint64
	)
	errInjected := errors.New("stress: injected failure")

	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			// Two submitters cancel their context mid-flight; their later
			// submissions must be rejected cleanly, never half-admitted.
			cancelAt := -1
			if s%4 == 3 {
				cancelAt = tasksPerSubmitter / 2
			}
			rng := uint64(s)*0x9e3779b97f4a7c15 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			mk := func(i int) Task {
				fail := next(37) == 0
				return Task{
					Name: fmt.Sprintf("s%d-t%d", s, i),
					Deps: []Dep{
						In(next(keyPool)),
						In(next(keyPool)),
						Out(next(keyPool)),
					},
					Do: func(context.Context) error {
						bodyRan.Add(1)
						if fail {
							return errInjected
						}
						return nil
					},
				}
			}
			for i := 0; i < tasksPerSubmitter; {
				if i == cancelAt {
					cancel()
				}
				if next(3) == 0 {
					// Batch path: a SubmitAll of up to 16 tasks.
					n := 1 + next(16)
					if i+n > tasksPerSubmitter {
						n = tasksPerSubmitter - i
					}
					batch := make([]Task, n)
					for j := range batch {
						batch[j] = mk(i + j)
					}
					hs, err := rt.SubmitAll(ctx, batch)
					if err != nil && !errors.Is(err, context.Canceled) {
						t.Errorf("submitter %d: SubmitAll: %v", s, err)
					}
					mu.Lock()
					handles = append(handles, hs...)
					mu.Unlock()
					i += n
					continue
				}
				h, err := rt.Submit(ctx, mk(i))
				if err != nil {
					if !errors.Is(err, context.Canceled) {
						t.Errorf("submitter %d: Submit: %v", s, err)
					}
				} else {
					mu.Lock()
					handles = append(handles, h)
					mu.Unlock()
				}
				i++
			}
		}()
	}
	wg.Wait()

	err := rt.Close()
	if err != nil && !errors.Is(err, errInjected) {
		t.Errorf("Close returned an unexpected root cause: %v", err)
	}

	st := rt.Stats()
	if st.Submitted != st.Executed+st.Failed+st.Skipped {
		t.Errorf("counter leak: %s (submitted != executed+failed+skipped)", st)
	}
	if uint64(len(handles)) != st.Submitted {
		t.Errorf("returned %d handles for %d admitted tasks", len(handles), st.Submitted)
	}
	// Every body that ran either succeeded (Executed) or returned the
	// injected error (a subset of Failed, which also counts tasks cancelled
	// before their body started); skipped tasks never ran at all.
	if ran := bodyRan.Load(); ran < st.Executed || ran > st.Executed+st.Failed {
		t.Errorf("body ran %d times, stats say executed=%d failed=%d",
			ran, st.Executed, st.Failed)
	}
	for _, h := range handles {
		select {
		case <-h.Done():
		default:
			t.Fatalf("handle %q still pending after Close", h.Name())
		}
		if err := h.Err(); err != nil &&
			!errors.Is(err, errInjected) && !errors.Is(err, ErrDependencyFailed) &&
			!errors.Is(err, context.Canceled) {
			t.Errorf("handle %q: unexpected error class: %v", h.Name(), err)
		}
	}
}

// TestStressSubmitAfterClose pins the shutdown edge under contention: a
// burst of submitters racing Close must each either have their task fully
// admitted (and drained) or get ErrStopped — no third outcome, no hang.
func TestStressSubmitAfterClose(t *testing.T) {
	for round := 0; round < 20; round++ {
		rt := New(Config{Workers: 4, Window: 16, Shards: 2})
		var wg sync.WaitGroup
		var admitted atomic.Uint64
		start := make(chan struct{})
		for s := 0; s < 6; s++ {
			s := s
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					h, err := rt.Submit(context.Background(), Task{
						Deps: []Dep{InOut(s % 3)},
						Do:   func(context.Context) error { return nil },
					})
					if err != nil {
						if !errors.Is(err, ErrStopped) {
							t.Errorf("round %d: %v", round, err)
						}
						return
					}
					admitted.Add(1)
					_ = h
				}
			}()
		}
		closed := make(chan error, 1)
		go func() {
			<-start
			closed <- rt.Close()
		}()
		close(start)
		wg.Wait()
		if err := <-closed; err != nil {
			t.Fatalf("round %d: Close: %v", round, err)
		}
		st := rt.Stats()
		if st.Submitted != admitted.Load() || st.Submitted != st.Executed {
			t.Errorf("round %d: admitted %d, stats %s", round, admitted.Load(), st)
		}
	}
}
