package starss

// A Scope multiplexes one tenant onto a shared Runtime — the software
// analogue of one master core among the many a single Nexus++ task manager
// serves (internal/core/master.go). Every dependency key submitted through
// a scope is rewritten to a ScopedKey carrying the scope's name, so two
// scopes using identical key names can never create cross-scope
// dependencies: they hash to distinct dependence-table segments exactly as
// two masters' address spaces occupy distinct table entries in hardware.
// A scope also keeps its own Stats, classified from each task's final
// error via the handle-completion hook, so a long-lived service can report
// per-tenant counters while the shared runtime reports the aggregate.

import (
	"context"
	"errors"
	"sync/atomic"
)

// ScopedKey is a user key namespaced by the scope that submitted it. It is
// the concrete key type the shared runtime's dependence banks see for
// scoped submissions; it is exported so diagnostics and tests can name it,
// but user code normally never constructs one.
type ScopedKey struct {
	Scope string
	Key   Key
}

// Scope is a named, isolated submission namespace over a shared Runtime.
// Create one per tenant with Runtime.Scope. Methods are safe for
// concurrent use; SetOnDone must be called before the first submission.
type Scope struct {
	rt   *Runtime
	name string
	// onDone, when set, observes every scoped task's completion after the
	// scope's own counters are updated. The service layer uses it to
	// release per-session admission tokens.
	onDone func(err error)

	submitted   atomic.Uint64
	executed    atomic.Uint64
	failed      atomic.Uint64
	skipped     atomic.Uint64
	inFlight    atomic.Int64
	maxInFlight atomic.Int64
}

// Scope returns a new submission namespace named name on the runtime. Two
// scopes with different names are fully isolated even on identical user
// keys; two Scope calls with the same name alias the same namespace (their
// keys interact) but keep separate counters.
func (rt *Runtime) Scope(name string) *Scope {
	return &Scope{rt: rt, name: name}
}

// Name returns the scope's namespace name.
func (s *Scope) Name() string { return s.name }

// SetOnDone registers a hook invoked with every scoped task's final error
// after the task completes and the scope's counters are updated. It must
// be called before the scope's first submission and at most once.
func (s *Scope) SetOnDone(fn func(err error)) { s.onDone = fn }

// record classifies one completed task into the scope counters, mirroring
// the runtime-wide executed/failed/skipped classification.
func (s *Scope) record(err error) {
	switch {
	case err == nil:
		s.executed.Add(1)
	case errors.Is(err, ErrDependencyFailed):
		s.skipped.Add(1)
	default:
		s.failed.Add(1)
	}
	s.inFlight.Add(-1)
	if s.onDone != nil {
		s.onDone(err)
	}
}

// rewrite returns a copy of t with every dependency key wrapped in the
// scope's namespace and the completion hook attached. The caller's Task
// and Deps slice are not mutated.
func (s *Scope) rewrite(t Task) Task {
	if len(t.Deps) > 0 {
		deps := make([]Dep, len(t.Deps))
		for i, d := range t.Deps {
			deps[i] = Dep{Key: ScopedKey{Scope: s.name, Key: d.Key}, Mode: d.Mode}
		}
		t.Deps = deps
	}
	t.onDone = s.record
	return t
}

// noteMax folds the current in-flight count into the high-water mark.
func (s *Scope) noteMax(n int64) {
	for {
		max := s.maxInFlight.Load()
		if n <= max || s.maxInFlight.CompareAndSwap(max, n) {
			return
		}
	}
}

// Submit submits one task through the scope: keys are namespaced, and the
// scope's counters track the task's lifecycle. Semantics otherwise match
// Runtime.Submit.
func (s *Scope) Submit(ctx context.Context, t Task) (*Handle, error) {
	s.noteMax(s.inFlight.Add(1))
	h, err := s.rt.Submit(ctx, s.rewrite(t))
	if err != nil {
		s.inFlight.Add(-1)
		return nil, err
	}
	s.submitted.Add(1)
	return h, nil
}

// SubmitAll submits a batch through the scope with the same partial-prefix
// contract as Runtime.SubmitAll: on error the returned handles cover the
// admitted prefix, and the scope's counters cover exactly that prefix.
func (s *Scope) SubmitAll(ctx context.Context, tasks []Task) ([]*Handle, error) {
	scoped := make([]Task, len(tasks))
	for i, t := range tasks {
		scoped[i] = s.rewrite(t)
	}
	s.noteMax(s.inFlight.Add(int64(len(scoped))))
	handles, err := s.rt.SubmitAll(ctx, scoped)
	if n := len(scoped) - len(handles); n > 0 {
		s.inFlight.Add(-int64(n))
	}
	s.submitted.Add(uint64(len(handles)))
	return handles, err
}

// WaitOn blocks until every previously submitted scoped task accessing any
// of the given (un-namespaced) keys has completed; see Runtime.WaitOn.
func (s *Scope) WaitOn(ctx context.Context, keys ...Key) error {
	scoped := make([]Key, len(keys))
	for i, k := range keys {
		scoped[i] = ScopedKey{Scope: s.name, Key: k}
	}
	return s.rt.WaitOn(ctx, scoped...)
}

// InFlight returns the scope's current submitted-but-unfinished count —
// the session window occupancy of the service layer.
func (s *Scope) InFlight() int64 { return s.inFlight.Load() }

// Stats returns the scope's own counters. Hazards is always zero: hazard
// detection happens inside the shared banks and is reported runtime-wide.
func (s *Scope) Stats() Stats {
	return Stats{
		Submitted:   s.submitted.Load(),
		Executed:    s.executed.Load(),
		Failed:      s.failed.Load(),
		Skipped:     s.skipped.Load(),
		MaxInFlight: int(s.maxInFlight.Load()),
	}
}
