package starss

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"nexuspp/internal/sim"
)

func TestModeString(t *testing.T) {
	if ModeIn.String() != "in" || ModeOut.String() != "out" || ModeInOut.String() != "inout" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() != "mode(9)" {
		t.Error("unknown mode name wrong")
	}
}

func TestDepConstructors(t *testing.T) {
	if In("k") != (Dep{Key: "k", Mode: ModeIn}) ||
		Out("k") != (Dep{Key: "k", Mode: ModeOut}) ||
		InOut("k") != (Dep{Key: "k", Mode: ModeInOut}) {
		t.Error("constructors wrong")
	}
}

func TestNormalizeDeps(t *testing.T) {
	deps, err := normalizeDeps([]Dep{In("a"), Out("a"), In("b"), In("b")})
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 2 {
		t.Fatalf("deps = %v", deps)
	}
	if deps[0].Key != "a" || deps[0].Mode != ModeInOut {
		t.Errorf("merged dep = %v, want a/inout", deps[0])
	}
	if deps[1].Key != "b" || deps[1].Mode != ModeIn {
		t.Errorf("dep b = %v", deps[1])
	}
}

func TestBasicExecution(t *testing.T) {
	rt := New(Config{Workers: 4})
	var count atomic.Int64
	for i := 0; i < 100; i++ {
		rt.MustSubmit(Task{
			Deps: []Dep{InOut(i)},
			Run:  func() { count.Add(1) },
		})
	}
	mustClose(t, rt)
	if count.Load() != 100 {
		t.Fatalf("executed %d of 100", count.Load())
	}
	st := rt.Stats()
	if st.Submitted != 100 || st.Executed != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChainOrdering(t *testing.T) {
	rt := New(Config{Workers: 8})
	var order []int
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		i := i
		rt.MustSubmit(Task{
			Deps: []Dep{InOut("chain")},
			Run: func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			},
		})
	}
	mustClose(t, rt)
	if len(order) != 50 {
		t.Fatalf("ran %d", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("chain order broken at %d: %v", i, order[:i+1])
		}
	}
}

func TestRAWVisibility(t *testing.T) {
	rt := New(Config{Workers: 4})
	data := make([]int, 10)
	for i := range data {
		i := i
		rt.MustSubmit(Task{
			Deps: []Dep{Out(i)},
			Run:  func() { data[i] = i * i },
		})
	}
	sum := 0
	deps := make([]Dep, 10)
	for i := range deps {
		deps[i] = In(i)
	}
	rt.MustSubmit(Task{
		Deps: deps,
		Run: func() {
			for _, v := range data {
				sum += v
			}
		},
	})
	mustClose(t, rt)
	want := 0
	for i := 0; i < 10; i++ {
		want += i * i
	}
	if sum != want {
		t.Fatalf("sum = %d, want %d (RAW visibility broken)", sum, want)
	}
}

func TestSubmitErrors(t *testing.T) {
	rt := New(Config{Workers: 1})
	if _, err := rt.Submit(context.Background(), Task{}); err == nil {
		t.Error("task without a body accepted")
	}
	if _, err := rt.Submit(context.Background(), Task{Run: func() {}, Do: func(context.Context) error { return nil }}); err == nil {
		t.Error("task with both Do and Run accepted")
	}
	if err := rt.Close(); err != nil {
		t.Errorf("Close = %v", err)
	}
	if _, err := rt.Submit(context.Background(), Task{Run: func() {}}); err != ErrStopped {
		t.Errorf("Submit after Close = %v, want ErrStopped", err)
	}
	if err := rt.Close(); err != nil { // idempotent
		t.Errorf("second Close = %v", err)
	}
	if err := rt.Wait(context.Background()); err != ErrStopped {
		t.Errorf("Wait after Close = %v, want ErrStopped", err)
	}
	if st := rt.Stats(); st.Submitted != 0 {
		t.Errorf("final stats = %+v", st)
	}
}

func TestBarrierWaitsForAll(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer mustClose(t, rt)
	var done atomic.Int64
	for i := 0; i < 64; i++ {
		rt.MustSubmit(Task{
			Deps: []Dep{InOut(i % 7)},
			Run:  func() { done.Add(1) },
		})
	}
	rt.Wait(context.Background())
	if done.Load() != 64 {
		t.Fatalf("barrier returned with %d of 64 done", done.Load())
	}
	// The runtime stays usable after a barrier.
	rt.MustSubmit(Task{Deps: []Dep{In("x")}, Run: func() { done.Add(1) }})
	rt.Wait(context.Background())
	if done.Load() != 65 {
		t.Fatal("submission after barrier did not run")
	}
}

// hazardChecker verifies reader/writer exclusion at execution time: readers
// of a key may overlap each other but never a writer; writers are exclusive.
type hazardChecker struct {
	mu      sync.Mutex
	readers map[Key]int
	writers map[Key]int
	bad     []string
}

func newHazardChecker() *hazardChecker {
	return &hazardChecker{readers: map[Key]int{}, writers: map[Key]int{}}
}

func (h *hazardChecker) enter(deps []Dep) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, d := range deps {
		if d.Mode == ModeIn {
			if h.writers[d.Key] > 0 {
				h.bad = append(h.bad, "reader overlaps writer")
			}
			h.readers[d.Key]++
		} else {
			if h.writers[d.Key] > 0 || h.readers[d.Key] > 0 {
				h.bad = append(h.bad, "writer overlaps access")
			}
			h.writers[d.Key]++
		}
	}
}

func (h *hazardChecker) exit(deps []Dep) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, d := range deps {
		if d.Mode == ModeIn {
			h.readers[d.Key]--
		} else {
			h.writers[d.Key]--
		}
	}
}

func TestHazardExclusion(t *testing.T) {
	rt := New(Config{Workers: 8})
	h := newHazardChecker()
	rng := sim.NewRand(7)
	for i := 0; i < 500; i++ {
		var deps []Dep
		used := map[int]bool{}
		for k := 0; k <= rng.Intn(3); k++ {
			key := rng.Intn(5)
			if used[key] {
				continue
			}
			used[key] = true
			deps = append(deps, Dep{Key: key, Mode: Mode(rng.Intn(3))})
		}
		if len(deps) == 0 {
			deps = []Dep{In(99)}
		}
		norm, _ := normalizeDeps(deps)
		rt.MustSubmit(Task{
			Deps: deps,
			Run: func() {
				h.enter(norm)
				defer h.exit(norm)
				spin(200)
			},
		})
	}
	mustClose(t, rt)
	if len(h.bad) > 0 {
		t.Fatalf("hazard violations: %v", h.bad[:min(5, len(h.bad))])
	}
	if rt.Stats().Executed != 500 {
		t.Fatalf("executed = %d", rt.Stats().Executed)
	}
}

func TestPrefetchOverlap(t *testing.T) {
	// With double buffering on a single worker, the controller must start
	// prefetching task 1 while task 0 is still inside Run. Rendezvous
	// through channels makes the overlap deterministic instead of racing a
	// timing window: task 0's Run cannot finish until task 1's Prefetch has
	// observed it running, and the prefetch cannot be observed unless it
	// genuinely overlaps.
	rt := New(Config{Workers: 1, BufferingDepth: 2})
	var running atomic.Int64
	firstRunning := make(chan struct{}) // closed when task 0 enters Run
	release := make(chan struct{})      // closed by task 1's Prefetch
	var overlapped atomic.Bool
	rt.MustSubmit(Task{
		Deps: []Dep{InOut(0)},
		Run: func() {
			running.Add(1)
			close(firstRunning)
			// If the prefetch never overlaps (a buffering regression), time
			// out and let the assertion below report it instead of hanging.
			select {
			case <-release:
			case <-time.After(10 * time.Second):
			}
			running.Add(-1)
		},
	})
	rt.MustSubmit(Task{
		Deps: []Dep{InOut(1)},
		Prefetch: func() {
			<-firstRunning
			if running.Load() > 0 {
				overlapped.Store(true)
			}
			close(release)
		},
		Run: func() {},
	})
	mustClose(t, rt)
	if !overlapped.Load() {
		t.Fatal("no prefetch overlapped execution with double buffering")
	}
}

func TestDepthOneNoPipelineOverlap(t *testing.T) {
	// With depth 1 on a single worker, prefetches never overlap runs.
	rt := New(Config{Workers: 1, BufferingDepth: 1})
	var running atomic.Int64
	overlapped := atomic.Bool{}
	for i := 0; i < 10; i++ {
		i := i
		rt.MustSubmit(Task{
			Deps: []Dep{InOut(i)},
			Prefetch: func() {
				if running.Load() > 0 {
					overlapped.Store(true)
				}
			},
			Run: func() {
				running.Add(1)
				spin(500)
				running.Add(-1)
			},
		})
	}
	mustClose(t, rt)
	if overlapped.Load() {
		t.Fatal("prefetch overlapped execution despite depth 1")
	}
}

func TestWriteBackRuns(t *testing.T) {
	rt := New(Config{Workers: 2})
	var wrote atomic.Int64
	produced := 0
	consumed := -1
	rt.MustSubmit(Task{
		Deps:      []Dep{Out("v")},
		Run:       func() { produced = 41 },
		WriteBack: func() { produced++; wrote.Add(1) },
	})
	rt.MustSubmit(Task{
		Deps: []Dep{In("v")},
		Run:  func() { consumed = produced },
	})
	mustClose(t, rt)
	if wrote.Load() != 1 {
		t.Fatal("WriteBack did not run")
	}
	if consumed != 42 {
		t.Fatalf("consumer saw %d, want 42 (WriteBack must happen before dependents)", consumed)
	}
}

func TestWindowBackPressure(t *testing.T) {
	rt := New(Config{Workers: 1, Window: 4})
	block := make(chan struct{})
	rt.MustSubmit(Task{Deps: []Dep{InOut("k")}, Run: func() { <-block }})
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10; i++ {
			rt.MustSubmit(Task{Deps: []Dep{InOut("k")}, Run: func() {}})
		}
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("submissions did not block on a full window")
	default:
	}
	close(block)
	<-done
	mustClose(t, rt)
	if got := rt.Stats().MaxInFlight; got > 4 {
		t.Fatalf("in-flight %d exceeded window 4", got)
	}
}

// Property: random task graphs over a small key space always execute all
// tasks without hazard violations, for any worker count and depth.
func TestRandomGraphsProperty(t *testing.T) {
	prop := func(seed uint64, wRaw, dRaw, sRaw uint8) bool {
		rng := sim.NewRand(seed)
		rt := New(Config{
			Workers:        int(wRaw%4) + 1,
			BufferingDepth: int(dRaw%3) + 1,
			Window:         64,
			Shards:         int(sRaw % 5), // 0 (default), 1, 2, 3→4, 4
		})
		h := newHazardChecker()
		n := 120
		for i := 0; i < n; i++ {
			var deps []Dep
			used := map[int]bool{}
			for k := 0; k <= rng.Intn(2); k++ {
				key := rng.Intn(4)
				if used[key] {
					continue
				}
				used[key] = true
				deps = append(deps, Dep{Key: key, Mode: Mode(rng.Intn(3))})
			}
			if len(deps) == 0 {
				deps = []Dep{In(42)}
			}
			norm, _ := normalizeDeps(deps)
			if _, err := rt.Submit(context.Background(), Task{
				Deps: deps,
				Run: func() {
					h.enter(norm)
					defer h.exit(norm)
					spin(50)
				},
			}); err != nil {
				return false
			}
		}
		if err := rt.Close(); err != nil {
			return false
		}
		return len(h.bad) == 0 && rt.Stats().Executed == uint64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func spin(iters int) {
	x := 1
	for i := 0; i < iters; i++ {
		x = x*31 + i
	}
	_ = x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
