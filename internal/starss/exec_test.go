package starss

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"nexuspp/internal/faults"
)

// failNTimes builds a body that fails its first n attempts and then
// succeeds, counting every call.
func failNTimes(n int, calls *atomic.Int64) func(context.Context) error {
	return func(context.Context) error {
		if calls.Add(1) <= int64(n) {
			return errors.New("transient")
		}
		return nil
	}
}

func TestRetryRecovers(t *testing.T) {
	rt := New(Config{Workers: 2})
	var calls atomic.Int64
	h := rt.MustSubmit(Task{
		Deps:         []Dep{InOut("k")},
		Do:           failNTimes(2, &calls),
		MaxRetries:   3,
		RetryBackoff: time.Microsecond,
	})
	mustClose(t, rt)
	if err := h.Err(); err != nil {
		t.Fatalf("recovered task err = %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("body ran %d times, want 3 (two failures, one success)", calls.Load())
	}
	st := rt.Stats()
	if st.Executed != 1 || st.Failed != 0 || st.Retried != 2 {
		t.Errorf("stats = %+v, want executed=1 failed=0 retried=2", st)
	}
}

func TestRetryExhausts(t *testing.T) {
	rt := New(Config{Workers: 2})
	boom := errors.New("boom")
	var calls atomic.Int64
	h := rt.MustSubmit(Task{
		Deps:         []Dep{InOut("k")},
		Do:           func(context.Context) error { calls.Add(1); return boom },
		MaxRetries:   2,
		RetryBackoff: time.Microsecond,
	})
	if err := rt.Close(); !errors.Is(err, boom) {
		t.Errorf("Close = %v, want the exhausted task's error", err)
	}
	if !errors.Is(h.Err(), boom) {
		t.Errorf("handle err = %v, want boom", h.Err())
	}
	if calls.Load() != 3 {
		t.Errorf("body ran %d times, want 3 (MaxRetries=2)", calls.Load())
	}
	st := rt.Stats()
	if st.Failed != 1 || st.Retried != 2 {
		t.Errorf("stats = %+v, want failed=1 retried=2", st)
	}
}

// TestRetryRearmsBeforePoison is the ordering guarantee the retry policy
// exists for: a task that recovers on a later attempt must never have
// poisoned its dependents in between. The dependent shares the failing
// task's key, so if re-arm happened after the finished path it would be
// skipped.
func TestRetryRearmsBeforePoison(t *testing.T) {
	rt := New(Config{Workers: 2})
	var calls atomic.Int64
	var depRan atomic.Bool
	rt.MustSubmit(Task{
		Deps:         []Dep{Out("chain")},
		Do:           failNTimes(2, &calls),
		MaxRetries:   2,
		RetryBackoff: time.Microsecond,
	})
	dep := rt.MustSubmit(Task{
		Deps: []Dep{In("chain")},
		Run:  func() { depRan.Store(true) },
	})
	mustClose(t, rt)
	if err := dep.Err(); err != nil {
		t.Fatalf("dependent err = %v, want nil (producer recovered)", err)
	}
	if !depRan.Load() {
		t.Error("dependent never ran")
	}
	if st := rt.Stats(); st.Skipped != 0 {
		t.Errorf("stats = %+v, want skipped=0", st)
	}
}

func TestTaskTimeout(t *testing.T) {
	rt := New(Config{Workers: 2})
	h := rt.MustSubmit(Task{
		Deps: []Dep{InOut("k")},
		Do: func(ctx context.Context) error {
			<-ctx.Done()
			return context.Cause(ctx)
		},
		Timeout: 20 * time.Millisecond,
	})
	if err := rt.Close(); !errors.Is(err, ErrTaskTimeout) {
		t.Errorf("Close = %v, want ErrTaskTimeout", err)
	}
	if !errors.Is(h.Err(), ErrTaskTimeout) {
		t.Errorf("handle err = %v, want ErrTaskTimeout", h.Err())
	}
}

// TestTimeoutRetries: each attempt gets a fresh deadline budget, so a task
// that hangs once and then behaves recovers under MaxRetries.
func TestTimeoutRetries(t *testing.T) {
	rt := New(Config{Workers: 2})
	var calls atomic.Int64
	h := rt.MustSubmit(Task{
		Deps: []Dep{InOut("k")},
		Do: func(ctx context.Context) error {
			if calls.Add(1) == 1 {
				<-ctx.Done()
				return context.Cause(ctx)
			}
			return nil
		},
		Timeout:      10 * time.Millisecond,
		MaxRetries:   1,
		RetryBackoff: time.Microsecond,
	})
	mustClose(t, rt)
	if err := h.Err(); err != nil {
		t.Fatalf("recovered task err = %v", err)
	}
	if st := rt.Stats(); st.Retried != 1 || st.Executed != 1 {
		t.Errorf("stats = %+v, want retried=1 executed=1", st)
	}
}

// TestCancelledContextIsFinal: a dead submission context must not be
// retried, no matter how many attempts remain.
func TestCancelledContextIsFinal(t *testing.T) {
	rt := New(Config{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	h, err := rt.Submit(ctx, Task{
		Deps: []Dep{InOut("k")},
		Do: func(ctx context.Context) error {
			calls.Add(1)
			cancel()
			return errors.New("failed while the submitter was dying")
		},
		MaxRetries:   8,
		RetryBackoff: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err == nil {
		t.Error("Close = nil, want the cancelled task's failure")
	}
	if h.Err() == nil {
		t.Error("handle err = nil, want failure")
	}
	if calls.Load() != 1 {
		t.Errorf("body ran %d times after its context died, want 1", calls.Load())
	}
}

// TestInjectedFaultsRetried: executor-level injection composes with the
// retry policy — an injected body error wraps faults.ErrInjected, and a
// task whose later attempt re-rolls clean recovers.
func TestInjectedFaultsRetried(t *testing.T) {
	in := faults.New(&faults.Plan{Seed: 5, Rules: []faults.Rule{{Site: faults.SiteTaskError, Prob: 0.5}}})
	rt := New(Config{Workers: 4, Faults: in})
	const n = 64
	const maxRetries = 6
	handles := make([]*Handle, n)
	for i := 0; i < n; i++ {
		handles[i] = rt.MustSubmit(Task{
			Deps:         []Dep{Out(i)},
			Run:          func() {},
			MaxRetries:   maxRetries,
			RetryBackoff: time.Microsecond,
		})
	}
	// The schedule is a pure function of (seed, index, attempt): predict the
	// outcome of every handle before draining.
	closeErr := rt.Close()
	sawFailure := false
	for _, h := range handles {
		doomed := true
		for a := 0; a <= maxRetries; a++ {
			if !in.Peek(faults.SiteTaskError, faults.TaskKey(h.Index(), a)) {
				doomed = false
				break
			}
		}
		err := h.Err()
		if doomed {
			sawFailure = true
			if !errors.Is(err, faults.ErrInjected) {
				t.Errorf("task %d: err = %v, want ErrInjected", h.Index(), err)
			}
		} else if err != nil {
			t.Errorf("task %d: err = %v, want recovery", h.Index(), err)
		}
	}
	if sawFailure && closeErr == nil {
		t.Error("Close = nil despite exhausted tasks")
	}
	if !sawFailure && closeErr != nil {
		t.Errorf("Close = %v with no exhausted tasks", closeErr)
	}
	if in.Fired(faults.SiteTaskError) == 0 {
		t.Error("injector never fired at prob 0.5 over 64 tasks")
	}
}

// TestMaestroRetries: the single-master baseline shares the executor, so
// the retry policy and Retried accounting must behave identically there.
func TestMaestroRetries(t *testing.T) {
	m := NewMaestro(Config{Workers: 2})
	var calls atomic.Int64
	h := m.MustSubmit(Task{
		Deps:         []Dep{InOut("k")},
		Do:           failNTimes(2, &calls),
		MaxRetries:   3,
		RetryBackoff: time.Microsecond,
	})
	mustClose(t, m)
	if err := h.Err(); err != nil {
		t.Fatalf("recovered task err = %v", err)
	}
	if st := m.Stats(); st.Retried != 2 || st.Executed != 1 || st.Failed != 0 {
		t.Errorf("stats = %+v, want retried=2 executed=1 failed=0", st)
	}
}

// TestKickoffDelayInjection: a kickoff_delay rule stalls dispatch but never
// changes outcomes.
func TestKickoffDelayInjection(t *testing.T) {
	in := faults.New(&faults.Plan{Seed: 2, Rules: []faults.Rule{
		{Site: faults.SiteKickoffDelay, Every: 2, Delay: time.Millisecond},
	}})
	rt := New(Config{Workers: 4, Faults: in})
	var ran atomic.Int64
	for i := 0; i < 16; i++ {
		rt.MustSubmit(Task{Deps: []Dep{Out(i)}, Run: func() { ran.Add(1) }})
	}
	mustClose(t, rt)
	if ran.Load() != 16 {
		t.Errorf("ran %d of 16", ran.Load())
	}
	if in.Fired(faults.SiteKickoffDelay) == 0 {
		t.Error("kickoff_delay never fired with every=2 over 16 tasks")
	}
}
