package starss

// This file is the bridge between the traced-workload world (internal/trace,
// internal/workload) and the executing runtime: it replays any workload.Source
// on a real TaskRuntime by synthesizing task bodies from the trace's timing.
// For the first time the real runtime's schedules can be cross-validated
// against the dependency-graph oracle and the Nexus++ simulator on the
// paper's own workloads — the same trace drives every engine.

import (
	"context"
	"fmt"
	"time"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

// ReplayOptions controls how traced timing maps onto synthesized bodies.
type ReplayOptions struct {
	// ZeroCost replaces every task body with an empty function, so a replay
	// measures pure dependency-resolution and scheduling throughput.
	ZeroCost bool
	// TimeScale divides every synthesized duration: 1 (or 0) replays the
	// trace's timing unscaled, 10 replays ten times faster. Ignored when
	// ZeroCost is set.
	TimeScale int
	// BatchSize is the SubmitAll chunk size on runtimes that support batch
	// admission; 0 selects 256. Runtimes without SubmitAll (the maestro
	// baseline) always admit one task at a time.
	BatchSize int
}

// ReplayResult reports one replay of a traced workload on a real runtime.
type ReplayResult struct {
	// Workload is the source's name.
	Workload string
	// Wall is the measured wall-clock time from the first admission until
	// the final barrier returned.
	Wall time.Duration
	// Stats covers this replay only: the counters are the difference of the
	// runtime's snapshots around the replay, so several replays sharing one
	// runtime each report their own counts. MaxInFlight is the runtime's
	// high-water mark, which cannot be attributed to one replay.
	Stats Stats
}

// statsDelta subtracts the monotonic counters of before from after. Like
// MaxInFlight, BankMaxQueue is a high-water mark and cannot be attributed
// to one replay, so the runtime's mark is reported as-is.
func statsDelta(before, after Stats) Stats {
	return Stats{
		Submitted:        after.Submitted - before.Submitted,
		Executed:         after.Executed - before.Executed,
		Failed:           after.Failed - before.Failed,
		Skipped:          after.Skipped - before.Skipped,
		Retried:          after.Retried - before.Retried,
		Hazards:          after.Hazards - before.Hazards,
		MaxInFlight:      after.MaxInFlight,
		BankAcquisitions: after.BankAcquisitions - before.BankAcquisitions,
		BankContended:    after.BankContended - before.BankContended,
		BankMaxQueue:     after.BankMaxQueue,
	}
}

// batchSubmitter is implemented by runtimes with batch admission (the
// sharded Runtime); the maestro baseline intentionally lacks it.
type batchSubmitter interface {
	SubmitAll(ctx context.Context, tasks []Task) ([]*Handle, error)
}

// durationOf converts a simulated time into wall-clock time.
func durationOf(t sim.Time) time.Duration {
	return time.Duration(t / sim.Nanosecond)
}

// TaskFromSpec synthesizes an executable Task from one traced task: the
// parameter list becomes In/Out/InOut dependencies keyed by base address,
// and the body sleeps for the traced execution plus memory time (scaled by
// opts.TimeScale) or does nothing under ZeroCost.
func TaskFromSpec(spec trace.TaskSpec, opts ReplayOptions) Task {
	deps := make([]Dep, len(spec.Params))
	for i, p := range spec.Params {
		switch {
		case p.Mode == trace.In:
			deps[i] = In(p.Addr)
		case p.Mode == trace.Out:
			deps[i] = Out(p.Addr)
		default:
			deps[i] = InOut(p.Addr)
		}
	}
	// No Name: the runtime derives "task<index>" on demand, and the
	// submission index equals the trace ID under in-order replay; a
	// per-task Sprintf would tax the feeder inside the timed region of the
	// resolver-throughput experiments.
	t := Task{Deps: deps}
	if opts.ZeroCost {
		t.Do = func(ctx context.Context) error { return ctx.Err() }
		return t
	}
	scale := opts.TimeScale
	if scale < 1 {
		scale = 1
	}
	d := durationOf(spec.Exec+spec.MemRead+spec.MemWrite) / time.Duration(scale)
	t.Do = func(ctx context.Context) error { return sleepFor(ctx, d) }
	return t
}

// sleepFor blocks for d, honouring cancellation.
func sleepFor(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Replay runs src to completion on rt: every traced task is admitted in
// submission order with its parameter list as dependencies and a body
// synthesized from its timing, then Replay waits for the final barrier. The
// runtime is left open (the caller owns its lifecycle), so several replays
// can share one runtime as long as their key spaces are disjoint or drained.
//
// Sharded runtimes are fed through SubmitAll in chunks; the single-maestro
// baseline, which has no batch admission, is fed one task at a time —
// exactly the serialization it exists to measure.
func Replay(ctx context.Context, rt TaskRuntime, src workload.Source, opts ReplayOptions) (*ReplayResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 256
	}
	src.Reset()
	before := rt.Stats()
	start := time.Now()
	if bs, ok := rt.(batchSubmitter); ok {
		buf := make([]Task, 0, batch)
		for {
			spec, ok := src.Next()
			if !ok {
				break
			}
			buf = append(buf, TaskFromSpec(spec, opts))
			if len(buf) == batch {
				if _, err := bs.SubmitAll(ctx, buf); err != nil {
					return nil, fmt.Errorf("starss: replay %s: %w", src.Name(), err)
				}
				buf = buf[:0]
			}
		}
		if len(buf) > 0 {
			if _, err := bs.SubmitAll(ctx, buf); err != nil {
				return nil, fmt.Errorf("starss: replay %s: %w", src.Name(), err)
			}
		}
	} else {
		for {
			spec, ok := src.Next()
			if !ok {
				break
			}
			if _, err := rt.Submit(ctx, TaskFromSpec(spec, opts)); err != nil {
				return nil, fmt.Errorf("starss: replay %s: %w", src.Name(), err)
			}
		}
	}
	if err := rt.Wait(ctx); err != nil {
		return nil, fmt.Errorf("starss: replay %s: %w", src.Name(), err)
	}
	return &ReplayResult{
		Workload: src.Name(),
		Wall:     time.Since(start),
		Stats:    statsDelta(before, rt.Stats()),
	}, nil
}
