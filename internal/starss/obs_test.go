package starss

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"testing"

	"nexuspp/internal/obs"
	"nexuspp/internal/workload"
)

// smallWavefront is the H.264 wavefront pattern on a grid small enough for
// drop-free event capture with modest ring buffers.
func smallWavefront() workload.Source {
	return workload.Grid(workload.GridConfig{Pattern: workload.PatternWavefront, Rows: 8, Cols: 8, Seed: 1})
}

func TestEventsDisabledByDefault(t *testing.T) {
	rt := New(Config{Workers: 2})
	if rt.Events() != nil {
		t.Fatal("Events() non-nil without Config.EventBuffer")
	}
	h := rt.MustSubmit(Task{Do: func(context.Context) error { return nil }})
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := h.Err(); err != nil {
		t.Fatalf("task: %v", err)
	}
	if s := rt.Stats(); s.BankAcquisitions != 0 || s.BankContended != 0 || s.BankMaxQueue != 0 {
		t.Fatalf("bank counters nonzero without Config.BankCounters: %+v", s)
	}
}

// TestEventStreamWavefront replays a real wavefront on an instrumented
// runtime and checks the drained log is complete (one submit/ready/run/
// finish per task, nothing dropped), that every run nests inside its
// worker's timeline without overlap, and that the Chrome export of the log
// is valid JSON.
func TestEventStreamWavefront(t *testing.T) {
	rt := New(Config{Workers: 4, EventBuffer: 8192, BankCounters: true})
	res, err := Replay(context.Background(), rt, smallWavefront(), ReplayOptions{ZeroCost: true})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec := rt.Events()
	if rec == nil {
		t.Fatal("Events() nil with EventBuffer set")
	}
	events := rec.Drain()
	if rec.Dropped() != 0 {
		t.Fatalf("%d events dropped; ring too small for this test", rec.Dropped())
	}

	perTask := map[uint64]map[obs.Kind]int{}
	for _, ev := range events {
		if perTask[ev.Task] == nil {
			perTask[ev.Task] = map[obs.Kind]int{}
		}
		perTask[ev.Task][ev.Kind]++
	}
	if uint64(len(perTask)) != res.Stats.Submitted {
		t.Fatalf("events cover %d tasks, stats report %d submitted", len(perTask), res.Stats.Submitted)
	}
	for task, kinds := range perTask {
		if kinds[obs.KindSubmit] != 1 || kinds[obs.KindReady] != 1 || kinds[obs.KindRun] != 1 {
			t.Fatalf("task %d lifecycle counts %v, want one submit/ready/run", task, kinds)
		}
		if kinds[obs.KindFinish]+kinds[obs.KindPoison] != 1 {
			t.Fatalf("task %d has %d terminal events, want 1", task, kinds[obs.KindFinish]+kinds[obs.KindPoison])
		}
	}

	// Nesting property: per worker, the [run, finish] intervals of its
	// tasks must not overlap — a worker executes one body at a time, so a
	// task's run may start exactly when the previous finish was stamped,
	// but never before it.
	type interval struct{ start, end int64 }
	perWorker := map[int]map[uint64]*interval{}
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindRun, obs.KindFinish, obs.KindPoison:
			if perWorker[ev.Worker] == nil {
				perWorker[ev.Worker] = map[uint64]*interval{}
			}
			iv := perWorker[ev.Worker][ev.Task]
			if iv == nil {
				iv = &interval{}
				perWorker[ev.Worker][ev.Task] = iv
			}
			if ev.Kind == obs.KindRun {
				iv.start = ev.TS
			} else {
				iv.end = ev.TS
			}
		}
	}
	for worker, tasks := range perWorker {
		ivs := make([]interval, 0, len(tasks))
		for task, iv := range tasks {
			if iv.end < iv.start {
				t.Fatalf("worker %d task %d finishes (%d) before it runs (%d)", worker, task, iv.end, iv.start)
			}
			ivs = append(ivs, *iv)
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				t.Fatalf("worker %d has overlapping runs: [%d,%d] then [%d,%d]",
					worker, ivs[i-1].start, ivs[i-1].end, ivs[i].start, ivs[i].end)
			}
		}
	}

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, events); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export is empty")
	}

	s := rt.Stats()
	if s.BankAcquisitions == 0 {
		t.Fatal("BankCounters on but no acquisitions counted")
	}
	if s.BankContended > s.BankAcquisitions {
		t.Fatalf("contended (%d) exceeds acquisitions (%d)", s.BankContended, s.BankAcquisitions)
	}
	if s.BankMaxQueue == 0 {
		t.Fatal("wavefront has hazards but BankMaxQueue is 0")
	}
}

// TestEventStreamPoison checks skipped tasks appear as poison events.
func TestEventStreamPoison(t *testing.T) {
	rt := New(Config{Workers: 2, EventBuffer: 64})
	boom := rt.MustSubmit(Task{
		Deps: []Dep{Out("k")},
		Do:   func(context.Context) error { return errBoom },
	})
	dep := rt.MustSubmit(Task{
		Deps: []Dep{In("k")},
		Do:   func(context.Context) error { return nil },
	})
	if err := rt.Close(); err == nil {
		t.Fatal("Close should report the failure")
	}
	if boom.Err() == nil || dep.Err() == nil {
		t.Fatal("expected both handles to report errors")
	}
	var poisons, finishes int
	for _, ev := range rt.Events().Drain() {
		switch ev.Kind {
		case obs.KindPoison:
			poisons++
		case obs.KindFinish:
			finishes++
		}
	}
	if poisons != 1 || finishes != 1 {
		t.Fatalf("got %d poison, %d finish events; want 1 each (failed task finishes, skipped task poisons)", poisons, finishes)
	}
}

// TestEventRingDrops checks undersized rings drop (and count) rather than
// block or grow.
func TestEventRingDrops(t *testing.T) {
	rt := New(Config{Workers: 1, EventBuffer: 1}) // raised to the floor of 16
	for i := 0; i < 200; i++ {
		rt.MustSubmit(Task{Do: func(context.Context) error { return nil }})
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec := rt.Events()
	if rec.Dropped() == 0 {
		t.Fatal("200 tasks through 16-slot rings should drop events")
	}
	if n := len(rec.Drain()); n == 0 {
		t.Fatal("drain returned nothing despite emissions")
	}
}
