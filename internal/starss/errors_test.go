package starss

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the typed-handle API: error propagation, transitive poisoning,
// panic recovery, context cancellation and the context-aware lifecycle.

var errBoom = errors.New("boom")

// newRuntimes builds both the sharded runtime and the single-maestro
// baseline, so every handle/poisoning test pins API parity across the two.
func newRuntimes(cfg Config) map[string]TaskRuntime {
	return map[string]TaskRuntime{
		"sharded": New(cfg),
		"maestro": NewMaestro(cfg),
	}
}

func TestMidChainFailurePoisonsDependents(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 4, Window: 16}) {
		t.Run(name, func(t *testing.T) {
			var ran [4]atomic.Bool
			handles := make([]*Handle, 4)
			for i := 0; i < 4; i++ {
				i := i
				handles[i] = rt.MustSubmit(Task{
					Name: "link" + itoa(i),
					Deps: []Dep{InOut("chain")},
					Do: func(context.Context) error {
						ran[i].Store(true)
						if i == 1 {
							return errBoom
						}
						return nil
					},
				})
			}
			if err := rt.Wait(context.Background()); !errors.Is(err, errBoom) {
				t.Fatalf("Wait = %v, want the root cause errBoom", err)
			}
			if !ran[0].Load() || !ran[1].Load() {
				t.Fatal("tasks before the failure did not run")
			}
			if ran[2].Load() || ran[3].Load() {
				t.Fatal("transitive dependents of the failed task ran")
			}
			if err := handles[0].Err(); err != nil {
				t.Errorf("link0.Err = %v, want nil", err)
			}
			if err := handles[1].Err(); !errors.Is(err, errBoom) || errors.Is(err, ErrDependencyFailed) {
				t.Errorf("link1.Err = %v, want bare errBoom", err)
			}
			for _, h := range handles[2:] {
				err := h.Err()
				if !errors.Is(err, ErrDependencyFailed) {
					t.Errorf("%s.Err = %v, want ErrDependencyFailed", h.Name(), err)
				}
				if !errors.Is(err, errBoom) {
					t.Errorf("%s.Err = %v, must wrap the root cause", h.Name(), err)
				}
			}
			st := rt.Stats()
			if st.Executed != 1 || st.Failed != 1 || st.Skipped != 2 {
				t.Errorf("stats = %v, want executed=1 failed=1 skipped=2", st)
			}
			// The failure must not wedge the runtime: the key drains, and a
			// fresh task on it runs cleanly.
			h := rt.MustSubmit(Task{Deps: []Dep{InOut("chain")}, Do: func(context.Context) error { return nil }})
			<-h.Done()
			if err := h.Err(); err != nil {
				t.Errorf("fresh task on a drained key = %v, want nil", err)
			}
			if err := rt.Close(); !errors.Is(err, errBoom) {
				t.Errorf("Close = %v, want the root cause", err)
			}
		})
	}
}

// TestFailureDrainsRuntime pins the acceptance criterion directly: after a
// mid-chain failure the runtime is fully drained — in-flight 0 and an empty
// window — so nothing leaks tokens or wedges.
func TestFailureDrainsRuntime(t *testing.T) {
	rt := New(Config{Workers: 2, Window: 8})
	rt.MustSubmit(Task{Deps: []Dep{InOut("k")}, Do: func(context.Context) error { return errBoom }})
	for i := 0; i < 6; i++ {
		rt.MustSubmit(Task{Deps: []Dep{InOut("k")}, Run: func() {}})
	}
	if err := rt.Wait(context.Background()); !errors.Is(err, errBoom) {
		t.Fatalf("Wait = %v", err)
	}
	if n := rt.inFlight.Load(); n != 0 {
		t.Errorf("in-flight = %d after drain, want 0", n)
	}
	if n := len(rt.window); n != 0 {
		t.Errorf("window holds %d tokens after drain, want 0", n)
	}
	if st := rt.Stats(); st.Skipped != 6 {
		t.Errorf("stats = %v, want skipped=6", st)
	}
	rt.Close()
}

// TestWriterFailsQueuedReadersSkipped covers the RAW side of a hazard
// chain: readers queued behind a failing writer never run.
func TestWriterFailsQueuedReadersSkipped(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 4, Window: 16}) {
		t.Run(name, func(t *testing.T) {
			gate := make(chan struct{})
			rt.MustSubmit(Task{
				Name: "writer",
				Deps: []Dep{Out("k")},
				Do: func(context.Context) error {
					<-gate // hold the segment until the readers are queued
					return errBoom
				},
			})
			var ran atomic.Int32
			readers := make([]*Handle, 3)
			for i := range readers {
				readers[i] = rt.MustSubmit(Task{
					Deps: []Dep{In("k")},
					Do:   func(context.Context) error { ran.Add(1); return nil },
				})
			}
			close(gate)
			if err := rt.Wait(context.Background()); !errors.Is(err, errBoom) {
				t.Fatalf("Wait = %v", err)
			}
			if ran.Load() != 0 {
				t.Fatalf("%d queued readers ran behind the failed writer", ran.Load())
			}
			for _, h := range readers {
				if err := h.Err(); !errors.Is(err, ErrDependencyFailed) || !errors.Is(err, errBoom) {
					t.Errorf("reader err = %v", err)
				}
			}
			if st := rt.Stats(); st.Skipped != 3 || st.Failed != 1 {
				t.Errorf("stats = %v", st)
			}
			rt.Close()
		})
	}
}

// TestReaderFailsWaitingWriterSkipped covers the WAR side: a writer waiting
// on readers is skipped when any of them fails — even when the failing
// reader is not the last one to finish, which exercises the segment-level
// poison (the failure is recorded on the segment and applied when the final
// clean reader pops the writer).
func TestReaderFailsWaitingWriterSkipped(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 4, Window: 16}) {
		t.Run(name, func(t *testing.T) {
			gate := make(chan struct{})
			slow := make(chan struct{})
			failing := rt.MustSubmit(Task{
				Name: "failing-reader",
				Deps: []Dep{In("k")},
				Do: func(context.Context) error {
					<-gate // hold the segment until everyone is admitted
					return errBoom
				},
			})
			rt.MustSubmit(Task{
				Name: "slow-clean-reader",
				Deps: []Dep{In("k")},
				Do: func(context.Context) error {
					<-slow // outlive the failing reader
					return nil
				},
			})
			var wrote atomic.Bool
			writer := rt.MustSubmit(Task{
				Name: "writer",
				Deps: []Dep{Out("k")},
				Do:   func(context.Context) error { wrote.Store(true); return nil },
			})
			close(gate)
			<-failing.Done() // the failure lands on the segment first...
			close(slow)      // ...then the clean reader drains and pops the writer
			if err := rt.Wait(context.Background()); !errors.Is(err, errBoom) {
				t.Fatalf("Wait = %v", err)
			}
			if wrote.Load() {
				t.Fatal("waiting writer ran although a reader it waited on failed")
			}
			if err := writer.Err(); !errors.Is(err, ErrDependencyFailed) || !errors.Is(err, errBoom) {
				t.Errorf("writer err = %v", err)
			}
			if st := rt.Stats(); st.Executed != 1 || st.Failed != 1 || st.Skipped != 1 {
				t.Errorf("stats = %v", st)
			}
			rt.Close()
		})
	}
}

func TestPanicBecomesError(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 2}) {
		t.Run(name, func(t *testing.T) {
			h := rt.MustSubmit(Task{
				Name: "kaboom",
				Deps: []Dep{Out("k")},
				Run:  func() { panic("kaboom payload") },
			})
			var ran atomic.Bool
			dep := rt.MustSubmit(Task{
				Deps: []Dep{In("k")},
				Do:   func(context.Context) error { ran.Store(true); return nil },
			})
			err := rt.Wait(context.Background())
			if !errors.Is(err, ErrTaskPanicked) {
				t.Fatalf("Wait = %v, want ErrTaskPanicked", err)
			}
			if !strings.Contains(err.Error(), "kaboom payload") {
				t.Errorf("panic value lost: %v", err)
			}
			if !errors.Is(h.Err(), ErrTaskPanicked) {
				t.Errorf("handle err = %v", h.Err())
			}
			if ran.Load() {
				t.Error("dependent of the panicking task ran")
			}
			if !errors.Is(dep.Err(), ErrDependencyFailed) {
				t.Errorf("dependent err = %v", dep.Err())
			}
			rt.Close()
		})
	}
}

func TestSubmitCancelledOnFullWindow(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 1, Window: 1}) {
		t.Run(name, func(t *testing.T) {
			block := make(chan struct{})
			rt.MustSubmit(Task{Deps: []Dep{InOut("k")}, Do: func(context.Context) error { <-block; return nil }})
			ctx, cancel := context.WithCancel(context.Background())
			res := make(chan error, 1)
			go func() {
				_, err := rt.Submit(ctx, Task{Run: func() {}})
				res <- err
			}()
			select {
			case err := <-res:
				t.Fatalf("Submit returned %v while the window was full", err)
			case <-time.After(50 * time.Millisecond):
			}
			cancel()
			select {
			case err := <-res:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled Submit = %v, want context.Canceled", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("cancelled Submit did not unblock")
			}
			close(block)
			if err := rt.Close(); err != nil {
				t.Fatalf("Close = %v", err)
			}
		})
	}
}

func TestSubmitAllCancelledOnFullWindow(t *testing.T) {
	rt := New(Config{Workers: 1, Window: 2})
	block := make(chan struct{})
	rt.MustSubmit(Task{Deps: []Dep{InOut("k")}, Do: func(context.Context) error { <-block; return nil }})
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() {
		tasks := make([]Task, 8)
		for i := range tasks {
			tasks[i] = Task{Run: func() {}}
		}
		_, err := rt.SubmitAll(ctx, tasks)
		res <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-res:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled SubmitAll = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled SubmitAll did not unblock")
	}
	close(block)
	// The aborted chunk must have returned its partial window tokens.
	if err := rt.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if n := len(rt.window); n != 0 {
		t.Fatalf("window holds %d tokens after Close", n)
	}
}

func TestSubmitRejectsDeadContext(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer mustClose(t, rt)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rt.Submit(ctx, Task{Run: func() {}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with dead ctx = %v", err)
	}
	if _, err := rt.SubmitAll(ctx, []Task{{Run: func() {}}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitAll with dead ctx = %v", err)
	}
	if st := rt.Stats(); st.Submitted != 0 {
		t.Fatalf("dead-context submission was admitted: %v", st)
	}
}

// TestCancelAfterAdmission: a task whose context dies while it is queued
// behind a hazard fails with the cancellation cause and poisons its own
// dependents, instead of running with a dead context.
func TestCancelAfterAdmission(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 2, Window: 8}) {
		t.Run(name, func(t *testing.T) {
			gate := make(chan struct{})
			rt.MustSubmit(Task{Deps: []Dep{InOut("k")}, Do: func(context.Context) error { <-gate; return nil }})
			ctx, cancel := context.WithCancel(context.Background())
			var ran atomic.Bool
			h, err := rt.Submit(ctx, Task{
				Deps: []Dep{InOut("k")},
				Do:   func(context.Context) error { ran.Store(true); return nil },
			})
			if err != nil {
				t.Fatal(err)
			}
			var depRan atomic.Bool
			dep := rt.MustSubmit(Task{
				Deps: []Dep{In("k")},
				Do:   func(context.Context) error { depRan.Store(true); return nil },
			})
			cancel()
			close(gate)
			if err := rt.Wait(context.Background()); !errors.Is(err, context.Canceled) {
				t.Fatalf("Wait = %v, want the cancellation as root cause", err)
			}
			if ran.Load() {
				t.Fatal("cancelled task body ran")
			}
			if err := h.Err(); !errors.Is(err, context.Canceled) {
				t.Errorf("cancelled handle err = %v", err)
			}
			if depRan.Load() {
				t.Fatal("dependent of the cancelled task ran")
			}
			if err := dep.Err(); !errors.Is(err, ErrDependencyFailed) || !errors.Is(err, context.Canceled) {
				t.Errorf("dependent err = %v", err)
			}
			rt.Close()
		})
	}
}

func TestWaitCancellation(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 1, Window: 4}) {
		t.Run(name, func(t *testing.T) {
			block := make(chan struct{})
			rt.MustSubmit(Task{Deps: []Dep{InOut("k")}, Do: func(context.Context) error { <-block; return nil }})
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			if err := rt.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("Wait under deadline = %v", err)
			}
			close(block)
			if err := rt.Wait(context.Background()); err != nil {
				t.Fatalf("Wait = %v", err)
			}
			rt.Close()
		})
	}
}

func TestWaitOnCancellation(t *testing.T) {
	rt := New(Config{Workers: 1, Window: 4})
	block := make(chan struct{})
	rt.MustSubmit(Task{Deps: []Dep{InOut("k")}, Do: func(context.Context) error { <-block; return nil }})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := rt.WaitOn(ctx, "k"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitOn under deadline = %v", err)
	}
	// The cancelled waiter must have deregistered itself.
	if n := rt.waiterCount.Load(); n != 0 {
		t.Fatalf("waiterCount = %d after cancelled WaitOn", n)
	}
	close(block)
	if err := rt.WaitOn(context.Background(), "k"); err != nil {
		t.Fatalf("WaitOn = %v", err)
	}
	rt.Close()
}

func TestHandleIdentity(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 2}) {
		t.Run(name, func(t *testing.T) {
			named := rt.MustSubmit(Task{Name: "alpha", Deps: []Dep{Out("a")}, Run: func() {}})
			anon := rt.MustSubmit(Task{Deps: []Dep{Out("b")}, Run: func() {}})
			if named.Name() != "alpha" {
				t.Errorf("Name = %q", named.Name())
			}
			if named.Index() != 0 || anon.Index() != 1 {
				t.Errorf("indices = %d, %d, want 0, 1", named.Index(), anon.Index())
			}
			if anon.Name() != "task1" {
				t.Errorf("anonymous Name = %q, want task1", anon.Name())
			}
			if err := named.Wait(context.Background()); err != nil {
				t.Errorf("handle Wait = %v", err)
			}
			rt.Close()
		})
	}
}

func TestHandleErrNilWhilePending(t *testing.T) {
	rt := New(Config{Workers: 1})
	block := make(chan struct{})
	h := rt.MustSubmit(Task{Deps: []Dep{InOut("k")}, Do: func(context.Context) error { <-block; return errBoom }})
	if err := h.Err(); err != nil {
		t.Fatalf("pending handle Err = %v, want nil", err)
	}
	select {
	case <-h.Done():
		t.Fatal("pending handle reported done")
	default:
	}
	close(block)
	<-h.Done()
	if !errors.Is(h.Err(), errBoom) {
		t.Fatalf("done handle Err = %v", h.Err())
	}
	_ = rt.Close() // the failure was already observed via h.Err above
}

func TestHandleWaitCancellation(t *testing.T) {
	rt := New(Config{Workers: 1})
	block := make(chan struct{})
	h := rt.MustSubmit(Task{Deps: []Dep{InOut("k")}, Do: func(context.Context) error { <-block; return nil }})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := h.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("handle Wait under deadline = %v", err)
	}
	close(block)
	if err := h.Wait(context.Background()); err != nil {
		t.Fatalf("handle Wait = %v", err)
	}
	rt.Close()
}

// TestSubmitAllHandles: the batch path returns one handle per task, in
// order, and a failure inside the batch poisons the rest of its chain.
func TestSubmitAllHandles(t *testing.T) {
	rt := New(Config{Workers: 4})
	tasks := make([]Task, 5)
	for i := range tasks {
		i := i
		tasks[i] = Task{
			Deps: []Dep{InOut("chain")},
			Do: func(context.Context) error {
				if i == 2 {
					return errBoom
				}
				return nil
			},
		}
	}
	handles, err := rt.SubmitAll(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != 5 {
		t.Fatalf("got %d handles", len(handles))
	}
	for i, h := range handles {
		if h.Index() != uint64(i) {
			t.Errorf("handle %d has index %d", i, h.Index())
		}
	}
	if err := rt.Wait(context.Background()); !errors.Is(err, errBoom) {
		t.Fatalf("Wait = %v", err)
	}
	for i, h := range handles {
		err := h.Err()
		switch {
		case i < 2 && err != nil:
			t.Errorf("handle %d err = %v, want nil", i, err)
		case i == 2 && !errors.Is(err, errBoom):
			t.Errorf("handle 2 err = %v, want errBoom", err)
		case i > 2 && (!errors.Is(err, ErrDependencyFailed) || !errors.Is(err, errBoom)):
			t.Errorf("handle %d err = %v, want skip wrapping root", i, err)
		}
	}
	if st := rt.Stats(); st.Executed != 2 || st.Failed != 1 || st.Skipped != 2 {
		t.Errorf("stats = %v", st)
	}
	rt.Close()
}

// TestLegacyRunAdapter: tasks written against the pre-handle API (Run, no
// context, no error) still execute unchanged through the adapter.
func TestLegacyRunAdapter(t *testing.T) {
	rt := New(Config{Workers: 2})
	var ran atomic.Bool
	h := rt.MustSubmit(Task{Deps: []Dep{Out("k")}, Run: func() { ran.Store(true) }})
	<-h.Done()
	if !ran.Load() || h.Err() != nil {
		t.Fatalf("legacy Run task: ran=%v err=%v", ran.Load(), h.Err())
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStatsString pins the report-path rendering of the new counters.
func TestStatsString(t *testing.T) {
	s := Stats{Submitted: 5, Executed: 2, Failed: 1, Skipped: 2, Hazards: 3, MaxInFlight: 4}
	got := s.String()
	for _, want := range []string{"submitted=5", "executed=2", "failed=1", "skipped=2", "hazards=3", "max-in-flight=4"} {
		if !strings.Contains(got, want) {
			t.Errorf("Stats.String() = %q, missing %q", got, want)
		}
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}

// TestWriteBackPanicBecomesError: panics in the Put Outputs phase are
// recovered like body panics — the task fails and poisons its dependents
// instead of crashing the worker.
func TestWriteBackPanicBecomesError(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 2}) {
		t.Run(name, func(t *testing.T) {
			h := rt.MustSubmit(Task{
				Deps:      []Dep{Out("k")},
				Run:       func() {},
				WriteBack: func() { panic("writeback exploded") },
			})
			var ran atomic.Bool
			dep := rt.MustSubmit(Task{
				Deps: []Dep{In("k")},
				Do:   func(context.Context) error { ran.Store(true); return nil },
			})
			if err := rt.Wait(context.Background()); !errors.Is(err, ErrTaskPanicked) {
				t.Fatalf("Wait = %v, want ErrTaskPanicked", err)
			}
			if !errors.Is(h.Err(), ErrTaskPanicked) || !strings.Contains(h.Err().Error(), "writeback exploded") {
				t.Errorf("handle err = %v", h.Err())
			}
			if ran.Load() || !errors.Is(dep.Err(), ErrDependencyFailed) {
				t.Errorf("dependent ran=%v err=%v", ran.Load(), dep.Err())
			}
			rt.Close()
		})
	}
}

// TestPrefetchPanicBecomesError: a panic on the controller goroutine's Get
// Inputs phase fails the task (body never runs) rather than killing the
// controller.
func TestPrefetchPanicBecomesError(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 2, BufferingDepth: 2}) {
		t.Run(name, func(t *testing.T) {
			var ran atomic.Bool
			h := rt.MustSubmit(Task{
				Deps:     []Dep{Out("k")},
				Prefetch: func() { panic("prefetch exploded") },
				Do:       func(context.Context) error { ran.Store(true); return nil },
			})
			dep := rt.MustSubmit(Task{Deps: []Dep{In("k")}, Run: func() {}})
			if err := rt.Wait(context.Background()); !errors.Is(err, ErrTaskPanicked) {
				t.Fatalf("Wait = %v, want ErrTaskPanicked", err)
			}
			if ran.Load() {
				t.Error("body ran after its Prefetch panicked")
			}
			if !errors.Is(h.Err(), ErrTaskPanicked) || !errors.Is(dep.Err(), ErrDependencyFailed) {
				t.Errorf("handle err = %v, dependent err = %v", h.Err(), dep.Err())
			}
			rt.Close()
		})
	}
}

// TestReaderJoiningPoisonedSegmentSkipped: a reader that joins a
// still-live poisoned segment without queueing (sharing the reader group
// with already-skipped readers) is tainted too — not just the waiters
// popped from the kick-off list.
func TestReaderJoiningPoisonedSegmentSkipped(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 1, Window: 16}) {
		t.Run(name, func(t *testing.T) {
			rt.MustSubmit(Task{
				Name: "writer",
				Deps: []Dep{Out("k")},
				Do:   func(context.Context) error { return errBoom },
			})
			r1 := rt.MustSubmit(Task{Deps: []Dep{In("k")}, Run: func() {}})
			// An independent task that occupies the single worker: once it
			// has started, the writer has finished (FIFO ready queue), so
			// the segment is poisoned with r1 in its reader group.
			started := make(chan struct{})
			gate := make(chan struct{})
			rt.MustSubmit(Task{
				Deps: []Dep{Out("other")},
				Do:   func(context.Context) error { close(started); <-gate; return nil },
			})
			<-started
			var lateRan atomic.Bool
			late := rt.MustSubmit(Task{
				Name: "late-reader",
				Deps: []Dep{In("k")},
				Do:   func(context.Context) error { lateRan.Store(true); return nil },
			})
			close(gate)
			if err := rt.Wait(context.Background()); !errors.Is(err, errBoom) {
				t.Fatalf("Wait = %v", err)
			}
			if lateRan.Load() {
				t.Fatal("reader joining a poisoned segment ran against unwritten data")
			}
			if err := late.Err(); !errors.Is(err, ErrDependencyFailed) || !errors.Is(err, errBoom) {
				t.Errorf("late reader err = %v", err)
			}
			if !errors.Is(r1.Err(), ErrDependencyFailed) {
				t.Errorf("queued reader err = %v", r1.Err())
			}
			rt.Close()
		})
	}
}

// TestMaestroCloseSubmitRace stresses Close racing concurrent Submits: a
// straggler admitted between Close's drain and the stop must be finished
// by the maestro's drain loop, never leaving a worker wedged on doneCh.
func TestMaestroCloseSubmitRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		m := NewMaestro(Config{Workers: 2, Window: 8})
		done := make(chan struct{})
		go func() {
			defer close(done)
			for j := 0; j < 500; j++ {
				if _, err := m.Submit(context.Background(), Task{
					Deps: []Dep{InOut(j % 4)},
					Run:  func() {},
				}); err != nil {
					if !errors.Is(err, ErrStopped) {
						t.Errorf("Submit = %v", err)
					}
					return
				}
			}
		}()
		if err := m.Close(); err != nil {
			t.Fatalf("Close = %v", err)
		}
		<-done
	}
}

// TestSubmitAfterCloseUniformErrStopped pins the post-Close admission
// contract on both runtimes: every Submit/SubmitAll after Close returns
// ErrStopped — including the sharded runtime's zero-length batch, which
// once skipped the stopped check entirely and reported success.
func TestSubmitAfterCloseUniformErrStopped(t *testing.T) {
	for name, rt := range newRuntimes(Config{Workers: 2, Window: 8}) {
		t.Run(name, func(t *testing.T) {
			h := rt.MustSubmit(Task{
				Deps: []Dep{InOut("k")},
				Do:   func(context.Context) error { return nil },
			})
			if err := rt.Close(); err != nil {
				t.Fatalf("Close = %v", err)
			}
			if err := h.Err(); err != nil {
				t.Fatalf("pre-Close task err = %v", err)
			}
			if _, err := rt.Submit(context.Background(), Task{
				Deps: []Dep{InOut("k")},
				Do:   func(context.Context) error { return nil },
			}); !errors.Is(err, ErrStopped) {
				t.Errorf("Submit after Close = %v, want ErrStopped", err)
			}
			if err := rt.Wait(context.Background()); !errors.Is(err, ErrStopped) {
				t.Errorf("Wait after Close = %v, want ErrStopped", err)
			}
			sharded, ok := rt.(*Runtime)
			if !ok {
				return
			}
			for _, batch := range [][]Task{
				nil, // the empty batch must not short-circuit to success
				{{Deps: []Dep{InOut("k")}, Do: func(context.Context) error { return nil }}},
			} {
				handles, err := sharded.SubmitAll(context.Background(), batch)
				if !errors.Is(err, ErrStopped) {
					t.Errorf("SubmitAll(len=%d) after Close = %v, want ErrStopped", len(batch), err)
				}
				if len(handles) != 0 {
					t.Errorf("SubmitAll(len=%d) after Close admitted %d tasks", len(batch), len(handles))
				}
			}
		})
	}
}
