package starss

import (
	"context"
	"errors"
	"testing"

	"nexuspp/internal/sim"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

// chainTrace builds a producer→consumer chain on one address plus an
// independent task, small enough to reason about exactly.
func chainTrace() workload.Source {
	tasks := []trace.TaskSpec{
		{ID: 0, Params: []trace.Param{{Addr: 0x100, Size: 4, Mode: trace.Out}}, Exec: sim.Microsecond},
		{ID: 1, Params: []trace.Param{{Addr: 0x100, Size: 4, Mode: trace.In}}, Exec: sim.Microsecond},
		{ID: 2, Params: []trace.Param{{Addr: 0x200, Size: 4, Mode: trace.InOut}}, Exec: sim.Microsecond},
	}
	return workload.FromTrace(&trace.Trace{Name: "chain", Tasks: tasks})
}

func TestTaskFromSpecMapsModes(t *testing.T) {
	spec := trace.TaskSpec{ID: 9, Params: []trace.Param{
		{Addr: 1, Mode: trace.In},
		{Addr: 2, Mode: trace.Out},
		{Addr: 3, Mode: trace.InOut},
	}}
	task := TaskFromSpec(spec, ReplayOptions{ZeroCost: true})
	want := []Dep{In(uint64(1)), Out(uint64(2)), InOut(uint64(3))}
	if len(task.Deps) != len(want) {
		t.Fatalf("deps = %v", task.Deps)
	}
	for i, d := range task.Deps {
		if d != want[i] {
			t.Errorf("dep %d = %v, want %v", i, d, want[i])
		}
	}
	if task.Do == nil {
		t.Fatal("no body synthesized")
	}
	if err := task.Do(context.Background()); err != nil {
		t.Fatalf("zero-cost body: %v", err)
	}
}

// TestReplayOnBothRuntimes replays the same trace on the sharded runtime
// (batch admission path) and the maestro baseline (one-at-a-time path) and
// checks both execute every task cleanly.
func TestReplayOnBothRuntimes(t *testing.T) {
	for _, tc := range []struct {
		name string
		rt   TaskRuntime
	}{
		{"sharded", New(Config{Workers: 2})},
		{"maestro", NewMaestro(Config{Workers: 2})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Replay(context.Background(), tc.rt, chainTrace(), ReplayOptions{TimeScale: 1})
			if err != nil {
				t.Fatal(err)
			}
			if cerr := tc.rt.Close(); cerr != nil {
				t.Fatal(cerr)
			}
			if res.Stats.Executed != 3 || res.Stats.Failed != 0 || res.Stats.Skipped != 0 {
				t.Errorf("stats = %v", res.Stats)
			}
			if res.Workload != "chain" {
				t.Errorf("workload = %q", res.Workload)
			}
			if res.Wall <= 0 {
				t.Errorf("wall = %v", res.Wall)
			}
		})
	}
}

// TestReplayHonoursCancellation: a cancelled context aborts the replay with
// the context's error instead of wedging on the barrier.
func TestReplayHonoursCancellation(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer mustClose(t, rt)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Replay(ctx, rt, chainTrace(), ReplayOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestReplayRespectsDependencies replays a wavefront slice with recorded
// completion order: the trace's RAW edges must hold in the real execution.
func TestReplayRespectsDependencies(t *testing.T) {
	// Diagonal chain: each task InOuts its predecessor's address.
	var tasks []trace.TaskSpec
	const n = 64
	for i := 0; i < n; i++ {
		tasks = append(tasks, trace.TaskSpec{
			ID:     uint64(i),
			Params: []trace.Param{{Addr: 0x40, Size: 4, Mode: trace.InOut}},
		})
	}
	src := workload.FromTrace(&trace.Trace{Name: "serial-chain", Tasks: tasks})
	rt := New(Config{Workers: 4})
	res, err := Replay(context.Background(), rt, src, ReplayOptions{ZeroCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if cerr := rt.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if res.Stats.Executed != n {
		t.Fatalf("executed = %d, want %d", res.Stats.Executed, n)
	}
	// A serial InOut chain admits at most one runnable task at a time.
	if res.Stats.Hazards != n-1 {
		t.Errorf("hazards = %d, want %d (every task but the first waits)", res.Stats.Hazards, n-1)
	}
}

// TestReplayStatsCoverOneReplay: two replays sharing a runtime each report
// their own counters, not the runtime's cumulative lifetime totals.
func TestReplayStatsCoverOneReplay(t *testing.T) {
	rt := New(Config{Workers: 2})
	for i := 0; i < 2; i++ {
		res, err := Replay(context.Background(), rt, chainTrace(), ReplayOptions{ZeroCost: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Executed != 3 {
			t.Fatalf("replay %d: executed = %d, want 3 (per-replay, not cumulative)", i, res.Stats.Executed)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}
