package starss

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file retains the original single-maestro resolver as a measurable
// baseline, the same way internal/nexus1 and internal/softrts retain the
// systems the paper compares against. Every Submit and every task-finished
// event funnels through one resolver goroutine over synchronous channels —
// the exact software serialization bottleneck the paper's SSI motivation
// describes and the sharded Runtime removes. It keeps full API parity with
// the sharded runtime — typed handles, error propagation, poisoning,
// context-aware lifecycle — so benchmarks drive both through the identical
// TaskRuntime interface and compare like-for-like. New code should use New;
// use NewMaestro only to measure against it (cmd/nexusbench shards,
// BenchmarkShardScalability).

// TaskRuntime is the execution interface shared by the sharded Runtime and
// the retained single-maestro baseline, for benchmarks that drive both.
type TaskRuntime interface {
	Submit(ctx context.Context, t Task) (*Handle, error)
	MustSubmit(t Task) *Handle
	Wait(ctx context.Context) error
	Stats() Stats
	Close() error
}

// MaestroRuntime is the original single-resolver runtime. All dependency
// state is owned by one maestro goroutine; Submit hands every task to it
// over an unbuffered channel and finished tasks queue back the same way.
type MaestroRuntime struct {
	cfg      Config
	submitCh chan *taskNode
	doneCh   chan *taskNode
	barrier  chan chan struct{}
	statsCh  chan chan Stats
	window   chan struct{}
	readyCh  chan *taskNode
	stopOnce sync.Once
	// drain tells the maestro goroutine to finish every in-flight task and
	// exit; stopped is closed only after it has, so late submitters and
	// waiters blocked on the maestro's channels always unblock into
	// ErrStopped instead of deadlocking against a gone resolver.
	drain     chan struct{}
	stopped   chan struct{}
	exec      executor
	retried   atomic.Uint64
	nextIndex atomic.Uint64
	firstErr  atomic.Pointer[taskFailure]
	final     Stats // snapshot taken by Close, readable afterwards
	workerWG  sync.WaitGroup
	maestroW  sync.WaitGroup
}

// NewMaestro starts the single-maestro baseline runtime. It supports the
// full task lifecycle (Submit, Wait, Stats, Close, handles, poisoning) but
// not the sharded Runtime's extensions (SubmitAll, WaitOn, graph
// recording).
func NewMaestro(cfg Config) *MaestroRuntime {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.BufferingDepth <= 0 {
		cfg.BufferingDepth = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	m := &MaestroRuntime{
		cfg:      cfg,
		submitCh: make(chan *taskNode),
		doneCh:   make(chan *taskNode, cfg.Workers),
		barrier:  make(chan chan struct{}),
		statsCh:  make(chan chan Stats),
		window:   make(chan struct{}, cfg.Window),
		readyCh:  make(chan *taskNode, cfg.Window),
		drain:    make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	m.exec = executor{
		faults: cfg.Faults,
		onRetry: func(*taskNode, int, int) {
			m.retried.Add(1)
		},
	}
	m.maestroW.Add(1)
	go m.maestro()
	m.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues a task through the maestro goroutine and returns its
// handle. It blocks while the window is full — cancelling ctx unblocks it —
// and the ctx is also the context the task body receives. A nil ctx means
// context.Background().
func (m *MaestroRuntime) Submit(ctx context.Context, t Task) (*Handle, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	node, err := makeNode(ctx, t)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case <-m.stopped:
		return nil, ErrStopped
	case <-ctx.Done():
		return nil, ctx.Err()
	case m.window <- struct{}{}:
	}
	idx := m.nextIndex.Add(1) - 1
	name := t.Name
	if name == "" {
		name = fmt.Sprintf("task%d", idx)
	}
	node.handle = &Handle{name: name, index: idx, done: make(chan struct{}), onDone: t.onDone}
	select {
	case <-m.stopped:
		<-m.window
		return nil, ErrStopped
	case <-ctx.Done():
		<-m.window
		return nil, ctx.Err()
	case m.submitCh <- node:
		return node.handle, nil
	}
}

// MustSubmit is Submit with a background context that panics on submission
// error.
func (m *MaestroRuntime) MustSubmit(t Task) *Handle {
	h, err := m.Submit(context.Background(), t)
	if err != nil {
		panic(err)
	}
	return h
}

// Wait blocks until every task submitted before the call has completed and
// returns the first task failure recorded so far, ctx.Err() on
// cancellation, or ErrStopped when the runtime is already closed.
func (m *MaestroRuntime) Wait(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	reply := make(chan struct{})
	select {
	case <-m.stopped:
		return ErrStopped
	case <-ctx.Done():
		return ctx.Err()
	case m.barrier <- reply:
	}
	select {
	case <-reply:
		return m.failure()
	case <-ctx.Done():
		// The abandoned reply channel is closed by the maestro at the next
		// idle transition; nothing leaks beyond it.
		return ctx.Err()
	}
}

// failure returns the first recorded root-cause task failure, or nil.
func (m *MaestroRuntime) failure() error {
	if f := m.firstErr.Load(); f != nil {
		return f.err
	}
	return nil
}

// Stats returns a snapshot of the runtime counters.
func (m *MaestroRuntime) Stats() Stats {
	reply := make(chan Stats, 1)
	select {
	case <-m.stopped:
		return m.final
	case m.statsCh <- reply:
		s := <-reply
		s.Retried = m.retried.Load()
		return s
	}
}

// Close waits for all submitted tasks, stops the workers and returns the
// first task failure (nil when every task succeeded).
func (m *MaestroRuntime) Close() error {
	_ = m.Wait(context.Background()) // ErrStopped here means already drained
	m.stopOnce.Do(func() {
		// Tell the maestro to drain: a Submit that raced past the Wait
		// above has either been admitted (the maestro finishes it before
		// exiting) or is still blocked on submitCh and backs out with
		// ErrStopped once stopped closes below. The maestro snapshots the
		// final stats before exiting, so closing stopped afterwards
		// publishes them to Stats callers.
		close(m.drain)
		m.maestroW.Wait()
		close(m.stopped)
		close(m.readyCh)
	})
	m.workerWG.Wait()
	return m.failure()
}

// maestro owns all dependency state; it is the software Task Maestro.
func (m *MaestroRuntime) maestro() {
	defer m.maestroW.Done()
	segs := make(map[Key]*segState)
	var (
		stats    Stats
		inFlight int
		barriers []chan struct{}
	)
	release := func(node *taskNode) {
		if node.dc.Add(-1) == 0 {
			m.readyCh <- node
		}
	}
	pop := func(seg *segState) segWaiter {
		w := seg.ko[0]
		seg.ko = seg.ko[1:]
		if seg.poison != nil {
			w.node.poison.CompareAndSwap(nil, &taskFailure{err: seg.poison})
		}
		return w
	}
	finish := func(node *taskNode) {
		root := node.rootCause()
		switch {
		case node.wasSkipped:
			stats.Skipped++
		case node.err != nil:
			stats.Failed++
			m.firstErr.CompareAndSwap(nil, &taskFailure{err: node.err})
		default:
			stats.Executed++
		}
		inFlight--
		for _, d := range node.deps {
			seg := segs[d.Key]
			if seg == nil {
				panic(fmt.Sprintf("starss: finished task %q references unknown key %v", node.handle.name, d.Key))
			}
			if root != nil && seg.poison == nil {
				seg.poison = root
			}
			if d.Mode == ModeIn {
				seg.rdrs--
				if seg.rdrs > 0 {
					continue
				}
				if !seg.ww {
					delete(segs, d.Key)
					continue
				}
				w := pop(seg)
				seg.isOut = true
				seg.ww = false
				release(w.node)
				continue
			}
			seg.isOut = false
			if len(seg.ko) == 0 {
				delete(segs, d.Key)
				continue
			}
			if seg.ko[0].wantsWrite {
				w := pop(seg)
				seg.isOut = true
				release(w.node)
				continue
			}
			for len(seg.ko) > 0 && !seg.ko[0].wantsWrite {
				w := pop(seg)
				seg.rdrs++
				release(w.node)
			}
			if len(seg.ko) > 0 {
				seg.ww = true
			}
		}
		node.handle.complete(node.err)
		<-m.window
		if inFlight == 0 {
			for _, b := range barriers {
				close(b)
			}
			barriers = barriers[:0]
		}
	}
	for {
		select {
		case <-m.drain:
			for inFlight > 0 {
				finish(<-m.doneCh)
			}
			for _, b := range barriers {
				close(b)
			}
			stats.Retried = m.retried.Load()
			m.final = stats
			return
		case reply := <-m.statsCh:
			reply <- stats
		case reply := <-m.barrier:
			if inFlight == 0 {
				close(reply)
			} else {
				barriers = append(barriers, reply)
			}
		case node := <-m.submitCh:
			stats.Submitted++
			inFlight++
			if inFlight > stats.MaxInFlight {
				stats.MaxInFlight = inFlight
			}
			dc := int32(0)
			for _, d := range node.deps {
				seg := segs[d.Key]
				wantsWrite := d.Mode != ModeIn
				if seg == nil {
					seg = &segState{}
					segs[d.Key] = seg
					if wantsWrite {
						seg.isOut = true
					} else {
						seg.rdrs = 1
					}
					continue
				}
				// Joining a still-live poisoned segment taints the task,
				// mirroring Runtime.checkDeps.
				if seg.poison != nil {
					node.poison.CompareAndSwap(nil, &taskFailure{err: seg.poison})
				}
				if !wantsWrite {
					if !seg.isOut && !seg.ww {
						seg.rdrs++
					} else {
						seg.ko = append(seg.ko, segWaiter{node: node})
						dc++
					}
					continue
				}
				seg.ko = append(seg.ko, segWaiter{node: node, wantsWrite: true})
				dc++
				if !seg.isOut {
					seg.ww = true
				}
			}
			node.dc.Store(dc)
			if dc == 0 {
				m.readyCh <- node
			} else {
				stats.Hazards++
			}
		case node := <-m.doneCh:
			finish(node)
		}
	}
}

// worker mirrors Runtime.worker, reporting completion to the maestro.
func (m *MaestroRuntime) worker() {
	defer m.workerWG.Done()
	depth := m.cfg.BufferingDepth
	if depth <= 1 {
		for node := range m.readyCh {
			prefetchNode(node)
			m.runBody(node)
		}
		return
	}
	local := make(chan *taskNode, depth-1)
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		defer close(local)
		for node := range m.readyCh {
			prefetchNode(node)
			local <- node
		}
	}()
	for node := range local {
		m.runBody(node)
	}
	ctlWG.Wait()
}

func (m *MaestroRuntime) runBody(node *taskNode) {
	m.exec.runNode(node, -1)
	m.doneCh <- node
}
