package starss

import (
	"fmt"
	"sync"
)

// This file retains the original single-maestro resolver as a measurable
// baseline, the same way internal/nexus1 and internal/softrts retain the
// systems the paper compares against. Every Submit and every task-finished
// event funnels through one resolver goroutine over synchronous channels —
// the exact software serialization bottleneck the paper's SSI motivation
// describes and the sharded Runtime removes. New code should use New; use
// NewMaestro only to measure against it (cmd/nexusbench shards,
// BenchmarkShardScalability).

// TaskRuntime is the execution interface shared by the sharded Runtime and
// the retained single-maestro baseline, for benchmarks that drive both.
type TaskRuntime interface {
	Submit(Task) error
	MustSubmit(Task)
	Barrier()
	Stats() Stats
	Shutdown()
}

// MaestroRuntime is the original single-resolver runtime. All dependency
// state is owned by one maestro goroutine; Submit hands every task to it
// over an unbuffered channel and finished tasks queue back the same way.
type MaestroRuntime struct {
	cfg      Config
	submitCh chan *taskNode
	doneCh   chan *taskNode
	barrier  chan chan struct{}
	statsCh  chan chan Stats
	window   chan struct{}
	readyCh  chan *taskNode
	stopOnce sync.Once
	stopped  chan struct{}
	final    Stats // snapshot taken by Shutdown, readable afterwards
	workerWG sync.WaitGroup
	maestroW sync.WaitGroup
}

// NewMaestro starts the single-maestro baseline runtime. It supports the
// core task lifecycle (Submit, Barrier, Stats, Shutdown) but not the
// sharded Runtime's extensions (SubmitAll, WaitOn, graph recording).
func NewMaestro(cfg Config) *MaestroRuntime {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.BufferingDepth <= 0 {
		cfg.BufferingDepth = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	m := &MaestroRuntime{
		cfg:      cfg,
		submitCh: make(chan *taskNode),
		doneCh:   make(chan *taskNode, cfg.Workers),
		barrier:  make(chan chan struct{}),
		statsCh:  make(chan chan Stats),
		window:   make(chan struct{}, cfg.Window),
		readyCh:  make(chan *taskNode, cfg.Window),
		stopped:  make(chan struct{}),
	}
	m.maestroW.Add(1)
	go m.maestro()
	m.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// Submit enqueues a task through the maestro goroutine.
func (m *MaestroRuntime) Submit(t Task) error {
	node, err := makeNode(t)
	if err != nil {
		return err
	}
	select {
	case <-m.stopped:
		return ErrStopped
	case m.window <- struct{}{}:
	}
	select {
	case <-m.stopped:
		<-m.window
		return ErrStopped
	case m.submitCh <- node:
		return nil
	}
}

// MustSubmit is Submit that panics on error.
func (m *MaestroRuntime) MustSubmit(t Task) {
	if err := m.Submit(t); err != nil {
		panic(err)
	}
}

// Barrier blocks until every task submitted before the call has completed.
func (m *MaestroRuntime) Barrier() {
	reply := make(chan struct{})
	select {
	case <-m.stopped:
		return
	case m.barrier <- reply:
		<-reply
	}
}

// Stats returns a snapshot of the runtime counters.
func (m *MaestroRuntime) Stats() Stats {
	reply := make(chan Stats, 1)
	select {
	case <-m.stopped:
		return m.final
	case m.statsCh <- reply:
		return <-reply
	}
}

// Shutdown waits for all submitted tasks and stops the workers.
func (m *MaestroRuntime) Shutdown() {
	m.Barrier()
	m.stopOnce.Do(func() {
		m.final = m.Stats()
		close(m.stopped)
		close(m.readyCh)
	})
	m.workerWG.Wait()
	m.maestroW.Wait()
}

// maestro owns all dependency state; it is the software Task Maestro.
func (m *MaestroRuntime) maestro() {
	defer m.maestroW.Done()
	segs := make(map[Key]*segState)
	var (
		stats    Stats
		inFlight int
		barriers []chan struct{}
	)
	release := func(node *taskNode) {
		if node.dc.Add(-1) == 0 {
			m.readyCh <- node
		}
	}
	for {
		select {
		case <-m.stopped:
			return
		case reply := <-m.statsCh:
			reply <- stats
		case reply := <-m.barrier:
			if inFlight == 0 {
				close(reply)
			} else {
				barriers = append(barriers, reply)
			}
		case node := <-m.submitCh:
			stats.Submitted++
			inFlight++
			if inFlight > stats.MaxInFlight {
				stats.MaxInFlight = inFlight
			}
			dc := int32(0)
			for _, d := range node.deps {
				seg := segs[d.Key]
				wantsWrite := d.Mode != ModeIn
				if seg == nil {
					seg = &segState{}
					segs[d.Key] = seg
					if wantsWrite {
						seg.isOut = true
					} else {
						seg.rdrs = 1
					}
					continue
				}
				if !wantsWrite {
					if !seg.isOut && !seg.ww {
						seg.rdrs++
					} else {
						seg.ko = append(seg.ko, segWaiter{node: node})
						dc++
					}
					continue
				}
				seg.ko = append(seg.ko, segWaiter{node: node, wantsWrite: true})
				dc++
				if !seg.isOut {
					seg.ww = true
				}
			}
			node.dc.Store(dc)
			if dc == 0 {
				m.readyCh <- node
			} else {
				stats.Hazards++
			}
		case node := <-m.doneCh:
			stats.Executed++
			inFlight--
			for _, d := range node.deps {
				seg := segs[d.Key]
				if seg == nil {
					panic(fmt.Sprintf("starss: finished task %q references unknown key %v", node.task.Name, d.Key))
				}
				if d.Mode == ModeIn {
					seg.rdrs--
					if seg.rdrs > 0 {
						continue
					}
					if !seg.ww {
						delete(segs, d.Key)
						continue
					}
					w := seg.ko[0]
					seg.ko = seg.ko[1:]
					seg.isOut = true
					seg.ww = false
					release(w.node)
					continue
				}
				seg.isOut = false
				if len(seg.ko) == 0 {
					delete(segs, d.Key)
					continue
				}
				if seg.ko[0].wantsWrite {
					w := seg.ko[0]
					seg.ko = seg.ko[1:]
					seg.isOut = true
					release(w.node)
					continue
				}
				for len(seg.ko) > 0 && !seg.ko[0].wantsWrite {
					w := seg.ko[0]
					seg.ko = seg.ko[1:]
					seg.rdrs++
					release(w.node)
				}
				if len(seg.ko) > 0 {
					seg.ww = true
				}
			}
			<-m.window
			if inFlight == 0 {
				for _, b := range barriers {
					close(b)
				}
				barriers = barriers[:0]
			}
		}
	}
}

// worker mirrors Runtime.worker, reporting completion to the maestro.
func (m *MaestroRuntime) worker() {
	defer m.workerWG.Done()
	depth := m.cfg.BufferingDepth
	if depth <= 1 {
		for node := range m.readyCh {
			if node.task.Prefetch != nil {
				node.task.Prefetch()
			}
			m.runBody(node)
		}
		return
	}
	local := make(chan *taskNode, depth-1)
	var ctlWG sync.WaitGroup
	ctlWG.Add(1)
	go func() {
		defer ctlWG.Done()
		defer close(local)
		for node := range m.readyCh {
			if node.task.Prefetch != nil {
				node.task.Prefetch()
			}
			local <- node
		}
	}()
	for node := range local {
		m.runBody(node)
	}
	ctlWG.Wait()
}

func (m *MaestroRuntime) runBody(node *taskNode) {
	node.task.Run()
	if node.task.WriteBack != nil {
		node.task.WriteBack()
	}
	m.doneCh <- node
}
