package starss

import (
	"bytes"
	"context"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWaitOnKeys(t *testing.T) {
	rt := New(Config{Workers: 4})
	defer mustClose(t, rt)
	var aDone, bDone atomic.Bool
	block := make(chan struct{})
	rt.MustSubmit(Task{
		Deps: []Dep{Out("a")},
		Run:  func() { aDone.Store(true) },
	})
	rt.MustSubmit(Task{
		Deps: []Dep{Out("b")},
		Run:  func() { <-block; bDone.Store(true) },
	})
	// Waiting on "a" must not wait for the blocked "b" task.
	rt.WaitOn(context.Background(), "a")
	if !aDone.Load() {
		t.Fatal("WaitOn(a) returned before a's task finished")
	}
	if bDone.Load() {
		t.Fatal("b finished unexpectedly early")
	}
	close(block)
	rt.WaitOn(context.Background(), "b")
	if !bDone.Load() {
		t.Fatal("WaitOn(b) returned before b's task finished")
	}
}

func TestWaitOnUnusedKeyReturnsImmediately(t *testing.T) {
	rt := New(Config{Workers: 1})
	defer mustClose(t, rt)
	rt.WaitOn(context.Background(), "never-used") // must not hang
	rt.WaitOn(context.Background())               // empty key set is a no-op
}

func TestWaitOnAfterClose(t *testing.T) {
	// Regression: WaitOn used to return silently after shutdown; it must
	// report ErrStopped instead of pretending the keys went quiet.
	rt := New(Config{Workers: 1})
	mustClose(t, rt)
	if err := rt.WaitOn(context.Background(), "x"); err != ErrStopped {
		t.Fatalf("WaitOn after Close = %v, want ErrStopped", err)
	}
	if err := rt.Wait(context.Background()); err != ErrStopped {
		t.Fatalf("Wait after Close = %v, want ErrStopped", err)
	}
}

func TestGraphRecording(t *testing.T) {
	rt := New(Config{Workers: 2, RecordGraph: true})
	rt.MustSubmit(Task{Name: "w", Deps: []Dep{Out("k")}, Run: func() {}})
	rt.MustSubmit(Task{Name: "r1", Deps: []Dep{In("k")}, Run: func() {}})
	rt.MustSubmit(Task{Name: "r2", Deps: []Dep{In("k")}, Run: func() {}})
	rt.MustSubmit(Task{Name: "w2", Deps: []Dep{Out("k")}, Run: func() {}})
	rt.Wait(context.Background())
	names, edges := rt.Graph()
	if len(names) != 4 || names[0] != "w" || names[3] != "w2" {
		t.Fatalf("names = %v", names)
	}
	// Expected edges: r1<-w, r2<-w, w2<-w (WAW), w2<-r1, w2<-r2 (WAR).
	if len(edges) != 5 {
		t.Fatalf("edges = %v", edges)
	}
	has := func(from, to int) bool {
		for _, e := range edges {
			if e.From == from && e.To == to {
				return true
			}
		}
		return false
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 3}, {2, 3}} {
		if !has(e[0], e[1]) {
			t.Errorf("missing edge %d->%d in %v", e[0], e[1], edges)
		}
	}
	mustClose(t, rt)
	// The graph stays readable after shutdown.
	names2, edges2 := rt.Graph()
	if len(names2) != 4 || len(edges2) != 5 {
		t.Fatalf("post-shutdown graph %v %v", names2, edges2)
	}
}

func TestGraphDisabledIsEmpty(t *testing.T) {
	rt := New(Config{Workers: 1})
	rt.MustSubmit(Task{Deps: []Dep{Out("k")}, Run: func() {}})
	rt.Wait(context.Background())
	names, edges := rt.Graph()
	if len(names) != 0 || len(edges) != 0 {
		t.Fatalf("recording disabled but graph = %v %v", names, edges)
	}
	mustClose(t, rt)
}

func TestExportDOT(t *testing.T) {
	rt := New(Config{Workers: 1, RecordGraph: true})
	rt.MustSubmit(Task{Name: "producer", Deps: []Dep{Out("k")}, Run: func() {}})
	rt.MustSubmit(Task{Deps: []Dep{In("k")}, Run: func() {}})
	rt.Wait(context.Background())
	var buf bytes.Buffer
	if err := rt.ExportDOT(&buf); err != nil {
		t.Fatal(err)
	}
	mustClose(t, rt)
	out := buf.String()
	for _, want := range []string{"digraph starss {", `t0 [label="producer"]`, `t1 [label="task1"]`, "t0 -> t1;", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestGraphMatchesHazardSemantics(t *testing.T) {
	// Inout chains record one edge per link.
	rt := New(Config{Workers: 4, RecordGraph: true})
	for i := 0; i < 10; i++ {
		rt.MustSubmit(Task{Deps: []Dep{InOut("c")}, Run: func() {}})
	}
	rt.Wait(context.Background())
	_, edges := rt.Graph()
	mustClose(t, rt)
	if len(edges) != 9 {
		t.Fatalf("chain of 10 should record 9 edges, got %d", len(edges))
	}
}
