# Every target here is exactly what CI runs, so a green `make lint`
# locally implies a green lint column in CI and vice versa.

GO ?= go
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race lint lint-tools fmt-check vet nexusvet staticcheck govulncheck

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint is the full static gate: formatting, stock vet, the project's own
# nexusvet invariant suite, then staticcheck and govulncheck.
lint: fmt-check vet nexusvet staticcheck govulncheck

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# nexusvet statically enforces the runtime's concurrency invariants (see
# DESIGN.md "Statically enforced invariants"). It runs through go vet's
# -vettool protocol so package loading, in-package test files and build
# caching behave exactly as for any stock vet check.
nexusvet:
	$(GO) build -o bin/nexusvet ./cmd/nexusvet
	$(GO) vet -vettool=$(CURDIR)/bin/nexusvet ./...

# staticcheck and govulncheck are pinned via lint-tools in CI; locally
# they are gated on the binary being present so `make lint` still works
# on a machine without network access.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins it at $(STATICCHECK_VERSION) via make lint-tools)"; fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI pins it at $(GOVULNCHECK_VERSION) via make lint-tools)"; fi

# lint-tools installs the pinned external linters; the versions above are
# the single source of truth for both CI and local installs.
lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
