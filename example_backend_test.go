package nexuspp_test

import (
	"context"
	"fmt"

	"nexuspp"
)

// ExampleBackend runs one custom traced workload on two engines — the
// Nexus++ simulator and the real executing runtime — through the unified
// backend API, and cross-validates both against the dependency-graph
// oracle: every engine must execute exactly the oracle's task count, and
// no simulated schedule may beat the oracle's critical path.
func ExampleBackend() {
	// A three-task chain: produce block 0x100, transform it into 0x200,
	// consume 0x200. FromSpecs turns any []TaskSpec into a Source every
	// backend accepts.
	specs := []nexuspp.TaskSpec{
		{ID: 0, Params: []nexuspp.Param{{Addr: 0x100, Size: 64, Mode: nexuspp.WriteOnly}}, Exec: 1000},
		{ID: 1, Params: []nexuspp.Param{
			{Addr: 0x100, Size: 64, Mode: nexuspp.ReadOnly},
			{Addr: 0x200, Size: 64, Mode: nexuspp.WriteOnly},
		}, Exec: 1000},
		{ID: 2, Params: []nexuspp.Param{{Addr: 0x200, Size: 64, Mode: nexuspp.ReadOnly}}, Exec: 1000},
	}
	src := func() nexuspp.Source { return nexuspp.FromSpecs("chain", specs) }

	oracle := nexuspp.Oracle(src()).Analyze()
	for _, name := range []string{"nexuspp", "runtime"} {
		b, err := nexuspp.LookupBackend(name)
		if err != nil {
			panic(err)
		}
		rep, err := b.Run(context.Background(),
			nexuspp.BackendConfig{Workers: 2, ZeroCost: true}, src())
		if err != nil {
			panic(err)
		}
		ok := !rep.Simulated || rep.Makespan >= oracle.CriticalPath
		fmt.Printf("%s: executed %d tasks, oracle-consistent: %v\n",
			rep.Backend, rep.TasksExecuted, ok)
	}
	// Output:
	// nexuspp: executed 3 tasks, oracle-consistent: true
	// runtime: executed 3 tasks, oracle-consistent: true
}
