module nexuspp

go 1.24
