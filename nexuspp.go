package nexuspp

import (
	"io"

	"nexuspp/internal/backend"
	"nexuspp/internal/core"
	"nexuspp/internal/depgraph"
	"nexuspp/internal/faults"
	"nexuspp/internal/obs"
	"nexuspp/internal/service"
	"nexuspp/internal/starss"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

// --- Unified backend API -------------------------------------------------

// Backend is one execution engine driving a traced workload to completion
// behind the unified API: Name, Describe, and
// Run(ctx, BackendConfig, Source) -> *Report. Five engines are registered:
//
//	nexuspp  the Nexus++ hardware simulator (the paper's SSIII model)
//	nexus    the original-Nexus simulator (hard limits; may reject workloads)
//	softrts  the software StarSs runtime model
//	runtime  the executing sharded runtime replaying the trace for real
//	maestro  the executing single-resolver baseline
type Backend = backend.Backend

// BackendConfig is the engine-independent run configuration; engines ignore
// the knobs that do not apply to them.
type BackendConfig = backend.Config

// Report is the unified result shape shared by all five engines: tasks
// executed, a simulated makespan or a measured wall time, and a typed
// Detail with the engine's native result.
type Report = backend.Report

// WorkloadInfo is one named entry of the workload registry.
type WorkloadInfo = backend.WorkloadInfo

// Backends returns every registered backend sorted by name.
func Backends() []Backend { return backend.All() }

// LookupBackend resolves a backend by name; an unknown name fails with an
// error listing every valid name.
func LookupBackend(name string) (Backend, error) { return backend.Lookup(name) }

// RegisterBackend adds a custom engine to the registry; it panics on a
// duplicate or empty name.
func RegisterBackend(b Backend) { backend.Register(b) }

// Workloads returns the registered named workloads sorted by name.
func Workloads() []WorkloadInfo { return backend.Workloads() }

// LookupWorkload resolves a named workload; an unknown name fails with an
// error listing every valid name in sorted order.
func LookupWorkload(name string) (WorkloadInfo, error) { return backend.LookupWorkload(name) }

// RegisterWorkload adds a named workload to the registry, making it
// available to the unified CLI and the golden conformance corpus; it panics
// on a duplicate or empty name or a nil constructor.
func RegisterWorkload(w WorkloadInfo) { backend.RegisterWorkload(w) }

// --- Hardware simulation -----------------------------------------------

// Config parameterises a simulated Nexus++ system (the paper's Table IV).
type Config = core.Config

// Result reports one simulation run.
type Result = core.Result

// Costs gives the per-block service costs in Nexus++ cycles.
type Costs = core.Costs

// DefaultConfig returns the paper's configuration for the given number of
// worker cores, with double buffering enabled.
func DefaultConfig(workers int) Config { return core.DefaultConfig(workers) }

// Simulate runs src to completion on a Nexus++ system described by cfg.
func Simulate(cfg Config, src Source) (*Result, error) { return core.Run(cfg, src) }

// --- Workloads -----------------------------------------------------------

// Source streams tasks in submission order.
type Source = workload.Source

// TaskSpec describes one traced task.
type TaskSpec = trace.TaskSpec

// Param is one entry of a task's input/output list.
type Param = trace.Param

// AccessMode is the declared direction of a task parameter.
type AccessMode = trace.AccessMode

// Access modes for building Params (the In/Out/InOut names are taken by the
// runtime's Dep constructors).
const (
	// ReadOnly marks a parameter the task only reads.
	ReadOnly = trace.In
	// WriteOnly marks a parameter the task only writes.
	WriteOnly = trace.Out
	// ReadWrite marks a parameter the task reads and writes.
	ReadWrite = trace.InOut
)

// Independent returns the paper's independent-task benchmark (8160
// H.264-sized tasks, no dependencies).
func Independent(seed uint64) Source { return workload.Independent(seed) }

// Wavefront returns the H.264 macroblock wavefront benchmark (Figure 4a).
func Wavefront(seed uint64) Source { return workload.Wavefront(seed) }

// HorizontalChains returns the Figure 4(b) benchmark.
func HorizontalChains(seed uint64) Source { return workload.HorizontalChains(seed) }

// VerticalChains returns the Figure 4(c) benchmark.
func VerticalChains(seed uint64) Source { return workload.VerticalChains(seed) }

// GaussianElimination returns the Gaussian elimination with partial
// pivoting task graph (Figure 5) for an n x n matrix.
func GaussianElimination(n int) Source {
	return workload.Gaussian(workload.GaussianConfig{N: n})
}

// StarPUDepsConfig parameterises the TaskTorrent/StarPU wait-chain grid.
type StarPUDepsConfig = workload.StarPUDepsConfig

// StarPUDeps returns the TaskTorrent/StarPU `deps` wait-chain grid: an
// n_rows x n_cols grid where each task waits on n_edges wrap-around
// predecessors in the previous column.
func StarPUDeps(cfg StarPUDepsConfig) Source { return workload.StarPUDeps(cfg) }

// RandomDAGConfig parameterises the seeded random DAG generator.
type RandomDAGConfig = workload.RandomDAGConfig

// RandomDAG returns a seeded random task DAG with bounded fan-in over a
// sliding predecessor window; the same seed always yields the same graph.
func RandomDAG(cfg RandomDAGConfig) Source { return workload.RandomDAG(cfg) }

// SpatialSkewConfig parameterises the skewed-cost spatial decomposition.
type SpatialSkewConfig = workload.SpatialSkewConfig

// SpatialSkew returns the skewed-cost spatial-decomposition workload:
// sweeps over a tile grid with von-Neumann neighbour dependencies and
// bounded-Pareto task costs.
func SpatialSkew(cfg SpatialSkewConfig) Source { return workload.SpatialSkew(cfg) }

// Oracle builds the reference dependency graph of a workload; its analyses
// bound every achievable speedup and validate simulated schedules.
func Oracle(src Source) *depgraph.Graph { return depgraph.Build(src) }

// FromSpecs builds a Source replaying the given task specs in order, so
// callers can run custom traced workloads on any backend without touching
// the internal workload package. The name identifies the workload in
// reports; empty selects "custom". The specs should have sequential IDs
// starting at 0 (the dependency-graph oracle indexes by ID).
func FromSpecs(name string, specs []TaskSpec) Source {
	if name == "" {
		name = "custom"
	}
	return workload.FromTrace(&trace.Trace{Name: name, Tasks: specs})
}

// --- Executing runtime ----------------------------------------------------

// Runtime is a real StarSs-style task-dataflow runtime for Go closures,
// scheduled by the Nexus++ dependency-resolution algorithm. Its dependency
// table is sharded into lock-striped banks (the software analogue of the
// Nexus++ Dependence Table banks) so independent keys resolve concurrently;
// SubmitAll admits a batch of tasks under one bank acquisition. Every
// submission returns a *Handle (the software analogue of the paper's
// hardware task IDs) carrying the task's completion channel and error; a
// failed, panicking or cancelled task poisons its transitive dependents,
// which are skipped with an error wrapping ErrDependencyFailed.
type Runtime = starss.Runtime

// Handle tracks one submitted task: Done, Err, Name, Index, Wait.
type Handle = starss.Handle

// RuntimeConfig parameterises a Runtime. The Shards field sets the number
// of dependency-table banks: 1 reproduces the single-resolver baseline, 0
// selects a default scaled to Workers.
type RuntimeConfig = starss.Config

// RuntimeStats reports the runtime counters, including the Failed and
// Skipped poisoning counters.
type RuntimeStats = starss.Stats

// Task is a unit of executable work with declared dependencies. The body
// is Do (context-aware, may fail); the legacy Run field is still accepted.
type Task = starss.Task

// Dep declares one data access of a Task.
type Dep = starss.Dep

// Runtime lifecycle errors, re-exported for errors.Is against handle and
// Wait/Close results.
var (
	// ErrRuntimeStopped is returned by Submit, Wait and WaitOn after Close.
	ErrRuntimeStopped = starss.ErrStopped
	// ErrDependencyFailed marks a task skipped because a transitive
	// dependency failed; the wrapping error carries the root cause.
	ErrDependencyFailed = starss.ErrDependencyFailed
	// ErrTaskPanicked marks a task whose body panicked.
	ErrTaskPanicked = starss.ErrTaskPanicked
	// ErrTaskTimeout marks a task attempt that exceeded Task.Timeout.
	ErrTaskTimeout = starss.ErrTaskTimeout
)

// In declares a read-only dependency on k.
func In(k any) Dep { return starss.In(k) }

// Out declares a write-only dependency on k.
func Out(k any) Dep { return starss.Out(k) }

// InOut declares a read-write dependency on k.
func InOut(k any) Dep { return starss.InOut(k) }

// NewRuntime starts an executing runtime.
func NewRuntime(cfg RuntimeConfig) *Runtime { return starss.New(cfg) }

// Scope is an isolated namespace on a shared Runtime, created with
// Runtime.Scope: keys submitted through different scopes never alias, and
// each scope keeps its own submitted/executed/failed/skipped counters. It
// is the software analogue of one master core among many sharing the
// paper's hardware task manager, and the isolation primitive under the
// multi-tenant task service.
type Scope = starss.Scope

// ScopedKey is the namespaced form of a dependency key as seen by the
// shared dependency table; useful for diagnostics.
type ScopedKey = starss.ScopedKey

// --- Observability --------------------------------------------------------

// EventRecorder collects the runtime's lifecycle event stream
// (submit/ready/run/finish/poison) into per-worker ring buffers; enable it
// with RuntimeConfig.EventBuffer and drain it via Runtime.Events. Drained
// logs export to Chrome trace-viewer JSON with WriteChromeTrace, and
// `nexusbench trace` wraps the whole flow.
type EventRecorder = obs.Recorder

// Event is one recorded lifecycle transition: kind, task ID, key count,
// bank, worker, and a monotonic timestamp.
type Event = obs.Event

// EventKind is a lifecycle transition type.
type EventKind = obs.Kind

// The recorded lifecycle transitions, in task order: admission, dependence
// count reaching zero, body start, body completion, and skip-by-poisoning.
const (
	EventSubmit = obs.KindSubmit
	EventReady  = obs.KindReady
	EventRun    = obs.KindRun
	EventFinish = obs.KindFinish
	EventPoison = obs.KindPoison
	// EventRetry records a failed attempt re-armed under the task's retry
	// policy; EventFault records an injected fault firing in the body.
	EventRetry = obs.KindRetry
	EventFault = obs.KindFault
)

// WriteChromeTrace converts a drained event log to Chrome trace-viewer
// JSON, loadable in chrome://tracing and ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return obs.WriteChromeTrace(w, events)
}

// --- Task service ---------------------------------------------------------

// ServiceServer is the long-running multi-tenant task service: one shared
// sharded Runtime, many isolated client sessions with per-session admission
// windows (429 backpressure), idle expiry, and graceful drain. cmd/nexusd
// is the daemon wrapping it.
type ServiceServer = service.Server

// ServiceConfig parameterises a ServiceServer.
type ServiceConfig = service.Config

// ServiceClient is the Go client for the nexusd HTTP API.
type ServiceClient = service.Client

// ServiceSession is a client-side handle on one server session.
type ServiceSession = service.Session

// ServiceTaskSpec is the wire form of one task: a parameter list of
// (addr, size, mode) plus a synthesized execution time.
type ServiceTaskSpec = service.TaskSpec

// ServiceParam is one entry of a wire task's parameter list.
type ServiceParam = service.Param

// NewService starts an in-process task service; expose it with Handler and
// shut it down with Close.
func NewService(cfg ServiceConfig) *ServiceServer { return service.New(cfg) }

// NewServiceClient returns a client for a daemon at base
// (e.g. "http://127.0.0.1:8037").
func NewServiceClient(base string) *ServiceClient { return service.NewClient(base) }

// ServiceTaskFromSpec converts a traced task into its wire form, so traced
// workloads can be submitted to a live daemon.
func ServiceTaskFromSpec(spec TaskSpec) ServiceTaskSpec { return service.FromTraceSpec(spec) }

// --- Fault injection ------------------------------------------------------

// FaultInjector decides, deterministically per seed, whether an injected
// fault fires at a given site for a given key. A nil injector is the
// disabled state: every layer that consults one pays a single nil check,
// and schedules are reproducible per seed. Wire one into RuntimeConfig or
// ServiceConfig, or onto the client side with FaultTransport.
type FaultInjector = faults.Injector

// FaultPlan is a seed plus the armed rules — one reproducible schedule.
type FaultPlan = faults.Plan

// FaultRule arms one injection site with a probability or a fire-every-N
// discipline, plus an optional injected delay.
type FaultRule = faults.Rule

// FaultSite is one injection point (task error/panic/hang, kick-off delay,
// and the wire's drop/duplicate/delay sites).
type FaultSite = faults.Site

// FaultTransport is an http.RoundTripper injecting client-side wire faults
// (dropped, duplicated, delayed requests and responses).
type FaultTransport = faults.Transport

// ErrFaultInjected is the root of every injected fault, for errors.Is.
var ErrFaultInjected = faults.ErrInjected

// NewFaultInjector compiles a plan; nil or empty plans yield the disabled
// (nil) injector.
func NewFaultInjector(plan *FaultPlan) *FaultInjector { return faults.New(plan) }

// ParseFaultSpec compiles the textual rule syntax used by the nexusd and
// nexusbench flags, e.g. "task_panic:0.05,resp_drop:every=4".
func ParseFaultSpec(seed uint64, spec string) (*FaultInjector, error) {
	return faults.ParseSpec(seed, spec)
}
