package nexuspp

import (
	"nexuspp/internal/core"
	"nexuspp/internal/depgraph"
	"nexuspp/internal/starss"
	"nexuspp/internal/trace"
	"nexuspp/internal/workload"
)

// --- Hardware simulation -----------------------------------------------

// Config parameterises a simulated Nexus++ system (the paper's Table IV).
type Config = core.Config

// Result reports one simulation run.
type Result = core.Result

// Costs gives the per-block service costs in Nexus++ cycles.
type Costs = core.Costs

// DefaultConfig returns the paper's configuration for the given number of
// worker cores, with double buffering enabled.
func DefaultConfig(workers int) Config { return core.DefaultConfig(workers) }

// Simulate runs src to completion on a Nexus++ system described by cfg.
func Simulate(cfg Config, src Source) (*Result, error) { return core.Run(cfg, src) }

// --- Workloads -----------------------------------------------------------

// Source streams tasks in submission order.
type Source = workload.Source

// TaskSpec describes one traced task.
type TaskSpec = trace.TaskSpec

// Param is one entry of a task's input/output list.
type Param = trace.Param

// Independent returns the paper's independent-task benchmark (8160
// H.264-sized tasks, no dependencies).
func Independent(seed uint64) Source { return workload.Independent(seed) }

// Wavefront returns the H.264 macroblock wavefront benchmark (Figure 4a).
func Wavefront(seed uint64) Source { return workload.Wavefront(seed) }

// HorizontalChains returns the Figure 4(b) benchmark.
func HorizontalChains(seed uint64) Source { return workload.HorizontalChains(seed) }

// VerticalChains returns the Figure 4(c) benchmark.
func VerticalChains(seed uint64) Source { return workload.VerticalChains(seed) }

// GaussianElimination returns the Gaussian elimination with partial
// pivoting task graph (Figure 5) for an n x n matrix.
func GaussianElimination(n int) Source {
	return workload.Gaussian(workload.GaussianConfig{N: n})
}

// Oracle builds the reference dependency graph of a workload; its analyses
// bound every achievable speedup and validate simulated schedules.
func Oracle(src Source) *depgraph.Graph { return depgraph.Build(src) }

// --- Executing runtime ----------------------------------------------------

// Runtime is a real StarSs-style task-dataflow runtime for Go closures,
// scheduled by the Nexus++ dependency-resolution algorithm. Its dependency
// table is sharded into lock-striped banks (the software analogue of the
// Nexus++ Dependence Table banks) so independent keys resolve concurrently;
// SubmitAll admits a batch of tasks under one bank acquisition.
type Runtime = starss.Runtime

// RuntimeConfig parameterises a Runtime. The Shards field sets the number
// of dependency-table banks: 1 reproduces the single-resolver baseline, 0
// selects a default scaled to Workers.
type RuntimeConfig = starss.Config

// Task is a unit of executable work with declared dependencies.
type Task = starss.Task

// Dep declares one data access of a Task.
type Dep = starss.Dep

// In declares a read-only dependency on k.
func In(k interface{}) Dep { return starss.In(k) }

// Out declares a write-only dependency on k.
func Out(k interface{}) Dep { return starss.Out(k) }

// InOut declares a read-write dependency on k.
func InOut(k interface{}) Dep { return starss.InOut(k) }

// NewRuntime starts an executing runtime.
func NewRuntime(cfg RuntimeConfig) *Runtime { return starss.New(cfg) }
