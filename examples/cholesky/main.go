// Tiled Cholesky factorisation on the executing StarSs runtime — the
// canonical dense-linear-algebra task graph StarSs was designed for,
// computing with real float64 tiles and verifying A = L*L^T at the end.
//
// The four kernels declare their tile accesses exactly as a StarSs
// programmer would annotate them:
//
//	POTRF(k):    inout A[k][k]
//	TRSM(i,k):   in A[k][k],  inout A[i][k]
//	SYRK(i,k):   in A[i][k],  inout A[i][i]
//	GEMM(i,j,k): in A[i][k], A[j][k], inout A[i][j]
//
// and the runtime extracts all the parallelism; the submission loop is the
// sequential right-looking algorithm.
//
// Run with: go run ./examples/cholesky [-tiles 8] [-b 48] [-workers 8]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"nexuspp"
)

type tile struct {
	b    int
	data []float64
}

func newTile(b int) *tile { return &tile{b: b, data: make([]float64, b*b)} }

func (t *tile) at(r, c int) float64     { return t.data[r*t.b+c] }
func (t *tile) set(r, c int, v float64) { t.data[r*t.b+c] = v }

// potrf factors a in place: a = l * l^T (lower triangular l).
func potrf(a *tile) {
	b := a.b
	for j := 0; j < b; j++ {
		d := a.at(j, j)
		for k := 0; k < j; k++ {
			d -= a.at(j, k) * a.at(j, k)
		}
		if d <= 0 {
			panic("matrix not positive definite")
		}
		d = math.Sqrt(d)
		a.set(j, j, d)
		for i := j + 1; i < b; i++ {
			v := a.at(i, j)
			for k := 0; k < j; k++ {
				v -= a.at(i, k) * a.at(j, k)
			}
			a.set(i, j, v/d)
		}
		for i := 0; i < j; i++ {
			a.set(i, j, 0)
		}
	}
}

// trsm solves x * l^T = a in place given the factored diagonal tile l.
func trsm(l, a *tile) {
	b := a.b
	for j := 0; j < b; j++ {
		for i := 0; i < b; i++ {
			v := a.at(i, j)
			for k := 0; k < j; k++ {
				v -= a.at(i, k) * l.at(j, k)
			}
			a.set(i, j, v/l.at(j, j))
		}
	}
}

// syrk computes a -= x * x^T for a diagonal tile.
func syrk(x, a *tile) {
	b := a.b
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			v := a.at(i, j)
			for k := 0; k < b; k++ {
				v -= x.at(i, k) * x.at(j, k)
			}
			a.set(i, j, v)
		}
	}
}

// gemm computes a -= x * y^T.
func gemm(x, y, a *tile) {
	b := a.b
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			v := a.at(i, j)
			for k := 0; k < b; k++ {
				v -= x.at(i, k) * y.at(j, k)
			}
			a.set(i, j, v)
		}
	}
}

func main() {
	tiles := flag.Int("tiles", 8, "tile grid dimension")
	bsz := flag.Int("b", 48, "tile size")
	workers := flag.Int("workers", 8, "worker goroutines")
	flag.Parse()
	T, B := *tiles, *bsz
	n := T * B

	// Build a symmetric positive-definite matrix A (lower storage by
	// tiles) and keep a copy for verification.
	a := make([][]*tile, T)
	orig := make([][]*tile, T)
	for i := range a {
		a[i] = make([]*tile, T)
		orig[i] = make([]*tile, T)
		for j := 0; j <= i; j++ {
			a[i][j] = newTile(B)
			orig[i][j] = newTile(B)
		}
	}
	val := func(r, c int) float64 {
		v := float64((r*37+c*61)%23)/23.0 - 0.5
		if r == c {
			v += float64(n) // diagonal dominance => positive definite
		}
		return v
	}
	for i := 0; i < T; i++ {
		for j := 0; j <= i; j++ {
			for r := 0; r < B; r++ {
				for c := 0; c < B; c++ {
					gr, gc := i*B+r, j*B+c
					if gc > gr {
						continue
					}
					v := (val(gr, gc) + val(gc, gr)) / 2
					a[i][j].set(r, c, v)
					orig[i][j].set(r, c, v)
				}
			}
		}
	}

	key := func(i, j int) [2]int { return [2]int{i, j} }
	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{Workers: *workers, Window: 4096})
	start := time.Now()
	for k := 0; k < T; k++ {
		k := k
		rt.MustSubmit(nexuspp.Task{
			Name: fmt.Sprintf("potrf-%d", k),
			Deps: []nexuspp.Dep{nexuspp.InOut(key(k, k))},
			Do:   func(context.Context) error { potrf(a[k][k]); return nil },
		})
		for i := k + 1; i < T; i++ {
			i := i
			rt.MustSubmit(nexuspp.Task{
				Name: fmt.Sprintf("trsm-%d-%d", i, k),
				Deps: []nexuspp.Dep{nexuspp.In(key(k, k)), nexuspp.InOut(key(i, k))},
				Do:   func(context.Context) error { trsm(a[k][k], a[i][k]); return nil },
			})
		}
		for i := k + 1; i < T; i++ {
			i := i
			rt.MustSubmit(nexuspp.Task{
				Name: fmt.Sprintf("syrk-%d-%d", i, k),
				Deps: []nexuspp.Dep{nexuspp.In(key(i, k)), nexuspp.InOut(key(i, i))},
				Do:   func(context.Context) error { syrk(a[i][k], a[i][i]); return nil },
			})
			for j := k + 1; j < i; j++ {
				j := j
				rt.MustSubmit(nexuspp.Task{
					Name: fmt.Sprintf("gemm-%d-%d-%d", i, j, k),
					Deps: []nexuspp.Dep{
						nexuspp.In(key(i, k)), nexuspp.In(key(j, k)),
						nexuspp.InOut(key(i, j)),
					},
					Do: func(context.Context) error { gemm(a[i][k], a[j][k], a[i][j]); return nil },
				})
			}
		}
	}
	if err := rt.Wait(context.Background()); err != nil {
		fmt.Println("factorisation failed:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	stats := rt.Stats()
	if err := rt.Close(); err != nil {
		fmt.Println("runtime close:", err)
		os.Exit(1)
	}

	// Verify A = L * L^T elementwise (lower triangle).
	l := func(r, c int) float64 {
		if c > r {
			return 0
		}
		ti, tj := r/B, c/B
		return a[ti][tj].at(r%B, c%B)
	}
	maxErr := 0.0
	for r := 0; r < n; r++ {
		for c := 0; c <= r; c++ {
			sum := 0.0
			for k := 0; k <= c; k++ {
				sum += l(r, k) * l(c, k)
			}
			ref := orig[r/B][c/B].at(r%B, c%B)
			if e := math.Abs(sum - ref); e > maxErr {
				maxErr = e
			}
		}
	}
	fmt.Printf("cholesky: %dx%d matrix (%dx%d tiles of %d), %d tasks, %d workers\n",
		n, n, T, T, B, stats.Executed, *workers)
	fmt.Printf("factorisation %v, hazardous tasks %d, max in-flight %d\n",
		elapsed.Round(time.Millisecond), stats.Hazards, stats.MaxInFlight)
	fmt.Printf("max |L*L^T - A| = %.3g\n", maxErr)
	if maxErr > 1e-6*float64(n) {
		fmt.Println("VERIFICATION FAILED")
		os.Exit(1)
	}
	fmt.Println("verified: factorisation reconstructs A")
}
