// H.264 decoding across all five engines: the paper's Figure 7 experiment
// driven through the unified backend API, with the intrinsic-parallelism
// analysis that explains it.
//
// The example analyses one full-HD frame of the H.264 macroblock wavefront
// (8160 tasks with the published Cell timing statistics) with the
// dependency-graph oracle, then runs the identical workload on every
// registered backend — the Nexus++ simulator, the original-Nexus simulator,
// the software-RTS model, and the two real executing runtimes replaying the
// trace with synthesized Go bodies — and prints one unified report row per
// engine. A final sweep shows the Nexus++ speedup saturating at the
// oracle's average parallelism (the wavefront "ramping effect").
//
// Run with: go run ./examples/h264
package main

import (
	"context"
	"fmt"
	"strings"

	"nexuspp"
)

func main() {
	const seed = 42
	oracle := nexuspp.Oracle(nexuspp.Wavefront(seed))
	an := oracle.Analyze()
	fmt.Printf("H.264 wavefront frame: %d tasks, %d dependency edges\n",
		oracle.NumTasks(), oracle.NumEdges())
	fmt.Printf("oracle: total work %v, critical path %v, avg parallelism %.1f, max width %d\n\n",
		an.TotalWork, an.CriticalPath, an.AvgParallelism, an.MaxWidth)

	// The ramp profile of Figure 4(a): available parallelism over time.
	prof := oracle.WidthProfile(16)
	fmt.Println("parallelism profile (16 time buckets, # = 4 ready tasks):")
	for i, w := range prof {
		fmt.Printf("  t%02d %6.1f %s\n", i, w, strings.Repeat("#", int(w/4)))
	}
	fmt.Println()

	// One workload, five engines, one report shape. The executing runtimes
	// replay the trace with bodies synthesized from the traced timing,
	// scaled down 10x so the example stays fast.
	const workers = 8
	fmt.Printf("all engines, %d workers (executing engines replay the trace 10x faster):\n", workers)
	fmt.Printf("  %-9s %-10s %-7s %-14s %s\n", "backend", "kind", "tasks", "makespan/wall", "tasks/s")
	for _, b := range nexuspp.Backends() {
		rep, err := b.Run(context.Background(),
			nexuspp.BackendConfig{Workers: workers, TimeScale: 10}, nexuspp.Wavefront(seed))
		if err != nil {
			fmt.Printf("  %-9s FAILS: %v\n", b.Name(), err)
			continue
		}
		kind := "executing"
		if rep.Simulated {
			kind = "simulated"
		}
		fmt.Printf("  %-9s %-10s %-7d %-14s %.0f\n",
			rep.Backend, kind, rep.TasksExecuted, rep.Span(), rep.Throughput())
	}
	fmt.Println()

	// The Figure 7 core sweep on the Nexus++ backend.
	plus, err := nexuspp.LookupBackend("nexuspp")
	if err != nil {
		panic(err)
	}
	run := func(cores int) *nexuspp.Report {
		rep, err := plus.Run(context.Background(),
			nexuspp.BackendConfig{Workers: cores}, nexuspp.Wavefront(seed))
		if err != nil {
			panic(err)
		}
		return rep
	}
	base := run(1)
	fmt.Printf("%-8s %-12s %s\n", "cores", "makespan", "speedup")
	for _, cores := range []int{1, 2, 4, 8, 16, 32, 64} {
		res := run(cores)
		fmt.Printf("%-8d %-12v %.2f\n", cores, res.Makespan,
			float64(base.Makespan)/float64(res.Makespan))
	}
	fmt.Printf("\nthe speedup saturates near the oracle's average parallelism (%.1f):\n", an.AvgParallelism)
	fmt.Println("the ramp at the frame's start and end leaves cores idle, exactly")
	fmt.Println("the limited application scalability the paper reports for Figure 7.")
}
