// H.264 decoding on simulated Nexus++ hardware: a miniature of the paper's
// Figure 7 experiment with the intrinsic-parallelism analysis that explains
// it.
//
// The example sweeps worker-core counts for the wavefront workload (one
// full-HD frame, 8160 macroblock tasks with the published Cell timing
// statistics), prints the achieved speedups, and contrasts them with the
// dependency-graph oracle: the wavefront's "ramping effect" bounds the
// average parallelism no matter how many cores the machine has.
//
// Run with: go run ./examples/h264
package main

import (
	"fmt"
	"strings"

	"nexuspp"
)

func main() {
	const seed = 42
	oracle := nexuspp.Oracle(nexuspp.Wavefront(seed))
	an := oracle.Analyze()
	fmt.Printf("H.264 wavefront frame: %d tasks, %d dependency edges\n",
		oracle.NumTasks(), oracle.NumEdges())
	fmt.Printf("oracle: total work %v, critical path %v, avg parallelism %.1f, max width %d\n\n",
		an.TotalWork, an.CriticalPath, an.AvgParallelism, an.MaxWidth)

	// The ramp profile of Figure 4(a): available parallelism over time.
	prof := oracle.WidthProfile(16)
	fmt.Println("parallelism profile (16 time buckets, # = 4 ready tasks):")
	for i, w := range prof {
		fmt.Printf("  t%02d %6.1f %s\n", i, w, strings.Repeat("#", int(w/4)))
	}
	fmt.Println()

	base, err := nexuspp.Simulate(nexuspp.DefaultConfig(1), nexuspp.Wavefront(seed))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-8s %-12s %-9s %s\n", "cores", "makespan", "speedup", "core util")
	for _, cores := range []int{1, 2, 4, 8, 16, 32, 64} {
		res, err := nexuspp.Simulate(nexuspp.DefaultConfig(cores), nexuspp.Wavefront(seed))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-8d %-12v %-9.2f %.0f%%\n", cores, res.Makespan,
			float64(base.Makespan)/float64(res.Makespan), res.CoreUtilization*100)
	}
	fmt.Printf("\nthe speedup saturates near the oracle's average parallelism (%.1f):\n", an.AvgParallelism)
	fmt.Println("the ramp at the frame's start and end leaves cores idle, exactly")
	fmt.Println("the limited application scalability the paper reports for Figure 7.")
}
