// Quickstart: the two faces of this repository in ~60 lines.
//
//  1. Run real Go tasks under StarSs dataflow semantics: declare what each
//     task reads and writes, submit in program order, and let the runtime
//     extract the parallelism (the paper's Listing 1, as a library).
//  2. Simulate the Nexus++ hardware on a paper workload and print the
//     achieved speedup.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"nexuspp"
)

func main() {
	// --- 1. Executing runtime -------------------------------------------
	// Shards is the number of dependency-table banks (the software
	// analogue of the Nexus++ Dependence Table banks); 0 picks a default
	// scaled to Workers.
	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{Workers: 4, Shards: 16})

	// A tiny dataflow: two independent producers, one consumer, exactly
	// like annotating three function calls with StarSs pragmas.
	var left, right, total int
	rt.MustSubmit(nexuspp.Task{
		Name: "produce-left",
		Deps: []nexuspp.Dep{nexuspp.Out("left")},
		Run:  func() { left = 21 },
	})
	rt.MustSubmit(nexuspp.Task{
		Name: "produce-right",
		Deps: []nexuspp.Dep{nexuspp.Out("right")},
		Run:  func() { right = 21 },
	})
	rt.MustSubmit(nexuspp.Task{
		Name: "combine",
		Deps: []nexuspp.Dep{nexuspp.In("left"), nexuspp.In("right"), nexuspp.Out("total")},
		Run:  func() { total = left + right },
	})
	rt.Barrier() // the css barrier pragma
	fmt.Printf("dataflow result: %d (runtime stats: %+v)\n", total, rt.Stats())
	rt.Shutdown()

	// --- 2. Hardware simulation ------------------------------------------
	// The paper's H.264 wavefront benchmark on 1 and 16 worker cores.
	one, err := nexuspp.Simulate(nexuspp.DefaultConfig(1), nexuspp.Wavefront(42))
	if err != nil {
		panic(err)
	}
	sixteen, err := nexuspp.Simulate(nexuspp.DefaultConfig(16), nexuspp.Wavefront(42))
	if err != nil {
		panic(err)
	}
	fmt.Printf("H.264 wavefront: 1 core %v -> 16 cores %v (speedup %.2fx, utilization %.0f%%)\n",
		one.Makespan, sixteen.Makespan,
		float64(one.Makespan)/float64(sixteen.Makespan),
		sixteen.CoreUtilization*100)

	// The oracle bounds what any scheduler could achieve on this graph.
	oracle := nexuspp.Oracle(nexuspp.Wavefront(42)).Analyze()
	fmt.Printf("oracle: average parallelism %.1f, critical path %v\n",
		oracle.AvgParallelism, oracle.CriticalPath)
}
