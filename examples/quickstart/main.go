// Quickstart: the two faces of this repository in one file.
//
//  1. Run real Go tasks under StarSs dataflow semantics: declare what each
//     task reads and writes, submit in program order, and let the runtime
//     extract the parallelism (the paper's Listing 1, as a library).
//  2. Simulate the Nexus++ hardware on a paper workload and print the
//     achieved speedup.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"

	"nexuspp"
)

func main() {
	// --- 1. Executing runtime -------------------------------------------
	// Shards is the number of dependency-table banks (the software
	// analogue of the Nexus++ Dependence Table banks); 0 picks a default
	// scaled to Workers.
	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{Workers: 4, Shards: 16})
	ctx := context.Background()

	// A tiny dataflow: two independent producers, one consumer, exactly
	// like annotating three function calls with StarSs pragmas. Every
	// submission returns a typed handle — the software analogue of the
	// task IDs the Nexus++ hardware assigns and tracks.
	var left, right, total int
	rt.MustSubmit(nexuspp.Task{
		Name: "produce-left",
		Deps: []nexuspp.Dep{nexuspp.Out("left")},
		Do:   func(context.Context) error { left = 21; return nil },
	})
	rt.MustSubmit(nexuspp.Task{
		Name: "produce-right",
		Deps: []nexuspp.Dep{nexuspp.Out("right")},
		Do:   func(context.Context) error { right = 21; return nil },
	})
	combine := rt.MustSubmit(nexuspp.Task{
		Name: "combine",
		Deps: []nexuspp.Dep{nexuspp.In("left"), nexuspp.In("right"), nexuspp.Out("total")},
		Do:   func(context.Context) error { total = left + right; return nil },
	})
	if err := rt.Wait(ctx); err != nil { // the css barrier pragma, with errors
		panic(err)
	}
	fmt.Printf("dataflow result: %d (task %q id=%d, runtime stats: %v)\n",
		total, combine.Name(), combine.Index(), rt.Stats())

	// Failures propagate: a failed task poisons its transitive dependents,
	// which are skipped and report ErrDependencyFailed with the root cause.
	fail := rt.MustSubmit(nexuspp.Task{
		Name: "flaky-producer",
		Deps: []nexuspp.Dep{nexuspp.Out("cursed")},
		Do:   func(context.Context) error { return errors.New("sector unreadable") },
	})
	dep := rt.MustSubmit(nexuspp.Task{
		Name: "doomed-consumer",
		Deps: []nexuspp.Dep{nexuspp.In("cursed")},
		Do:   func(context.Context) error { return nil }, // never runs
	})
	<-dep.Done()
	fmt.Printf("failure propagation: %q failed (%v); %q skipped=%v\n",
		fail.Name(), fail.Err(), dep.Name(), errors.Is(dep.Err(), nexuspp.ErrDependencyFailed))
	if err := rt.Close(); err != nil {
		fmt.Println("runtime closed with first failure:", err)
	}

	// --- 2. Hardware simulation ------------------------------------------
	// The paper's H.264 wavefront benchmark on 1 and 16 worker cores.
	one, err := nexuspp.Simulate(nexuspp.DefaultConfig(1), nexuspp.Wavefront(42))
	if err != nil {
		panic(err)
	}
	sixteen, err := nexuspp.Simulate(nexuspp.DefaultConfig(16), nexuspp.Wavefront(42))
	if err != nil {
		panic(err)
	}
	fmt.Printf("H.264 wavefront: 1 core %v -> 16 cores %v (speedup %.2fx, utilization %.0f%%)\n",
		one.Makespan, sixteen.Makespan,
		float64(one.Makespan)/float64(sixteen.Makespan),
		sixteen.CoreUtilization*100)

	// The oracle bounds what any scheduler could achieve on this graph.
	oracle := nexuspp.Oracle(nexuspp.Wavefront(42)).Analyze()
	fmt.Printf("oracle: average parallelism %.1f, critical path %v\n",
		oracle.AvgParallelism, oracle.CriticalPath)
}
