// Gaussian elimination with partial pivoting on the executing StarSs
// runtime — the real computation behind the paper's Figure 5 task graph.
//
// The task structure mirrors the paper exactly: for each column i, a pivot
// task selects the pivot among rows i..n (declaring inout on all of them,
// since partial pivoting may swap any row up), then n-i independent update
// tasks eliminate the column from the remaining rows. The dependency
// declarations alone serialise the pivot against the updates and let every
// update of one column run in parallel — no locks, no explicit waits.
//
// The result is verified against a known solution vector.
//
// Run with: go run ./examples/gaussian [-n 192] [-workers 8]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"nexuspp"
)

func main() {
	n := flag.Int("n", 192, "matrix dimension")
	workers := flag.Int("workers", 8, "worker goroutines")
	flag.Parse()

	// Build a system A*x = b with a known solution x[i] = 1 + i mod 5,
	// using a diagonally dominant A so elimination is well-conditioned.
	a := make([][]float64, *n)
	xTrue := make([]float64, *n)
	for i := range xTrue {
		xTrue[i] = float64(1 + i%5)
	}
	for i := range a {
		a[i] = make([]float64, *n+1) // augmented column holds b
		rowSum := 0.0
		for j := 0; j < *n; j++ {
			v := float64((i*31+j*17)%13) / 13.0
			a[i][j] = v
			rowSum += math.Abs(v)
		}
		a[i][i] += rowSum + 1 // diagonal dominance
		b := 0.0
		for j := 0; j < *n; j++ {
			b += a[i][j] * xTrue[j]
		}
		a[i][*n] = b
	}

	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{Workers: *workers, Window: 4096})
	start := time.Now()

	for col := 0; col < *n-1; col++ {
		col := col
		// Pivot task T(i,i): select the pivot in column col among rows
		// col..n-1 and swap it up. It may touch any of those rows, so it
		// declares inout on all of them — which also makes it wait for
		// every update task of the previous column, the Figure 5 barrier.
		pivotDeps := make([]nexuspp.Dep, 0, *n-col)
		for r := col; r < *n; r++ {
			pivotDeps = append(pivotDeps, nexuspp.InOut(r))
		}
		rt.MustSubmit(nexuspp.Task{
			Name: fmt.Sprintf("pivot-%d", col),
			Deps: pivotDeps,
			Do: func(context.Context) error {
				best := col
				for r := col + 1; r < *n; r++ {
					if math.Abs(a[r][col]) > math.Abs(a[best][col]) {
						best = r
					}
				}
				a[col], a[best] = a[best], a[col]
				return nil
			},
		})
		// Update tasks T(j,i): eliminate column col from row j. Each reads
		// the pivot row and rewrites its own row; rows of one column are
		// independent and run in parallel.
		for row := col + 1; row < *n; row++ {
			row := row
			rt.MustSubmit(nexuspp.Task{
				Name: fmt.Sprintf("update-%d-%d", row, col),
				Deps: []nexuspp.Dep{nexuspp.In(col), nexuspp.InOut(row)},
				Do: func(context.Context) error {
					f := a[row][col] / a[col][col]
					a[row][col] = 0
					for j := col + 1; j <= *n; j++ {
						a[row][j] -= f * a[col][j]
					}
					return nil
				},
			})
		}
	}
	if err := rt.Wait(context.Background()); err != nil {
		fmt.Println("elimination failed:", err)
		os.Exit(1)
	}
	elim := time.Since(start)

	// Back substitution (serial; O(n^2), negligible).
	x := make([]float64, *n)
	for i := *n - 1; i >= 0; i-- {
		s := a[i][*n]
		for j := i + 1; j < *n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	stats := rt.Stats()
	if err := rt.Close(); err != nil {
		fmt.Println("runtime close:", err)
		os.Exit(1)
	}

	maxErr := 0.0
	for i := range x {
		if e := math.Abs(x[i] - xTrue[i]); e > maxErr {
			maxErr = e
		}
	}
	tasks := (*n**n + *n - 2) / 2
	fmt.Printf("gaussian elimination: n=%d, %d tasks (paper: (n^2+n-2)/2 = %d), %d workers\n",
		*n, stats.Executed, tasks, *workers)
	fmt.Printf("elimination time %v, hazardous tasks %d, max in-flight %d\n",
		elim.Round(time.Millisecond), stats.Hazards, stats.MaxInFlight)
	fmt.Printf("max |x - x_true| = %.3g\n", maxErr)
	if maxErr > 1e-8 {
		fmt.Println("VERIFICATION FAILED")
		os.Exit(1)
	}
	fmt.Println("verified: solution matches the known vector")
}
