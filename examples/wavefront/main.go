// Wavefront stencil on the executing StarSs runtime — the computation the
// paper's Listing 1 sketches for H.264 macroblock decoding, with real data.
//
// Each block (r,c) of a grid is "decoded" from its left neighbour (r,c-1)
// and its up-right neighbour (r-1,c+1), the exact dependency pattern of
// Figure 4(a). Tasks are submitted in the serial loop order of Listing 1;
// the runtime discovers the diagonal wavefront automatically. The Prefetch
// hook demonstrates double buffering: it precomputes a checksum of the
// input blocks while the worker executes the previous task.
//
// The parallel result is verified against a serial execution.
//
// Run with: go run ./examples/wavefront [-rows 120] [-cols 68] [-workers 8]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"nexuspp"
)

const blockSize = 16

type block [blockSize * blockSize]int32

// decode fills dst from its dependencies, a stand-in for H.264 macroblock
// reconstruction: every pixel mixes the left and up-right blocks with a
// per-block seed.
func decode(dst *block, left, upright *block, seed int32) {
	for i := range dst {
		v := seed + int32(i)
		if left != nil {
			v += left[i] >> 1
		}
		if upright != nil {
			v += upright[(i+7)%len(upright)] >> 2
		}
		dst[i] = v*1103515245 + 12345
	}
}

func run(rows, cols, workers int, prefetched *atomic.Int64) [][]block {
	grid := make([][]block, rows)
	for r := range grid {
		grid[r] = make([]block, cols)
	}
	key := func(r, c int) [2]int { return [2]int{r, c} }

	rt := nexuspp.NewRuntime(nexuspp.RuntimeConfig{Workers: workers, Window: 2048})
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			r, c := r, c
			deps := []nexuspp.Dep{nexuspp.InOut(key(r, c))}
			var left, upright *block
			if c > 0 {
				left = &grid[r][c-1]
				deps = append(deps, nexuspp.In(key(r, c-1)))
			}
			if r > 0 && c < cols-1 {
				upright = &grid[r-1][c+1]
				deps = append(deps, nexuspp.In(key(r-1, c+1)))
			}
			rt.MustSubmit(nexuspp.Task{
				Name: fmt.Sprintf("decode-%d-%d", r, c),
				Deps: deps,
				Prefetch: func() {
					// Double buffering: touch the inputs ahead of Run.
					var sum int32
					if left != nil {
						sum += left[0]
					}
					if upright != nil {
						sum += upright[0]
					}
					_ = sum
					if prefetched != nil {
						prefetched.Add(1)
					}
				},
				Do: func(context.Context) error {
					decode(&grid[r][c], left, upright, int32(r*cols+c))
					return nil
				},
			})
		}
	}
	if err := rt.Close(); err != nil {
		panic(err)
	}
	return grid
}

func main() {
	rows := flag.Int("rows", 120, "grid rows")
	cols := flag.Int("cols", 68, "grid cols")
	workers := flag.Int("workers", 8, "worker goroutines")
	flag.Parse()

	var prefetched atomic.Int64
	start := time.Now()
	parallel := run(*rows, *cols, *workers, &prefetched)
	par := time.Since(start)

	start = time.Now()
	serial := run(*rows, *cols, 1, nil)
	ser := time.Since(start)

	for r := range parallel {
		for c := range parallel[r] {
			if parallel[r][c] != serial[r][c] {
				fmt.Printf("VERIFICATION FAILED at block (%d,%d)\n", r, c)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("wavefront decode: %dx%d blocks (%d tasks) on %d workers\n",
		*rows, *cols, *rows**cols, *workers)
	fmt.Printf("parallel %v, serial-runtime %v, prefetches overlapped: %d\n",
		par.Round(time.Millisecond), ser.Round(time.Millisecond), prefetched.Load())
	fmt.Println("verified: parallel result matches serial execution")
}
